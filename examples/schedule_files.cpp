// Schedule files: the tooling workflow — platforms and schedules as
// plain-text artifacts that survive outside the process.
//
//   $ ./example_schedule_files [--dir=.]
//
// Writes a platform file, plans a batch, saves the schedule, re-loads both,
// re-validates with the analytic checker AND the discrete-event replay, and
// demonstrates that a hand-corrupted schedule is rejected.  This is the
// round-trip an external toolchain (dashboards, auditors) would use.

#include <fstream>
#include <iostream>
#include <sstream>

#include "mst/mst.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const std::string dir = args.get("dir", ".");
  const std::string platform_path = dir + "/demo_platform.txt";
  const std::string schedule_path = dir + "/demo_schedule.txt";

  // 1. Author a platform file.
  const Spider platform{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  {
    std::ofstream out(platform_path);
    out << "# demo platform: the paper's Fig 2 chain plus a leaf pool\n";
    out << write_spider(platform);
  }
  std::cout << "wrote " << platform_path << "\n";

  // 2. Load it back and plan.
  const Spider loaded = parse_spider(slurp(platform_path));
  const SpiderSchedule plan = SpiderScheduler::schedule(loaded, 8);
  std::cout << "planned 8 tasks, makespan " << plan.makespan() << "\n";

  // 3. Persist the schedule and reload it.
  {
    std::ofstream out(schedule_path);
    out << write_schedule(plan);
  }
  const SpiderSchedule reloaded = parse_spider_schedule(slurp(schedule_path));
  std::cout << "reloaded " << schedule_path << ": " << reloaded.num_tasks() << " tasks\n";

  // 4. Validate through both validators.
  const FeasibilityReport analytic = check_feasibility(reloaded);
  const sim::ReplayResult operational = sim::replay(reloaded);
  std::cout << "analytic checker : " << analytic.summary() << "\n";
  std::cout << "event replay     : " << (operational.ok ? "feasible" : "conflicts")
            << ", makespan " << operational.makespan << "\n";

  // 5. A corrupted file is loadable but rejected by validation.
  SpiderSchedule corrupted = reloaded;
  if (!corrupted.tasks.empty()) corrupted.tasks[0].start = 0;
  const std::string corrupted_text = write_schedule(corrupted);
  const SpiderSchedule loaded_corrupted = parse_spider_schedule(corrupted_text);
  const FeasibilityReport verdict = check_feasibility(loaded_corrupted);
  std::cout << "\ncorrupted variant loads structurally: yes\n";
  std::cout << "corrupted variant passes validation : " << (verdict.ok() ? "yes" : "no") << "\n";
  if (!verdict.ok()) {
    std::cout << "first violation: " << verdict.violations().front() << "\n";
  }
  return 0;
}
