// Volunteer computing: the SETI@home-style scenario that motivates the
// paper's introduction.  A project master distributes equal-sized work
// units to heterogeneous volunteer pools: each pool is reached through a
// shared uplink and relays work down a line of participants — a spider.
//
//   $ ./example_volunteer_computing [--units=60] [--seed=1] [--pools=5]
//
// Shows: building a realistic platform from named pools, planning a batch
// optimally, reading utilization metrics, and quantifying what the optimal
// plan buys over the demand-driven dispatch such projects actually use.

#include <iostream>

#include "mst/mst.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const auto units = static_cast<std::size_t>(args.get_int("units", 60));
  const auto pools = static_cast<std::size_t>(args.get_int("pools", 5));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Volunteer pools: slow links (home connections), mixed compute power.
  // Time unit ~ minutes; one task = one work unit.
  Rng rng(seed);
  GeneratorParams params{2, 15, PlatformClass::kCommBound};
  const Spider platform = random_spider(rng, pools, 4, params);

  std::cout << "== volunteer computing batch planner ==\n";
  std::cout << "platform: " << platform.describe() << "\n";
  std::cout << "work units: " << units << "\n\n";

  // Plan the batch optimally (paper §7).
  const SpiderSchedule plan = SpiderScheduler::schedule(platform, units);
  std::cout << "optimal batch completion: " << plan.makespan() << " min\n";

  const SpiderUtilization util = compute_utilization(plan);
  std::cout << "master uplink busy: " << static_cast<int>(util.master_port_busy_fraction * 100)
            << "%\n";
  for (std::size_t l = 0; l < util.tasks_per_leg.size(); ++l) {
    std::cout << "  pool " << l << ": " << util.tasks_per_leg[l] << " units\n";
  }

  // What the project would get with a demand-driven runtime instead.
  const Tree tree = tree_from_spider(platform);
  std::cout << "\ndispatch policy comparison (same batch):\n";
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    const sim::SimResult r = sim::simulate_online(tree, units, policy, seed);
    const double overhead = static_cast<double>(r.makespan) /
                                static_cast<double>(plan.makespan()) * 100.0 -
                            100.0;
    std::cout << "  " << to_string(policy) << ": " << r.makespan << " min (+"
              << static_cast<int>(overhead + 0.5) << "%)\n";
  }

  // Deadline planning: how many units can ship before a deadline?
  const Time deadline = plan.makespan() + plan.makespan() / 2;
  std::cout << "\nunits completable by t=" << deadline << ": "
            << SpiderScheduler::max_tasks(platform, deadline, 10 * units) << "\n";

  // Long-run capacity of this volunteer pool.
  std::cout << "steady-state capacity: " << spider_steady_state_rate(platform)
            << " units/min\n";
  return 0;
}
