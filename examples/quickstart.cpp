// Quickstart: build a platform, schedule tasks optimally, inspect and
// validate the result.  Start here.
//
//   $ ./example_quickstart
//
// Walks through the three core calls of the library:
//   ChainScheduler::schedule     — optimal makespan on a chain (paper §3)
//   SpiderScheduler::schedule    — optimal makespan on a spider (paper §7)
//   check_feasibility / replay   — validate any schedule (Definition 1)

#include <iostream>

#include "mst/mst.hpp"

int main() {
  using namespace mst;

  // --- 1. A chain: master -> (c=2,w=3) -> (c=3,w=5) --------------------
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  std::cout << "platform: " << chain.describe() << "\n\n";

  // Optimal schedule of 5 identical tasks (this is the paper's Fig 2).
  const ChainSchedule schedule = ChainScheduler::schedule(chain, 5);
  std::cout << "optimal makespan for 5 tasks: " << schedule.makespan() << "\n";
  std::cout << render_gantt(schedule) << "\n";

  // Every schedule can be validated against the paper's Definition 1 ...
  const FeasibilityReport report = check_feasibility(schedule);
  std::cout << "feasible: " << (report.ok() ? "yes" : "no") << "\n";

  // ... and replayed operationally on the discrete-event simulator.
  const sim::ReplayResult replayed = sim::replay(schedule);
  std::cout << "replayed makespan: " << replayed.makespan << " (must match)\n\n";

  // --- 2. The decision form: how many tasks fit in a deadline? ---------
  std::cout << "tasks completable within T=14: "
            << ChainScheduler::max_tasks(chain, 14, 1000) << "\n";
  std::cout << "tasks completable within T=30: "
            << ChainScheduler::max_tasks(chain, 30, 1000) << "\n\n";

  // --- 3. A spider: one master feeding several chains ------------------
  const Spider spider{chain, Chain::from_vectors({4}, {2})};
  const SpiderSchedule sp = SpiderScheduler::schedule(spider, 8);
  std::cout << "spider " << spider.describe() << "\n";
  std::cout << "optimal makespan for 8 tasks: " << sp.makespan() << "\n";
  const auto per_leg = sp.tasks_per_leg();
  for (std::size_t l = 0; l < per_leg.size(); ++l) {
    std::cout << "  leg " << l << " executes " << per_leg[l] << " tasks\n";
  }

  // Compare against what a naive dispatcher would do.
  std::cout << "\nround-robin would need: " << round_robin_spider_makespan(spider, 8) << "\n";
  std::cout << "forward greedy would need: " << forward_greedy_spider_makespan(spider, 8)
            << "\n";
  std::cout << "steady-state rate bound: " << spider_steady_state_rate(spider)
            << " tasks/unit\n";
  return 0;
}
