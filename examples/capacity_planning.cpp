// Capacity planning: use the schedulers as an analysis tool — where is the
// bottleneck, and what upgrade buys the most?  Sweeps link and processor
// speeds of a spider platform and reports the makespan surface, the kind of
// what-if study the paper's model enables in closed form.
//
//   $ ./example_capacity_planning [--tasks=50]

#include <iostream>

#include "mst/mst.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 50));

  // Baseline platform: two branch offices and a local rack.
  auto build = [](Time office_link, Time rack_work) {
    return Spider{
        Chain::from_vectors({office_link, 2}, {5, 4}),  // office A + annex
        Chain::from_vectors({office_link}, {7}),        // office B
        Chain::from_vectors({1}, {rack_work}),          // local rack
    };
  };
  const Time base_link = 6;
  const Time base_rack = 3;
  const Spider baseline = build(base_link, base_rack);
  const Time base_makespan = SpiderScheduler::makespan(baseline, tasks);

  std::cout << "== capacity planning what-if ==\n";
  std::cout << "baseline: " << baseline.describe() << "\n";
  std::cout << "baseline makespan for " << tasks << " tasks: " << base_makespan << "\n";
  std::cout << "baseline steady-state rate: " << spider_steady_state_rate(baseline) << "\n\n";

  // What-if 1: faster office links.
  Table link_table({"office link latency", "makespan", "speedup vs baseline"});
  for (Time link = base_link; link >= 1; --link) {
    const Time m = SpiderScheduler::makespan(build(link, base_rack), tasks);
    link_table.row().cell(link).cell(m).cell(
        static_cast<double>(base_makespan) / static_cast<double>(m), 3);
  }
  std::cout << "upgrade path A — office uplinks:\n";
  link_table.print(std::cout);

  // What-if 2: faster rack processors.
  Table rack_table({"rack work time", "makespan", "speedup vs baseline"});
  for (Time work = base_rack; work >= 1; --work) {
    const Time m = SpiderScheduler::makespan(build(base_link, work), tasks);
    rack_table.row().cell(work).cell(m).cell(
        static_cast<double>(base_makespan) / static_cast<double>(m), 3);
  }
  std::cout << "\nupgrade path B — rack processors:\n";
  rack_table.print(std::cout);

  // Which single upgrade wins?
  const Time best_link = SpiderScheduler::makespan(build(1, base_rack), tasks);
  const Time best_rack = SpiderScheduler::makespan(build(base_link, 1), tasks);
  std::cout << "\nconclusion: max-out uplinks -> " << best_link << ", max-out rack -> "
            << best_rack << " — "
            << (best_link < best_rack ? "upgrade the uplinks first.\n"
                                      : "upgrade the rack first.\n");

  // Sanity: optimality is preserved across the sweep (spot check).
  const SpiderSchedule check = SpiderScheduler::schedule(baseline, tasks);
  std::cout << "plan feasible: " << (check_feasibility(check).ok() ? "yes" : "no") << "\n";
  return 0;
}
