// Cluster pipeline: a chain of compute sites behind one another — the
// heterogeneous linear array of the paper's §3 (and of Li's layered
// networks, cited in §1).  A head node feeds a campus cluster, which relays
// to a remote site, which relays to an archive farm.
//
//   $ ./example_cluster_pipeline [--tasks=40] [--svg=pipeline.svg]
//
// Shows: hand-building a chain, the optimal backward schedule, per-stage
// utilization, idle-gap analysis on the shared uplink, and SVG export.

#include <fstream>
#include <iostream>

#include "mst/mst.hpp"

int main(int argc, char** argv) {
  using namespace mst;
  const Args args(argc, argv);
  const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 40));
  const std::string svg_path = args.get("svg", "");

  // Stage latencies/speeds in seconds per task.
  const Chain pipeline = Chain::from_vectors(
      /*link latencies*/ {1, 4, 10},
      /*work times*/ {6, 3, 2});
  // Stage 0: campus cluster — close (c=1) but moderately fast (w=6).
  // Stage 1: remote site — farther (c=4), faster (w=3).
  // Stage 2: archive farm — slow uplink (c=10), fastest nodes (w=2).

  std::cout << "== cluster pipeline scheduler ==\n";
  std::cout << "platform: " << pipeline.describe() << "\n";
  std::cout << "tasks: " << tasks << "\n\n";

  const ChainSchedule plan = ChainScheduler::schedule(pipeline, tasks);
  std::cout << "optimal makespan: " << plan.makespan() << " s\n";
  std::cout << "lower bound:      " << chain_makespan_lower_bound(pipeline, tasks) << " s\n";
  std::cout << "single best node: " << single_node_chain_makespan(pipeline, tasks) << " s\n";
  std::cout << "forward greedy:   " << forward_greedy_chain_makespan(pipeline, tasks) << " s\n\n";

  const ChainUtilization util = compute_utilization(plan);
  Table table({"stage", "tasks", "cpu busy %", "uplink busy %"});
  for (std::size_t q = 0; q < pipeline.size(); ++q) {
    table.row()
        .cell(q)
        .cell(util.tasks_per_proc[q])
        .cell(util.proc_busy_fraction[q] * 100.0, 1)
        .cell(util.link_busy_fraction[q] * 100.0, 1);
  }
  table.print(std::cout);

  const auto gaps = first_link_idle_gaps(plan);
  std::cout << "\nidle gaps on the head uplink: " << gaps.size();
  Time total_gap = 0;
  for (const auto& [from, to] : gaps) total_gap += to - from;
  std::cout << " (total " << total_gap << " s)\n";

  // Compact Gantt for a quick look (compress to ~80 columns).
  const Time scale = std::max<Time>(1, plan.makespan() / 78);
  std::cout << "\n" << render_gantt(plan, scale);

  if (!svg_path.empty()) {
    std::ofstream out(svg_path);
    out << render_svg(plan);
    std::cout << "\nSVG written to " << svg_path << "\n";
  }
  return 0;
}
