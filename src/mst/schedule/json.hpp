#pragma once

#include <string>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file json.hpp
/// JSON serialization of platforms and schedules for downstream analysis
/// (plotting scripts, external validators).  Self-contained writer — no
/// third-party JSON dependency; output is stable and minified enough to diff.

namespace mst {

std::string to_json(const Chain& chain);
std::string to_json(const Fork& fork);
std::string to_json(const Spider& spider);

/// Schedule dumps embed the platform and list every task as
/// `{"proc":…, "start":…, "emissions":[…]}` (fields per topology).
std::string to_json(const ChainSchedule& schedule);
std::string to_json(const ForkSchedule& schedule);
std::string to_json(const SpiderSchedule& schedule);

}  // namespace mst
