#include "mst/schedule/comm_vector.hpp"

#include <algorithm>
#include <sstream>

namespace mst {

bool precedes(const CommVector& a, const CommVector& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t k = 0; k < common; ++k) {
    if (a[k] != b[k]) return a[k] < b[k];
  }
  // Equal on the common prefix: the longer vector is the smaller one.
  return a.size() > b.size();
}

bool precedes_or_equal(const CommVector& a, const CommVector& b) {
  return a == b || precedes(a, b);
}

std::string to_string(const CommVector& v) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  os << '}';
  return os.str();
}

}  // namespace mst
