#include "mst/schedule/comm_vector.hpp"

#include <algorithm>
#include <sstream>

namespace mst {

bool precedes(const CommVector& a, const CommVector& b) {
  return precedes(a.data(), a.size(), b.data(), b.size());
}

bool precedes(const Time* a, std::size_t na, const Time* b, std::size_t nb) {
  const std::size_t common = std::min(na, nb);
  for (std::size_t k = 0; k < common; ++k) {
    if (a[k] != b[k]) return a[k] < b[k];
  }
  // Equal on the common prefix: the longer vector is the smaller one.
  return na > nb;
}

bool precedes_or_equal(const CommVector& a, const CommVector& b) {
  return a == b || precedes(a, b);
}

std::string to_string(const CommVector& v) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ", ";
    os << v[i];
  }
  os << '}';
  return os.str();
}

}  // namespace mst
