#pragma once

#include <string>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file schedule_io.hpp
/// Plain-text schedule serialization — the sibling of `platform/io.hpp`.
///
/// Makes schedules first-class artifacts: a planner can emit one, an
/// external tool (or a human) can inspect or edit it, and the validators
/// re-admit it.  Format (line oriented, `#` comments):
///
///     chain_schedule
///     chain <p>
///     <c_1> <w_1> ...
///     tasks <n>
///     <proc0based> <start> <emission_0> ... <emission_proc>
///     ...
///
///     spider_schedule
///     spider <legs>
///     leg <p> ...
///     tasks <n>
///     <leg> <proc0based> <start> <emission_0> ...
///
/// `parse_*` performs structural validation only (destination in range,
/// emission count matches); use `check_feasibility` / `sim::replay` for
/// semantic validation — keeping the two separate lets tooling load and
/// report on *infeasible* schedules.

namespace mst {

std::string write_schedule(const ChainSchedule& schedule);
std::string write_schedule(const SpiderSchedule& schedule);

ChainSchedule parse_chain_schedule(const std::string& text);
SpiderSchedule parse_spider_schedule(const std::string& text);

}  // namespace mst
