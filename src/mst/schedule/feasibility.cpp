#include "mst/schedule/feasibility.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace mst {

namespace {

std::string fmt1(const char* what, std::size_t i, const std::string& detail) {
  std::ostringstream os;
  os << what << " violated by task " << i << ": " << detail;
  return os.str();
}

/// Checks that half-open busy intervals `[t, t+len)` taken by the given
/// (owner, time) pairs never overlap; reports via `label`.
struct Interval {
  Time begin;
  Time length;
  std::size_t task;
};

void check_exclusive(std::vector<Interval> intervals, const char* label,
                     FeasibilityReport& report) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  for (std::size_t k = 1; k < intervals.size(); ++k) {
    const Interval& prev = intervals[k - 1];
    const Interval& cur = intervals[k];
    if (prev.begin + prev.length > cur.begin) {
      std::ostringstream os;
      os << label << ": interval [" << prev.begin << ", " << prev.begin + prev.length
         << ") of task " << prev.task << " overlaps [" << cur.begin << ", "
         << cur.begin + cur.length << ") of task " << cur.task;
      report.add_violation(os.str());
    }
  }
}

/// Shared core for the per-leg chain conditions; `leg_label` annotates
/// messages when checking inside a spider.
void check_chain_conditions(const Chain& chain, const std::vector<const ChainTask*>& tasks,
                            const std::string& leg_label, FeasibilityReport& report) {
  const std::size_t p = chain.size();

  // Structural checks first; skip malformed tasks in the pairwise phase.
  std::vector<bool> well_formed(tasks.size(), true);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const ChainTask& t = *tasks[i];
    if (t.proc >= p) {
      report.add_violation(fmt1("structure", i, leg_label + "destination outside the chain"));
      well_formed[i] = false;
      continue;
    }
    if (t.emissions.size() != t.proc + 1) {
      report.add_violation(
          fmt1("structure", i, leg_label + "emission vector length does not match destination"));
      well_formed[i] = false;
      continue;
    }
    // Condition (1): store-and-forward along the path.
    for (std::size_t k = 1; k <= t.proc; ++k) {
      if (t.emissions[k - 1] + chain.comm(k - 1) > t.emissions[k]) {
        std::ostringstream os;
        os << leg_label << "C_" << k - 1 << "=" << t.emissions[k - 1] << " + c=" << chain.comm(k - 1)
           << " > C_" << k << "=" << t.emissions[k];
        report.add_violation(fmt1("condition (1)", i, os.str()));
      }
    }
    // Condition (2): full reception before execution.
    if (t.emissions.back() + chain.comm(t.proc) > t.start) {
      std::ostringstream os;
      os << leg_label << "arrival " << t.emissions.back() + chain.comm(t.proc) << " > start "
         << t.start;
      report.add_violation(fmt1("condition (2)", i, os.str()));
    }
  }

  // Condition (3): processor exclusivity.
  for (std::size_t q = 0; q < p; ++q) {
    std::vector<Interval> busy;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (well_formed[i] && tasks[i]->proc == q) {
        busy.push_back({tasks[i]->start, chain.work(q), i});
      }
    }
    std::ostringstream label;
    label << leg_label << "condition (3) on processor " << q;
    check_exclusive(std::move(busy), label.str().c_str(), report);
  }

  // Condition (4): link exclusivity.
  for (std::size_t k = 0; k < p; ++k) {
    std::vector<Interval> busy;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (well_formed[i] && tasks[i]->proc >= k) {
        busy.push_back({tasks[i]->emissions[k], chain.comm(k), i});
      }
    }
    std::ostringstream label;
    label << leg_label << "condition (4) on link " << k;
    check_exclusive(std::move(busy), label.str().c_str(), report);
  }
}

}  // namespace

std::string FeasibilityReport::summary() const {
  if (ok()) return "feasible";
  std::ostringstream os;
  os << violations_.size() << " violation(s):";
  for (const std::string& v : violations_) os << "\n  - " << v;
  return os.str();
}

FeasibilityReport check_feasibility(const ChainSchedule& schedule) {
  FeasibilityReport report;
  std::vector<const ChainTask*> ptrs;
  ptrs.reserve(schedule.tasks.size());
  for (const ChainTask& t : schedule.tasks) ptrs.push_back(&t);
  check_chain_conditions(schedule.chain, ptrs, "", report);
  return report;
}

FeasibilityReport check_feasibility(const ForkSchedule& schedule) {
  FeasibilityReport report;
  const Fork& fork = schedule.fork;

  std::vector<Interval> master_port;
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ForkTask& t = schedule.tasks[i];
    if (t.slave >= fork.size()) {
      report.add_violation(fmt1("structure", i, "destination outside the fork"));
      continue;
    }
    const Processor& s = fork.slave(t.slave);
    if (t.emission + s.comm > t.start) {
      std::ostringstream os;
      os << "arrival " << t.emission + s.comm << " > start " << t.start;
      report.add_violation(fmt1("reception before execution", i, os.str()));
    }
    master_port.push_back({t.emission, s.comm, i});
  }
  check_exclusive(std::move(master_port), "master one-port", report);

  for (std::size_t q = 0; q < fork.size(); ++q) {
    std::vector<Interval> busy;
    for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
      const ForkTask& t = schedule.tasks[i];
      if (t.slave == q) busy.push_back({t.start, fork.slave(q).work, i});
    }
    std::ostringstream label;
    label << "slave " << q << " exclusivity";
    check_exclusive(std::move(busy), label.str().c_str(), report);
  }
  return report;
}

FeasibilityReport check_feasibility(const SpiderSchedule& schedule) {
  FeasibilityReport report;
  const Spider& spider = schedule.spider;

  // Per-leg chain conditions.  Reuse the chain checker by projecting the
  // spider tasks of each leg onto ChainTask views.
  std::vector<std::vector<ChainTask>> leg_tasks(spider.num_legs());
  std::vector<Interval> master_port;
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const SpiderTask& t = schedule.tasks[i];
    if (t.leg >= spider.num_legs()) {
      report.add_violation(fmt1("structure", i, "leg outside the spider"));
      continue;
    }
    leg_tasks[t.leg].push_back(ChainTask{t.proc, t.start, t.emissions});
    if (!t.emissions.empty()) {
      // Master one-port: the emission on the leg's first link occupies the
      // master for that link's latency.
      master_port.push_back({t.emissions.front(), spider.leg(t.leg).comm(0), i});
    }
  }
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    std::vector<const ChainTask*> ptrs;
    ptrs.reserve(leg_tasks[l].size());
    for (const ChainTask& t : leg_tasks[l]) ptrs.push_back(&t);
    std::ostringstream label;
    label << "leg " << l << ": ";
    check_chain_conditions(spider.leg(l), ptrs, label.str(), report);
  }
  check_exclusive(std::move(master_port), "master one-port (cross-leg)", report);
  return report;
}

}  // namespace mst
