#include "mst/schedule/feasibility.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace mst {

namespace {

std::string fmt1(const char* what, std::size_t i, const std::string& detail) {
  std::ostringstream os;
  os << what << " violated by task " << i << ": " << detail;
  return os.str();
}

/// Checks that half-open busy intervals `[t, t+len)` taken by the given
/// (owner, time) pairs never overlap; reports via `label`.
struct Interval {
  Time begin;
  Time length;
  std::size_t task;
};

void check_exclusive(std::vector<Interval> intervals, const char* label,
                     FeasibilityReport& report) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  for (std::size_t k = 1; k < intervals.size(); ++k) {
    const Interval& prev = intervals[k - 1];
    const Interval& cur = intervals[k];
    if (prev.begin + prev.length > cur.begin) {
      std::ostringstream os;
      os << label << ": interval [" << prev.begin << ", " << prev.begin + prev.length
         << ") of task " << prev.task << " overlaps [" << cur.begin << ", "
         << cur.begin + cur.length << ") of task " << cur.task;
      report.add_violation(os.str());
    }
  }
}

/// Workload/task-count consistency shared by every workload-aware check.
/// Returns false when the counts diverge (per-task checks then use the
/// uniform defaults to avoid out-of-range lookups).
bool check_workload_count(std::size_t tasks, const Workload& workload,
                          FeasibilityReport& report) {
  if (workload.count() == tasks) return true;
  std::ostringstream os;
  os << "workload mismatch: schedule holds " << tasks << " task(s), workload describes "
     << workload.count();
  report.add_violation(os.str());
  return false;
}

/// Release-date gate: the task's master emission must not start early.
void check_release(Time emission, Time release, std::size_t i, FeasibilityReport& report) {
  if (emission < release) {
    std::ostringstream os;
    os << "master emission " << emission << " precedes release date " << release;
    report.add_violation(fmt1("release date", i, os.str()));
  }
}

/// Shared core for the per-leg chain conditions; `leg_label` annotates
/// messages when checking inside a spider.  `sizes` scales task `i`'s
/// communication and execution occupancy (Definition 1 with per-task
/// durations; all-1 sizes reproduce the identical checks verbatim).
void check_chain_conditions(const Chain& chain, const std::vector<const ChainTask*>& tasks,
                            const std::vector<Time>& sizes, const std::string& leg_label,
                            FeasibilityReport& report) {
  const std::size_t p = chain.size();

  // Structural checks first; skip malformed tasks in the pairwise phase.
  std::vector<bool> well_formed(tasks.size(), true);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const ChainTask& t = *tasks[i];
    const Time s = sizes[i];
    if (t.proc >= p) {
      report.add_violation(fmt1("structure", i, leg_label + "destination outside the chain"));
      well_formed[i] = false;
      continue;
    }
    if (t.emissions.size() != t.proc + 1) {
      report.add_violation(
          fmt1("structure", i, leg_label + "emission vector length does not match destination"));
      well_formed[i] = false;
      continue;
    }
    // Condition (1): store-and-forward along the path.
    for (std::size_t k = 1; k <= t.proc; ++k) {
      if (t.emissions[k - 1] + s * chain.comm(k - 1) > t.emissions[k]) {
        std::ostringstream os;
        os << leg_label << "C_" << k - 1 << "=" << t.emissions[k - 1]
           << " + c=" << s * chain.comm(k - 1) << " > C_" << k << "=" << t.emissions[k];
        report.add_violation(fmt1("condition (1)", i, os.str()));
      }
    }
    // Condition (2): full reception before execution.
    if (t.emissions.back() + s * chain.comm(t.proc) > t.start) {
      std::ostringstream os;
      os << leg_label << "arrival " << t.emissions.back() + s * chain.comm(t.proc) << " > start "
         << t.start;
      report.add_violation(fmt1("condition (2)", i, os.str()));
    }
  }

  // Condition (3): processor exclusivity.
  for (std::size_t q = 0; q < p; ++q) {
    std::vector<Interval> busy;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (well_formed[i] && tasks[i]->proc == q) {
        busy.push_back({tasks[i]->start, sizes[i] * chain.work(q), i});
      }
    }
    std::ostringstream label;
    label << leg_label << "condition (3) on processor " << q;
    check_exclusive(std::move(busy), label.str().c_str(), report);
  }

  // Condition (4): link exclusivity.
  for (std::size_t k = 0; k < p; ++k) {
    std::vector<Interval> busy;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (well_formed[i] && tasks[i]->proc >= k) {
        busy.push_back({tasks[i]->emissions[k], sizes[i] * chain.comm(k), i});
      }
    }
    std::ostringstream label;
    label << leg_label << "condition (4) on link " << k;
    check_exclusive(std::move(busy), label.str().c_str(), report);
  }
}

/// Per-task sizes of a workload aligned to `count` tasks (all 1 when the
/// workload is uniform or mismatched).
std::vector<Time> aligned_sizes(std::size_t count, const Workload& workload, bool aligned) {
  std::vector<Time> sizes(count, 1);
  if (aligned && !workload.uniform_sizes()) {
    for (std::size_t i = 0; i < count; ++i) sizes[i] = workload.size_of(i);
  }
  return sizes;
}

}  // namespace

std::string FeasibilityReport::summary() const {
  if (ok()) return "feasible";
  std::ostringstream os;
  os << violations_.size() << " violation(s):";
  for (const std::string& v : violations_) os << "\n  - " << v;
  return os.str();
}

FeasibilityReport check_feasibility(const ChainSchedule& schedule) {
  return check_feasibility(schedule, Workload::identical(schedule.tasks.size()));
}

FeasibilityReport check_feasibility(const ChainSchedule& schedule, const Workload& workload) {
  FeasibilityReport report;
  const bool aligned = check_workload_count(schedule.tasks.size(), workload, report);
  const std::vector<Time> sizes = aligned_sizes(schedule.tasks.size(), workload, aligned);
  std::vector<const ChainTask*> ptrs;
  ptrs.reserve(schedule.tasks.size());
  for (const ChainTask& t : schedule.tasks) ptrs.push_back(&t);
  check_chain_conditions(schedule.chain, ptrs, sizes, "", report);
  if (aligned && workload.has_release_dates()) {
    for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
      if (!schedule.tasks[i].emissions.empty()) {
        check_release(schedule.tasks[i].emissions.front(), workload.release_of(i), i, report);
      }
    }
  }
  return report;
}

FeasibilityReport check_feasibility(const ForkSchedule& schedule) {
  return check_feasibility(schedule, Workload::identical(schedule.tasks.size()));
}

FeasibilityReport check_feasibility(const ForkSchedule& schedule, const Workload& workload) {
  FeasibilityReport report;
  const Fork& fork = schedule.fork;
  const bool aligned = check_workload_count(schedule.tasks.size(), workload, report);
  const std::vector<Time> sizes = aligned_sizes(schedule.tasks.size(), workload, aligned);

  std::vector<Interval> master_port;
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ForkTask& t = schedule.tasks[i];
    const Time s = sizes[i];
    if (t.slave >= fork.size()) {
      report.add_violation(fmt1("structure", i, "destination outside the fork"));
      continue;
    }
    const Processor& slave = fork.slave(t.slave);
    if (t.emission + s * slave.comm > t.start) {
      std::ostringstream os;
      os << "arrival " << t.emission + s * slave.comm << " > start " << t.start;
      report.add_violation(fmt1("reception before execution", i, os.str()));
    }
    if (aligned && workload.has_release_dates()) {
      check_release(t.emission, workload.release_of(i), i, report);
    }
    master_port.push_back({t.emission, s * slave.comm, i});
  }
  check_exclusive(std::move(master_port), "master one-port", report);

  for (std::size_t q = 0; q < fork.size(); ++q) {
    std::vector<Interval> busy;
    for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
      const ForkTask& t = schedule.tasks[i];
      if (t.slave == q) busy.push_back({t.start, sizes[i] * fork.slave(q).work, i});
    }
    std::ostringstream label;
    label << "slave " << q << " exclusivity";
    check_exclusive(std::move(busy), label.str().c_str(), report);
  }
  return report;
}

FeasibilityReport check_feasibility(const SpiderSchedule& schedule) {
  return check_feasibility(schedule, Workload::identical(schedule.tasks.size()));
}

FeasibilityReport check_feasibility(const SpiderSchedule& schedule, const Workload& workload) {
  FeasibilityReport report;
  const Spider& spider = schedule.spider;
  const bool aligned = check_workload_count(schedule.tasks.size(), workload, report);
  const std::vector<Time> sizes = aligned_sizes(schedule.tasks.size(), workload, aligned);

  // Per-leg chain conditions.  Reuse the chain checker by projecting the
  // spider tasks of each leg onto ChainTask views (and their sizes along).
  std::vector<std::vector<ChainTask>> leg_tasks(spider.num_legs());
  std::vector<std::vector<Time>> leg_sizes(spider.num_legs());
  std::vector<Interval> master_port;
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const SpiderTask& t = schedule.tasks[i];
    if (t.leg >= spider.num_legs()) {
      report.add_violation(fmt1("structure", i, "leg outside the spider"));
      continue;
    }
    leg_tasks[t.leg].push_back(ChainTask{t.proc, t.start, t.emissions});
    leg_sizes[t.leg].push_back(sizes[i]);
    if (!t.emissions.empty()) {
      // Master one-port: the emission on the leg's first link occupies the
      // master for that link's latency.
      master_port.push_back({t.emissions.front(), sizes[i] * spider.leg(t.leg).comm(0), i});
      if (aligned && workload.has_release_dates()) {
        check_release(t.emissions.front(), workload.release_of(i), i, report);
      }
    }
  }
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    std::vector<const ChainTask*> ptrs;
    ptrs.reserve(leg_tasks[l].size());
    for (const ChainTask& t : leg_tasks[l]) ptrs.push_back(&t);
    std::ostringstream label;
    label << "leg " << l << ": ";
    check_chain_conditions(spider.leg(l), ptrs, leg_sizes[l], label.str(), report);
  }
  check_exclusive(std::move(master_port), "master one-port (cross-leg)", report);
  return report;
}

}  // namespace mst
