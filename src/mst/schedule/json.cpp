#include "mst/schedule/json.hpp"

#include <sstream>

namespace mst {

namespace {

void write_procs(std::ostringstream& os, const std::vector<Processor>& procs) {
  os << '[';
  for (std::size_t i = 0; i < procs.size(); ++i) {
    if (i) os << ',';
    os << "{\"comm\":" << procs[i].comm << ",\"work\":" << procs[i].work << '}';
  }
  os << ']';
}

void write_times(std::ostringstream& os, const CommVector& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ',';
    os << v[i];
  }
  os << ']';
}

}  // namespace

std::string to_json(const Chain& chain) {
  std::ostringstream os;
  os << "{\"kind\":\"chain\",\"procs\":";
  write_procs(os, chain.procs());
  os << '}';
  return os.str();
}

std::string to_json(const Fork& fork) {
  std::ostringstream os;
  os << "{\"kind\":\"fork\",\"slaves\":";
  write_procs(os, fork.slaves());
  os << '}';
  return os.str();
}

std::string to_json(const Spider& spider) {
  std::ostringstream os;
  os << "{\"kind\":\"spider\",\"legs\":[";
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    if (l) os << ',';
    write_procs(os, spider.leg(l).procs());
  }
  os << "]}";
  return os.str();
}

std::string to_json(const ChainSchedule& schedule) {
  std::ostringstream os;
  os << "{\"platform\":" << to_json(schedule.chain) << ",\"makespan\":" << schedule.makespan()
     << ",\"tasks\":[";
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ChainTask& t = schedule.tasks[i];
    if (i) os << ',';
    os << "{\"proc\":" << t.proc << ",\"start\":" << t.start << ",\"emissions\":";
    write_times(os, t.emissions);
    os << '}';
  }
  os << "]}";
  return os.str();
}

std::string to_json(const ForkSchedule& schedule) {
  std::ostringstream os;
  os << "{\"platform\":" << to_json(schedule.fork) << ",\"makespan\":" << schedule.makespan()
     << ",\"tasks\":[";
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ForkTask& t = schedule.tasks[i];
    if (i) os << ',';
    os << "{\"slave\":" << t.slave << ",\"emission\":" << t.emission << ",\"start\":" << t.start
       << '}';
  }
  os << "]}";
  return os.str();
}

std::string to_json(const SpiderSchedule& schedule) {
  std::ostringstream os;
  os << "{\"platform\":" << to_json(schedule.spider) << ",\"makespan\":" << schedule.makespan()
     << ",\"tasks\":[";
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const SpiderTask& t = schedule.tasks[i];
    if (i) os << ',';
    os << "{\"leg\":" << t.leg << ",\"proc\":" << t.proc << ",\"start\":" << t.start
       << ",\"emissions\":";
    write_times(os, t.emissions);
    os << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace mst
