#include "mst/schedule/chain_schedule.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

Time ChainTask::arrival(const Chain& chain) const {
  MST_REQUIRE(!emissions.empty(), "task has no communication vector");
  MST_REQUIRE(proc == emissions.size() - 1, "emission vector length must match destination");
  return emissions.back() + chain.comm(proc);
}

Time ChainTask::end(const Chain& chain) const { return start + chain.work(proc); }

Time ChainSchedule::makespan() const {
  Time last = 0;
  for (const ChainTask& t : tasks) last = std::max(last, t.end(chain));
  return last;
}

Time ChainSchedule::start_time() const {
  if (tasks.empty()) return 0;
  Time first = kTimeInfinity;
  for (const ChainTask& t : tasks) {
    first = std::min(first, t.start);
    if (!t.emissions.empty()) first = std::min(first, t.emissions.front());
  }
  return first;
}

std::vector<std::size_t> ChainSchedule::tasks_per_proc() const {
  std::vector<std::size_t> counts(chain.size(), 0);
  for (const ChainTask& t : tasks) {
    MST_REQUIRE(t.proc < chain.size(), "task destination outside chain");
    ++counts[t.proc];
  }
  return counts;
}

void ChainSchedule::shift(Time delta) {
  for (ChainTask& t : tasks) {
    t.start += delta;
    for (Time& e : t.emissions) e += delta;
  }
}

}  // namespace mst
