#include "mst/schedule/schedule_io.hpp"

#include <sstream>
#include <vector>

#include "mst/common/assert.hpp"
#include "mst/platform/io.hpp"

namespace mst {

namespace {

/// Minimal whitespace tokenizer (schedule files are machine-written; the
/// platform header is delegated to platform/io.hpp which tracks lines).
class Tokens {
 public:
  explicit Tokens(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens_.push_back(tok);
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }

  std::string next(const char* what) {
    MST_REQUIRE(!done(), std::string("unexpected end of schedule, expected ") + what);
    return tokens_[pos_++];
  }

  Time next_time(const char* what) {
    const std::string tok = next(what);
    std::size_t used = 0;
    Time v = 0;
    try {
      v = std::stoll(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    MST_REQUIRE(used == tok.size(),
                std::string("expected ") + what + ", got '" + tok + "'");
    return v;
  }

  std::size_t next_index(const char* what) {
    const Time v = next_time(what);
    MST_REQUIRE(v >= 0, std::string(what) + " must be non-negative");
    return static_cast<std::size_t>(v);
  }

  void expect(const std::string& keyword) {
    const std::string tok = next(keyword.c_str());
    MST_REQUIRE(tok == keyword, "expected '" + keyword + "', got '" + tok + "'");
  }

  void expect_end() {
    MST_REQUIRE(done(), "trailing input in schedule file: '" + tokens_[pos_] + "'");
  }

  /// Consumes and returns the remaining tokens that belong to the embedded
  /// platform block: `count` processor pairs plus the header that was
  /// already validated by the caller.
  std::string take_platform_block(std::size_t header_tokens, std::size_t pairs) {
    std::ostringstream os;
    for (std::size_t i = 0; i < header_tokens + 2 * pairs; ++i) {
      os << next("platform description") << ' ';
    }
    return os.str();
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

void write_task_line(std::ostringstream& os, const ChainTask& t) {
  os << t.proc << ' ' << t.start;
  for (Time e : t.emissions) os << ' ' << e;
  os << '\n';
}

ChainTask parse_task_line(Tokens& toks, std::size_t max_proc) {
  ChainTask t;
  t.proc = toks.next_index("destination processor");
  MST_REQUIRE(t.proc < max_proc, "task destination outside the platform");
  t.start = toks.next_time("start time");
  t.emissions.resize(t.proc + 1);
  for (Time& e : t.emissions) e = toks.next_time("emission time");
  return t;
}

}  // namespace

std::string write_schedule(const ChainSchedule& schedule) {
  std::ostringstream os;
  os << "chain_schedule\n";
  os << write_chain(schedule.chain);
  os << "tasks " << schedule.tasks.size() << '\n';
  os << "# proc start emissions...\n";
  for (const ChainTask& t : schedule.tasks) write_task_line(os, t);
  return os.str();
}

std::string write_schedule(const SpiderSchedule& schedule) {
  std::ostringstream os;
  os << "spider_schedule\n";
  os << write_spider(schedule.spider);
  os << "tasks " << schedule.tasks.size() << '\n';
  os << "# leg proc start emissions...\n";
  for (const SpiderTask& t : schedule.tasks) {
    os << t.leg << ' ' << t.proc << ' ' << t.start;
    for (Time e : t.emissions) os << ' ' << e;
    os << '\n';
  }
  return os.str();
}

ChainSchedule parse_chain_schedule(const std::string& text) {
  Tokens toks(text);
  toks.expect("chain_schedule");
  toks.expect("chain");
  const std::size_t p = toks.next_index("processor count");
  MST_REQUIRE(p >= 1, "chain must have at least one processor");
  std::ostringstream platform_text;
  platform_text << "chain " << p << '\n';
  platform_text << toks.take_platform_block(0, p);
  const Chain chain = parse_chain(platform_text.str());

  toks.expect("tasks");
  const std::size_t n = toks.next_index("task count");
  ChainSchedule schedule{chain, {}};
  schedule.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) schedule.tasks.push_back(parse_task_line(toks, p));
  toks.expect_end();
  return schedule;
}

SpiderSchedule parse_spider_schedule(const std::string& text) {
  Tokens toks(text);
  toks.expect("spider_schedule");
  toks.expect("spider");
  const std::size_t legs = toks.next_index("leg count");
  MST_REQUIRE(legs >= 1, "spider must have at least one leg");
  std::ostringstream platform_text;
  platform_text << "spider " << legs << '\n';
  std::vector<std::size_t> leg_sizes;
  for (std::size_t l = 0; l < legs; ++l) {
    toks.expect("leg");
    const std::size_t p = toks.next_index("leg length");
    MST_REQUIRE(p >= 1, "leg must have at least one processor");
    leg_sizes.push_back(p);
    platform_text << "leg " << p << '\n' << toks.take_platform_block(0, p) << '\n';
  }
  const Spider spider = parse_spider(platform_text.str());

  toks.expect("tasks");
  const std::size_t n = toks.next_index("task count");
  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SpiderTask t;
    t.leg = toks.next_index("leg");
    MST_REQUIRE(t.leg < legs, "task leg outside the platform");
    const ChainTask inner = parse_task_line(toks, leg_sizes[t.leg]);
    t.proc = inner.proc;
    t.start = inner.start;
    t.emissions = inner.emissions;
    schedule.tasks.push_back(std::move(t));
  }
  toks.expect_end();
  return schedule;
}

}  // namespace mst
