#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/fork.hpp"

/// \file fork_schedule.hpp
/// Concrete schedules on fork (star) platforms (§6).

namespace mst {

/// Placement of one task on a fork: the master emits it at `emission`
/// (occupying the out-port for `c_slave`), the slave starts executing at
/// `start >= emission + c_slave`.
struct ForkTask {
  std::size_t slave = 0;
  Time emission = 0;
  Time start = 0;

  [[nodiscard]] Time arrival(const Fork& fork) const { return emission + fork.slave(slave).comm; }
  [[nodiscard]] Time end(const Fork& fork) const { return start + fork.slave(slave).work; }

  friend bool operator==(const ForkTask&, const ForkTask&) = default;
};

/// Schedule of identical tasks on a fork, kept in emission order.
struct ForkSchedule {
  Fork fork;
  std::vector<ForkTask> tasks;

  [[nodiscard]] std::size_t num_tasks() const { return tasks.size(); }
  [[nodiscard]] Time makespan() const;
  [[nodiscard]] std::vector<std::size_t> tasks_per_slave() const;

  friend bool operator==(const ForkSchedule&, const ForkSchedule&) = default;
};

}  // namespace mst
