#pragma once

#include <string>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file svg.hpp
/// Standalone SVG Gantt charts (no external renderer needed): one lane per
/// resource, one rectangle per communication or execution, tasks colored by
/// index.  Produces figures equivalent to the paper's Fig 2 drawing.

namespace mst {

/// Options controlling the rendered geometry.
struct SvgOptions {
  double px_per_time = 24.0;  ///< horizontal pixels per time unit
  double lane_height = 22.0;  ///< vertical pixels per resource lane
  bool show_labels = true;    ///< draw task indices inside the boxes
};

std::string render_svg(const ChainSchedule& schedule, const SvgOptions& options = {});
std::string render_svg(const SpiderSchedule& schedule, const SvgOptions& options = {});

}  // namespace mst
