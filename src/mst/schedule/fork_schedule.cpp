#include "mst/schedule/fork_schedule.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

Time ForkSchedule::makespan() const {
  Time last = 0;
  for (const ForkTask& t : tasks) last = std::max(last, t.end(fork));
  return last;
}

std::vector<std::size_t> ForkSchedule::tasks_per_slave() const {
  std::vector<std::size_t> counts(fork.size(), 0);
  for (const ForkTask& t : tasks) {
    MST_REQUIRE(t.slave < fork.size(), "task destination outside fork");
    ++counts[t.slave];
  }
  return counts;
}

}  // namespace mst
