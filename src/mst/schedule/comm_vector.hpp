#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mst/common/time.hpp"

/// \file comm_vector.hpp
/// Communication vectors and the paper's Definition 3 order.

namespace mst {

/// The communication vector `C(i)` of a task: entry `j` (0-based) is the
/// emission time `C^i_{j+1}` of the task on link `j`, i.e. the time the task
/// starts crossing from node `j-1` (or the master for `j = 0`) to node `j`.
/// Its length determines the destination processor: `P(i) = length`.
using CommVector = std::vector<Time>;

/// Definition 3 of the paper: `a ≺ b` iff
///  * at the first index where they differ (within the common prefix),
///    `a` is smaller; or
///  * they agree on the whole common prefix and `a` is *longer* than `b`.
///
/// Intuitively "greater" means "emitted later on the first link, ties broken
/// toward the nearer processor" — exactly what the backward construction
/// wants to maximize.  This is a strict weak order on vectors of distinct
/// lengths or contents; equal vectors are unordered.
bool precedes(const CommVector& a, const CommVector& b);

/// Raw-span variant of the Definition 3 order, for callers that keep
/// candidate vectors in reusable scratch buffers (the allocation-free
/// counting path of the schedulers).  Identical semantics to the
/// `CommVector` overload.
bool precedes(const Time* a, std::size_t na, const Time* b, std::size_t nb);

/// True iff `a ≺ b` or `a == b` (convenience for tests).
bool precedes_or_equal(const CommVector& a, const CommVector& b);

/// `{t1, t2, ...}` rendering for diagnostics.
std::string to_string(const CommVector& v);

}  // namespace mst
