#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/chain.hpp"
#include "mst/schedule/comm_vector.hpp"

/// \file chain_schedule.hpp
/// Concrete schedules on chain platforms (Definition 1 of the paper).

namespace mst {

/// Placement of one task on a chain: destination processor `P(i)` (0-based
/// here), starting time `T(i)` and the communication vector `C(i)`.
struct ChainTask {
  std::size_t proc = 0;    ///< destination processor, `emissions.size() - 1`
  Time start = 0;          ///< `T(i)`: execution start on `proc`
  CommVector emissions;    ///< `C(i)`: emission time on links `0..proc`

  /// Completion of the last hop: arrival time at the destination.
  [[nodiscard]] Time arrival(const Chain& chain) const;
  /// `T(i) + w_{P(i)}`.
  [[nodiscard]] Time end(const Chain& chain) const;

  friend bool operator==(const ChainTask&, const ChainTask&) = default;
};

/// A complete schedule of `n` identical tasks on a chain.  Tasks are kept in
/// first-link emission order (the paper's WLOG convention
/// `C^1_1 <= ... <= C^n_1`).
struct ChainSchedule {
  Chain chain;
  std::vector<ChainTask> tasks;

  [[nodiscard]] std::size_t num_tasks() const { return tasks.size(); }

  /// Definition 2: completion time of the last task (0 for no tasks).
  [[nodiscard]] Time makespan() const;

  /// Earliest event in the schedule (first emission or first start); the
  /// canonical schedules start at 0 after the paper's final shift.
  [[nodiscard]] Time start_time() const;

  /// Number of tasks executed by each processor.
  [[nodiscard]] std::vector<std::size_t> tasks_per_proc() const;

  /// Shift every time in the schedule by `delta` (the paper's final
  /// `-C^1_1` normalization uses this).
  void shift(Time delta);

  friend bool operator==(const ChainSchedule&, const ChainSchedule&) = default;
};

}  // namespace mst
