#pragma once

#include <string>
#include <vector>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file feasibility.hpp
/// Executable Definition 1: the paper states four feasibility conditions and
/// leaves the proof that the algorithm satisfies them "to the reader".  This
/// checker *is* that reader — every schedule produced anywhere in the library
/// is run through it in the test suite.
///
/// Conditions (paper numbering, 1-based links):
///  (1) store-and-forward: `C^i_{k-1} + c_{k-1} <= C^i_k` — a node cannot
///      re-emit a task before fully receiving it;
///  (2) reception before execution: `C^i_{P(i)} + c_{P(i)} <= T(i)`;
///  (3) one task at a time per processor: two tasks on the same processor
///      have `|T(i) - T(j)| >= w_{P(i)}`;
///  (4) one communication at a time per link: `|C^i_k - C^j_k| >= c_k`.
///
/// For spiders one more rule applies (§6): the master sends one task at a
/// time *across all legs*, so first emissions of different legs must not
/// overlap either.  For forks the same one-port rule serializes the
/// emissions to all slaves.

namespace mst {

/// Result of a feasibility check: `ok()` plus a human-readable list of every
/// violated constraint (all violations are collected, not just the first).
class FeasibilityReport {
 public:
  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const { return violations_; }
  [[nodiscard]] std::string summary() const;

  void add_violation(std::string message) { violations_.push_back(std::move(message)); }

 private:
  std::vector<std::string> violations_;
};

/// Checks conditions (1)-(4) plus structural sanity (vector length matches
/// destination, destination inside the chain, non-negative times).
FeasibilityReport check_feasibility(const ChainSchedule& schedule);

/// Checks arrival-before-start, per-slave execution exclusivity, and the
/// master's one-port emission rule.
FeasibilityReport check_feasibility(const ForkSchedule& schedule);

/// Chain conditions within every leg + the cross-leg master one-port rule.
FeasibilityReport check_feasibility(const SpiderSchedule& schedule);

/// Workload-aware forms: schedule task `i` is workload task `i` (canonical
/// order — every producer in the library dispatches in that order).  All
/// occupancy windows scale by the task's size, and each task's master
/// emission must start at or after its release date.  A task-count mismatch
/// between schedule and workload is itself a violation.  With
/// `Workload::identical(n)` these reduce exactly to the unchecked-workload
/// forms above.
FeasibilityReport check_feasibility(const ChainSchedule& schedule, const Workload& workload);
FeasibilityReport check_feasibility(const ForkSchedule& schedule, const Workload& workload);
FeasibilityReport check_feasibility(const SpiderSchedule& schedule, const Workload& workload);

}  // namespace mst
