#include "mst/schedule/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// A single Gantt row: paints `[begin, end)` intervals labelled by task id.
class Row {
 public:
  Row(std::string name, Time horizon, Time scale)
      : name_(std::move(name)),
        scale_(scale),
        cells_(static_cast<std::size_t>((horizon + scale - 1) / std::max<Time>(scale, 1)), '.') {}

  void paint(Time begin, Time end, std::size_t task) {
    if (begin >= end) return;
    const char mark = static_cast<char>('0' + task % 10);
    const auto first = static_cast<std::size_t>(begin / scale_);
    const auto last = static_cast<std::size_t>((end - 1) / scale_);
    for (std::size_t c = first; c <= last && c < cells_.size(); ++c) cells_[c] = mark;
  }

  void print(std::ostream& os, std::size_t name_width) const {
    os << name_;
    os << std::string(name_width > name_.size() ? name_width - name_.size() : 0, ' ');
    os << " |";
    for (char c : cells_) os << c;
    os << "|\n";
  }

  [[nodiscard]] std::size_t name_size() const { return name_.size(); }

 private:
  std::string name_;
  Time scale_;
  std::string cells_;
};

std::string render_rows(const std::vector<Row>& rows) {
  std::size_t width = 0;
  for (const Row& r : rows) width = std::max(width, r.name_size());
  std::ostringstream os;
  for (const Row& r : rows) r.print(os, width);
  return os.str();
}

}  // namespace

std::string render_gantt(const ChainSchedule& schedule, Time time_scale) {
  MST_REQUIRE(time_scale >= 1, "time_scale must be >= 1");
  const Chain& chain = schedule.chain;
  const Time horizon = std::max<Time>(schedule.makespan(), 1);

  std::vector<Row> rows;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    rows.emplace_back("link " + std::to_string(k), horizon, time_scale);
  }
  for (std::size_t q = 0; q < chain.size(); ++q) {
    rows.emplace_back("proc " + std::to_string(q), horizon, time_scale);
  }

  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ChainTask& t = schedule.tasks[i];
    for (std::size_t k = 0; k < t.emissions.size(); ++k) {
      rows[k].paint(t.emissions[k], t.emissions[k] + chain.comm(k), i);
    }
    rows[chain.size() + t.proc].paint(t.start, t.start + chain.work(t.proc), i);
  }
  return render_rows(rows);
}

std::string render_gantt(const SpiderSchedule& schedule, Time time_scale) {
  MST_REQUIRE(time_scale >= 1, "time_scale must be >= 1");
  const Spider& spider = schedule.spider;
  const Time horizon = std::max<Time>(schedule.makespan(), 1);

  std::vector<Row> rows;
  rows.emplace_back("master port", horizon, time_scale);
  // Row index bookkeeping: for each leg, first its links then its processors.
  std::vector<std::size_t> leg_base(spider.num_legs());
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    leg_base[l] = rows.size();
    const Chain& leg = spider.leg(l);
    for (std::size_t k = 0; k < leg.size(); ++k) {
      rows.emplace_back("leg " + std::to_string(l) + " link " + std::to_string(k), horizon,
                        time_scale);
    }
    for (std::size_t q = 0; q < leg.size(); ++q) {
      rows.emplace_back("leg " + std::to_string(l) + " proc " + std::to_string(q), horizon,
                        time_scale);
    }
  }

  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const SpiderTask& t = schedule.tasks[i];
    const Chain& leg = spider.leg(t.leg);
    if (!t.emissions.empty()) {
      rows[0].paint(t.emissions.front(), t.emissions.front() + leg.comm(0), i);
    }
    for (std::size_t k = 0; k < t.emissions.size(); ++k) {
      rows[leg_base[t.leg] + k].paint(t.emissions[k], t.emissions[k] + leg.comm(k), i);
    }
    rows[leg_base[t.leg] + leg.size() + t.proc].paint(t.start, t.start + leg.work(t.proc), i);
  }
  return render_rows(rows);
}

}  // namespace mst
