#pragma once

#include <cstddef>
#include <vector>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file metrics.hpp
/// Derived schedule metrics used by the experiment tables: utilizations,
/// idle analysis, throughput.  These quantify *why* a schedule wins — e.g.
/// the paper's optimality argument hinges on the first link having no idle
/// gap between the first two emissions.

namespace mst {

/// Per-resource utilization of a chain schedule over `[0, makespan]`.
struct ChainUtilization {
  Time makespan = 0;
  std::vector<double> proc_busy_fraction;   ///< work time / makespan, per processor
  std::vector<double> link_busy_fraction;   ///< transfer time / makespan, per link
  std::vector<std::size_t> tasks_per_proc;
};

ChainUtilization compute_utilization(const ChainSchedule& schedule);

/// Idle gaps on the first link: sorted list of `[from, to)` intervals during
/// which link 0 carries nothing, within `[0, last emission end]`.  The
/// optimality proof (§5) reasons about exactly these gaps.
std::vector<std::pair<Time, Time>> first_link_idle_gaps(const ChainSchedule& schedule);

/// Spider counterpart: busy fraction of the master's out-port plus per-leg
/// task counts; the master port is the globally shared resource.
struct SpiderUtilization {
  Time makespan = 0;
  double master_port_busy_fraction = 0.0;
  std::vector<std::size_t> tasks_per_leg;
};

SpiderUtilization compute_utilization(const SpiderSchedule& schedule);

/// Tasks per unit time: `n / makespan` (0 for empty schedules).
double throughput(const ChainSchedule& schedule);
double throughput(const SpiderSchedule& schedule);

}  // namespace mst
