#include "mst/schedule/spider_schedule.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

Time SpiderTask::arrival(const Spider& spider) const {
  MST_REQUIRE(!emissions.empty(), "task has no communication vector");
  MST_REQUIRE(proc == emissions.size() - 1, "emission vector length must match destination");
  return emissions.back() + spider.leg(leg).comm(proc);
}

Time SpiderTask::end(const Spider& spider) const { return start + spider.leg(leg).work(proc); }

Time SpiderSchedule::makespan() const {
  Time last = 0;
  for (const SpiderTask& t : tasks) last = std::max(last, t.end(spider));
  return last;
}

std::vector<std::size_t> SpiderSchedule::tasks_per_leg() const {
  std::vector<std::size_t> counts(spider.num_legs(), 0);
  for (const SpiderTask& t : tasks) {
    MST_REQUIRE(t.leg < spider.num_legs(), "task leg outside spider");
    ++counts[t.leg];
  }
  return counts;
}

Time SpiderSchedule::normalize() {
  if (tasks.empty()) return 0;
  Time first = kTimeInfinity;
  for (const SpiderTask& t : tasks) {
    first = std::min(first, t.start);
    if (!t.emissions.empty()) first = std::min(first, t.emissions.front());
  }
  for (SpiderTask& t : tasks) {
    t.start -= first;
    for (Time& e : t.emissions) e -= first;
  }
  return -first;
}

}  // namespace mst
