#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/spider.hpp"
#include "mst/schedule/comm_vector.hpp"

/// \file spider_schedule.hpp
/// Concrete schedules on spider platforms (§7).

namespace mst {

/// Placement of one task on a spider: leg index, destination processor
/// within the leg, execution start, and the emission times along the leg.
/// `emissions[0]` is the master's emission — it occupies the master's
/// out-port for the leg's first-link latency, which is the resource shared
/// across legs.
struct SpiderTask {
  std::size_t leg = 0;
  std::size_t proc = 0;  ///< index within the leg
  Time start = 0;
  CommVector emissions;

  [[nodiscard]] Time arrival(const Spider& spider) const;
  [[nodiscard]] Time end(const Spider& spider) const;

  friend bool operator==(const SpiderTask&, const SpiderTask&) = default;
};

/// Schedule of identical tasks on a spider, kept in master-emission order.
struct SpiderSchedule {
  Spider spider;
  std::vector<SpiderTask> tasks;

  [[nodiscard]] std::size_t num_tasks() const { return tasks.size(); }
  [[nodiscard]] Time makespan() const;

  /// Tasks per leg.
  [[nodiscard]] std::vector<std::size_t> tasks_per_leg() const;

  /// Normalize so the earliest event is at time 0; returns the applied shift.
  Time normalize();

  friend bool operator==(const SpiderSchedule&, const SpiderSchedule&) = default;
};

}  // namespace mst
