#pragma once

#include <string>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file gantt.hpp
/// ASCII Gantt rendering — the textual analogue of the paper's Fig 2.
///
/// One row per resource (every link, then every processor), time flowing
/// left to right, one column per `time_scale` units.  Busy cells show the
/// task index modulo 10; '.' is idle.  Example (the paper's Fig 2 instance):
///
///     link 0  |0011223344.....|
///     link 1  |..00..11.......|
///     proc 0  |....2233344....|
///     proc 1  |.....000111....|

namespace mst {

/// Render a chain schedule.  `time_scale` compresses the axis: a cell covers
/// `time_scale` time units (>= 1).  Cells covering a busy instant are marked.
std::string render_gantt(const ChainSchedule& schedule, Time time_scale = 1);

/// Render a spider schedule: a master-port row, then per-leg link/processor
/// rows.
std::string render_gantt(const SpiderSchedule& schedule, Time time_scale = 1);

}  // namespace mst
