#include "mst/schedule/svg.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Qualitative palette (cycled); chosen for adjacent-index contrast.
const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
                          "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac"};

class SvgBuilder {
 public:
  SvgBuilder(std::vector<std::string> lanes, Time horizon, const SvgOptions& opt)
      : lanes_(std::move(lanes)), horizon_(std::max<Time>(horizon, 1)), opt_(opt) {}

  void box(std::size_t lane, Time begin, Time end, std::size_t task, bool is_comm) {
    MST_ASSERT(lane < lanes_.size());
    if (begin >= end) return;
    std::ostringstream os;
    const double x = kLabelWidth + static_cast<double>(begin) * opt_.px_per_time;
    const double w = static_cast<double>(end - begin) * opt_.px_per_time;
    const double y = kHeader + static_cast<double>(lane) * opt_.lane_height + 2.0;
    const double h = opt_.lane_height - 4.0;
    const char* fill = kPalette[task % (sizeof(kPalette) / sizeof(kPalette[0]))];
    os << "  <rect x='" << x << "' y='" << y << "' width='" << w << "' height='" << h
       << "' fill='" << fill << "' fill-opacity='" << (is_comm ? "0.55" : "0.95")
       << "' stroke='#333' stroke-width='0.5'/>\n";
    if (opt_.show_labels && w >= 14.0) {
      os << "  <text x='" << x + w / 2 << "' y='" << y + h / 2 + 4
         << "' font-size='11' text-anchor='middle' font-family='sans-serif'>" << task
         << "</text>\n";
    }
    body_ += os.str();
  }

  [[nodiscard]] std::string finish() const {
    const double width = kLabelWidth + static_cast<double>(horizon_) * opt_.px_per_time + 10.0;
    const double height = kHeader + static_cast<double>(lanes_.size()) * opt_.lane_height + 10.0;
    std::ostringstream os;
    os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width << "' height='" << height
       << "'>\n";
    os << "  <rect x='0' y='0' width='" << width << "' height='" << height
       << "' fill='white'/>\n";
    // Time ticks.
    const Time tick = std::max<Time>(1, horizon_ / 20);
    for (Time t = 0; t <= horizon_; t += tick) {
      const double x = kLabelWidth + static_cast<double>(t) * opt_.px_per_time;
      os << "  <line x1='" << x << "' y1='" << kHeader << "' x2='" << x << "' y2='"
         << kHeader + static_cast<double>(lanes_.size()) * opt_.lane_height
         << "' stroke='#ddd' stroke-width='1'/>\n";
      os << "  <text x='" << x << "' y='" << kHeader - 6
         << "' font-size='10' text-anchor='middle' font-family='sans-serif'>" << t
         << "</text>\n";
    }
    // Lane labels and separators.
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      const double y = kHeader + static_cast<double>(i) * opt_.lane_height;
      os << "  <text x='4' y='" << y + opt_.lane_height / 2 + 4
         << "' font-size='11' font-family='sans-serif'>" << lanes_[i] << "</text>\n";
      os << "  <line x1='0' y1='" << y << "' x2='" << width << "' y2='" << y
         << "' stroke='#eee' stroke-width='1'/>\n";
    }
    os << body_;
    os << "</svg>\n";
    return os.str();
  }

 private:
  static constexpr double kLabelWidth = 110.0;
  static constexpr double kHeader = 24.0;
  std::vector<std::string> lanes_;
  Time horizon_;
  SvgOptions opt_;
  std::string body_;
};

}  // namespace

std::string render_svg(const ChainSchedule& schedule, const SvgOptions& options) {
  const Chain& chain = schedule.chain;
  std::vector<std::string> lanes;
  for (std::size_t k = 0; k < chain.size(); ++k) lanes.push_back("link " + std::to_string(k));
  for (std::size_t q = 0; q < chain.size(); ++q) lanes.push_back("proc " + std::to_string(q));

  SvgBuilder svg(std::move(lanes), schedule.makespan(), options);
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ChainTask& t = schedule.tasks[i];
    for (std::size_t k = 0; k < t.emissions.size(); ++k) {
      svg.box(k, t.emissions[k], t.emissions[k] + chain.comm(k), i, /*is_comm=*/true);
    }
    svg.box(chain.size() + t.proc, t.start, t.start + chain.work(t.proc), i, /*is_comm=*/false);
  }
  return svg.finish();
}

std::string render_svg(const SpiderSchedule& schedule, const SvgOptions& options) {
  const Spider& spider = schedule.spider;
  std::vector<std::string> lanes;
  lanes.push_back("master port");
  std::vector<std::size_t> leg_base(spider.num_legs());
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    leg_base[l] = lanes.size();
    for (std::size_t k = 0; k < spider.leg(l).size(); ++k) {
      lanes.push_back("L" + std::to_string(l) + " link " + std::to_string(k));
    }
    for (std::size_t q = 0; q < spider.leg(l).size(); ++q) {
      lanes.push_back("L" + std::to_string(l) + " proc " + std::to_string(q));
    }
  }

  SvgBuilder svg(std::move(lanes), schedule.makespan(), options);
  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const SpiderTask& t = schedule.tasks[i];
    const Chain& leg = spider.leg(t.leg);
    if (!t.emissions.empty()) {
      svg.box(0, t.emissions.front(), t.emissions.front() + leg.comm(0), i, true);
    }
    for (std::size_t k = 0; k < t.emissions.size(); ++k) {
      svg.box(leg_base[t.leg] + k, t.emissions[k], t.emissions[k] + leg.comm(k), i, true);
    }
    svg.box(leg_base[t.leg] + leg.size() + t.proc, t.start, t.start + leg.work(t.proc), i,
            false);
  }
  return svg.finish();
}

}  // namespace mst
