#include "mst/schedule/metrics.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

ChainUtilization compute_utilization(const ChainSchedule& schedule) {
  ChainUtilization u;
  u.makespan = schedule.makespan();
  const std::size_t p = schedule.chain.size();
  u.proc_busy_fraction.assign(p, 0.0);
  u.link_busy_fraction.assign(p, 0.0);
  u.tasks_per_proc = schedule.tasks_per_proc();
  if (u.makespan <= 0) return u;

  std::vector<Time> proc_busy(p, 0);
  std::vector<Time> link_busy(p, 0);
  for (const ChainTask& t : schedule.tasks) {
    proc_busy[t.proc] += schedule.chain.work(t.proc);
    for (std::size_t k = 0; k <= t.proc; ++k) link_busy[k] += schedule.chain.comm(k);
  }
  for (std::size_t i = 0; i < p; ++i) {
    u.proc_busy_fraction[i] = static_cast<double>(proc_busy[i]) / static_cast<double>(u.makespan);
    u.link_busy_fraction[i] = static_cast<double>(link_busy[i]) / static_cast<double>(u.makespan);
  }
  return u;
}

std::vector<std::pair<Time, Time>> first_link_idle_gaps(const ChainSchedule& schedule) {
  std::vector<std::pair<Time, Time>> gaps;
  const Time c0 = schedule.chain.comm(0);
  std::vector<Time> emissions;
  for (const ChainTask& t : schedule.tasks) {
    if (!t.emissions.empty()) emissions.push_back(t.emissions.front());
  }
  std::sort(emissions.begin(), emissions.end());
  Time cursor = 0;
  for (Time e : emissions) {
    if (e > cursor) gaps.emplace_back(cursor, e);
    cursor = std::max(cursor, e + c0);
  }
  return gaps;
}

SpiderUtilization compute_utilization(const SpiderSchedule& schedule) {
  SpiderUtilization u;
  u.makespan = schedule.makespan();
  u.tasks_per_leg = schedule.tasks_per_leg();
  if (u.makespan <= 0) return u;
  Time busy = 0;
  for (const SpiderTask& t : schedule.tasks) {
    busy += schedule.spider.leg(t.leg).comm(0);
  }
  u.master_port_busy_fraction = static_cast<double>(busy) / static_cast<double>(u.makespan);
  return u;
}

double throughput(const ChainSchedule& schedule) {
  const Time m = schedule.makespan();
  if (m <= 0) return 0.0;
  return static_cast<double>(schedule.num_tasks()) / static_cast<double>(m);
}

double throughput(const SpiderSchedule& schedule) {
  const Time m = schedule.makespan();
  if (m <= 0) return 0.0;
  return static_cast<double>(schedule.num_tasks()) / static_cast<double>(m);
}

}  // namespace mst
