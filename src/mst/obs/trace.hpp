#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mst/common/time.hpp"

/// \file trace.hpp
/// Sim-clock span/instant recording with Chrome trace-event JSON export.
///
/// A `TraceSink` is the machine-readable version of the paper's Figure-2
/// Gantt chart: tracks are slaves and links, spans are their compute and
/// communication busy intervals, instants mark master emissions and task
/// arrivals — all stamped with the *simulated* clock, so a trace is a pure
/// function of (spec, seed) and byte-identical across hosts and thread
/// counts.  The serialized form is the Chrome trace-event format, loadable
/// directly in Perfetto (https://ui.perfetto.dev) or `chrome://tracing`.
///
/// Like the metrics registry, the sink is allocation-free on the hot path:
/// tracks and event names are interned up front into fixed char arrays, and
/// `begin`/`end`/`instant`/`counter` push into storage reserved at
/// construction — when the reservation runs out, events are dropped and
/// counted rather than reallocating inside a linted zero-alloc region.
/// Unlike the registry the sink is single-threaded by design: a
/// trace is an *ordered* artifact, so each simulation records into its own
/// sink (the sweep runner gives every cell one, as it does registries).

namespace mst::obs {

/// Interned handles.  `kInvalidTrack`/`kInvalidName` (also what interning
/// returns once the label table is full) make every subsequent record on
/// that handle a counted no-op.
using TrackId = std::uint32_t;
using NameId = std::uint32_t;
inline constexpr TrackId kInvalidTrack = UINT32_MAX;
inline constexpr NameId kInvalidName = UINT32_MAX;

/// One recorded event.  `phase` uses the Chrome trace-event phase letters:
/// 'B'/'E' span begin/end, 'i' instant, 'C' counter sample.  `arg` is an
/// optional integer payload (task id for spans/instants, sampled value for
/// counters); negative means absent.
struct TraceEvent {
  char phase = 'i';
  TrackId track = kInvalidTrack;
  NameId name = kInvalidName;
  Time ts = 0;
  std::int64_t arg = -1;
};

class TraceSink {
 public:
  static constexpr std::size_t kLabelCapacity = 48;

  explicit TraceSink(std::size_t event_capacity = std::size_t{1} << 16,
                     std::size_t track_capacity = std::size_t{1} << 10,
                     std::size_t name_capacity = std::size_t{1} << 8);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Interns a track (a row in the rendered Gantt) / an event name.
  /// Idempotent by label; returns the invalid id (counting a drop) when the
  /// table is full or the label does not fit.
  [[nodiscard]] TrackId track(std::string_view label);
  [[nodiscard]] NameId name(std::string_view label);

  // Recording — the hot path.  Reserved-capacity pushes only; a full sink
  // or an invalid handle drops the event and counts it.
  // mstlint: zero-alloc

  void begin(TrackId track, NameId name, Time ts, std::int64_t arg = -1) {
    push({'B', track, name, ts, arg});
  }
  void end(TrackId track, NameId name, Time ts) { push({'E', track, name, ts, -1}); }
  void instant(TrackId track, NameId name, Time ts, std::int64_t arg = -1) {
    push({'i', track, name, ts, arg});
  }
  void counter(TrackId track, NameId name, Time ts, std::int64_t value) {
    push({'C', track, name, ts, value});
  }

  // mstlint: zero-alloc-end

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::int64_t dropped() const { return dropped_; }
  [[nodiscard]] std::string_view track_label(TrackId track) const;
  [[nodiscard]] std::string_view name_label(NameId name) const;

  /// Serializes to Chrome trace-event JSON: a stable sort by timestamp (so
  /// post-hoc pushes, e.g. the streaming walk's backlog samples, land in
  /// order), one metadata record naming each track, then the events with
  /// `pid` 1 and `tid` = track + 1.  `ts` is the raw integer sim clock.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  struct Label {
    char text[kLabelCapacity] = {};
  };

  void push(const TraceEvent& event) {
    if (event.track == kInvalidTrack || event.name == kInvalidName ||
        events_.size() == events_.capacity()) {
      ++dropped_;
      return;
    }
    events_.push_back(event);
  }

  static std::uint32_t intern_label(std::vector<Label>& table, std::size_t capacity,
                                    std::string_view label, std::int64_t& dropped);

  std::vector<TraceEvent> events_;
  std::vector<Label> tracks_;
  std::vector<Label> names_;
  std::size_t track_capacity_;
  std::size_t name_capacity_;
  std::int64_t dropped_ = 0;
};

}  // namespace mst::obs
