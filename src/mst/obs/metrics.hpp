#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mst/common/mutex.hpp"
#include "mst/common/thread_annotations.hpp"

/// \file metrics.hpp
/// Preregistered, allocation-free counters for the deterministic
/// observability layer.
///
/// The repo's core invariant is byte-identical output at any thread count,
/// so the metrics core is built on *commutative* updates over fixed-capacity
/// storage: a `Counter` is a relaxed atomic sum, a `Gauge` a relaxed atomic
/// max (high-water semantics), a `Histogram` a fixed set of power-of-two
/// buckets with atomic adds.  Whatever order worker threads interleave their
/// updates in, the totals — and therefore the sorted-by-name snapshot and
/// its JSON — come out identical.  Wall-clock-derived metrics are the one
/// exception; they carry `DeterminismClass::kWallTime` and are segregated
/// out of the default snapshot, mirroring the sweep reporter's `--timing`
/// convention.
///
/// Cost model (the linted zero-alloc regions in the simulator stay clean):
///  * a default-constructed handle is *disabled* — one null check, no-op;
///  * an enabled handle is one relaxed atomic RMW on a slot that was
///    registered up front — no allocation, no lock, no string;
///  * registration (`MetricsRegistry::counter` & co) takes the registry
///    mutex and scans the fixed slot array — cold path, but still heap-free,
///    so instrumented runs allocate nothing the uninstrumented runs don't
///    (pinned by tests/test_zero_alloc.cpp).
///
/// Sweep attribution: the scenario runner gives every cell its own local
/// registry and `merge_into`s it into the parent when the cell finishes.
/// Merging is the same commutative arithmetic, so the parent's totals are
/// independent of cell completion order — the thread-count byte-identity
/// contract extends end to end (CI diffs the JSON at 2 vs. 8 threads).

namespace mst::obs {

/// Histogram bucket count.  Bucket 0 holds values `<= 0`; bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`; the last bucket absorbs everything
/// larger.
inline constexpr std::size_t kBucketCount = 16;

/// Fixed storage bounds.  Registrations beyond capacity (or with a name this
/// long) are refused gracefully: the caller gets a disabled handle and the
/// registry's `dropped()` count grows — deterministically, since every run
/// attempts the same registrations.
inline constexpr std::size_t kMetricCapacity = 512;
inline constexpr std::size_t kMetricNameCapacity = 48;

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// Determinism contract of one metric.  `kDeterministic` values are pure
/// functions of (spec, seed) and byte-identical at any thread count;
/// `kWallTime` values measure the host and are excluded from snapshots
/// unless explicitly requested (the `--timing` convention).
enum class DeterminismClass : std::uint8_t { kDeterministic, kWallTime };

namespace detail {

/// One preregistered metric.  Counters and gauges use `value`; histograms
/// use `count`/`sum`/`buckets`.  Names are fixed char arrays so a slot never
/// touches the heap; mutation is lock-free atomics, and the owning
/// registry's mutex covers registration only.
struct MetricSlot {
  char name[kMetricNameCapacity] = {};
  MetricType type = MetricType::kCounter;
  DeterminismClass determinism = DeterminismClass::kDeterministic;
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> sum{0};
  std::array<std::atomic<std::int64_t>, kBucketCount> buckets{};
};

}  // namespace detail

// The handle hot paths are a statically-checked zero-alloc region: enabled
// updates are one relaxed atomic RMW on a preregistered slot; disabled
// handles cost one branch.  Relaxed ordering is sufficient because every
// update is commutative and the only cross-thread reads happen at snapshot
// time, after the workers joined.
// mstlint: zero-alloc

/// Monotone sum.  Disabled (no-op) when default-constructed.
class Counter {
 public:
  Counter() = default;
  explicit Counter(detail::MetricSlot* slot) : slot_(slot) {}

  [[nodiscard]] bool enabled() const { return slot_ != nullptr; }

  void add(std::int64_t delta) {
    if (slot_ != nullptr) slot_->value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

 private:
  detail::MetricSlot* slot_ = nullptr;
};

/// High-water mark: `record` keeps the maximum ever seen.  Max is
/// commutative, so the final value is thread-order independent.
class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(detail::MetricSlot* slot) : slot_(slot) {}

  [[nodiscard]] bool enabled() const { return slot_ != nullptr; }

  void record(std::int64_t value) {
    if (slot_ == nullptr) return;
    std::int64_t current = slot_->value.load(std::memory_order_relaxed);
    while (value > current &&
           !slot_->value.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
  }

 private:
  detail::MetricSlot* slot_ = nullptr;
};

/// Power-of-two bucket histogram with exact `count`/`sum` side totals.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(detail::MetricSlot* slot) : slot_(slot) {}

  [[nodiscard]] bool enabled() const { return slot_ != nullptr; }

  /// Bucket of `value`: 0 for non-positive values, else `bit_width(value)`
  /// clamped to the last bucket.
  [[nodiscard]] static std::size_t bucket_of(std::int64_t value) {
    if (value <= 0) return 0;
    const auto width =
        static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(value)));
    return width < kBucketCount ? width : kBucketCount - 1;
  }

  void observe(std::int64_t value) {
    if (slot_ == nullptr) return;
    slot_->count.fetch_add(1, std::memory_order_relaxed);
    slot_->sum.fetch_add(value, std::memory_order_relaxed);
    slot_->buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

 private:
  detail::MetricSlot* slot_ = nullptr;
};

// mstlint: zero-alloc-end

/// One metric's state at snapshot time.  `value` carries counter sums and
/// gauge maxima; `count`/`sum`/`buckets` are histogram-only.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  DeterminismClass determinism = DeterminismClass::kDeterministic;
  std::int64_t value = 0;
  std::int64_t count = 0;
  std::int64_t sum = 0;
  std::array<std::int64_t, kBucketCount> buckets{};

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// The fixed-capacity metric table.  Registration (find-or-create by name)
/// is mutex-guarded and idempotent; handle updates are lock-free; snapshots
/// are sorted by name so output never depends on registration order, which
/// *does* vary across thread schedules.
class MetricsRegistry {
 public:
  static constexpr std::size_t kCapacity = kMetricCapacity;
  static constexpr std::size_t kNameCapacity = kMetricNameCapacity;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create registration.  Returns a disabled handle (and counts a
  /// drop) when the table is full, the name is empty or too long, or the
  /// name is already registered with a different type.
  [[nodiscard]] Counter counter(std::string_view name,
                                DeterminismClass determinism = DeterminismClass::kDeterministic);
  [[nodiscard]] Gauge gauge(std::string_view name,
                            DeterminismClass determinism = DeterminismClass::kDeterministic);
  [[nodiscard]] Histogram histogram(
      std::string_view name, DeterminismClass determinism = DeterminismClass::kDeterministic);

  /// Registered metric count / refused registration count.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Sorted-by-name samples.  Wall-time-class metrics are excluded unless
  /// `include_wall_time` — the determinism contract's default.
  [[nodiscard]] std::vector<MetricSample> snapshot(bool include_wall_time = false) const;

  /// JSON object: `{"dropped":N,"metrics":[...]}` with one object per
  /// sample, sorted by name.  Every field is an integer, so the text is
  /// byte-comparable across runs with no float-formatting caveats.
  [[nodiscard]] std::string to_json(bool include_wall_time = false) const;

  /// Adds this registry's totals into `target` (registering names there as
  /// needed): counters add, gauges max, histograms add per bucket.  All
  /// commutative — concurrent merges from a worker pool land on the same
  /// totals in any order.
  void merge_into(MetricsRegistry& target) const;

  /// Folds one externally-captured sample into this registry with the
  /// metric's own commutative combine (register-as-needed; counters and
  /// histogram buckets add, gauges max).  This is how a resumed sweep
  /// re-aggregates the per-cell snapshots replayed from a journal: the
  /// totals come out identical to the uninterrupted run's, in any replay
  /// order.
  void absorb(const MetricSample& sample);

 private:
  [[nodiscard]] detail::MetricSlot* intern(std::string_view name, MetricType type,
                                           DeterminismClass determinism);

  mutable Mutex mutex_;
  std::size_t size_ MST_GUARDED_BY(mutex_) = 0;
  std::atomic<std::int64_t> dropped_{0};
  std::array<detail::MetricSlot, kCapacity> slots_;
};

}  // namespace mst::obs
