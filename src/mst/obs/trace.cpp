#include "mst/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace mst::obs {

namespace {

/// Escapes a label for embedding in a JSON string.  Labels are interned
/// ASCII identifiers in practice, but the serializer must not depend on
/// that.
void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

TraceSink::TraceSink(std::size_t event_capacity, std::size_t track_capacity,
                     std::size_t name_capacity)
    : track_capacity_(track_capacity), name_capacity_(name_capacity) {
  events_.reserve(event_capacity);
  tracks_.reserve(track_capacity);
  names_.reserve(name_capacity);
}

std::uint32_t TraceSink::intern_label(std::vector<Label>& table, std::size_t capacity,
                                      std::string_view label, std::int64_t& dropped) {
  if (label.empty() || label.size() >= kLabelCapacity) {
    ++dropped;
    return UINT32_MAX;
  }
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (std::string_view(table[i].text) == label) return static_cast<std::uint32_t>(i);
  }
  if (table.size() == capacity) {
    ++dropped;
    return UINT32_MAX;
  }
  Label entry;
  std::memcpy(entry.text, label.data(), label.size());
  entry.text[label.size()] = '\0';
  table.push_back(entry);
  return static_cast<std::uint32_t>(table.size() - 1);
}

TrackId TraceSink::track(std::string_view label) {
  return intern_label(tracks_, track_capacity_, label, dropped_);
}

NameId TraceSink::name(std::string_view label) {
  return intern_label(names_, name_capacity_, label, dropped_);
}

std::string_view TraceSink::track_label(TrackId track) const {
  return track < tracks_.size() ? std::string_view(tracks_[track].text) : std::string_view();
}

std::string_view TraceSink::name_label(NameId name) const {
  return name < names_.size() ? std::string_view(names_[name].text) : std::string_view();
}

std::string TraceSink::to_chrome_json() const {
  // Chrome's importer tolerates out-of-order events, Perfetto's is stricter;
  // a stable sort by timestamp guarantees monotone `ts` while preserving the
  // recording order of same-time events (begin-before-end pairing at
  // zero-length spans).
  std::vector<TraceEvent> ordered = events_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto separator = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };

  // One metadata record per track so Perfetto shows the label instead of a
  // bare tid.  All events share pid 1; tid is track + 1 (tid 0 renders as
  // the process row in some viewers).
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    separator();
    out += "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " +
           std::to_string(i + 1) + ", \"args\": {\"name\": \"";
    append_escaped(out, std::string_view(tracks_[i].text));
    out += "\"}}";
  }

  for (const TraceEvent& event : ordered) {
    separator();
    out += "  {\"name\": \"";
    append_escaped(out, name_label(event.name));
    out += "\", \"ph\": \"";
    out += event.phase;
    out += "\", \"pid\": 1, \"tid\": " + std::to_string(event.track + 1) +
           ", \"ts\": " + std::to_string(event.ts);
    if (event.phase == 'i') {
      out += ", \"s\": \"t\"";
    }
    if (event.phase == 'C') {
      out += ", \"args\": {\"value\": " + std::to_string(event.arg) + "}";
    } else if (event.arg >= 0) {
      out += ", \"args\": {\"task\": " + std::to_string(event.arg) + "}";
    }
    out += "}";
  }

  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace mst::obs
