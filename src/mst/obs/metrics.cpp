#include "mst/obs/metrics.hpp"

#include <algorithm>
#include <cstring>

namespace mst::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "counter";
}

const char* determinism_name(DeterminismClass determinism) {
  return determinism == DeterminismClass::kWallTime ? "wall_time" : "deterministic";
}

}  // namespace

detail::MetricSlot* MetricsRegistry::intern(std::string_view name, MetricType type,
                                            DeterminismClass determinism) {
  if (name.empty() || name.size() >= kNameCapacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  LockGuard lock(mutex_);
  for (std::size_t i = 0; i < size_; ++i) {
    detail::MetricSlot& slot = slots_[i];
    if (std::string_view(slot.name) == name) {
      if (slot.type != type) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      return &slot;
    }
  }
  if (size_ == kCapacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  detail::MetricSlot& slot = slots_[size_++];
  std::memcpy(slot.name, name.data(), name.size());
  slot.name[name.size()] = '\0';
  slot.type = type;
  slot.determinism = determinism;
  return &slot;
}

Counter MetricsRegistry::counter(std::string_view name, DeterminismClass determinism) {
  return Counter(intern(name, MetricType::kCounter, determinism));
}

Gauge MetricsRegistry::gauge(std::string_view name, DeterminismClass determinism) {
  return Gauge(intern(name, MetricType::kGauge, determinism));
}

Histogram MetricsRegistry::histogram(std::string_view name, DeterminismClass determinism) {
  return Histogram(intern(name, MetricType::kHistogram, determinism));
}

std::size_t MetricsRegistry::size() const {
  LockGuard lock(mutex_);
  return size_;
}

std::vector<MetricSample> MetricsRegistry::snapshot(bool include_wall_time) const {
  std::vector<MetricSample> samples;
  {
    LockGuard lock(mutex_);
    samples.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      const detail::MetricSlot& slot = slots_[i];
      if (!include_wall_time && slot.determinism == DeterminismClass::kWallTime) continue;
      MetricSample sample;
      sample.name = slot.name;
      sample.type = slot.type;
      sample.determinism = slot.determinism;
      sample.value = slot.value.load(std::memory_order_relaxed);
      sample.count = slot.count.load(std::memory_order_relaxed);
      sample.sum = slot.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        sample.buckets[b] = slot.buckets[b].load(std::memory_order_relaxed);
      }
      samples.push_back(std::move(sample));
    }
  }
  // Registration order depends on which thread registered a name first, so
  // the snapshot is sorted by name to keep every downstream serialization
  // thread-schedule independent.
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return samples;
}

std::string MetricsRegistry::to_json(bool include_wall_time) const {
  const std::vector<MetricSample> samples = snapshot(include_wall_time);
  std::string out = "{\n  \"dropped\": " + std::to_string(dropped()) + ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& sample = samples[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + sample.name + "\", \"type\": \"" + type_name(sample.type) +
           "\", \"determinism\": \"" + determinism_name(sample.determinism) + "\"";
    if (sample.type == MetricType::kHistogram) {
      out += ", \"count\": " + std::to_string(sample.count) +
             ", \"sum\": " + std::to_string(sample.sum) + ", \"buckets\": [";
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        if (b != 0) out += ", ";
        out += std::to_string(sample.buckets[b]);
      }
      out += "]";
    } else {
      out += ", \"value\": " + std::to_string(sample.value);
    }
    out += "}";
  }
  out += samples.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

void MetricsRegistry::absorb(const MetricSample& sample) {
  switch (sample.type) {
    case MetricType::kCounter:
      counter(sample.name, sample.determinism).add(sample.value);
      break;
    case MetricType::kGauge:
      gauge(sample.name, sample.determinism).record(sample.value);
      break;
    case MetricType::kHistogram: {
      detail::MetricSlot* slot =
          intern(sample.name, MetricType::kHistogram, sample.determinism);
      if (slot == nullptr) break;
      slot->count.fetch_add(sample.count, std::memory_order_relaxed);
      slot->sum.fetch_add(sample.sum, std::memory_order_relaxed);
      for (std::size_t b = 0; b < kBucketCount; ++b) {
        slot->buckets[b].fetch_add(sample.buckets[b], std::memory_order_relaxed);
      }
      break;
    }
  }
}

void MetricsRegistry::merge_into(MetricsRegistry& target) const {
  // Walks this registry's snapshot (wall-time metrics included — the filter
  // belongs at serialization time, not merge time) and folds each sample
  // into the target with the metric's own commutative combine: counters and
  // histogram buckets add, gauges take the max.  Concurrent merges from
  // several finished cells therefore commute.
  for (const MetricSample& sample : snapshot(/*include_wall_time=*/true)) {
    target.absorb(sample);
  }
}

}  // namespace mst::obs
