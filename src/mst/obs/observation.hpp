#pragma once

/// \file observation.hpp
/// The pass-through handle the instrumented layers accept.
///
/// Every instrumented entry point (`sim::simulate_chooser`,
/// `sim::simulate_stream`, `api::run_stream`, ...) takes a defaulted
/// `const obs::Observation& = {}`: both pointers null means observability is
/// off and the instrumentation collapses to null checks.  Header-only with
/// forward declarations so including a low-layer header never pays for the
/// metrics/trace definitions.

namespace mst::obs {

class MetricsRegistry;
class TraceSink;

/// Borrowed, optional sinks.  The caller owns both and keeps them alive for
/// the duration of the observed call.
struct Observation {
  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;

  [[nodiscard]] bool enabled() const { return metrics != nullptr || trace != nullptr; }
};

}  // namespace mst::obs
