#pragma once

#include <cstddef>
#include <vector>

#include "mst/common/arena.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

/// \file tree_cover.hpp
/// Covering a general tree with a spider — the paper's stated long-term
/// plan (§8: "provide good heuristics for scheduling on complicated graphs
/// … by covering those graphs with simpler structures").
///
/// The cover keeps, under every child of the root, a single root-to-leaf
/// path (a chain); the chosen path maximizes the chain's steady-state rate.
/// Off-path processors are ignored — the resulting spider is a sub-platform
/// of the tree, so any spider schedule maps verbatim onto the tree and the
/// optimal spider makespan is an upper bound for the tree optimum.  The
/// TREE experiment compares this against the tree's bandwidth-centric
/// steady-state bound and the online policies that use every node.

namespace mst {

/// A spider embedded in a tree.
struct SpiderCover {
  Spider spider;
  /// `node_of[l][d]` = the tree node serving as processor `d` of leg `l`.
  std::vector<std::vector<NodeId>> node_of;
};

/// Chooses, for every child of the root, the descendant path with the
/// highest chain steady-state rate.  Requires at least one slave.
SpiderCover cover_tree_with_spider(const Tree& tree);

/// Arena-backed variant: the intermediate leaf-path collection lives in
/// `arena` (reset on entry), so repeated covers reuse one grown block
/// instead of churning a vector-of-vectors per call.  The returned cover
/// still owns ordinary vectors; results are identical to the plain form.
SpiderCover cover_tree_with_spider(const Tree& tree, Arena& arena);

}  // namespace mst
