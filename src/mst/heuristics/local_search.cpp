#include "mst/heuristics/local_search.hpp"

#include <algorithm>

#include "mst/baselines/tree_asap.hpp"
#include "mst/common/assert.hpp"

namespace mst {

LocalSearchResult improve_tree_dispatch(const Tree& tree, std::vector<NodeId> initial,
                                        std::size_t max_passes) {
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  for (NodeId v : initial) {
    MST_REQUIRE(v != 0 && v < tree.size(), "initial destinations must be slave nodes");
  }

  LocalSearchResult result;
  result.dests = std::move(initial);

  // One ASAP state serves every candidate evaluation: the descent below
  // replays thousands of sequences, and rebuilding the state's path table
  // per evaluation used to dominate the pass cost.
  TreeAsapState state(tree);
  result.makespan = result.dests.empty() ? 0 : asap_tree_makespan(result.dests, state);

  const std::size_t n = result.dests.size();
  bool improved = true;
  while (improved && result.passes < max_passes) {
    improved = false;
    ++result.passes;

    // Move 1: reassign one task to another node.
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId original = result.dests[i];
      for (NodeId v = 1; v < tree.size(); ++v) {
        if (v == original) continue;
        result.dests[i] = v;
        const Time makespan = asap_tree_makespan(result.dests, state);
        if (makespan < result.makespan) {
          result.makespan = makespan;
          ++result.moves;
          improved = true;
          break;  // keep v, rescan neighborhood next pass
        }
        result.dests[i] = original;
      }
    }

    // Move 2: swap the destinations of two emission positions.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (result.dests[i] == result.dests[j]) continue;
        std::swap(result.dests[i], result.dests[j]);
        const Time makespan = asap_tree_makespan(result.dests, state);
        if (makespan < result.makespan) {
          result.makespan = makespan;
          ++result.moves;
          improved = true;
        } else {
          std::swap(result.dests[i], result.dests[j]);
        }
      }
    }
  }
  return result;
}

LocalSearchResult local_search_tree(const Tree& tree, std::size_t n, std::size_t max_passes) {
  return improve_tree_dispatch(tree, forward_greedy_tree(tree, n), max_passes);
}

}  // namespace mst
