#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/tree.hpp"

/// \file local_search.hpp
/// Local search over tree dispatch sequences — the second §8-style
/// heuristic, complementary to the spider cover.
///
/// The cover heuristic plans optimally but ignores off-path processors;
/// the greedy uses every node but never revisits a decision.  This pass
/// starts from any destination sequence and descends over two move types:
///   * reassign — send the i-th emitted task to a different node;
///   * swap     — exchange the destinations of two emission positions.
/// Evaluation is exact (`asap_tree_makespan`, the simulator-faithful
/// timing), so every accepted move is a true improvement.  First-improvement
/// descent, deterministic scan order, bounded by `max_passes` full sweeps.

namespace mst {

struct LocalSearchResult {
  std::vector<NodeId> dests;  ///< improved dispatch sequence
  Time makespan = 0;          ///< its exact ASAP makespan
  std::size_t moves = 0;      ///< accepted improvements
  std::size_t passes = 0;     ///< full neighborhood sweeps performed
};

/// Improves `initial` (destinations must be slave nodes).  Never returns a
/// worse sequence than the input.
LocalSearchResult improve_tree_dispatch(const Tree& tree, std::vector<NodeId> initial,
                                        std::size_t max_passes = 16);

/// Greedy start + local search.
LocalSearchResult local_search_tree(const Tree& tree, std::size_t n,
                                    std::size_t max_passes = 16);

}  // namespace mst
