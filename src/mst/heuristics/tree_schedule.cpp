#include "mst/heuristics/tree_schedule.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/heuristics/tree_cover.hpp"
#include "mst/schedule/spider_schedule.hpp"

namespace mst {

TreeScheduleResult schedule_tree_via_cover(const Tree& tree, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  const SpiderCover cover = cover_tree_with_spider(tree);
  SpiderSchedule plan = SpiderScheduler::schedule(cover.spider, n);

  // Destination sequence in master-emission order (the planner already
  // keeps tasks sorted by first emission).
  TreeScheduleResult result;
  result.makespan = plan.makespan();
  result.destinations.reserve(n);
  std::vector<std::size_t> order(plan.tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&plan](std::size_t a, std::size_t b) {
    return plan.tasks[a].emissions.front() < plan.tasks[b].emissions.front();
  });
  for (std::size_t idx : order) {
    const SpiderTask& t = plan.tasks[idx];
    result.destinations.push_back(cover.node_of[t.leg][t.proc]);
  }

  return result;
}

}  // namespace mst
