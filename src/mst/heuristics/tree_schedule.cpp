#include "mst/heuristics/tree_schedule.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/heuristics/tree_cover.hpp"
#include "mst/schedule/spider_schedule.hpp"

namespace mst {

void schedule_tree_via_cover_into(const Tree& tree, std::size_t n, TreeCoverScratch& scratch,
                                  std::vector<NodeId>& destinations, Time& makespan) {
  MST_REQUIRE(n >= 1, "need at least one task");
  const SpiderCover cover = cover_tree_with_spider(tree, scratch.arena);
  SpiderScheduler::schedule_into(cover.spider, n, scratch.spider, scratch.plan);
  const SpiderSchedule& plan = scratch.plan;

  // Destination sequence in master-emission order (the planner already
  // keeps tasks sorted by first emission).
  makespan = plan.makespan();
  destinations.clear();
  scratch.order.resize(plan.tasks.size());
  for (std::size_t i = 0; i < scratch.order.size(); ++i) scratch.order[i] = i;
  std::sort(scratch.order.begin(), scratch.order.end(),
            [&plan](std::size_t a, std::size_t b) {
              return plan.tasks[a].emissions.front() < plan.tasks[b].emissions.front();
            });
  for (std::size_t idx : scratch.order) {
    const SpiderTask& t = plan.tasks[idx];
    destinations.push_back(cover.node_of[t.leg][t.proc]);
  }
}

TreeScheduleResult schedule_tree_via_cover(const Tree& tree, std::size_t n) {
  TreeCoverScratch scratch;
  TreeScheduleResult result;
  result.destinations.reserve(n);
  schedule_tree_via_cover_into(tree, n, scratch, result.destinations, result.makespan);
  return result;
}

}  // namespace mst
