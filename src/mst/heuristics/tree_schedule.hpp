#pragma once

#include <cstddef>
#include <vector>

#include "mst/common/time.hpp"
#include "mst/platform/tree.hpp"

/// \file tree_schedule.hpp
/// Scheduling on general trees (the paper's open problem) via the spider
/// cover: plan optimally on the covering spider, then execute the planned
/// destination sequence on the real tree.  Because the cover is a
/// sub-platform, the plan is feasible as-is, and the resulting makespan is
/// an upper bound witness for the tree optimum.

namespace mst {

/// Outcome of the cover-and-schedule heuristic.
struct TreeScheduleResult {
  Time makespan = 0;
  /// Tree node executing each task, in master-emission order.  Replaying it
  /// on the tree simulator (`sim::simulate_dispatch`) yields the same
  /// makespan or better — eager forwarding may only move work earlier.
  std::vector<NodeId> destinations;
};

/// Schedule `n` tasks on `tree` through the spider cover.
TreeScheduleResult schedule_tree_via_cover(const Tree& tree, std::size_t n);

}  // namespace mst
