#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/tree.hpp"
#include "mst/sim/platform_sim.hpp"

/// \file tree_schedule.hpp
/// Scheduling on general trees (the paper's open problem) via the spider
/// cover: plan optimally on the covering spider, then execute the planned
/// destination sequence on the real tree.  Because the cover is a
/// sub-platform, the plan is feasible as-is, and the resulting makespan is
/// an upper bound witness for the tree optimum.

namespace mst {

/// Outcome of the cover-and-schedule heuristic.
struct TreeScheduleResult {
  Time makespan = 0;
  /// Tree node executing each task, in master-emission order.
  std::vector<NodeId> destinations;
  /// Operational replay of the plan on the tree simulator (same makespan or
  /// better — eager forwarding may only move work earlier).
  sim::SimResult simulated;
};

/// Schedule `n` tasks on `tree` through the spider cover.
TreeScheduleResult schedule_tree_via_cover(const Tree& tree, std::size_t n);

}  // namespace mst
