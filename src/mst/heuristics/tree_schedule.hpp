#pragma once

#include <cstddef>
#include <vector>

#include "mst/common/arena.hpp"
#include "mst/common/time.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/tree.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file tree_schedule.hpp
/// Scheduling on general trees (the paper's open problem) via the spider
/// cover: plan optimally on the covering spider, then execute the planned
/// destination sequence on the real tree.  Because the cover is a
/// sub-platform, the plan is feasible as-is, and the resulting makespan is
/// an upper bound witness for the tree optimum.

namespace mst {

/// Outcome of the cover-and-schedule heuristic.
struct TreeScheduleResult {
  Time makespan = 0;
  /// Tree node executing each task, in master-emission order.  Replaying it
  /// on the tree simulator (`sim::simulate_dispatch`) yields the same
  /// makespan or better — eager forwarding may only move work earlier.
  std::vector<NodeId> destinations;
};

/// Reusable buffers for `schedule_tree_via_cover_into`: the leaf-path
/// arena, the covering-spider solve scratch, and the pooled plan/order
/// working sets.  With warm buffers the per-solve allocation count is
/// independent of the task count `n` (only tree-shaped temporaries remain).
struct TreeCoverScratch {
  Arena arena;                      ///< leaf-path collection of the cover
  SpiderSolveScratch spider;        ///< covering-spider materialization
  SpiderSchedule plan;              ///< pooled spider plan
  std::vector<std::size_t> order;   ///< emission-order index sort
};

/// Schedule `n` tasks on `tree` through the spider cover.
TreeScheduleResult schedule_tree_via_cover(const Tree& tree, std::size_t n);

/// Scratch-reusing twin: identical destinations and makespan, rebuilding
/// `destinations` in place (capacity reused).
void schedule_tree_via_cover_into(const Tree& tree, std::size_t n, TreeCoverScratch& scratch,
                                  std::vector<NodeId>& destinations, Time& makespan);

}  // namespace mst
