#include "mst/heuristics/tree_cover.hpp"

#include <algorithm>

#include "mst/baselines/bounds.hpp"
#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Collects every root-child-to-leaf path under `v` (paths include `v`) as
/// arena spans — one exact-size block per leaf, no per-path vector.
void collect_paths(const Tree& tree, NodeId v, std::vector<NodeId>& prefix, Arena& arena,
                   std::vector<Span<NodeId>>& out) {
  prefix.push_back(v);
  if (tree.children(v).empty()) {
    Span<NodeId> path = arena.make_span<NodeId>(prefix.size());
    std::copy(prefix.begin(), prefix.end(), path.begin());
    out.push_back(path);
  } else {
    for (NodeId child : tree.children(v)) collect_paths(tree, child, prefix, arena, out);
  }
  prefix.pop_back();
}

Chain chain_of_path(const Tree& tree, Span<NodeId> path) {
  std::vector<Processor> procs;
  procs.reserve(path.size);
  for (NodeId v : path) procs.push_back(tree.proc(v));
  return Chain(std::move(procs));
}

}  // namespace

SpiderCover cover_tree_with_spider(const Tree& tree, Arena& arena) {
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  arena.reset();
  SpiderCover cover;
  std::vector<Chain> legs;
  std::vector<NodeId> prefix;
  std::vector<Span<NodeId>> paths;
  for (NodeId head : tree.children(0)) {
    paths.clear();
    prefix.clear();
    collect_paths(tree, head, prefix, arena, paths);
    MST_ASSERT(!paths.empty());

    double best_rate = -1.0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const double rate = chain_steady_state_rate(chain_of_path(tree, paths[i]));
      if (rate > best_rate) {
        best_rate = rate;
        best = i;
      }
    }
    legs.push_back(chain_of_path(tree, paths[best]));
    cover.node_of.emplace_back(paths[best].begin(), paths[best].end());
  }
  cover.spider = Spider(std::move(legs));
  return cover;
}

SpiderCover cover_tree_with_spider(const Tree& tree) {
  Arena arena;
  return cover_tree_with_spider(tree, arena);
}

}  // namespace mst
