#include "mst/heuristics/tree_cover.hpp"

#include <algorithm>

#include "mst/baselines/bounds.hpp"
#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Collects every root-child-to-leaf path under `v` (paths include `v`).
void collect_paths(const Tree& tree, NodeId v, std::vector<NodeId>& prefix,
                   std::vector<std::vector<NodeId>>& out) {
  prefix.push_back(v);
  if (tree.children(v).empty()) {
    out.push_back(prefix);
  } else {
    for (NodeId child : tree.children(v)) collect_paths(tree, child, prefix, out);
  }
  prefix.pop_back();
}

Chain chain_of_path(const Tree& tree, const std::vector<NodeId>& path) {
  std::vector<Processor> procs;
  procs.reserve(path.size());
  for (NodeId v : path) procs.push_back(tree.proc(v));
  return Chain(std::move(procs));
}

}  // namespace

SpiderCover cover_tree_with_spider(const Tree& tree) {
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  SpiderCover cover;
  std::vector<Chain> legs;
  for (NodeId head : tree.children(0)) {
    std::vector<std::vector<NodeId>> paths;
    std::vector<NodeId> prefix;
    collect_paths(tree, head, prefix, paths);
    MST_ASSERT(!paths.empty());

    double best_rate = -1.0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const double rate = chain_steady_state_rate(chain_of_path(tree, paths[i]));
      if (rate > best_rate) {
        best_rate = rate;
        best = i;
      }
    }
    legs.push_back(chain_of_path(tree, paths[best]));
    cover.node_of.push_back(paths[best]);
  }
  cover.spider = Spider(std::move(legs));
  return cover;
}

}  // namespace mst
