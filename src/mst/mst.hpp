#pragma once

/// \file mst.hpp
/// Umbrella header: the whole public API of the master-slave tasking
/// library.  Fine-grained headers remain available for compile-time-
/// conscious users; examples and quick experiments can just include this.

#include "mst/common/cli.hpp"
#include "mst/common/rational.hpp"
#include "mst/common/rng.hpp"
#include "mst/common/stats.hpp"
#include "mst/common/table.hpp"
#include "mst/common/time.hpp"

#include "mst/obs/metrics.hpp"
#include "mst/obs/observation.hpp"
#include "mst/obs/trace.hpp"

#include "mst/workload/arrival.hpp"
#include "mst/workload/workload.hpp"
#include "mst/workload/workload_io.hpp"

#include "mst/platform/any.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/generator.hpp"
#include "mst/platform/io.hpp"
#include "mst/platform/processor.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/comm_vector.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/schedule/gantt.hpp"
#include "mst/schedule/json.hpp"
#include "mst/schedule/metrics.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/schedule/schedule_io.hpp"
#include "mst/schedule/svg.hpp"

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/chain_trace.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/moore_hodgson.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/core/virtual_nodes.hpp"

#include "mst/baselines/asap.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/baselines/brute_force.hpp"
#include "mst/baselines/forward_greedy.hpp"
#include "mst/baselines/round_robin.hpp"
#include "mst/baselines/single_node.hpp"
#include "mst/baselines/periodic.hpp"
#include "mst/baselines/tree_asap.hpp"

#include "mst/sim/dispatch_render.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/sim/static_replay.hpp"
#include "mst/sim/streaming.hpp"

#include "mst/analysis/robustness.hpp"
#include "mst/analysis/throughput.hpp"

#include "mst/api/curves.hpp"
#include "mst/api/platform_io.hpp"
#include "mst/api/registry.hpp"
#include "mst/api/stream.hpp"
#include "mst/api/trace_replay.hpp"

#include "mst/scenario/generators.hpp"
#include "mst/scenario/report.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/scenario/spec.hpp"

#include "mst/heuristics/local_search.hpp"
#include "mst/heuristics/tree_cover.hpp"
#include "mst/heuristics/tree_schedule.hpp"
