#pragma once

#include <cstddef>
#include <vector>

#include "mst/common/time.hpp"

/// \file moore_hodgson.hpp
/// One-machine deadline selection — the engine behind the fork algorithm.
///
/// The virtual-node selection problem of §6/§7 is exactly `1 || ΣU_j`:
/// jobs (master emissions) with processing time `comm` and a hard deadline,
/// one machine (the master's out-port), maximize the number of on-time jobs.
/// The Moore–Hodgson algorithm solves it optimally in `O(N log N)`.
///
/// The paper cites the ascending-`c` greedy of Beaumont et al. [2] for this
/// step; we implement both (see `fork_scheduler.hpp` for the greedy) and use
/// Moore–Hodgson as the default because its optimality holds for *arbitrary*
/// job sets — which makes the spider reduction robust — while the greedy's
/// proof relies on the structured node sequences of fork expansion.

namespace mst {

/// One emission job.
struct DeadlineJob {
  Time proc_time = 0;  ///< time on the shared machine (the emission latency)
  Time deadline = 0;   ///< latest allowed completion on the machine
  std::size_t id = 0;  ///< caller-side identity, reported back in the result
};

/// Maximum-cardinality on-time subset (Moore–Hodgson).  Returns the `id`s of
/// the selected jobs; the subset is feasible when sequenced in EDD order
/// (earliest deadline first).  Jobs with `deadline < proc_time` are never
/// selected.  Deterministic: ties are broken by (deadline, proc_time, id).
std::vector<std::size_t> moore_hodgson(std::vector<DeadlineJob> jobs);

/// Count-only Moore–Hodgson for sweep hot paths: sorts `jobs` in place and
/// keeps the selected processing times in `heap_scratch` (cleared, capacity
/// reused), so a warmed-up caller triggers no allocation.  Returns the same
/// cardinality `moore_hodgson` selects — the optimum is unique even when the
/// selection is not.
std::size_t moore_hodgson_count(std::vector<DeadlineJob>& jobs, std::vector<Time>& heap_scratch);

/// Positional-release selection — the release-date generalization behind
/// the fork/spider workload algorithms.  Tasks are identical apart from
/// their release dates, so the dates bind *positionally*: the j-th selected
/// emission in time order (0-based) cannot start before `releases[j]`
/// (`releases` sorted ascending).  At most `min(max_count, releases.size())`
/// jobs can be selected.  Solved exactly by the O(N·K) selection DP over the
/// EDD order (`dp[j]` = minimal completion time of a feasible j-job
/// selection of the processed prefix); Moore–Hodgson's eviction rule does
/// not extend to position-dependent machine availability, the DP does.
/// Sorts `jobs` in place; `dp_scratch` is reused capacity (cleared).
std::size_t moore_hodgson_released_count(std::vector<DeadlineJob>& jobs,
                                         const std::vector<Time>& releases,
                                         std::size_t max_count, std::vector<Time>& dp_scratch);

/// Selecting variant: the `id`s of one maximum selection, in the EDD order
/// they must be sequenced in (position j of the result gets release
/// `releases[j]`).  Deterministic.
std::vector<std::size_t> moore_hodgson_released(std::vector<DeadlineJob> jobs,
                                                const std::vector<Time>& releases,
                                                std::size_t max_count);

/// True iff the given jobs all meet their deadlines when run back-to-back in
/// EDD order — the canonical feasibility test for a selection.
bool edd_feasible(std::vector<DeadlineJob> jobs);

/// EDD sequencing: returns, for each input job (by position), its start time
/// on the machine when the set is run back-to-back in EDD order from time 0.
/// Requires the set to be `edd_feasible`; throws `std::logic_error` if not.
std::vector<Time> sequence_edd(const std::vector<DeadlineJob>& jobs);

}  // namespace mst
