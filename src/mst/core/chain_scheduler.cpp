#include "mst/core/chain_scheduler.hpp"

#include <algorithm>
#include <optional>

#include "mst/common/assert.hpp"
#include "mst/schedule/comm_vector.hpp"

namespace mst {

ChainSchedule ChainScheduler::build_backward(const Chain& chain, Time horizon,
                                             std::size_t max_tasks, bool stop_on_negative) {
  const std::size_t p = chain.size();

  // Hull and occupancy vectors of the paper's Fig 3, initialised at the
  // horizon: nothing is scheduled yet, so every link and every processor is
  // free up to `horizon`.
  std::vector<Time> hull(p, horizon);
  std::vector<Time> occupancy(p, horizon);

  // Scratch candidate vector, reused across tasks to avoid re-allocation in
  // the O(n·p²) inner loops.
  std::vector<Time> candidate(p, 0);

  // Tasks are produced from the last one backward; collected here in
  // construction order and reversed at the end so that the result is in
  // first-link emission order (the paper's indexing convention).
  std::vector<ChainTask> built;
  built.reserve(max_tasks);

  while (built.size() < max_tasks) {
    // Find the greatest candidate communication vector over all destinations.
    std::optional<CommVector> best;
    for (std::size_t k1 = p; k1 >= 1; --k1) {
      const std::size_t k = k1 - 1;  // destination processor (0-based)
      // Last hop: the task must fully arrive before the processor's earliest
      // scheduled start minus its own execution, and before the link's hull.
      candidate[k] = std::min(occupancy[k] - chain.work(k) - chain.comm(k),
                              hull[k] - chain.comm(k));
      // Upstream hops, built right to left.
      for (std::size_t j1 = k; j1 >= 1; --j1) {
        const std::size_t j = j1 - 1;
        candidate[j] = std::min(candidate[j + 1] - chain.comm(j), hull[j] - chain.comm(j));
      }
      CommVector vec(candidate.begin(), candidate.begin() + static_cast<std::ptrdiff_t>(k) + 1);
      if (!best || precedes(*best, vec)) best = std::move(vec);
    }
    MST_ASSERT(best.has_value());

    // Decision form: stop as soon as the best possible emission would have
    // to start before time 0 — no further task fits in the window.  Because
    // the candidate entries increase along the vector (c_j >= 0), checking
    // the first entry suffices.
    if (stop_on_negative && best->front() < 0) break;

    // Commit: execute as late as the destination allows, update occupancy
    // and the hulls of every link the task crosses.
    const std::size_t dest = best->size() - 1;
    const Time start = occupancy[dest] - chain.work(dest);
    occupancy[dest] = start;
    for (std::size_t k = 0; k <= dest; ++k) hull[k] = (*best)[k];
    built.push_back(ChainTask{dest, start, std::move(*best)});
  }

  std::reverse(built.begin(), built.end());
  return ChainSchedule{chain, std::move(built)};
}

ChainSchedule ChainScheduler::schedule(const Chain& chain, std::size_t n) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  const Time horizon = chain.t_infinity(n);
  ChainSchedule result = build_backward(chain, horizon, n, /*stop_on_negative=*/false);
  MST_ASSERT(result.tasks.size() == n);

  // The paper's final normalization: shift by -C^1_1 so the schedule starts
  // at time 0.  The first emission is never negative — the all-on-first-
  // processor schedule fits in [0, T∞] by construction of T∞ and the greedy
  // only ever picks vectors that are at least as late.
  const Time first_emission = result.tasks.front().emissions.front();
  MST_ASSERT(first_emission >= 0);
  result.shift(-first_emission);
  return result;
}

Time ChainScheduler::makespan(const Chain& chain, std::size_t n) {
  return schedule(chain, n).makespan();
}

ChainSchedule ChainScheduler::schedule_within(const Chain& chain, Time t_lim,
                                              std::size_t max_tasks) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  return build_backward(chain, t_lim, max_tasks, /*stop_on_negative=*/true);
}

std::size_t ChainScheduler::max_tasks(const Chain& chain, Time t_lim, std::size_t cap) {
  ChainCountScratch scratch;
  return count_within(chain, t_lim, cap, scratch);
}

namespace {

/// Shared body of the counting entry points; `first_emissions` may be null.
/// Statically allocation-checked (dynamic twin: tests/test_counting.cpp).
// mstlint: zero-alloc
std::size_t count_backward(const Chain& chain, Time t_lim, std::size_t cap,
                           ChainCountScratch& scratch, std::vector<Time>* first_emissions) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  const std::size_t p = chain.size();

  // The hull/occupancy state of `build_backward`, in reusable buffers.
  // `assign` only allocates when the capacity grows, so a warm scratch makes
  // the whole loop allocation-free.
  scratch.hull.assign(p, t_lim);
  scratch.occupancy.assign(p, t_lim);
  scratch.candidate.resize(p);
  scratch.best.resize(p);
  Time* const hull = scratch.hull.data();
  Time* const occupancy = scratch.occupancy.data();
  Time* const candidate = scratch.candidate.data();
  Time* const best = scratch.best.data();

  std::size_t count = 0;
  while (count < cap) {
    // Greatest candidate communication vector over all destinations, with
    // the vectors living in the two scratch buffers instead of CommVectors.
    std::size_t best_len = 0;
    for (std::size_t k1 = p; k1 >= 1; --k1) {
      const std::size_t k = k1 - 1;
      candidate[k] = std::min(occupancy[k] - chain.work(k) - chain.comm(k),
                              hull[k] - chain.comm(k));
      for (std::size_t j1 = k; j1 >= 1; --j1) {
        const std::size_t j = j1 - 1;
        candidate[j] = std::min(candidate[j + 1] - chain.comm(j), hull[j] - chain.comm(j));
      }
      if (best_len == 0 || precedes(best, best_len, candidate, k + 1)) {
        std::copy(candidate, candidate + k + 1, best);
        best_len = k + 1;
      }
    }
    MST_ASSERT(best_len >= 1);

    // Decision form: no further task fits in the window.
    if (best[0] < 0) break;

    const std::size_t dest = best_len - 1;
    occupancy[dest] -= chain.work(dest);
    for (std::size_t k = 0; k <= dest; ++k) hull[k] = best[k];
    if (first_emissions != nullptr) first_emissions->push_back(best[0]);
    ++count;
  }
  return count;
}
// mstlint: zero-alloc-end

/// Materializing twin of `count_backward` / `build_backward`: the identical
/// hull/occupancy arithmetic in the reusable scratch buffers, committing each
/// task into a recycled slot of `out.tasks` (the emission vectors keep their
/// warm capacity across rebuilds).  Statically allocation-checked; the
/// dynamic twin is tests/test_zero_alloc.cpp.
// mstlint: zero-alloc
void build_backward_into(const Chain& chain, Time horizon, std::size_t max_tasks,
                         bool stop_on_negative, ChainCountScratch& scratch, ChainSchedule& out) {
  const std::size_t p = chain.size();
  scratch.hull.assign(p, horizon);
  scratch.occupancy.assign(p, horizon);
  scratch.candidate.resize(p);
  scratch.best.resize(p);
  Time* const hull = scratch.hull.data();
  Time* const occupancy = scratch.occupancy.data();
  Time* const candidate = scratch.candidate.data();
  Time* const best = scratch.best.data();

  out.chain = chain;  // copy-assign reuses the processor buffer when warm
  std::size_t used = 0;
  while (used < max_tasks) {
    std::size_t best_len = 0;
    for (std::size_t k1 = p; k1 >= 1; --k1) {
      const std::size_t k = k1 - 1;
      candidate[k] = std::min(occupancy[k] - chain.work(k) - chain.comm(k),
                              hull[k] - chain.comm(k));
      for (std::size_t j1 = k; j1 >= 1; --j1) {
        const std::size_t j = j1 - 1;
        candidate[j] = std::min(candidate[j + 1] - chain.comm(j), hull[j] - chain.comm(j));
      }
      if (best_len == 0 || precedes(best, best_len, candidate, k + 1)) {
        std::copy(candidate, candidate + k + 1, best);
        best_len = k + 1;
      }
    }
    MST_ASSERT(best_len >= 1);

    if (stop_on_negative && best[0] < 0) break;

    const std::size_t dest = best_len - 1;
    const Time start = occupancy[dest] - chain.work(dest);
    occupancy[dest] = start;
    for (std::size_t k = 0; k <= dest; ++k) hull[k] = best[k];
    if (used == out.tasks.size()) out.tasks.emplace_back();
    ChainTask& task = out.tasks[used];
    task.proc = dest;
    task.start = start;
    task.emissions.assign(best, best + best_len);
    ++used;
  }
  out.tasks.resize(used);
  std::reverse(out.tasks.begin(), out.tasks.end());
}
// mstlint: zero-alloc-end

}  // namespace

std::size_t ChainScheduler::count_within(const Chain& chain, Time t_lim, std::size_t cap,
                                         ChainCountScratch& scratch) {
  return count_backward(chain, t_lim, cap, scratch, nullptr);
}

std::size_t ChainScheduler::count_within_emissions(const Chain& chain, Time t_lim,
                                                   std::size_t cap, ChainCountScratch& scratch,
                                                   std::vector<Time>& first_emissions) {
  return count_backward(chain, t_lim, cap, scratch, &first_emissions);
}

namespace {

/// Largest k such that the k latest backward emissions dominate the k
/// earliest release dates: `emissions[j] >= releases[k-1-j]` for all `j < k`
/// (`emissions` in construction order, latest first; `releases` sorted
/// ascending).  Feasible(k) implies feasible(k-1) — the matched release of
/// every emission only gets smaller — so binary search is exact.
std::size_t max_released_count(const std::vector<Time>& emissions,
                               const std::vector<Time>& releases) {
  const auto feasible = [&](std::size_t k) {
    for (std::size_t j = 0; j < k; ++j) {
      if (emissions[j] < releases[k - 1 - j]) return false;
    }
    return true;
  };
  std::size_t lo = 0;
  std::size_t hi = emissions.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

void require_uniform_sizes(const Workload& workload) {
  MST_REQUIRE(workload.uniform_sizes(),
              "the backward construction is only optimal for identical task sizes");
}

}  // namespace

std::size_t ChainScheduler::count_within(const Chain& chain, Time t_lim,
                                         const Workload& workload, std::size_t cap,
                                         ChainCountScratch& scratch) {
  require_uniform_sizes(workload);
  const std::size_t k_cap = std::min(cap, workload.count());
  if (!workload.has_release_dates()) return count_within(chain, t_lim, k_cap, scratch);
  scratch.emissions.clear();
  count_within_emissions(chain, t_lim, k_cap, scratch, scratch.emissions);
  return max_released_count(scratch.emissions, workload.releases());
}

ChainSchedule ChainScheduler::schedule_within(const Chain& chain, Time t_lim,
                                              const Workload& workload, std::size_t cap) {
  require_uniform_sizes(workload);
  if (!workload.has_release_dates()) {
    return schedule_within(chain, t_lim, std::min(cap, workload.count()));
  }
  ChainCountScratch scratch;
  const std::size_t k = count_within(chain, t_lim, workload, cap, scratch);
  // The k-task backward build is the prefix of the counting construction, so
  // its emissions are exactly the ones the count proved release-feasible.
  return build_backward(chain, t_lim, k, /*stop_on_negative=*/true);
}

ChainSchedule ChainScheduler::schedule(const Chain& chain, const Workload& workload) {
  require_uniform_sizes(workload);
  MST_REQUIRE(workload.count() >= 1, "schedule needs at least one task");
  const std::size_t n = workload.count();
  if (!workload.has_release_dates()) return schedule(chain, n);

  // Minimal horizon admitting all n tasks.  The all-on-first-processor
  // schedule shifted past the last release always fits, so the upper bound
  // is feasible and the search is well defined; monotonicity of the count in
  // the horizon makes it exact.
  ChainCountScratch scratch;
  Time lo = 0;
  Time hi = workload.last_release() + chain.t_infinity(n);
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (count_within(chain, mid, workload, n, scratch) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ChainSchedule result = schedule_within(chain, lo, workload, n);
  MST_ASSERT(result.tasks.size() == n);
  // No -C^1_1 shift: release dates are absolute, the window is the schedule.
  return result;
}

void ChainScheduler::schedule_into(const Chain& chain, std::size_t n,
                                   ChainCountScratch& scratch, ChainSchedule& out) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  const Time horizon = chain.t_infinity(n);
  build_backward_into(chain, horizon, n, /*stop_on_negative=*/false, scratch, out);
  MST_ASSERT(out.tasks.size() == n);
  const Time first_emission = out.tasks.front().emissions.front();
  MST_ASSERT(first_emission >= 0);
  out.shift(-first_emission);
}

void ChainScheduler::schedule_within_into(const Chain& chain, Time t_lim, std::size_t max_tasks,
                                          ChainCountScratch& scratch, ChainSchedule& out) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  build_backward_into(chain, t_lim, max_tasks, /*stop_on_negative=*/true, scratch, out);
}

}  // namespace mst
