#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mst/platform/fork.hpp"
#include "mst/schedule/chain_schedule.hpp"

/// \file virtual_nodes.hpp
/// The single-task-node transformations of §6 (Fig 6) and §7 (Fig 7).
///
/// Both the fork algorithm and the spider algorithm reduce "how many tasks
/// fit in a window of length `T_lim`" to selecting *virtual single-task
/// nodes*.  A virtual node stands for "one more task on this source" and
/// carries:
///   * `comm` — the time its emission occupies the master's out-port, and
///   * `exec` — the time needed between the end of that emission and the
///     horizon for the task (and every task queued behind it on the same
///     source) to finish.
/// A selection is feasible iff the emissions can be sequenced on the
/// one-port master so that every node's emission completes by
/// `T_lim - exec` — a pure one-machine deadline problem.

namespace mst {

/// One virtual single-task node.
struct VirtualNode {
  std::size_t source = 0;  ///< fork slave index, or spider leg index
  std::size_t rank = 0;    ///< 0 = smallest exec on this source, increasing
  Time comm = 0;           ///< master out-port occupation (`c` of the source)
  Time exec = 0;           ///< processing time of the node (Fig 6/7 label)

  /// Latest completion time of this node's emission, within a window of
  /// length `t_lim`.
  [[nodiscard]] Time deadline(Time t_lim) const { return t_lim - exec; }

  friend bool operator==(const VirtualNode&, const VirtualNode&) = default;
};

std::string to_string(const VirtualNode& node);

/// Fig 6 expansion of one fork slave `(c, w)`: nodes with processing times
/// `w, w + m, w + 2m, …` where `m = max(c, w)`.  The node with exec
/// `w + q·m` covers the case "this slave executes `q+1` tasks": counting
/// backward from the horizon, the task whose communication ends at
/// `T_lim - (w + q·m)` still leaves room for the `q` tasks behind it —
/// whether the slave is compute-bound (`m = w`, executions back-to-back) or
/// link-bound (`m = c`, arrivals pace the executions).
///
/// Only nodes that could ever be scheduled are generated
/// (`exec + c <= t_lim`), at most `max_per_slave` of them.
std::vector<VirtualNode> expand_fork_slave(const Processor& slave, std::size_t slave_index,
                                           Time t_lim, std::size_t max_per_slave);

/// All slaves of a fork (concatenated `expand_fork_slave`).
std::vector<VirtualNode> expand_fork(const Fork& fork, Time t_lim, std::size_t max_per_slave);

/// Fig 7 expansion of one spider leg: `leg_schedule` must be the decision-
/// form chain schedule of the leg for the window `t_lim` (tasks in ascending
/// first-emission order).  Task with first emission `C_1` becomes a node
/// with `comm = c_1` (the leg's first-link latency) and
/// `exec = t_lim - C_1 - c_1`: emitting it by `C_1 + c_1` guarantees — by
/// the suffix-optimality of the backward construction — that it and every
/// later task of the leg can still finish by `t_lim` (Lemma 4).
std::vector<VirtualNode> expand_leg(const ChainSchedule& leg_schedule, std::size_t leg_index,
                                    Time t_lim);

}  // namespace mst
