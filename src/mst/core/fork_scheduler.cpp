#include "mst/core/fork_scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "mst/common/assert.hpp"
#include "mst/core/moore_hodgson.hpp"
#include "mst/core/virtual_nodes.hpp"

namespace mst {

namespace {

/// Realize a per-slave task-count vector as an actual fork schedule: slave
/// `i` with count `k` uses its virtual nodes of ranks `0..k-1` (Fig 6),
/// emissions run EDD back-to-back from 0, executions queue FIFO per slave.
ForkSchedule realize(const Fork& fork, Time t_lim, const std::vector<std::size_t>& counts) {
  struct Pending {
    std::size_t slave;
    Time deadline;  // emission completion deadline: t_lim - exec
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const auto nodes = expand_fork_slave(fork.slave(i), i, t_lim, counts[i]);
    MST_ASSERT(nodes.size() == counts[i]);
    for (const VirtualNode& node : nodes) pending.push_back({i, node.deadline(t_lim)});
  }
  std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.slave < b.slave;
  });

  ForkSchedule schedule{fork, {}};
  std::vector<Time> slave_free(fork.size(), 0);
  Time port = 0;
  for (const Pending& item : pending) {
    const Processor& slave = fork.slave(item.slave);
    const Time emission = port;
    port += slave.comm;
    MST_ASSERT(port <= item.deadline);
    const Time arrival = emission + slave.comm;
    const Time start = std::max(arrival, slave_free[item.slave]);
    slave_free[item.slave] = start + slave.work;
    MST_ASSERT(slave_free[item.slave] <= t_lim);
    schedule.tasks.push_back(ForkTask{item.slave, emission, start});
  }
  return schedule;
}

}  // namespace

ForkSchedule ForkScheduler::schedule_within(const Fork& fork, Time t_lim, std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  const std::vector<VirtualNode> nodes = expand_fork(fork, t_lim, cap);

  // Optimal node selection on the master port.
  std::vector<DeadlineJob> jobs;
  jobs.reserve(nodes.size());
  for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
    jobs.push_back({nodes[idx].comm, nodes[idx].deadline(t_lim), idx});
  }
  std::vector<std::size_t> picked = moore_hodgson(std::move(jobs));

  // Normalize per slave to the smallest-exec prefix; only counts matter.
  std::vector<std::size_t> counts(fork.size(), 0);
  for (std::size_t idx : picked) ++counts[nodes[idx].source];

  // Global cap: Moore–Hodgson sees `cap` nodes per slave, so the total can
  // exceed `cap`; trim greedily from the slaves whose *next removed* node is
  // the hardest (largest exec) — removal never breaks feasibility.
  std::size_t total = std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  while (total > cap) {
    std::size_t worst = fork.size();
    Time worst_exec = -1;
    for (std::size_t i = 0; i < fork.size(); ++i) {
      if (counts[i] == 0) continue;
      const Time exec =
          fork.slave(i).work + static_cast<Time>(counts[i] - 1) * fork.cadence(i);
      if (exec > worst_exec) {
        worst_exec = exec;
        worst = i;
      }
    }
    MST_ASSERT(worst < fork.size());
    --counts[worst];
    --total;
  }

  return realize(fork, t_lim, counts);
}

std::size_t ForkScheduler::max_tasks(const Fork& fork, Time t_lim, std::size_t cap) {
  ForkCountScratch scratch;
  return count_within(fork, t_lim, cap, scratch);
}

namespace {

/// Appends the Fig 6 virtual nodes of every slave to `jobs` without
/// materializing per-slave vectors (same node set as `expand_fork`, ids in
/// the same order).  The counting paths below run warm-scratch only —
/// statically allocation-checked (dynamic twin: tests/test_counting.cpp).
// mstlint: zero-alloc
void append_fork_jobs(const Fork& fork, Time t_lim, std::size_t max_per_slave,
                      std::vector<DeadlineJob>& jobs) {
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& slave = fork.slave(i);
    const Time m = std::max(slave.comm, slave.work);
    for (std::size_t q = 0; q < max_per_slave; ++q) {
      const Time exec = slave.work + static_cast<Time>(q) * m;
      if (exec + slave.comm > t_lim) break;  // could never complete in the window
      jobs.push_back(DeadlineJob{slave.comm, t_lim - exec, jobs.size()});
    }
  }
}

void require_uniform_sizes(const Workload& workload) {
  MST_REQUIRE(workload.uniform_sizes(),
              "the virtual-node selection is only optimal for identical task sizes");
}

}  // namespace

std::size_t ForkScheduler::count_within(const Fork& fork, Time t_lim, std::size_t cap,
                                        ForkCountScratch& scratch) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  // The counting twin of `schedule_within`: identical node set, count-only
  // selection, and the same global cap (Moore–Hodgson sees up to `cap`
  // nodes per slave, so the picked total may exceed it; the materializing
  // path trims — which only ever reduces the total to `cap` — so `min`
  // reproduces it).
  scratch.jobs.clear();
  append_fork_jobs(fork, t_lim, cap, scratch.jobs);
  return std::min(moore_hodgson_count(scratch.jobs, scratch.heap), cap);
}

std::pair<std::size_t, Time> ForkScheduler::makespan_within(const Fork& fork, Time t_lim,
                                                            std::size_t cap,
                                                            ForkCountScratch& scratch) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  // (1) Node instance with an id → slave map.
  scratch.jobs.clear();
  scratch.slave_of.clear();
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& slave = fork.slave(i);
    const Time m = std::max(slave.comm, slave.work);
    for (std::size_t q = 0; q < cap; ++q) {
      const Time exec = slave.work + static_cast<Time>(q) * m;
      if (exec + slave.comm > t_lim) break;
      scratch.jobs.push_back(DeadlineJob{slave.comm, t_lim - exec, scratch.jobs.size()});
      scratch.slave_of.push_back(i);
    }
  }

  // (2) Moore–Hodgson with identities, mirroring `moore_hodgson` exactly:
  // EDD order (deadline, proc_time, id) and eviction of the max (proc, id).
  std::sort(scratch.jobs.begin(), scratch.jobs.end(),
            [](const DeadlineJob& a, const DeadlineJob& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              if (a.proc_time != b.proc_time) return a.proc_time < b.proc_time;
              return a.id < b.id;
            });
  scratch.sel_heap.clear();
  Time total = 0;
  for (const DeadlineJob& job : scratch.jobs) {
    scratch.sel_heap.emplace_back(job.proc_time, job.id);
    std::push_heap(scratch.sel_heap.begin(), scratch.sel_heap.end());
    total += job.proc_time;
    if (total > job.deadline) {
      std::pop_heap(scratch.sel_heap.begin(), scratch.sel_heap.end());
      total -= scratch.sel_heap.back().first;
      scratch.sel_heap.pop_back();
    }
  }

  // (3) Per-slave counts (the prefix normalization is count-preserving) and
  // the same global-cap trim as `schedule_within`.
  scratch.counts.assign(fork.size(), 0);
  for (const auto& [comm, id] : scratch.sel_heap) ++scratch.counts[scratch.slave_of[id]];
  std::size_t selected = scratch.sel_heap.size();
  while (selected > cap) {
    std::size_t worst = fork.size();
    Time worst_exec = -1;
    for (std::size_t i = 0; i < fork.size(); ++i) {
      if (scratch.counts[i] == 0) continue;
      const Time exec =
          fork.slave(i).work + static_cast<Time>(scratch.counts[i] - 1) * fork.cadence(i);
      if (exec > worst_exec) {
        worst_exec = exec;
        worst = i;
      }
    }
    MST_ASSERT(worst < fork.size());
    --scratch.counts[worst];
    --selected;
  }

  // (4) The EDD port sequencing of `realize`, makespan only.
  scratch.seq.clear();
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& slave = fork.slave(i);
    const Time m = std::max(slave.comm, slave.work);
    for (std::size_t q = 0; q < scratch.counts[i]; ++q) {
      scratch.seq.emplace_back(t_lim - (slave.work + static_cast<Time>(q) * m), i);
    }
  }
  std::sort(scratch.seq.begin(), scratch.seq.end());
  scratch.slave_free.assign(fork.size(), 0);
  Time port = 0;
  Time makespan = 0;
  for (const auto& [deadline, slave_index] : scratch.seq) {
    const Processor& slave = fork.slave(slave_index);
    const Time emission = port;
    port += slave.comm;
    MST_ASSERT(port <= deadline);
    const Time arrival = emission + slave.comm;
    const Time start = std::max(arrival, scratch.slave_free[slave_index]);
    scratch.slave_free[slave_index] = start + slave.work;
    MST_ASSERT(scratch.slave_free[slave_index] <= t_lim);
    makespan = std::max(makespan, scratch.slave_free[slave_index]);
  }
  return {selected, makespan};
}

std::size_t ForkScheduler::count_within(const Fork& fork, Time t_lim, const Workload& workload,
                                        std::size_t cap, ForkCountScratch& scratch) {
  require_uniform_sizes(workload);
  const std::size_t k_cap = std::min(cap, workload.count());
  if (!workload.has_release_dates()) return count_within(fork, t_lim, k_cap, scratch);
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  scratch.jobs.clear();
  append_fork_jobs(fork, t_lim, k_cap, scratch.jobs);
  return moore_hodgson_released_count(scratch.jobs, workload.releases(), k_cap, scratch.dp);
}
// mstlint: zero-alloc-end

ForkSchedule ForkScheduler::schedule_within(const Fork& fork, Time t_lim,
                                            const Workload& workload, std::size_t cap) {
  require_uniform_sizes(workload);
  if (!workload.has_release_dates()) {
    return schedule_within(fork, t_lim, std::min(cap, workload.count()));
  }
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  const std::size_t k_cap = std::min(cap, workload.count());
  const std::vector<VirtualNode> nodes = expand_fork(fork, t_lim, k_cap);
  std::vector<DeadlineJob> jobs;
  jobs.reserve(nodes.size());
  for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
    jobs.push_back({nodes[idx].comm, nodes[idx].deadline(t_lim), idx});
  }
  const std::vector<std::size_t> picked =
      moore_hodgson_released(std::move(jobs), workload.releases(), k_cap);

  // Replay the DP's own EDD sequence: position j's emission starts no
  // earlier than the j-th smallest release date, and the DP proved every
  // completion meets its chosen node's deadline.  (Re-sorting after a
  // normalization swap is NOT safe under positional releases — a job moved
  // to a later position also inherits a later release.)  Per slave, the
  // chosen ranks arrive in descending order, so the c-th arriving task has
  // at least as many virtual slots behind it as tasks actually follow —
  // the standard Fig 6 induction still bounds every completion by `t_lim`.
  const std::vector<Time>& releases = workload.releases();
  ForkSchedule schedule{fork, {}};
  std::vector<Time> slave_free(fork.size(), 0);
  Time port = 0;
  for (std::size_t position = 0; position < picked.size(); ++position) {
    const VirtualNode& node = nodes[picked[position]];
    const Processor& slave = fork.slave(node.source);
    const Time emission = std::max(port, releases[position]);
    port = emission + slave.comm;
    MST_ASSERT(port <= node.deadline(t_lim));
    const Time arrival = emission + slave.comm;
    const Time start = std::max(arrival, slave_free[node.source]);
    slave_free[node.source] = start + slave.work;
    MST_ASSERT(slave_free[node.source] <= t_lim);
    schedule.tasks.push_back(ForkTask{node.source, emission, start});
  }
  return schedule;
}

ForkSchedule ForkScheduler::schedule(const Fork& fork, const Workload& workload) {
  require_uniform_sizes(workload);
  MST_REQUIRE(workload.count() >= 1, "schedule needs at least one task");
  const std::size_t n = workload.count();
  if (!workload.has_release_dates()) return schedule(fork, n);

  // Minimal horizon: the single-best-slave pipeline shifted past the last
  // release is always feasible, so the upper bound holds.
  Time hi = kTimeInfinity;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& s = fork.slave(i);
    hi = std::min(hi, s.comm + static_cast<Time>(n - 1) * fork.cadence(i) + s.work);
  }
  hi += workload.last_release();
  Time lo = 0;
  ForkCountScratch scratch;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (count_within(fork, mid, workload, n, scratch) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ForkSchedule result = schedule_within(fork, lo, workload, n);
  MST_ASSERT(result.tasks.size() == n);
  return result;
}

ForkSchedule ForkScheduler::schedule(const Fork& fork, std::size_t n) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  // Upper bound: all n tasks on the single best slave.
  Time hi = kTimeInfinity;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& s = fork.slave(i);
    const Time t = s.comm + static_cast<Time>(n - 1) * fork.cadence(i) + s.work;
    hi = std::min(hi, t);
  }
  Time lo = 0;
  // Monotone predicate: max_tasks(t) >= n.
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (max_tasks(fork, mid, n) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ForkSchedule result = schedule_within(fork, lo, n);
  MST_ASSERT(result.tasks.size() == n);
  return result;
}

Time ForkScheduler::makespan(const Fork& fork, std::size_t n) {
  return schedule(fork, n).makespan();
}

// Scratch-reusing materialization.  Steps (1)–(3) are the `makespan_within`
// pipeline verbatim (same selection, same trim); step (4) rebuilds
// `out.tasks` in place — `ForkTask` is trivially destructible, so
// clear()+push_back never touches the heap within warm capacity.  Equality
// with `schedule_within` holds because `realize`'s pending list is the same
// (deadline, slave) multiset as `scratch.seq` — per slave the ranks
// `0..counts-1` with deadline `t_lim - exec` — sorted by the same key, and
// exec values are distinct per slave (work > 0), so the order is total.
// mstlint: zero-alloc
void ForkScheduler::schedule_within_into(const Fork& fork, Time t_lim, std::size_t cap,
                                         ForkCountScratch& scratch, ForkSchedule& out) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  // (1) Node instance with an id → slave map.
  scratch.jobs.clear();
  scratch.slave_of.clear();
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& slave = fork.slave(i);
    const Time m = std::max(slave.comm, slave.work);
    for (std::size_t q = 0; q < cap; ++q) {
      const Time exec = slave.work + static_cast<Time>(q) * m;
      if (exec + slave.comm > t_lim) break;
      scratch.jobs.push_back(DeadlineJob{slave.comm, t_lim - exec, scratch.jobs.size()});
      scratch.slave_of.push_back(i);
    }
  }

  // (2) Moore–Hodgson with identities, mirroring `moore_hodgson` exactly.
  std::sort(scratch.jobs.begin(), scratch.jobs.end(),
            [](const DeadlineJob& a, const DeadlineJob& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              if (a.proc_time != b.proc_time) return a.proc_time < b.proc_time;
              return a.id < b.id;
            });
  scratch.sel_heap.clear();
  Time total = 0;
  for (const DeadlineJob& job : scratch.jobs) {
    scratch.sel_heap.emplace_back(job.proc_time, job.id);
    std::push_heap(scratch.sel_heap.begin(), scratch.sel_heap.end());
    total += job.proc_time;
    if (total > job.deadline) {
      std::pop_heap(scratch.sel_heap.begin(), scratch.sel_heap.end());
      total -= scratch.sel_heap.back().first;
      scratch.sel_heap.pop_back();
    }
  }

  // (3) Per-slave counts and the global-cap trim of `schedule_within`.
  scratch.counts.assign(fork.size(), 0);
  for (const auto& [comm, id] : scratch.sel_heap) ++scratch.counts[scratch.slave_of[id]];
  std::size_t selected = scratch.sel_heap.size();
  while (selected > cap) {
    std::size_t worst = fork.size();
    Time worst_exec = -1;
    for (std::size_t i = 0; i < fork.size(); ++i) {
      if (scratch.counts[i] == 0) continue;
      const Time exec =
          fork.slave(i).work + static_cast<Time>(scratch.counts[i] - 1) * fork.cadence(i);
      if (exec > worst_exec) {
        worst_exec = exec;
        worst = i;
      }
    }
    MST_ASSERT(worst < fork.size());
    --scratch.counts[worst];
    --selected;
  }

  // (4) The EDD port sequencing of `realize`, materialized in place.
  scratch.seq.clear();
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& slave = fork.slave(i);
    const Time m = std::max(slave.comm, slave.work);
    for (std::size_t q = 0; q < scratch.counts[i]; ++q) {
      scratch.seq.emplace_back(t_lim - (slave.work + static_cast<Time>(q) * m), i);
    }
  }
  std::sort(scratch.seq.begin(), scratch.seq.end());
  out.fork = fork;  // copy-assign reuses the slave buffer when warm
  out.tasks.clear();
  scratch.slave_free.assign(fork.size(), 0);
  Time port = 0;
  for (const auto& [deadline, slave_index] : scratch.seq) {
    const Processor& slave = fork.slave(slave_index);
    const Time emission = port;
    port += slave.comm;
    MST_ASSERT(port <= deadline);
    const Time arrival = emission + slave.comm;
    const Time start = std::max(arrival, scratch.slave_free[slave_index]);
    scratch.slave_free[slave_index] = start + slave.work;
    MST_ASSERT(scratch.slave_free[slave_index] <= t_lim);
    out.tasks.push_back(ForkTask{slave_index, emission, start});
  }
  MST_ASSERT(out.tasks.size() == selected);
}
// mstlint: zero-alloc-end

void ForkScheduler::schedule_into(const Fork& fork, std::size_t n, ForkCountScratch& scratch,
                                  ForkSchedule& out) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  // Upper bound: all n tasks on the single best slave.
  Time hi = kTimeInfinity;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& s = fork.slave(i);
    const Time t = s.comm + static_cast<Time>(n - 1) * fork.cadence(i) + s.work;
    hi = std::min(hi, t);
  }
  Time lo = 0;
  // Same monotone predicate as `schedule(fork, n)`, probed through the one
  // warm scratch instead of a fresh `max_tasks` scratch per probe.
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (count_within(fork, mid, n, scratch) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  schedule_within_into(fork, lo, n, scratch, out);
  MST_ASSERT(out.tasks.size() == n);
}

namespace {

/// Shared engine for the §6 greedy: returns the per-slave counts it
/// selects.
std::vector<std::size_t> greedy_counts(const Fork& fork, Time t_lim, std::size_t cap) {
  // §6: processors sorted by ascending communication times, ties broken by
  // ascending processing times.
  std::vector<std::size_t> order(fork.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Processor& pa = fork.slave(a);
    const Processor& pb = fork.slave(b);
    if (pa.comm != pb.comm) return pa.comm < pb.comm;
    if (pa.work != pb.work) return pa.work < pb.work;
    return a < b;
  });

  std::vector<std::size_t> counts(fork.size(), 0);
  std::vector<DeadlineJob> selected;
  std::size_t total = 0;
  for (std::size_t i : order) {
    const auto nodes = expand_fork_slave(fork.slave(i), i, t_lim, cap);
    for (const VirtualNode& node : nodes) {
      if (total >= cap) return counts;
      std::vector<DeadlineJob> trial = selected;
      trial.push_back({node.comm, node.deadline(t_lim), total});
      if (!edd_feasible(trial)) break;  // rank q failed; rank q+1 is strictly harder
      selected = std::move(trial);
      ++counts[i];
      ++total;
    }
  }
  return counts;
}

}  // namespace

std::size_t ForkScheduler::greedy_max_tasks(const Fork& fork, Time t_lim, std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  std::size_t total = 0;
  for (std::size_t c : greedy_counts(fork, t_lim, cap)) total += c;
  return total;
}

ForkSchedule ForkScheduler::greedy_schedule_within(const Fork& fork, Time t_lim,
                                                   std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  return realize(fork, t_lim, greedy_counts(fork, t_lim, cap));
}

}  // namespace mst
