#include "mst/core/fork_scheduler.hpp"

#include <algorithm>
#include <numeric>

#include "mst/common/assert.hpp"
#include "mst/core/moore_hodgson.hpp"
#include "mst/core/virtual_nodes.hpp"

namespace mst {

namespace {

/// Realize a per-slave task-count vector as an actual fork schedule: slave
/// `i` with count `k` uses its virtual nodes of ranks `0..k-1` (Fig 6),
/// emissions run EDD back-to-back from 0, executions queue FIFO per slave.
ForkSchedule realize(const Fork& fork, Time t_lim, const std::vector<std::size_t>& counts) {
  struct Pending {
    std::size_t slave;
    Time deadline;  // emission completion deadline: t_lim - exec
  };
  std::vector<Pending> pending;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const auto nodes = expand_fork_slave(fork.slave(i), i, t_lim, counts[i]);
    MST_ASSERT(nodes.size() == counts[i]);
    for (const VirtualNode& node : nodes) pending.push_back({i, node.deadline(t_lim)});
  }
  std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.slave < b.slave;
  });

  ForkSchedule schedule{fork, {}};
  std::vector<Time> slave_free(fork.size(), 0);
  Time port = 0;
  for (const Pending& item : pending) {
    const Processor& slave = fork.slave(item.slave);
    const Time emission = port;
    port += slave.comm;
    MST_ASSERT(port <= item.deadline);
    const Time arrival = emission + slave.comm;
    const Time start = std::max(arrival, slave_free[item.slave]);
    slave_free[item.slave] = start + slave.work;
    MST_ASSERT(slave_free[item.slave] <= t_lim);
    schedule.tasks.push_back(ForkTask{item.slave, emission, start});
  }
  return schedule;
}

}  // namespace

ForkSchedule ForkScheduler::schedule_within(const Fork& fork, Time t_lim, std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  const std::vector<VirtualNode> nodes = expand_fork(fork, t_lim, cap);

  // Optimal node selection on the master port.
  std::vector<DeadlineJob> jobs;
  jobs.reserve(nodes.size());
  for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
    jobs.push_back({nodes[idx].comm, nodes[idx].deadline(t_lim), idx});
  }
  std::vector<std::size_t> picked = moore_hodgson(std::move(jobs));

  // Normalize per slave to the smallest-exec prefix; only counts matter.
  std::vector<std::size_t> counts(fork.size(), 0);
  for (std::size_t idx : picked) ++counts[nodes[idx].source];

  // Global cap: Moore–Hodgson sees `cap` nodes per slave, so the total can
  // exceed `cap`; trim greedily from the slaves whose *next removed* node is
  // the hardest (largest exec) — removal never breaks feasibility.
  std::size_t total = std::accumulate(counts.begin(), counts.end(), std::size_t{0});
  while (total > cap) {
    std::size_t worst = fork.size();
    Time worst_exec = -1;
    for (std::size_t i = 0; i < fork.size(); ++i) {
      if (counts[i] == 0) continue;
      const Time exec =
          fork.slave(i).work + static_cast<Time>(counts[i] - 1) * fork.cadence(i);
      if (exec > worst_exec) {
        worst_exec = exec;
        worst = i;
      }
    }
    MST_ASSERT(worst < fork.size());
    --counts[worst];
    --total;
  }

  return realize(fork, t_lim, counts);
}

std::size_t ForkScheduler::max_tasks(const Fork& fork, Time t_lim, std::size_t cap) {
  return schedule_within(fork, t_lim, cap).tasks.size();
}

ForkSchedule ForkScheduler::schedule(const Fork& fork, std::size_t n) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  // Upper bound: all n tasks on the single best slave.
  Time hi = kTimeInfinity;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    const Processor& s = fork.slave(i);
    const Time t = s.comm + static_cast<Time>(n - 1) * fork.cadence(i) + s.work;
    hi = std::min(hi, t);
  }
  Time lo = 0;
  // Monotone predicate: max_tasks(t) >= n.
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (max_tasks(fork, mid, n) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ForkSchedule result = schedule_within(fork, lo, n);
  MST_ASSERT(result.tasks.size() == n);
  return result;
}

Time ForkScheduler::makespan(const Fork& fork, std::size_t n) {
  return schedule(fork, n).makespan();
}

namespace {

/// Shared engine for the §6 greedy: returns the per-slave counts it
/// selects.
std::vector<std::size_t> greedy_counts(const Fork& fork, Time t_lim, std::size_t cap) {
  // §6: processors sorted by ascending communication times, ties broken by
  // ascending processing times.
  std::vector<std::size_t> order(fork.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Processor& pa = fork.slave(a);
    const Processor& pb = fork.slave(b);
    if (pa.comm != pb.comm) return pa.comm < pb.comm;
    if (pa.work != pb.work) return pa.work < pb.work;
    return a < b;
  });

  std::vector<std::size_t> counts(fork.size(), 0);
  std::vector<DeadlineJob> selected;
  std::size_t total = 0;
  for (std::size_t i : order) {
    const auto nodes = expand_fork_slave(fork.slave(i), i, t_lim, cap);
    for (const VirtualNode& node : nodes) {
      if (total >= cap) return counts;
      std::vector<DeadlineJob> trial = selected;
      trial.push_back({node.comm, node.deadline(t_lim), total});
      if (!edd_feasible(trial)) break;  // rank q failed; rank q+1 is strictly harder
      selected = std::move(trial);
      ++counts[i];
      ++total;
    }
  }
  return counts;
}

}  // namespace

std::size_t ForkScheduler::greedy_max_tasks(const Fork& fork, Time t_lim, std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  std::size_t total = 0;
  for (std::size_t c : greedy_counts(fork, t_lim, cap)) total += c;
  return total;
}

ForkSchedule ForkScheduler::greedy_schedule_within(const Fork& fork, Time t_lim,
                                                   std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  return realize(fork, t_lim, greedy_counts(fork, t_lim, cap));
}

}  // namespace mst
