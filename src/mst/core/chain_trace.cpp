#include "mst/core/chain_trace.hpp"

#include <algorithm>
#include <optional>

#include "mst/common/assert.hpp"

namespace mst {

ChainTrace trace_backward(const Chain& chain, Time horizon, std::size_t max_tasks,
                          bool stop_on_negative) {
  const std::size_t p = chain.size();
  ChainTrace trace;
  trace.chain = chain;
  trace.horizon = horizon;

  std::vector<Time> hull(p, horizon);
  std::vector<Time> occupancy(p, horizon);
  std::vector<Time> candidate(p, 0);
  std::vector<ChainTask> built;

  while (built.size() < max_tasks) {
    ChainTraceStep step;
    step.hull_before = hull;
    step.occupancy_before = occupancy;
    step.candidates.resize(p);

    std::optional<CommVector> best;
    std::size_t best_dest = 0;
    for (std::size_t k1 = p; k1 >= 1; --k1) {
      const std::size_t k = k1 - 1;
      candidate[k] =
          std::min(occupancy[k] - chain.work(k) - chain.comm(k), hull[k] - chain.comm(k));
      for (std::size_t j1 = k; j1 >= 1; --j1) {
        const std::size_t j = j1 - 1;
        candidate[j] = std::min(candidate[j + 1] - chain.comm(j), hull[j] - chain.comm(j));
      }
      CommVector vec(candidate.begin(), candidate.begin() + static_cast<std::ptrdiff_t>(k) + 1);
      step.candidates[k] = vec;
      if (!best || precedes(*best, vec)) {
        best = std::move(vec);
        best_dest = k;
      }
    }
    MST_ASSERT(best.has_value());
    if (stop_on_negative && best->front() < 0) break;

    const std::size_t dest = best->size() - 1;
    MST_ASSERT(dest == best_dest);
    const Time start = occupancy[dest] - chain.work(dest);
    occupancy[dest] = start;
    for (std::size_t k = 0; k <= dest; ++k) hull[k] = (*best)[k];

    step.chosen = dest;
    step.placed = ChainTask{dest, start, *best};
    built.push_back(step.placed);
    trace.steps.push_back(std::move(step));
  }

  std::reverse(built.begin(), built.end());
  trace.schedule = ChainSchedule{chain, std::move(built)};
  return trace;
}

ChainTrace trace_schedule(const Chain& chain, std::size_t n) {
  MST_REQUIRE(n >= 1, "trace needs at least one task");
  ChainTrace trace = trace_backward(chain, chain.t_infinity(n), n, /*stop_on_negative=*/false);
  MST_ASSERT(trace.schedule.tasks.size() == n);
  const Time shift = trace.schedule.tasks.front().emissions.front();
  MST_ASSERT(shift >= 0);
  trace.schedule.shift(-shift);
  return trace;
}

}  // namespace mst
