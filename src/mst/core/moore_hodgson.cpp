#include "mst/core/moore_hodgson.hpp"

#include <algorithm>
#include <queue>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Deterministic EDD order.
bool edd_less(const DeadlineJob& a, const DeadlineJob& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.proc_time != b.proc_time) return a.proc_time < b.proc_time;
  return a.id < b.id;
}

}  // namespace

std::vector<std::size_t> moore_hodgson(std::vector<DeadlineJob> jobs) {
  std::sort(jobs.begin(), jobs.end(), edd_less);

  // Selected jobs as a max-heap on processing time: when the running total
  // overshoots a deadline, evicting the longest selected job is optimal
  // (Moore 1968).
  struct HeapEntry {
    Time proc_time;
    std::size_t id;
    bool operator<(const HeapEntry& other) const {
      if (proc_time != other.proc_time) return proc_time < other.proc_time;
      return id < other.id;  // deterministic eviction among equals
    }
  };
  std::priority_queue<HeapEntry> selected;
  Time total = 0;
  for (const DeadlineJob& job : jobs) {
    selected.push({job.proc_time, job.id});
    total += job.proc_time;
    if (total > job.deadline) {
      const HeapEntry evicted = selected.top();
      selected.pop();
      total -= evicted.proc_time;
    }
  }

  std::vector<std::size_t> ids;
  ids.reserve(selected.size());
  while (!selected.empty()) {
    ids.push_back(selected.top().id);
    selected.pop();
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t moore_hodgson_count(std::vector<DeadlineJob>& jobs, std::vector<Time>& heap_scratch) {
  std::sort(jobs.begin(), jobs.end(), edd_less);

  // Same eviction rule as `moore_hodgson`, but the heap only needs the
  // processing times: the count is invariant under which of several
  // longest-job ties gets evicted.
  heap_scratch.clear();
  Time total = 0;
  for (const DeadlineJob& job : jobs) {
    heap_scratch.push_back(job.proc_time);
    std::push_heap(heap_scratch.begin(), heap_scratch.end());
    total += job.proc_time;
    if (total > job.deadline) {
      std::pop_heap(heap_scratch.begin(), heap_scratch.end());
      total -= heap_scratch.back();
      heap_scratch.pop_back();
    }
  }
  return heap_scratch.size();
}

bool edd_feasible(std::vector<DeadlineJob> jobs) {
  std::sort(jobs.begin(), jobs.end(), edd_less);
  Time total = 0;
  for (const DeadlineJob& job : jobs) {
    total += job.proc_time;
    if (total > job.deadline) return false;
  }
  return true;
}

std::vector<Time> sequence_edd(const std::vector<DeadlineJob>& jobs) {
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return edd_less(jobs[a], jobs[b]); });

  std::vector<Time> starts(jobs.size(), 0);
  Time cursor = 0;
  for (std::size_t idx : order) {
    starts[idx] = cursor;
    cursor += jobs[idx].proc_time;
    MST_ASSERT(cursor <= jobs[idx].deadline);
  }
  return starts;
}

}  // namespace mst
