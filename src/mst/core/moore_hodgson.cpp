#include "mst/core/moore_hodgson.hpp"

#include <algorithm>
#include <queue>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Deterministic EDD order.
bool edd_less(const DeadlineJob& a, const DeadlineJob& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.proc_time != b.proc_time) return a.proc_time < b.proc_time;
  return a.id < b.id;
}

}  // namespace

std::vector<std::size_t> moore_hodgson(std::vector<DeadlineJob> jobs) {
  std::sort(jobs.begin(), jobs.end(), edd_less);

  // Selected jobs as a max-heap on processing time: when the running total
  // overshoots a deadline, evicting the longest selected job is optimal
  // (Moore 1968).
  struct HeapEntry {
    Time proc_time;
    std::size_t id;
    bool operator<(const HeapEntry& other) const {
      if (proc_time != other.proc_time) return proc_time < other.proc_time;
      return id < other.id;  // deterministic eviction among equals
    }
  };
  std::priority_queue<HeapEntry> selected;
  Time total = 0;
  for (const DeadlineJob& job : jobs) {
    selected.push({job.proc_time, job.id});
    total += job.proc_time;
    if (total > job.deadline) {
      const HeapEntry evicted = selected.top();
      selected.pop();
      total -= evicted.proc_time;
    }
  }

  std::vector<std::size_t> ids;
  ids.reserve(selected.size());
  while (!selected.empty()) {
    ids.push_back(selected.top().id);
    selected.pop();
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// The count-only twins below mutate caller-owned scratch only — statically
// allocation-checked (dynamic twin: tests/test_counting.cpp).
// mstlint: zero-alloc
std::size_t moore_hodgson_count(std::vector<DeadlineJob>& jobs, std::vector<Time>& heap_scratch) {
  std::sort(jobs.begin(), jobs.end(), edd_less);

  // Same eviction rule as `moore_hodgson`, but the heap only needs the
  // processing times: the count is invariant under which of several
  // longest-job ties gets evicted.
  heap_scratch.clear();
  Time total = 0;
  for (const DeadlineJob& job : jobs) {
    heap_scratch.push_back(job.proc_time);
    std::push_heap(heap_scratch.begin(), heap_scratch.end());
    total += job.proc_time;
    if (total > job.deadline) {
      std::pop_heap(heap_scratch.begin(), heap_scratch.end());
      total -= heap_scratch.back();
      heap_scratch.pop_back();
    }
  }
  return heap_scratch.size();
}

std::size_t moore_hodgson_released_count(std::vector<DeadlineJob>& jobs,
                                         const std::vector<Time>& releases,
                                         std::size_t max_count, std::vector<Time>& dp_scratch) {
  std::sort(jobs.begin(), jobs.end(), edd_less);
  const std::size_t limit = std::min(max_count, releases.size());

  // dp[j]: minimal completion time of a feasible selection of j jobs from
  // the processed prefix, sequenced in EDD order with position j-1 starting
  // no earlier than releases[j-1].  In-place knapsack update (descending j).
  dp_scratch.assign(limit + 1, kTimeInfinity);
  dp_scratch[0] = 0;
  std::size_t best = 0;
  for (const DeadlineJob& job : jobs) {
    const std::size_t top = std::min(best + 1, limit);
    for (std::size_t j = top; j >= 1; --j) {
      if (dp_scratch[j - 1] == kTimeInfinity) continue;
      const Time start = std::max(dp_scratch[j - 1], releases[j - 1]);
      const Time finish = start + job.proc_time;
      if (finish <= job.deadline && finish < dp_scratch[j]) {
        dp_scratch[j] = finish;
        if (j > best) best = j;
      }
    }
  }
  return best;
}
// mstlint: zero-alloc-end

std::vector<std::size_t> moore_hodgson_released(std::vector<DeadlineJob> jobs,
                                                const std::vector<Time>& releases,
                                                std::size_t max_count) {
  std::sort(jobs.begin(), jobs.end(), edd_less);
  const std::size_t limit = std::min(max_count, releases.size());
  const std::size_t n = jobs.size();

  // Full (prefix, count) table so one maximum selection can be backtracked:
  // dp[i][j] after the first i jobs in EDD order.
  std::vector<std::vector<Time>> dp(n + 1, std::vector<Time>(limit + 1, kTimeInfinity));
  dp[0][0] = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    const DeadlineJob& job = jobs[i - 1];
    dp[i] = dp[i - 1];
    for (std::size_t j = 1; j <= limit; ++j) {
      if (dp[i - 1][j - 1] == kTimeInfinity) continue;
      const Time finish = std::max(dp[i - 1][j - 1], releases[j - 1]) + job.proc_time;
      if (finish <= job.deadline && finish < dp[i][j]) dp[i][j] = finish;
    }
  }

  std::size_t count = limit;
  while (count > 0 && dp[n][count] == kTimeInfinity) --count;

  // Backtrack: job i-1 was taken at position j iff the value cannot come
  // from the untaken branch (ties prefer untaken — either choice is valid).
  std::vector<std::size_t> chosen(count);
  std::size_t j = count;
  for (std::size_t i = n; i >= 1 && j >= 1; --i) {
    if (dp[i][j] == dp[i - 1][j]) continue;
    chosen[j - 1] = jobs[i - 1].id;
    --j;
  }
  MST_ASSERT(j == 0);
  return chosen;
}

bool edd_feasible(std::vector<DeadlineJob> jobs) {
  std::sort(jobs.begin(), jobs.end(), edd_less);
  Time total = 0;
  for (const DeadlineJob& job : jobs) {
    total += job.proc_time;
    if (total > job.deadline) return false;
  }
  return true;
}

std::vector<Time> sequence_edd(const std::vector<DeadlineJob>& jobs) {
  std::vector<std::size_t> order(jobs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return edd_less(jobs[a], jobs[b]); });

  std::vector<Time> starts(jobs.size(), 0);
  Time cursor = 0;
  for (std::size_t idx : order) {
    starts[idx] = cursor;
    cursor += jobs[idx].proc_time;
    MST_ASSERT(cursor <= jobs[idx].deadline);
  }
  return starts;
}

}  // namespace mst
