#include "mst/core/virtual_nodes.hpp"

#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

std::string to_string(const VirtualNode& node) {
  std::ostringstream os;
  os << "node{source=" << node.source << ", rank=" << node.rank << ", comm=" << node.comm
     << ", exec=" << node.exec << '}';
  return os.str();
}

std::vector<VirtualNode> expand_fork_slave(const Processor& slave, std::size_t slave_index,
                                           Time t_lim, std::size_t max_per_slave) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  std::vector<VirtualNode> nodes;
  const Time m = std::max(slave.comm, slave.work);
  for (std::size_t q = 0; q < max_per_slave; ++q) {
    const Time exec = slave.work + static_cast<Time>(q) * m;
    if (exec + slave.comm > t_lim) break;  // could never complete in the window
    nodes.push_back(VirtualNode{slave_index, q, slave.comm, exec});
  }
  return nodes;
}

std::vector<VirtualNode> expand_fork(const Fork& fork, Time t_lim, std::size_t max_per_slave) {
  std::vector<VirtualNode> nodes;
  for (std::size_t i = 0; i < fork.size(); ++i) {
    auto slave_nodes = expand_fork_slave(fork.slave(i), i, t_lim, max_per_slave);
    nodes.insert(nodes.end(), slave_nodes.begin(), slave_nodes.end());
  }
  return nodes;
}

std::vector<VirtualNode> expand_leg(const ChainSchedule& leg_schedule, std::size_t leg_index,
                                    Time t_lim) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  const Time c1 = leg_schedule.chain.comm(0);
  std::vector<VirtualNode> nodes;
  const std::size_t n = leg_schedule.tasks.size();
  nodes.reserve(n);
  // Tasks are in ascending first-emission order; the *latest* task has the
  // smallest exec, i.e. rank 0.
  for (std::size_t j = 0; j < n; ++j) {
    const ChainTask& t = leg_schedule.tasks[j];
    MST_REQUIRE(!t.emissions.empty(), "leg schedule task without emissions");
    const Time first = t.emissions.front();
    MST_ASSERT(first >= 0 && first + c1 <= t_lim);
    nodes.push_back(VirtualNode{leg_index, n - 1 - j, c1, t_lim - first - c1});
  }
  return nodes;
}

}  // namespace mst
