#pragma once

#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/moore_hodgson.hpp"
#include "mst/core/virtual_nodes.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file spider_scheduler.hpp
/// The paper's §7: optimal scheduling on spider graphs.
///
/// Pipeline for a window of length `T_lim` (the paper's 5-line algorithm):
///   (1) run the decision-form chain algorithm on every leg;
///   (2) turn every scheduled task into a virtual single-task node
///       (`comm = c_1` of the leg, `exec = T_lim − C¹ᵢ − c_1`, Fig 7);
///   (3) select a maximum feasible node set on the master's one-port
///       (the fork-graph step; Moore–Hodgson here);
///   (4) revert: a leg with `k` selected nodes executes the *last `k`
///       tasks* of its chain schedule — optimal for `k` tasks by the
///       backward construction (Lemma 4) — with master emissions moved to
///       the (earlier) times chosen in step (3), which is feasible by
///       Lemma 3.
/// The makespan form binary-searches `T_lim` over the monotone decision
/// form; total complexity stays polynomial (Theorem 2) and the result is
/// optimal (Theorem 3).

namespace mst {

/// The intermediate artifact of steps (1)–(2), exposed so tests and the
/// Fig 7 experiment can inspect the transformation itself.
struct SpiderTransformation {
  /// Decision-form chain schedule of each leg (tasks in ascending
  /// first-emission order).
  std::vector<ChainSchedule> leg_schedules;
  /// All virtual nodes, leg by leg; `source` is the leg index and nodes of
  /// one leg appear in ascending rank (descending exec matches ascending
  /// first-emission order of the leg schedule — rank 0 is the latest task).
  std::vector<VirtualNode> nodes;
};

/// Reusable buffers for `SpiderScheduler::count_within`.  Keep one per
/// thread; with warm buffers the whole spider count — per-leg backward
/// counting plus the Moore–Hodgson selection — runs without allocating.
struct SpiderCountScratch {
  ChainCountScratch chain;          ///< shared across legs
  std::vector<Time> emissions;      ///< one leg's first-link emissions
  std::vector<DeadlineJob> jobs;    ///< the fork-graph instance
  std::vector<Time> heap;           ///< Moore–Hodgson selection heap
  std::vector<Time> dp;             ///< positional-release selection DP row
};

/// Reusable buffers for the scratch-reusing materializing path
/// (`schedule_into` / `schedule_within_into`).  Extends the counting scratch
/// with pooled per-leg decision schedules and the step (3)–(4) working sets.
struct SpiderSolveScratch {
  SpiderCountScratch count;          ///< binary-search probes + leg builds
  std::vector<ChainSchedule> legs;   ///< pooled leg decision schedules
  std::vector<DeadlineJob> jobs;     ///< node instance in `transform` order
  std::vector<std::pair<Time, std::size_t>> sel_heap;  ///< (comm, id) eviction heap
  std::vector<std::size_t> leg_of;   ///< node id → leg index
  std::vector<std::size_t> counts;   ///< kept suffix length per leg
  /// Step (4) sequencing: (deadline, leg, task_index) — the tuple order is
  /// exactly the legacy `Chosen` comparator.
  std::vector<std::tuple<Time, std::size_t, std::size_t>> chosen;
};

class SpiderScheduler {
 public:
  /// Steps (1)-(2): per-leg schedules and the fork-graph instance (Fig 7).
  static SpiderTransformation transform(const Spider& spider, Time t_lim, std::size_t cap);

  /// Decision form: a feasible spider schedule of the maximum number of
  /// tasks (at most `cap`) completing by `t_lim`.
  static SpiderSchedule schedule_within(const Spider& spider, Time t_lim, std::size_t cap);

  /// Count-only decision form (private scratch; see `count_within`).
  static std::size_t max_tasks(const Spider& spider, Time t_lim, std::size_t cap);

  /// Allocation-free counting: runs the per-leg backward counting and the
  /// count-only Moore–Hodgson selection entirely in `scratch`, never
  /// materializing leg schedules or virtual-node vectors.  Returns exactly
  /// `schedule_within(spider, t_lim, cap).tasks.size()`.  Both the makespan
  /// form's binary search and the registry's `materialize == false` fast
  /// path run on this.
  static std::size_t count_within(const Spider& spider, Time t_lim, std::size_t cap,
                                  SpiderCountScratch& scratch);

  /// Makespan form: optimal schedule of exactly `n` tasks.
  static SpiderSchedule schedule(const Spider& spider, std::size_t n);

  /// Optimal makespan of `n` tasks.
  static Time makespan(const Spider& spider, std::size_t n);

  /// Workload decision form.  Identical workloads reduce to the methods
  /// above (capped at the workload count).  Release dates bind positionally
  /// on the master's one-port (the j-th emission in time order starts at or
  /// after the j-th smallest release), so step (3) becomes a
  /// positional-release selection (`moore_hodgson_released*`): Moore–Hodgson
  /// alone cannot model a machine whose availability depends on how many
  /// jobs were already selected, the DP can.  Steps (1), (2) and (4) are
  /// unchanged — the node deadlines still guarantee every selected emission
  /// completes no later than the leg schedule planned (Lemma 3), so the
  /// release-delayed re-sequencing stays legal.  Non-uniform sizes are
  /// rejected.
  static std::size_t count_within(const Spider& spider, Time t_lim, const Workload& workload,
                                  std::size_t cap, SpiderCountScratch& scratch);
  static SpiderSchedule schedule_within(const Spider& spider, Time t_lim,
                                        const Workload& workload, std::size_t cap);

  /// Workload makespan form: binary search of the minimal horizon over the
  /// release-aware count; the result keeps absolute times (no
  /// normalization — release dates pin the origin).
  static SpiderSchedule schedule(const Spider& spider, const Workload& workload);

  // -------------------------------------------------------------------------
  // Scratch-reusing materialization: bit-identical to the value-returning
  // forms (pinned by tests/test_zero_alloc.cpp), rebuilding `out` in place so
  // repeated solves on warm scratch perform zero heap allocations.

  /// In-place twin of `schedule_within(spider, t_lim, cap)`: per-leg builds
  /// through the chain `_into` path into pooled leg slots, virtual nodes
  /// enumerated in the exact `transform` order (leg-major, ascending first
  /// emission — node ids must match for Moore–Hodgson tie-breaking), then
  /// the identical selection / trim / EDD re-sequencing.
  static void schedule_within_into(const Spider& spider, Time t_lim, std::size_t cap,
                                   SpiderSolveScratch& scratch, SpiderSchedule& out);

  /// In-place twin of `schedule(spider, n)` (binary search + normalize).
  static void schedule_into(const Spider& spider, std::size_t n, SpiderSolveScratch& scratch,
                            SpiderSchedule& out);
};

}  // namespace mst
