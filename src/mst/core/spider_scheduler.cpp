#include "mst/core/spider_scheduler.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/moore_hodgson.hpp"

namespace mst {

SpiderTransformation SpiderScheduler::transform(const Spider& spider, Time t_lim,
                                                std::size_t cap) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  SpiderTransformation result;
  result.leg_schedules.reserve(spider.num_legs());
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    ChainSchedule leg_schedule = ChainScheduler::schedule_within(spider.leg(l), t_lim, cap);
    auto leg_nodes = expand_leg(leg_schedule, l, t_lim);
    result.nodes.insert(result.nodes.end(), leg_nodes.begin(), leg_nodes.end());
    result.leg_schedules.push_back(std::move(leg_schedule));
  }
  return result;
}

SpiderSchedule SpiderScheduler::schedule_within(const Spider& spider, Time t_lim,
                                                std::size_t cap) {
  const SpiderTransformation tf = transform(spider, t_lim, cap);

  // Step (3): optimal virtual-node selection on the master's one-port.
  std::vector<DeadlineJob> jobs;
  jobs.reserve(tf.nodes.size());
  for (std::size_t idx = 0; idx < tf.nodes.size(); ++idx) {
    jobs.push_back({tf.nodes[idx].comm, tf.nodes[idx].deadline(t_lim), idx});
  }
  const std::vector<std::size_t> picked = moore_hodgson(std::move(jobs));

  // Per-leg counts; normalize each leg to its smallest-exec nodes, i.e. the
  // *suffix* of the leg schedule (rank < count).  Swapping a selected node
  // for an unselected same-comm node with a later deadline keeps the
  // selection EDD-feasible, so counts are preserved.
  std::vector<std::size_t> counts(spider.num_legs(), 0);
  for (std::size_t idx : picked) ++counts[tf.nodes[idx].source];

  // Global cap: trim the hardest node (largest exec among each leg's next
  // removal candidate) until within cap.  Removing never breaks feasibility.
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  while (total > cap) {
    std::size_t worst_leg = spider.num_legs();
    Time worst_exec = -1;
    for (std::size_t l = 0; l < spider.num_legs(); ++l) {
      if (counts[l] == 0) continue;
      const std::size_t m = tf.leg_schedules[l].tasks.size();
      const ChainTask& t = tf.leg_schedules[l].tasks[m - counts[l]];  // earliest kept task
      const Time exec = t_lim - t.emissions.front() - spider.leg(l).comm(0);
      if (exec > worst_exec) {
        worst_exec = exec;
        worst_leg = l;
      }
    }
    MST_ASSERT(worst_leg < spider.num_legs());
    --counts[worst_leg];
    --total;
  }

  // Step (4): revert to a spider schedule.  Gather the suffix tasks with
  // their emission-completion deadlines, re-sequence the master emissions
  // EDD back-to-back from time 0, keep everything downstream untouched.
  struct Chosen {
    std::size_t leg;
    std::size_t task_index;  // into leg_schedules[leg].tasks
    Time deadline;           // original C_1 + c_1
  };
  std::vector<Chosen> chosen;
  chosen.reserve(total);
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    const ChainSchedule& ls = tf.leg_schedules[l];
    const std::size_t m = ls.tasks.size();
    const Time c1 = spider.leg(l).comm(0);
    for (std::size_t j = m - counts[l]; j < m; ++j) {
      chosen.push_back({l, j, ls.tasks[j].emissions.front() + c1});
    }
  }
  std::sort(chosen.begin(), chosen.end(), [](const Chosen& a, const Chosen& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (a.leg != b.leg) return a.leg < b.leg;
    return a.task_index < b.task_index;
  });

  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(chosen.size());
  Time port = 0;
  for (const Chosen& item : chosen) {
    const ChainTask& src = tf.leg_schedules[item.leg].tasks[item.task_index];
    const Time c1 = spider.leg(item.leg).comm(0);
    const Time emission = port;
    port += c1;
    // Lemma 3: the fork step never needs to emit later than the leg
    // schedule did, so moving the first emission earlier is always legal.
    MST_ASSERT(port <= item.deadline);
    SpiderTask task;
    task.leg = item.leg;
    task.proc = src.proc;
    task.start = src.start;
    task.emissions = src.emissions;
    task.emissions.front() = emission;
    schedule.tasks.push_back(std::move(task));
  }
  return schedule;
}

std::size_t SpiderScheduler::max_tasks(const Spider& spider, Time t_lim, std::size_t cap) {
  SpiderCountScratch scratch;
  return count_within(spider, t_lim, cap, scratch);
}

// The counting paths run warm-scratch only — statically allocation-checked
// (dynamic twin: tests/test_counting.cpp).
// mstlint: zero-alloc
std::size_t SpiderScheduler::count_within(const Spider& spider, Time t_lim, std::size_t cap,
                                          SpiderCountScratch& scratch) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  // Steps (1)–(3) of `schedule_within` without materialization: each leg's
  // backward construction is replayed count-only, its first-link emissions
  // become virtual-node deadlines (`expand_leg`: deadline = C_1 + c_1), and
  // the count-only Moore–Hodgson gives the selected cardinality.  Counts are
  // per-leg capped like the materialized path; the global cap trim of step
  // (3b) only ever reduces the total to `cap`, so `min` reproduces it.
  scratch.jobs.clear();
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    const Chain& leg = spider.leg(l);
    scratch.emissions.clear();
    ChainScheduler::count_within_emissions(leg, t_lim, cap, scratch.chain, scratch.emissions);
    const Time c1 = leg.comm(0);
    for (const Time emission : scratch.emissions) {
      scratch.jobs.push_back(DeadlineJob{c1, emission + c1, scratch.jobs.size()});
    }
  }
  const std::size_t picked = moore_hodgson_count(scratch.jobs, scratch.heap);
  return std::min(picked, cap);
}

namespace {

void require_uniform_sizes(const Workload& workload) {
  MST_REQUIRE(workload.uniform_sizes(),
              "the spider reduction is only optimal for identical task sizes");
}

}  // namespace

std::size_t SpiderScheduler::count_within(const Spider& spider, Time t_lim,
                                          const Workload& workload, std::size_t cap,
                                          SpiderCountScratch& scratch) {
  require_uniform_sizes(workload);
  const std::size_t k_cap = std::min(cap, workload.count());
  if (!workload.has_release_dates()) return count_within(spider, t_lim, k_cap, scratch);
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  // Steps (1)–(2) as in the identical count; step (3) swaps the plain
  // Moore–Hodgson count for the positional-release selection DP.
  scratch.jobs.clear();
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    const Chain& leg = spider.leg(l);
    scratch.emissions.clear();
    ChainScheduler::count_within_emissions(leg, t_lim, k_cap, scratch.chain, scratch.emissions);
    const Time c1 = leg.comm(0);
    for (const Time emission : scratch.emissions) {
      scratch.jobs.push_back(DeadlineJob{c1, emission + c1, scratch.jobs.size()});
    }
  }
  return moore_hodgson_released_count(scratch.jobs, workload.releases(), k_cap, scratch.dp);
}
// mstlint: zero-alloc-end

SpiderSchedule SpiderScheduler::schedule_within(const Spider& spider, Time t_lim,
                                                const Workload& workload, std::size_t cap) {
  require_uniform_sizes(workload);
  if (!workload.has_release_dates()) {
    return schedule_within(spider, t_lim, std::min(cap, workload.count()));
  }
  const std::size_t k_cap = std::min(cap, workload.count());
  const SpiderTransformation tf = transform(spider, t_lim, k_cap);

  // Step (3), release-aware: positional-release selection on the one-port.
  std::vector<DeadlineJob> jobs;
  jobs.reserve(tf.nodes.size());
  for (std::size_t idx = 0; idx < tf.nodes.size(); ++idx) {
    jobs.push_back({tf.nodes[idx].comm, tf.nodes[idx].deadline(t_lim), idx});
  }
  const std::vector<std::size_t> picked =
      moore_hodgson_released(std::move(jobs), workload.releases(), k_cap);

  // Step (4) with release gating: replay the DP's own EDD sequence —
  // position j starts no earlier than the j-th smallest release date, and
  // the DP already proved every completion meets its node's deadline.  Each
  // leg's positions are mapped, in order, onto the *suffix* tasks of its
  // schedule (only suffixes are realizable, Lemma 4): within a leg the EDD
  // order is ascending deadline, and the suffix deadlines dominate any
  // chosen subset's pointwise, so the mapped tasks only ever gain slack.
  // (A global re-sort after the swap would NOT be safe: moving a job to a
  // later EDD position also moves it to a later positional release, which
  // can exceed the relaxed deadline.  Keeping the DP's sequence sidesteps
  // that entirely.)
  std::vector<std::size_t> counts(spider.num_legs(), 0);
  for (std::size_t idx : picked) ++counts[tf.nodes[idx].source];

  const std::vector<Time>& releases = workload.releases();
  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(picked.size());
  std::vector<std::size_t> next_of_leg(spider.num_legs(), 0);  // per-leg position counter
  Time port = 0;
  for (std::size_t position = 0; position < picked.size(); ++position) {
    const VirtualNode& node = tf.nodes[picked[position]];
    const std::size_t leg = node.source;
    const ChainSchedule& ls = tf.leg_schedules[leg];
    const std::size_t task_index = ls.tasks.size() - counts[leg] + next_of_leg[leg];
    ++next_of_leg[leg];
    const ChainTask& src = ls.tasks[task_index];
    const Time c1 = spider.leg(leg).comm(0);

    const Time emission = std::max(port, releases[position]);
    port = emission + c1;
    // DP feasibility at the chosen node's deadline; the mapped suffix
    // task's own deadline is no earlier, so the leg timing keeps its slack.
    MST_ASSERT(port <= node.deadline(t_lim));
    MST_ASSERT(emission <= src.emissions.front());

    SpiderTask task;
    task.leg = leg;
    task.proc = src.proc;
    task.start = src.start;
    task.emissions = src.emissions;
    task.emissions.front() = emission;
    schedule.tasks.push_back(std::move(task));
  }
  return schedule;
}

SpiderSchedule SpiderScheduler::schedule(const Spider& spider, const Workload& workload) {
  require_uniform_sizes(workload);
  MST_REQUIRE(workload.count() >= 1, "schedule needs at least one task");
  const std::size_t n = workload.count();
  if (!workload.has_release_dates()) return schedule(spider, n);

  // Minimal horizon admitting every task: the single-best-leg schedule
  // shifted past the last release always fits, so the bound is feasible.
  Time hi = kTimeInfinity;
  for (const Chain& leg : spider.legs()) hi = std::min(hi, leg.t_infinity(n));
  hi += workload.last_release();
  Time lo = 0;
  SpiderCountScratch scratch;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (count_within(spider, mid, workload, n, scratch) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  SpiderSchedule result = schedule_within(spider, lo, workload, n);
  MST_ASSERT(result.tasks.size() == n);
  // Absolute times throughout: release dates pin the origin, so the
  // identical-path normalization shift does not apply.
  return result;
}

SpiderSchedule SpiderScheduler::schedule(const Spider& spider, std::size_t n) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  // Upper bound: all n tasks on the single leg minimizing the trivial
  // first-processor schedule.
  Time hi = kTimeInfinity;
  for (const Chain& leg : spider.legs()) hi = std::min(hi, leg.t_infinity(n));
  Time lo = 0;
  // The probes only need counts; one scratch serves the whole search.
  SpiderCountScratch scratch;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (count_within(spider, mid, n, scratch) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  SpiderSchedule result = schedule_within(spider, lo, n);
  MST_ASSERT(result.tasks.size() == n);
  result.normalize();
  return result;
}

Time SpiderScheduler::makespan(const Spider& spider, std::size_t n) {
  return schedule(spider, n).makespan();
}

// Scratch-reusing materialization.  Equality with `schedule_within` rests on
// three invariants, all pinned by tests/test_zero_alloc.cpp:
//  * the per-leg `_into` builds equal `ChainScheduler::schedule_within`;
//  * node ids are assigned in the exact `transform`/`expand_leg` order
//    (leg-major, ascending first emission), so the Moore–Hodgson mirror —
//    EDD by (deadline, proc_time, id), eviction of the max (proc_time, id) —
//    selects the identical set;
//  * `scratch.chosen` tuples sort by (deadline, leg, task_index), the legacy
//    `Chosen` comparator verbatim.
// mstlint: zero-alloc
void SpiderScheduler::schedule_within_into(const Spider& spider, Time t_lim, std::size_t cap,
                                           SpiderSolveScratch& scratch, SpiderSchedule& out) {
  MST_REQUIRE(t_lim >= 0, "time limit must be non-negative");
  const std::size_t num_legs = spider.num_legs();

  // Steps (1)–(2): per-leg decision schedules into pooled slots, virtual
  // nodes enumerated on the fly in `transform` order.
  if (scratch.legs.size() < num_legs) scratch.legs.resize(num_legs);
  scratch.jobs.clear();
  scratch.leg_of.clear();
  for (std::size_t l = 0; l < num_legs; ++l) {
    ChainScheduler::schedule_within_into(spider.leg(l), t_lim, cap, scratch.count.chain,
                                         scratch.legs[l]);
    const Time c1 = spider.leg(l).comm(0);
    for (const ChainTask& t : scratch.legs[l].tasks) {
      // expand_leg: proc_time = c_1, deadline = C¹ + c_1, ids in node order.
      scratch.jobs.push_back(DeadlineJob{c1, t.emissions.front() + c1, scratch.jobs.size()});
      scratch.leg_of.push_back(l);
    }
  }

  // Step (3): Moore–Hodgson with identities, mirroring `moore_hodgson`.
  std::sort(scratch.jobs.begin(), scratch.jobs.end(),
            [](const DeadlineJob& a, const DeadlineJob& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              if (a.proc_time != b.proc_time) return a.proc_time < b.proc_time;
              return a.id < b.id;
            });
  scratch.sel_heap.clear();
  Time total_time = 0;
  for (const DeadlineJob& job : scratch.jobs) {
    scratch.sel_heap.emplace_back(job.proc_time, job.id);
    std::push_heap(scratch.sel_heap.begin(), scratch.sel_heap.end());
    total_time += job.proc_time;
    if (total_time > job.deadline) {
      std::pop_heap(scratch.sel_heap.begin(), scratch.sel_heap.end());
      total_time -= scratch.sel_heap.back().first;
      scratch.sel_heap.pop_back();
    }
  }

  // Per-leg counts and the global-cap trim of `schedule_within`.
  scratch.counts.assign(num_legs, 0);
  for (const auto& [comm, id] : scratch.sel_heap) ++scratch.counts[scratch.leg_of[id]];
  std::size_t total = scratch.sel_heap.size();
  while (total > cap) {
    std::size_t worst_leg = num_legs;
    Time worst_exec = -1;
    for (std::size_t l = 0; l < num_legs; ++l) {
      if (scratch.counts[l] == 0) continue;
      const std::size_t m = scratch.legs[l].tasks.size();
      const ChainTask& t = scratch.legs[l].tasks[m - scratch.counts[l]];  // earliest kept task
      const Time exec = t_lim - t.emissions.front() - spider.leg(l).comm(0);
      if (exec > worst_exec) {
        worst_exec = exec;
        worst_leg = l;
      }
    }
    MST_ASSERT(worst_leg < num_legs);
    --scratch.counts[worst_leg];
    --total;
  }

  // Step (4): gather the suffix tasks, re-sequence EDD from time 0, rebuild
  // `out.tasks` in recycled slots.
  scratch.chosen.clear();
  for (std::size_t l = 0; l < num_legs; ++l) {
    const ChainSchedule& ls = scratch.legs[l];
    const std::size_t m = ls.tasks.size();
    const Time c1 = spider.leg(l).comm(0);
    for (std::size_t j = m - scratch.counts[l]; j < m; ++j) {
      scratch.chosen.emplace_back(ls.tasks[j].emissions.front() + c1, l, j);
    }
  }
  std::sort(scratch.chosen.begin(), scratch.chosen.end());

  out.spider = spider;  // copy-assign reuses the nested leg buffers when warm
  std::size_t used = 0;
  Time port = 0;
  for (const auto& [deadline, leg, task_index] : scratch.chosen) {
    const ChainTask& src = scratch.legs[leg].tasks[task_index];
    const Time c1 = spider.leg(leg).comm(0);
    const Time emission = port;
    port += c1;
    MST_ASSERT(port <= deadline);
    if (used == out.tasks.size()) out.tasks.emplace_back();
    SpiderTask& task = out.tasks[used];
    task.leg = leg;
    task.proc = src.proc;
    task.start = src.start;
    task.emissions.assign(src.emissions.begin(), src.emissions.end());
    task.emissions.front() = emission;
    ++used;
  }
  out.tasks.resize(used);
}
// mstlint: zero-alloc-end

void SpiderScheduler::schedule_into(const Spider& spider, std::size_t n,
                                    SpiderSolveScratch& scratch, SpiderSchedule& out) {
  MST_REQUIRE(n >= 1, "schedule needs at least one task");
  Time hi = kTimeInfinity;
  for (const Chain& leg : spider.legs()) hi = std::min(hi, leg.t_infinity(n));
  Time lo = 0;
  // Same monotone predicate as `schedule(spider, n)`, on the shared scratch.
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (count_within(spider, mid, n, scratch.count) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  schedule_within_into(spider, lo, n, scratch, out);
  MST_ASSERT(out.tasks.size() == n);
  out.normalize();
}

}  // namespace mst
