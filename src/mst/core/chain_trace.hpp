#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/chain.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/comm_vector.hpp"

/// \file chain_trace.hpp
/// Instrumented backward construction: the same algorithm as
/// `ChainScheduler::build_backward`, but recording, for every task, the
/// hull/occupancy state and all `p` candidate communication vectors
/// considered.  Two consumers:
///   * the Lemma 1 property tests — the "no crossing" claim is about the
///     candidate vectors themselves, which the plain scheduler discards;
///   * `exp_algorithm_trace`, which replays the paper's Fig 2 construction
///     decision by decision.
///
/// The traced run must produce exactly the same schedule as the plain one
/// (asserted in tests); tracing costs one extra O(p²) copy per task.

namespace mst {

/// One backward step (one task placed).
struct ChainTraceStep {
  std::vector<Time> hull_before;       ///< h (per link) before placing
  std::vector<Time> occupancy_before;  ///< o (per processor) before placing
  /// Candidate vector per destination k (index = destination processor,
  /// length = k+1).  Exactly the `kC(i)` of the paper's Fig 3.
  std::vector<CommVector> candidates;
  std::size_t chosen = 0;  ///< destination whose candidate won Definition 3
  ChainTask placed;        ///< the committed placement
};

/// Full trace of a backward run.  `steps[0]` is the *last* task of the
/// schedule (the first one the backward pass places).
struct ChainTrace {
  Chain chain;
  Time horizon = 0;
  std::vector<ChainTraceStep> steps;
  ChainSchedule schedule;  ///< identical to the untraced construction
};

/// Traced equivalent of `ChainScheduler::build_backward`.
ChainTrace trace_backward(const Chain& chain, Time horizon, std::size_t max_tasks,
                          bool stop_on_negative);

/// Traced makespan form (horizon `T∞`, no stop, final shift applied to the
/// schedule only — step snapshots keep horizon-anchored times).
ChainTrace trace_schedule(const Chain& chain, std::size_t n);

}  // namespace mst
