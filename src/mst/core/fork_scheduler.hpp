#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/fork.hpp"
#include "mst/schedule/fork_schedule.hpp"

/// \file fork_scheduler.hpp
/// Scheduling on fork (star) platforms — §6 of the paper, after Beaumont,
/// Carter, Ferrante, Legrand, Robert (IPDPS 2002).
///
/// The decision form "how many tasks finish within `T_lim`?" is solved by
/// (a) expanding every slave into virtual single-task nodes (Fig 6), and
/// (b) selecting a maximum feasible node set on the master's one-port —
/// a `1 || ΣU_j` instance solved optimally by Moore–Hodgson
/// (`moore_hodgson.hpp`).  The selection is normalized per slave to the
/// smallest-exec prefix (pure deadline relaxation, count preserved), which
/// makes it realizable as an actual schedule.  The paper's original
/// ascending-`c` greedy is kept as `greedy_max_tasks` for cross-checking
/// and for the heuristic-comparison experiment.

namespace mst {

class ForkScheduler {
 public:
  /// Decision form: a feasible schedule of the maximum number of tasks — at
  /// most `cap` — all completing by `t_lim`.  Master emissions are sequenced
  /// EDD back-to-back from time 0.
  static ForkSchedule schedule_within(const Fork& fork, Time t_lim, std::size_t cap);

  /// Count-only decision form.
  static std::size_t max_tasks(const Fork& fork, Time t_lim, std::size_t cap);

  /// Makespan form: optimal schedule of exactly `n` tasks, found by binary
  /// search on `t_lim` over the monotone decision form.
  static ForkSchedule schedule(const Fork& fork, std::size_t n);

  /// Optimal makespan of `n` tasks.
  static Time makespan(const Fork& fork, std::size_t n);

  /// The paper's §6 greedy (Beaumont et al. [2]): sort slaves by ascending
  /// communication time (ties by processing time), then fill each slave with
  /// further virtual nodes while the insertion stays EDD-feasible.  Returns
  /// the task count.  Cross-checked against `max_tasks` in the test suite.
  static std::size_t greedy_max_tasks(const Fork& fork, Time t_lim, std::size_t cap);

  /// Materializes the greedy selection as an actual schedule (same EDD
  /// sequencing as the optimal path; counts come from the greedy).
  static ForkSchedule greedy_schedule_within(const Fork& fork, Time t_lim, std::size_t cap);
};

}  // namespace mst
