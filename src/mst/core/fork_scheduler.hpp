#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "mst/core/moore_hodgson.hpp"
#include "mst/platform/fork.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file fork_scheduler.hpp
/// Scheduling on fork (star) platforms — §6 of the paper, after Beaumont,
/// Carter, Ferrante, Legrand, Robert (IPDPS 2002).
///
/// The decision form "how many tasks finish within `T_lim`?" is solved by
/// (a) expanding every slave into virtual single-task nodes (Fig 6), and
/// (b) selecting a maximum feasible node set on the master's one-port —
/// a `1 || ΣU_j` instance solved optimally by Moore–Hodgson
/// (`moore_hodgson.hpp`).  The selection is normalized per slave to the
/// smallest-exec prefix (pure deadline relaxation, count preserved), which
/// makes it realizable as an actual schedule.  The paper's original
/// ascending-`c` greedy is kept as `greedy_max_tasks` for cross-checking
/// and for the heuristic-comparison experiment.

namespace mst {

/// Reusable buffers for `ForkScheduler::count_within`.  Keep one per
/// thread: with warm buffers the count — on-the-fly virtual-node expansion
/// plus the count-only Moore–Hodgson selection — performs no heap
/// allocation at all, matching the chain/spider counting paths.
struct ForkCountScratch {
  std::vector<DeadlineJob> jobs;  ///< the Fig 6 node instance, reused
  std::vector<Time> heap;         ///< Moore–Hodgson selection heap
  std::vector<Time> dp;           ///< positional-release selection DP row
  // `makespan_within` extras:
  std::vector<std::pair<Time, std::size_t>> sel_heap;  ///< (comm, id) eviction heap
  std::vector<std::size_t> slave_of;   ///< job id → slave index
  std::vector<std::size_t> counts;     ///< selected tasks per slave
  std::vector<std::pair<Time, std::size_t>> seq;  ///< (deadline, slave) sequencing
  std::vector<Time> slave_free;        ///< per-slave completion during replay
};

class ForkScheduler {
 public:
  /// Decision form: a feasible schedule of the maximum number of tasks — at
  /// most `cap` — all completing by `t_lim`.  Master emissions are sequenced
  /// EDD back-to-back from time 0.
  static ForkSchedule schedule_within(const Fork& fork, Time t_lim, std::size_t cap);

  /// Count-only decision form (private scratch; see `count_within`).
  static std::size_t max_tasks(const Fork& fork, Time t_lim, std::size_t cap);

  /// Allocation-free counting: expands each slave's virtual nodes directly
  /// into `scratch.jobs` (never building node vectors) and runs the
  /// count-only Moore–Hodgson selection in `scratch.heap`.  Returns exactly
  /// `schedule_within(fork, t_lim, cap).tasks.size()`.  The makespan form's
  /// binary search and the registry's `materialize == false` fast path run
  /// on this.
  static std::size_t count_within(const Fork& fork, Time t_lim, std::size_t cap,
                                  ForkCountScratch& scratch);

  /// Count *and* completion time of the decision-form schedule, still
  /// allocation-free: replays the whole `schedule_within` pipeline —
  /// selection with identities, per-slave normalization, the global-cap
  /// trim and the EDD port sequencing — in scratch buffers, so the registry
  /// fast path reports the same (tasks, makespan) pair as the materializing
  /// path without ever building task vectors.
  static std::pair<std::size_t, Time> makespan_within(const Fork& fork, Time t_lim,
                                                      std::size_t cap,
                                                      ForkCountScratch& scratch);

  /// Workload decision form: release dates bind positionally on the
  /// master's one-port (see spider_scheduler.hpp — forks share the
  /// positional-release selection DP).  Identical workloads reduce to the
  /// methods above capped at the workload count; non-uniform sizes are
  /// rejected.
  static std::size_t count_within(const Fork& fork, Time t_lim, const Workload& workload,
                                  std::size_t cap, ForkCountScratch& scratch);
  static ForkSchedule schedule_within(const Fork& fork, Time t_lim, const Workload& workload,
                                      std::size_t cap);

  /// Workload makespan form: minimal horizon by binary search over the
  /// release-aware count (absolute times; no shift).
  static ForkSchedule schedule(const Fork& fork, const Workload& workload);

  /// Makespan form: optimal schedule of exactly `n` tasks, found by binary
  /// search on `t_lim` over the monotone decision form.
  static ForkSchedule schedule(const Fork& fork, std::size_t n);

  /// Optimal makespan of `n` tasks.
  static Time makespan(const Fork& fork, std::size_t n);

  /// The paper's §6 greedy (Beaumont et al. [2]): sort slaves by ascending
  /// communication time (ties by processing time), then fill each slave with
  /// further virtual nodes while the insertion stays EDD-feasible.  Returns
  /// the task count.  Cross-checked against `max_tasks` in the test suite.
  static std::size_t greedy_max_tasks(const Fork& fork, Time t_lim, std::size_t cap);

  /// Materializes the greedy selection as an actual schedule (same EDD
  /// sequencing as the optimal path; counts come from the greedy).
  static ForkSchedule greedy_schedule_within(const Fork& fork, Time t_lim, std::size_t cap);

  // -------------------------------------------------------------------------
  // Scratch-reusing materialization: bit-identical to the value-returning
  // forms (pinned by tests/test_zero_alloc.cpp), rebuilding `out` in place so
  // repeated solves on warm scratch perform zero heap allocations.

  /// In-place twin of `schedule_within(fork, t_lim, cap)`: the
  /// `makespan_within` pipeline with step (4) emitting real tasks.
  static void schedule_within_into(const Fork& fork, Time t_lim, std::size_t cap,
                                   ForkCountScratch& scratch, ForkSchedule& out);

  /// In-place twin of `schedule(fork, n)`; the binary search reuses the same
  /// scratch for every probe instead of building one per `max_tasks` call.
  static void schedule_into(const Fork& fork, std::size_t n, ForkCountScratch& scratch,
                            ForkSchedule& out);
};

}  // namespace mst
