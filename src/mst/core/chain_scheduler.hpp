#pragma once

#include <cstddef>

#include "mst/platform/chain.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file chain_scheduler.hpp
/// The paper's primary contribution (§3): an `O(n·p²)` algorithm building a
/// makespan-optimal schedule of `n` identical tasks on a chain of
/// heterogeneous processors, by *backward* construction from the horizon.
///
/// Sketch (matching the pseudo-code of Fig 3): the algorithm keeps, per
/// link, a *hull* `h_k` — the earliest emission already scheduled on link
/// `k` — and per processor an *occupancy* `o_k` — the earliest execution
/// start already scheduled on processor `k`.  Both start at the horizon.
/// Scheduling tasks from the last to the first, each task evaluates one
/// candidate communication vector per destination processor `k`:
///
///     kC_k = min(o_k - w_k - c_k,  h_k - c_k)          (last hop)
///     kC_j = min(kC_{j+1} - c_j,   h_j - c_j)  (j < k)  (upstream hops)
///
/// and commits to the *greatest* candidate under the Definition 3 order
/// (latest first-link emission; ties toward the nearer processor).  The
/// schedule is finally shifted so the first emission happens at time 0.
///
/// Theorem 1 proves the construction optimal; our test-suite re-verifies
/// this against exhaustive search on thousands of small instances.

namespace mst {

/// Reusable buffers for the allocation-free counting path
/// (`ChainScheduler::count_within`).  Keep one per thread: after the first
/// call the buffers are warm, and every further call on a chain of the same
/// (or smaller) size performs no heap allocation at all — the sweep runner's
/// hot path relies on this.
struct ChainCountScratch {
  std::vector<Time> hull;
  std::vector<Time> occupancy;
  std::vector<Time> candidate;
  std::vector<Time> best;
  std::vector<Time> emissions;  ///< release-date counting: first emissions
};

/// Optimal scheduling on chains (stateless; all methods are pure functions
/// of their arguments).
class ChainScheduler {
 public:
  /// Makespan form: optimal schedule of exactly `n >= 1` tasks.  The result
  /// starts at time 0 and its makespan equals the optimum (Theorem 1).
  /// Complexity O(n·p²).
  static ChainSchedule schedule(const Chain& chain, std::size_t n);

  /// Optimal makespan of `n` tasks without materializing task placements
  /// (same cost; convenience for sweeps).
  static Time makespan(const Chain& chain, std::size_t n);

  /// Workload makespan form.  Identical workloads take the `schedule(chain,
  /// n)` path above bit-for-bit.  Release dates are handled natively: tasks
  /// not yet released simply shift the earliest feasible start in the span
  /// recurrences, i.e. the minimal horizon `T*` is found by binary search
  /// over the release-aware decision count below and the backward
  /// construction is anchored there.  Because release dates are absolute,
  /// the result is *not* shifted to start at 0; its makespan equals `T*`,
  /// which is optimal: the backward emissions are the componentwise-latest
  /// among all k-task schedules ending by the horizon (Lemma 4 suffix
  /// optimality), so a horizon admits `n` release-feasible tasks iff any
  /// schedule does.  Non-uniform task sizes are outside the algorithm's
  /// optimality proof and are rejected (`std::invalid_argument`).
  static ChainSchedule schedule(const Chain& chain, const Workload& workload);

  /// Workload decision form: as many workload tasks as possible — at most
  /// `min(cap, workload.count())` — completing within `[0, t_lim]`, release
  /// dates respected positionally (the j-th emission in time order starts at
  /// or after the j-th smallest release date).
  static ChainSchedule schedule_within(const Chain& chain, Time t_lim, const Workload& workload,
                                       std::size_t cap);

  /// Counting form of the above.  For release-dated workloads this replays
  /// the counting construction once, collecting first emissions into the
  /// scratch, and then finds the largest k whose k latest emissions dominate
  /// the k earliest release dates (sorted-to-sorted matching is optimal for
  /// interchangeable tasks; the predicate is monotone in k, so a binary
  /// search suffices).
  static std::size_t count_within(const Chain& chain, Time t_lim, const Workload& workload,
                                  std::size_t cap, ChainCountScratch& scratch);

  /// Decision form (§7): schedule as many tasks as possible — at most
  /// `max_tasks` — so that all of them complete by `t_lim`.  All times stay
  /// absolute in `[0, t_lim]`; no shift is applied, because the spider
  /// reduction needs the emission times relative to the window.  The
  /// returned schedule's tasks are the *suffix* property holders: for every
  /// `k`, its last `k` tasks form an optimal `k`-task schedule ending at
  /// `t_lim` (consequence of the backward construction; exploited by
  /// Lemma 4).
  static ChainSchedule schedule_within(const Chain& chain, Time t_lim, std::size_t max_tasks);

  /// Number of tasks the decision form schedules (throughput counting).
  /// Runs the counting construction below with a private scratch.
  static std::size_t max_tasks(const Chain& chain, Time t_lim, std::size_t cap);

  /// Decision-form counting without materialization: replays the backward
  /// construction of `schedule_within` but commits only the hull/occupancy
  /// updates, never building `ChainTask`s or communication vectors.  Returns
  /// exactly `schedule_within(chain, t_lim, cap).tasks.size()`.  With a warm
  /// `scratch` this performs zero heap allocations — the registry's
  /// `materialize == false` fast path and the spider binary search both sit
  /// on it.
  static std::size_t count_within(const Chain& chain, Time t_lim, std::size_t cap,
                                  ChainCountScratch& scratch);

  /// Counting variant that also records each counted task's first-link
  /// emission `C^i_1` by appending to `first_emissions` (construction order:
  /// latest task first).  The spider reduction builds its virtual-node
  /// deadlines from these without materializing the leg schedules.
  static std::size_t count_within_emissions(const Chain& chain, Time t_lim, std::size_t cap,
                                            ChainCountScratch& scratch,
                                            std::vector<Time>& first_emissions);

  /// Raw backward construction anchored at an arbitrary horizon, exposed for
  /// the property tests of Lemma 2 (sub-chain projection) and Lemma 4
  /// (suffix optimality).  If `stop_on_negative` is true the construction
  /// stops before scheduling a task whose first emission would be negative
  /// (decision form); otherwise it schedules exactly `max_tasks` tasks
  /// regardless of sign (makespan form, shifted by the caller).
  static ChainSchedule build_backward(const Chain& chain, Time horizon, std::size_t max_tasks,
                                      bool stop_on_negative);

  // -------------------------------------------------------------------------
  // Scratch-reusing materialization.  `_into` variants rebuild `out` in place
  // — task slots, their communication vectors and the chain copy all reuse
  // warm capacity — and produce bit-identical results to the value-returning
  // forms above (pinned by tests/test_zero_alloc.cpp).  After one warm-up
  // call at a given (p, n), repeated solves perform zero heap allocations.

  /// In-place twin of `schedule(chain, n)`.
  static void schedule_into(const Chain& chain, std::size_t n, ChainCountScratch& scratch,
                            ChainSchedule& out);

  /// In-place twin of `schedule_within(chain, t_lim, max_tasks)`.
  static void schedule_within_into(const Chain& chain, Time t_lim, std::size_t max_tasks,
                                   ChainCountScratch& scratch, ChainSchedule& out);
};

}  // namespace mst
