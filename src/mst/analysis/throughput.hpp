#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mst/common/time.hpp"
#include "mst/platform/any.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"

/// \file throughput.hpp
/// Makespan-curve analysis: how the optimal makespan grows with the task
/// count, and how quickly it enters the steady-state regime.
///
/// For any one-port platform the optimal makespan curve `M(n)` is
/// eventually *affine*: `M(n) ≈ startup + n/rate`, where `rate` is the
/// bandwidth-centric steady-state rate (bounds.hpp) — the finite schedule
/// pays a fixed pipeline fill/drain cost and then absorbs tasks at the LP
/// rate.  This module computes the curve, the marginal cost per task, and
/// fits the affine tail, giving the "time to first task" vs "cost per
/// additional task" split that capacity planners actually need.
///
/// This layer knows nothing about the algorithm registry: makespans reach
/// it through a sampling callback.  The registry-dispatched convenience
/// overload lives one layer up, in `mst/api/curves.hpp`.

namespace mst {

/// The optimal makespan curve and its derived quantities.
struct ThroughputCurve {
  std::vector<std::size_t> n;      ///< task counts sampled
  std::vector<Time> makespan;      ///< optimal makespan at each count
  std::vector<Time> marginal;      ///< makespan[i] - makespan[i-1] (0 for i=0)

  double steady_rate = 0.0;        ///< LP steady-state rate of the platform
  double fitted_rate = 0.0;        ///< 1 / mean marginal cost over the tail
  Time fitted_startup = 0;         ///< M(n_max) - n_max / fitted_rate

  /// Fraction of the LP rate achieved at the largest sampled n.
  [[nodiscard]] double efficiency_at_tail() const;
};

/// The LP steady-state rate of any platform (bounds.hpp, per kind; forks
/// embed as single-processor-leg spiders, trees use the bandwidth-centric
/// tree rate).
double steady_state_rate(const Platform& platform);

/// Samples `M(n)` at the given counts (must be increasing, >= 1), calling
/// `makespan_of(n)` once per count, and fits the affine tail.  The steady
/// rate comes from the matching LP bound for `platform`.
ThroughputCurve throughput_curve(const Platform& platform,
                                 const std::vector<std::size_t>& ns,
                                 const std::function<Time(std::size_t)>& makespan_of);

/// Samples the *optimal* `M(n)` at the given counts (must be increasing,
/// >= 1) directly on the exact core schedulers.
ThroughputCurve chain_throughput_curve(const Chain& chain, const std::vector<std::size_t>& ns);
ThroughputCurve spider_throughput_curve(const Spider& spider,
                                        const std::vector<std::size_t>& ns);

/// Smallest n at which the optimal schedule achieves `fraction` of the
/// steady-state rate (linear scan with doubling; `fraction` in (0,1)).
std::size_t tasks_to_reach_rate_fraction(const Chain& chain, double fraction,
                                         std::size_t n_cap = 1 << 16);

}  // namespace mst
