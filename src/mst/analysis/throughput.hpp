#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/common/time.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"

/// \file throughput.hpp
/// Makespan-curve analysis: how the optimal makespan grows with the task
/// count, and how quickly it enters the steady-state regime.
///
/// For any one-port platform the optimal makespan curve `M(n)` is
/// eventually *affine*: `M(n) ≈ startup + n/rate`, where `rate` is the
/// bandwidth-centric steady-state rate (bounds.hpp) — the finite schedule
/// pays a fixed pipeline fill/drain cost and then absorbs tasks at the LP
/// rate.  This module computes the curve, the marginal cost per task, and
/// fits the affine tail, giving the "time to first task" vs "cost per
/// additional task" split that capacity planners actually need.

namespace mst {

/// The optimal makespan curve and its derived quantities.
struct ThroughputCurve {
  std::vector<std::size_t> n;      ///< task counts sampled
  std::vector<Time> makespan;      ///< optimal makespan at each count
  std::vector<Time> marginal;      ///< makespan[i] - makespan[i-1] (0 for i=0)

  double steady_rate = 0.0;        ///< LP steady-state rate of the platform
  double fitted_rate = 0.0;        ///< 1 / mean marginal cost over the tail
  Time fitted_startup = 0;         ///< M(n_max) - n_max / fitted_rate

  /// Fraction of the LP rate achieved at the largest sampled n.
  [[nodiscard]] double efficiency_at_tail() const;
};

/// Samples `M(n)` at the given counts (must be increasing, >= 1) by
/// dispatching `algorithm` through `api::registry()` on the makespan-only
/// fast path — any platform kind, any registered algorithm.  An empty
/// `algorithm` picks the kind's default: "optimal" where an exact algorithm
/// is registered, else the first registered entry (trees: "spider-cover").
/// The steady rate comes from the matching LP bound (trees use the
/// bandwidth-centric tree rate).
ThroughputCurve throughput_curve(const api::Platform& platform,
                                 const std::vector<std::size_t>& ns,
                                 std::string_view algorithm = {});

/// Samples `M(n)` at the given counts (must be increasing, >= 1).
/// Convenience wrappers over the registry-driven `throughput_curve`.
ThroughputCurve chain_throughput_curve(const Chain& chain, const std::vector<std::size_t>& ns);
ThroughputCurve spider_throughput_curve(const Spider& spider,
                                        const std::vector<std::size_t>& ns);

/// Smallest n at which the optimal schedule achieves `fraction` of the
/// steady-state rate (linear scan with doubling; `fraction` in (0,1)).
std::size_t tasks_to_reach_rate_fraction(const Chain& chain, double fraction,
                                         std::size_t n_cap = 1 << 16);

}  // namespace mst
