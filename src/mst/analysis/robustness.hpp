#pragma once

#include <cstddef>

#include "mst/common/rng.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"

/// \file robustness.hpp
/// Sensitivity of the optimal plan to platform mis-estimation.
///
/// The paper's model assumes the latencies `c_i` and processing times `w_i`
/// are known exactly; on real volunteer platforms they are estimates.  This
/// module quantifies the cost of that assumption: take the optimal plan for
/// the *believed* platform, keep only its decision content — the
/// destination sequence in emission order — and execute it ASAP on the
/// *actual* platform (timings are operational, so re-timing a fixed
/// sequence is exactly what a runtime would do).  Compare against
/// re-planning on the actual platform, which is optimal by Theorems 1/3.

namespace mst {

/// Outcome of one robustness evaluation.
struct RobustnessResult {
  Time stale_plan = 0;  ///< believed-platform plan executed on the actual one
  Time replanned = 0;   ///< optimal makespan on the actual platform

  /// >= 1; how much slower the stale plan is than re-planning.
  [[nodiscard]] double degradation() const {
    return replanned > 0 ? static_cast<double>(stale_plan) / static_cast<double>(replanned)
                         : 1.0;
  }
};

/// Each `c_i` / `w_i` is independently re-drawn uniformly within a relative
/// band of `epsilon` (e.g. 0.25 = ±25%), clamped so platforms stay valid
/// (`w >= 1`, `c >= 0`).  `epsilon` must be in [0, 1].
Chain perturb(const Chain& chain, double epsilon, Rng& rng);
Spider perturb(const Spider& spider, double epsilon, Rng& rng);

/// Plan on `believed`, execute the destination sequence on `actual`.
/// The two platforms must have identical shapes.
RobustnessResult evaluate_stale_plan(const Chain& believed, const Chain& actual, std::size_t n);
RobustnessResult evaluate_stale_plan(const Spider& believed, const Spider& actual,
                                     std::size_t n);

}  // namespace mst
