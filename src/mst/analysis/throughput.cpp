#include "mst/analysis/throughput.hpp"

#include <algorithm>

#include "mst/baselines/bounds.hpp"
#include "mst/common/assert.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"

namespace mst {

namespace {

void validate_counts(const std::vector<std::size_t>& ns) {
  MST_REQUIRE(!ns.empty(), "need at least one sample count");
  MST_REQUIRE(ns.front() >= 1, "task counts must be >= 1");
  for (std::size_t i = 1; i < ns.size(); ++i) {
    MST_REQUIRE(ns[i] > ns[i - 1], "task counts must be strictly increasing");
  }
}

/// Shared post-processing once makespans are sampled.
void finish(ThroughputCurve& curve) {
  curve.marginal.assign(curve.n.size(), 0);
  for (std::size_t i = 1; i < curve.n.size(); ++i) {
    curve.marginal[i] = curve.makespan[i] - curve.makespan[i - 1];
  }
  // Fit the affine tail over the last half of the samples: rate is the
  // inverse mean marginal cost per task, startup the residual intercept.
  const std::size_t half = curve.n.size() / 2;
  if (curve.n.size() >= 2 && curve.n.back() > curve.n[half]) {
    const double dt = static_cast<double>(curve.makespan.back() - curve.makespan[half]);
    const double dn = static_cast<double>(curve.n.back() - curve.n[half]);
    if (dt > 0) {
      curve.fitted_rate = dn / dt;
      curve.fitted_startup =
          curve.makespan.back() -
          static_cast<Time>(static_cast<double>(curve.n.back()) / curve.fitted_rate);
    }
  }
}

}  // namespace

double ThroughputCurve::efficiency_at_tail() const {
  if (n.empty() || makespan.back() <= 0 || steady_rate <= 0.0) return 0.0;
  const double tp = static_cast<double>(n.back()) / static_cast<double>(makespan.back());
  return tp / steady_rate;
}

double steady_state_rate(const Platform& platform) {
  if (const auto* chain = std::get_if<Chain>(&platform)) {
    return chain_steady_state_rate(*chain);
  }
  if (const auto* fork = std::get_if<Fork>(&platform)) {
    return spider_steady_state_rate(Spider::from_fork(*fork));
  }
  if (const auto* spider = std::get_if<Spider>(&platform)) {
    return spider_steady_state_rate(*spider);
  }
  return tree_steady_state_rate(std::get<Tree>(platform));
}

ThroughputCurve throughput_curve(const Platform& platform,
                                 const std::vector<std::size_t>& ns,
                                 const std::function<Time(std::size_t)>& makespan_of) {
  validate_counts(ns);
  ThroughputCurve curve;
  curve.n = ns;
  curve.makespan.reserve(ns.size());
  for (std::size_t n : ns) curve.makespan.push_back(makespan_of(n));
  curve.steady_rate = steady_state_rate(platform);
  finish(curve);
  return curve;
}

ThroughputCurve chain_throughput_curve(const Chain& chain,
                                       const std::vector<std::size_t>& ns) {
  return throughput_curve(chain, ns,
                          [&](std::size_t n) { return ChainScheduler::makespan(chain, n); });
}

ThroughputCurve spider_throughput_curve(const Spider& spider,
                                        const std::vector<std::size_t>& ns) {
  return throughput_curve(
      spider, ns, [&](std::size_t n) { return SpiderScheduler::makespan(spider, n); });
}

std::size_t tasks_to_reach_rate_fraction(const Chain& chain, double fraction,
                                         std::size_t n_cap) {
  MST_REQUIRE(fraction > 0.0 && fraction < 1.0, "fraction must be in (0,1)");
  const double rate = chain_steady_state_rate(chain);
  MST_REQUIRE(rate > 0.0, "platform has zero steady-state rate");
  // Doubling search for an upper bound, then binary search: throughput of
  // the optimal schedule is monotone non-decreasing in n (adding a task
  // reuses the previous pipeline).
  auto achieves = [&](std::size_t n) {
    const double tp =
        static_cast<double>(n) / static_cast<double>(ChainScheduler::makespan(chain, n));
    return tp >= fraction * rate;
  };
  std::size_t hi = 1;
  while (hi < n_cap && !achieves(hi)) hi *= 2;
  if (!achieves(hi)) return n_cap;  // never reached within the cap
  std::size_t lo = hi / 2 + 1;
  if (hi == 1) return 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (achieves(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace mst
