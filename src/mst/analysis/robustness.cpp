#include "mst/analysis/robustness.hpp"

#include <algorithm>
#include <vector>

#include "mst/baselines/asap.hpp"
#include "mst/common/assert.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"

namespace mst {

namespace {

Time perturb_value(Time value, double epsilon, Time floor, Rng& rng) {
  const double factor = 1.0 + epsilon * (2.0 * rng.uniform01() - 1.0);
  const double scaled = static_cast<double>(value) * factor;
  return std::max<Time>(floor, static_cast<Time>(scaled + 0.5));
}

}  // namespace

Chain perturb(const Chain& chain, double epsilon, Rng& rng) {
  MST_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0, "epsilon must be in [0, 1]");
  std::vector<Processor> procs;
  procs.reserve(chain.size());
  for (const Processor& p : chain.procs()) {
    procs.push_back({perturb_value(p.comm, epsilon, 0, rng),
                     perturb_value(p.work, epsilon, 1, rng)});
  }
  return Chain(std::move(procs));
}

Spider perturb(const Spider& spider, double epsilon, Rng& rng) {
  std::vector<Chain> legs;
  legs.reserve(spider.num_legs());
  for (const Chain& leg : spider.legs()) legs.push_back(perturb(leg, epsilon, rng));
  return Spider(std::move(legs));
}

RobustnessResult evaluate_stale_plan(const Chain& believed, const Chain& actual,
                                     std::size_t n) {
  MST_REQUIRE(believed.size() == actual.size(), "platform shapes must match");
  const ChainSchedule plan = ChainScheduler::schedule(believed, n);
  // The plan's decision content: destinations in emission order (the
  // schedule is already sorted by first emission).
  std::vector<std::size_t> dests;
  dests.reserve(n);
  for (const ChainTask& t : plan.tasks) dests.push_back(t.proc);

  RobustnessResult result;
  result.stale_plan = asap_chain_schedule(actual, dests).makespan();
  result.replanned = ChainScheduler::makespan(actual, n);
  MST_ASSERT(result.stale_plan >= result.replanned);
  return result;
}

RobustnessResult evaluate_stale_plan(const Spider& believed, const Spider& actual,
                                     std::size_t n) {
  MST_REQUIRE(believed.num_legs() == actual.num_legs(), "platform shapes must match");
  for (std::size_t l = 0; l < believed.num_legs(); ++l) {
    MST_REQUIRE(believed.leg(l).size() == actual.leg(l).size(),
                "platform shapes must match");
  }
  SpiderSchedule plan = SpiderScheduler::schedule(believed, n);
  std::vector<std::size_t> order(plan.tasks.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&plan](std::size_t a, std::size_t b) {
    return plan.tasks[a].emissions.front() < plan.tasks[b].emissions.front();
  });
  std::vector<SpiderDest> dests;
  dests.reserve(n);
  for (std::size_t idx : order) {
    dests.push_back({plan.tasks[idx].leg, plan.tasks[idx].proc});
  }

  RobustnessResult result;
  result.stale_plan = asap_spider_schedule(actual, dests).makespan();
  result.replanned = SpiderScheduler::makespan(actual, n);
  MST_ASSERT(result.stale_plan >= result.replanned);
  return result;
}

}  // namespace mst
