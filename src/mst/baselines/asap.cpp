#include "mst/baselines/asap.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

// ---------------------------------------------------------------------------
// Chain
// ---------------------------------------------------------------------------

ChainAsapState::ChainAsapState(const Chain& chain)
    : chain_(chain), link_free_(chain.size(), 0), proc_free_(chain.size(), 0) {}

Time ChainAsapState::peek_completion(std::size_t dest, Time size, Time release) const {
  MST_REQUIRE(dest < chain_.size(), "destination outside the chain");
  Time emission = std::max(link_free_[0], release);
  for (std::size_t k = 1; k <= dest; ++k) {
    emission = std::max(emission + size * chain_.comm(k - 1), link_free_[k]);
  }
  const Time arrival = emission + size * chain_.comm(dest);
  const Time start = std::max(arrival, proc_free_[dest]);
  return start + size * chain_.work(dest);
}

ChainTask ChainAsapState::commit(std::size_t dest, Time size, Time release) {
  MST_REQUIRE(dest < chain_.size(), "destination outside the chain");
  ChainTask task;
  task.proc = dest;
  task.emissions.resize(dest + 1);
  Time emission = std::max(link_free_[0], release);
  task.emissions[0] = emission;
  for (std::size_t k = 1; k <= dest; ++k) {
    emission = std::max(emission + size * chain_.comm(k - 1), link_free_[k]);
    task.emissions[k] = emission;
  }
  for (std::size_t k = 0; k <= dest; ++k) {
    link_free_[k] = task.emissions[k] + size * chain_.comm(k);
  }
  const Time arrival = task.emissions[dest] + size * chain_.comm(dest);
  task.start = std::max(arrival, proc_free_[dest]);
  proc_free_[dest] = task.start + size * chain_.work(dest);
  return task;
}

ChainSchedule asap_chain_schedule(const Chain& chain, const std::vector<std::size_t>& dests) {
  ChainAsapState state(chain);
  ChainSchedule schedule{chain, {}};
  schedule.tasks.reserve(dests.size());
  for (std::size_t dest : dests) schedule.tasks.push_back(state.commit(dest));
  return schedule;
}

ChainSchedule asap_chain_schedule(const Chain& chain, const std::vector<std::size_t>& dests,
                                  const Workload& workload) {
  MST_REQUIRE(workload.count() == dests.size(),
              "workload and destination sequence must have the same length");
  ChainAsapState state(chain);
  ChainSchedule schedule{chain, {}};
  schedule.tasks.reserve(dests.size());
  for (std::size_t i = 0; i < dests.size(); ++i) {
    schedule.tasks.push_back(
        state.commit(dests[i], workload.size_of(i), workload.release_of(i)));
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// Spider
// ---------------------------------------------------------------------------

SpiderAsapState::SpiderAsapState(const Spider& spider) : spider_(spider) {
  link_free_.resize(spider.num_legs());
  proc_free_.resize(spider.num_legs());
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    link_free_[l].assign(spider.leg(l).size(), 0);
    proc_free_[l].assign(spider.leg(l).size(), 0);
  }
}

std::vector<Time> SpiderAsapState::emissions_for(const SpiderDest& dest, Time size,
                                                 Time release) const {
  MST_REQUIRE(dest.leg < spider_.num_legs(), "leg outside the spider");
  const Chain& leg = spider_.leg(dest.leg);
  MST_REQUIRE(dest.proc < leg.size(), "processor outside the leg");
  std::vector<Time> emissions(dest.proc + 1);
  // The master's one-port serializes first emissions across legs; the leg's
  // own first link can only be busy through the port, so the port bound
  // dominates.  The release date gates the master emission only.
  Time emission = std::max({port_free_, link_free_[dest.leg][0], release});
  emissions[0] = emission;
  for (std::size_t k = 1; k <= dest.proc; ++k) {
    emission = std::max(emission + size * leg.comm(k - 1), link_free_[dest.leg][k]);
    emissions[k] = emission;
  }
  return emissions;
}

Time SpiderAsapState::peek_completion(const SpiderDest& dest, Time size, Time release) const {
  const std::vector<Time> emissions = emissions_for(dest, size, release);
  const Chain& leg = spider_.leg(dest.leg);
  const Time arrival = emissions.back() + size * leg.comm(dest.proc);
  const Time start = std::max(arrival, proc_free_[dest.leg][dest.proc]);
  return start + size * leg.work(dest.proc);
}

SpiderTask SpiderAsapState::commit(const SpiderDest& dest, Time size, Time release) {
  std::vector<Time> emissions = emissions_for(dest, size, release);
  const Chain& leg = spider_.leg(dest.leg);
  SpiderTask task;
  task.leg = dest.leg;
  task.proc = dest.proc;
  port_free_ = emissions[0] + size * leg.comm(0);
  for (std::size_t k = 0; k <= dest.proc; ++k) {
    link_free_[dest.leg][k] = emissions[k] + size * leg.comm(k);
  }
  const Time arrival = emissions.back() + size * leg.comm(dest.proc);
  task.start = std::max(arrival, proc_free_[dest.leg][dest.proc]);
  proc_free_[dest.leg][dest.proc] = task.start + size * leg.work(dest.proc);
  task.emissions = std::move(emissions);
  return task;
}

SpiderSchedule asap_spider_schedule(const Spider& spider, const std::vector<SpiderDest>& dests) {
  SpiderAsapState state(spider);
  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(dests.size());
  for (const SpiderDest& dest : dests) schedule.tasks.push_back(state.commit(dest));
  return schedule;
}

SpiderSchedule asap_spider_schedule(const Spider& spider, const std::vector<SpiderDest>& dests,
                                    const Workload& workload) {
  MST_REQUIRE(workload.count() == dests.size(),
              "workload and destination sequence must have the same length");
  SpiderAsapState state(spider);
  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(dests.size());
  for (std::size_t i = 0; i < dests.size(); ++i) {
    schedule.tasks.push_back(
        state.commit(dests[i], workload.size_of(i), workload.release_of(i)));
  }
  return schedule;
}

}  // namespace mst
