#pragma once

#include <cstddef>

#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file round_robin.hpp
/// Round-robin dispatch — the heterogeneity-blind baseline.
///
/// Tasks cycle over the processors in index order with ASAP timing.  On a
/// heterogeneous platform this both overloads slow processors and starves
/// fast ones; the HEUR experiment uses it as the "what if we ignore the
/// paper entirely" reference point.

namespace mst {

ChainSchedule round_robin_chain(const Chain& chain, std::size_t n);
SpiderSchedule round_robin_spider(const Spider& spider, std::size_t n);

/// Workload forms: the cyclic destination sequence is unchanged (round
/// robin is blind to sizes and releases by definition); timing is the
/// size-scaled, release-gated ASAP placement.
ChainSchedule round_robin_chain(const Chain& chain, const Workload& workload);
SpiderSchedule round_robin_spider(const Spider& spider, const Workload& workload);

Time round_robin_chain_makespan(const Chain& chain, std::size_t n);
Time round_robin_spider_makespan(const Spider& spider, std::size_t n);

}  // namespace mst
