#pragma once

#include <cstddef>

#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file round_robin.hpp
/// Round-robin dispatch — the heterogeneity-blind baseline.
///
/// Tasks cycle over the processors in index order with ASAP timing.  On a
/// heterogeneous platform this both overloads slow processors and starves
/// fast ones; the HEUR experiment uses it as the "what if we ignore the
/// paper entirely" reference point.

namespace mst {

ChainSchedule round_robin_chain(const Chain& chain, std::size_t n);
SpiderSchedule round_robin_spider(const Spider& spider, std::size_t n);

Time round_robin_chain_makespan(const Chain& chain, std::size_t n);
Time round_robin_spider_makespan(const Spider& spider, std::size_t n);

}  // namespace mst
