#pragma once

#include <cstddef>

#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file single_node.hpp
/// Best-single-processor baseline — the generalization of the paper's `T∞`.
///
/// All `n` tasks are pipelined to one processor; the best such processor is
/// chosen by exact evaluation.  The paper's `T∞ = c_1 + (n-1)·max(w_1,c_1)
/// + w_1` is the first-processor member of this family and anchors the
/// backward construction; the baseline is also a correct (if weak) upper
/// bound on the optimum, used as the horizon in several experiments.

namespace mst {

/// Best single-processor schedule on a chain (ASAP pipeline to the
/// minimizing processor).
ChainSchedule single_node_chain(const Chain& chain, std::size_t n);
Time single_node_chain_makespan(const Chain& chain, std::size_t n);

/// Best single-processor schedule over all legs of a spider.
SpiderSchedule single_node_spider(const Spider& spider, std::size_t n);
Time single_node_spider_makespan(const Spider& spider, std::size_t n);

/// Workload forms: the whole workload pipelines to the single processor
/// minimizing the size-scaled, release-gated ASAP makespan.
ChainSchedule single_node_chain(const Chain& chain, const Workload& workload);
SpiderSchedule single_node_spider(const Spider& spider, const Workload& workload);

}  // namespace mst
