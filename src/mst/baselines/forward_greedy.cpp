#include "mst/baselines/forward_greedy.hpp"

#include "mst/baselines/asap.hpp"
#include "mst/common/assert.hpp"

namespace mst {

ChainSchedule forward_greedy_chain(const Chain& chain, std::size_t n) {
  ChainAsapState state(chain);
  ChainSchedule schedule{chain, {}};
  schedule.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best_dest = 0;
    Time best_completion = kTimeInfinity;
    for (std::size_t dest = 0; dest < chain.size(); ++dest) {
      const Time completion = state.peek_completion(dest);
      if (completion < best_completion) {
        best_completion = completion;
        best_dest = dest;
      }
    }
    schedule.tasks.push_back(state.commit(best_dest));
  }
  return schedule;
}

SpiderSchedule forward_greedy_spider(const Spider& spider, std::size_t n) {
  SpiderAsapState state(spider);
  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SpiderDest best_dest{0, 0};
    Time best_completion = kTimeInfinity;
    for (std::size_t l = 0; l < spider.num_legs(); ++l) {
      for (std::size_t q = 0; q < spider.leg(l).size(); ++q) {
        const Time completion = state.peek_completion({l, q});
        if (completion < best_completion) {
          best_completion = completion;
          best_dest = {l, q};
        }
      }
    }
    schedule.tasks.push_back(state.commit(best_dest));
  }
  return schedule;
}

ChainSchedule forward_greedy_chain(const Chain& chain, const Workload& workload) {
  ChainAsapState state(chain);
  ChainSchedule schedule{chain, {}};
  schedule.tasks.reserve(workload.count());
  for (std::size_t i = 0; i < workload.count(); ++i) {
    const Time size = workload.size_of(i);
    const Time release = workload.release_of(i);
    std::size_t best_dest = 0;
    Time best_completion = kTimeInfinity;
    for (std::size_t dest = 0; dest < chain.size(); ++dest) {
      const Time completion = state.peek_completion(dest, size, release);
      if (completion < best_completion) {
        best_completion = completion;
        best_dest = dest;
      }
    }
    schedule.tasks.push_back(state.commit(best_dest, size, release));
  }
  return schedule;
}

SpiderSchedule forward_greedy_spider(const Spider& spider, const Workload& workload) {
  SpiderAsapState state(spider);
  SpiderSchedule schedule{spider, {}};
  schedule.tasks.reserve(workload.count());
  for (std::size_t i = 0; i < workload.count(); ++i) {
    const Time size = workload.size_of(i);
    const Time release = workload.release_of(i);
    SpiderDest best_dest{0, 0};
    Time best_completion = kTimeInfinity;
    for (std::size_t l = 0; l < spider.num_legs(); ++l) {
      for (std::size_t q = 0; q < spider.leg(l).size(); ++q) {
        const Time completion = state.peek_completion({l, q}, size, release);
        if (completion < best_completion) {
          best_completion = completion;
          best_dest = {l, q};
        }
      }
    }
    schedule.tasks.push_back(state.commit(best_dest, size, release));
  }
  return schedule;
}

Time forward_greedy_chain_makespan(const Chain& chain, std::size_t n) {
  return forward_greedy_chain(chain, n).makespan();
}

Time forward_greedy_spider_makespan(const Spider& spider, std::size_t n) {
  return forward_greedy_spider(spider, n).makespan();
}

}  // namespace mst
