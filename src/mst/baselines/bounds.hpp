#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "mst/common/time.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

/// \file bounds.hpp
/// Steady-state (bandwidth-centric) throughput and derived makespan lower
/// bounds — the divisible-load view the paper situates itself against (§1,
/// and the steady-state analysis of Beaumont et al. [2]).
///
/// The LP "how many tasks per time unit can the platform absorb" has the
/// classic nested/greedy solution:
///  * chain:  `λ_k = min(1/c_k, 1/w_k + λ_{k+1})`, rate = `λ_0`;
///  * spider: per-leg rates capped by the master's one-port,
///    `Σ μ_l·c_{l,1} <= 1`, filled in ascending `c_{l,1}` order;
///  * tree:   recursive bandwidth-centric allocation at every node.
/// Busy-time arguments make `rate·T` an upper bound on tasks completable in
/// any window `T`, hence `n/rate` a lower bound on the optimal makespan.
/// The STEADY experiment confirms the paper's optimal schedules approach
/// these rates as `n → ∞`.

namespace mst {

/// Asymptotic tasks-per-time-unit of a chain (LP optimum).
double chain_steady_state_rate(const Chain& chain);

/// Asymptotic rate of a spider under the master's one-port constraint.
double spider_steady_state_rate(const Spider& spider);

/// Recursive bandwidth-centric rate of a general tree (root = master,
/// which forwards but does not compute).
double tree_steady_state_rate(const Tree& tree);

/// Reusable buffer for the one-port fill of the spider/fork bounds; keep
/// one per thread and the bound computations below allocate nothing.
using OnePortScratch = std::vector<std::pair<Time, double>>;

/// Makespan lower bounds: `max(path+work floor, ceil(n/rate-ish))` — every
/// term is a valid bound, the max is reported.
Time chain_makespan_lower_bound(const Chain& chain, std::size_t n);
Time spider_makespan_lower_bound(const Spider& spider, std::size_t n);

/// Scratch-reusing twin (identical value; warm scratch ⇒ no allocation).
Time spider_makespan_lower_bound(const Spider& spider, std::size_t n, OnePortScratch& scratch);

/// Fork view of the spider bound, computed without materializing the
/// equivalent spider: equals
/// `spider_makespan_lower_bound(Spider::from_fork(fork), n)`.
Time fork_makespan_lower_bound(const Fork& fork, std::size_t n, OnePortScratch& scratch);

}  // namespace mst
