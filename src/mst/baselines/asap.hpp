#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file asap.hpp
/// Forward as-soon-as-possible timing for a fixed destination sequence.
///
/// Given the ordered list of destinations (the order tasks leave the
/// master), every emission, hop and execution is placed at its earliest
/// feasible time, FIFO per link and per processor.  For identical tasks,
/// per-link FIFO is without loss of generality (crossing communications can
/// always be uncrossed by relabeling — the argument behind Lemma 1), so
/// minimizing over all destination sequences with ASAP timing yields the
/// exact optimum.  This is the engine of the exhaustive baseline and of the
/// forward heuristics; the paper's algorithm, by contrast, never needs to
/// enumerate sequences.
///
/// Every entry point also has a workload-aware form: task `i` of the
/// dispatch order carries size `s_i` (scaling each hop to `s_i·c_k` and the
/// execution to `s_i·w_k`) and release date `r_i` (its first emission starts
/// no earlier than `r_i`).  The unit/zero defaults reproduce the identical
/// arithmetic exactly.

namespace mst {

/// ASAP schedule of the given chain destination sequence (`dest[i]` is the
/// 0-based destination processor of the i-th emitted task).
ChainSchedule asap_chain_schedule(const Chain& chain, const std::vector<std::size_t>& dests);

/// Workload-aware form: task `i` has `workload.size_of(i)` /
/// `workload.release_of(i)`; requires `workload.count() == dests.size()`.
ChainSchedule asap_chain_schedule(const Chain& chain, const std::vector<std::size_t>& dests,
                                  const Workload& workload);

/// Destination on a spider: leg plus processor position within the leg.
struct SpiderDest {
  std::size_t leg = 0;
  std::size_t proc = 0;

  friend bool operator==(const SpiderDest&, const SpiderDest&) = default;
};

/// ASAP schedule of the given spider destination sequence; the master's
/// one-port serializes first emissions in sequence order.
SpiderSchedule asap_spider_schedule(const Spider& spider, const std::vector<SpiderDest>& dests);
SpiderSchedule asap_spider_schedule(const Spider& spider, const std::vector<SpiderDest>& dests,
                                    const Workload& workload);

/// Incremental ASAP state for chain construction — lets heuristics append
/// one destination at a time and query the resulting completion time without
/// recomputing the prefix (O(p) per append).
class ChainAsapState {
 public:
  explicit ChainAsapState(const Chain& chain);

  /// Completion time if the next task were sent to `dest`, without
  /// committing.  `size` scales the task's communications and execution;
  /// its first emission starts no earlier than `release`.
  [[nodiscard]] Time peek_completion(std::size_t dest, Time size = 1, Time release = 0) const;

  /// Appends a task to `dest`; returns its placement.
  ChainTask commit(std::size_t dest, Time size = 1, Time release = 0);

  [[nodiscard]] const Chain& chain() const { return chain_; }

 private:
  Chain chain_;
  std::vector<Time> link_free_;
  std::vector<Time> proc_free_;
};

/// Same, for spiders (master port + per-leg chain state).
class SpiderAsapState {
 public:
  explicit SpiderAsapState(const Spider& spider);

  [[nodiscard]] Time peek_completion(const SpiderDest& dest, Time size = 1,
                                     Time release = 0) const;
  SpiderTask commit(const SpiderDest& dest, Time size = 1, Time release = 0);

  [[nodiscard]] const Spider& spider() const { return spider_; }

 private:
  /// Computes the emission chain for `dest`; shared by peek and commit.
  [[nodiscard]] std::vector<Time> emissions_for(const SpiderDest& dest, Time size,
                                                Time release) const;

  Spider spider_;
  Time port_free_ = 0;
  std::vector<std::vector<Time>> link_free_;  // per leg, per link
  std::vector<std::vector<Time>> proc_free_;  // per leg, per processor
};

}  // namespace mst
