#include "mst/baselines/single_node.hpp"

#include <vector>

#include "mst/baselines/asap.hpp"
#include "mst/common/assert.hpp"

namespace mst {

ChainSchedule single_node_chain(const Chain& chain, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  ChainSchedule best{chain, {}};
  Time best_makespan = kTimeInfinity;
  for (std::size_t q = 0; q < chain.size(); ++q) {
    ChainSchedule candidate = asap_chain_schedule(chain, std::vector<std::size_t>(n, q));
    const Time m = candidate.makespan();
    if (m < best_makespan) {
      best_makespan = m;
      best = std::move(candidate);
    }
  }
  return best;
}

Time single_node_chain_makespan(const Chain& chain, std::size_t n) {
  return single_node_chain(chain, n).makespan();
}

SpiderSchedule single_node_spider(const Spider& spider, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  SpiderSchedule best{spider, {}};
  Time best_makespan = kTimeInfinity;
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    for (std::size_t q = 0; q < spider.leg(l).size(); ++q) {
      SpiderSchedule candidate =
          asap_spider_schedule(spider, std::vector<SpiderDest>(n, SpiderDest{l, q}));
      const Time m = candidate.makespan();
      if (m < best_makespan) {
        best_makespan = m;
        best = std::move(candidate);
      }
    }
  }
  return best;
}

Time single_node_spider_makespan(const Spider& spider, std::size_t n) {
  return single_node_spider(spider, n).makespan();
}

ChainSchedule single_node_chain(const Chain& chain, const Workload& workload) {
  MST_REQUIRE(workload.count() >= 1, "need at least one task");
  ChainSchedule best{chain, {}};
  Time best_makespan = kTimeInfinity;
  for (std::size_t q = 0; q < chain.size(); ++q) {
    ChainSchedule candidate =
        asap_chain_schedule(chain, std::vector<std::size_t>(workload.count(), q), workload);
    const Time m = candidate.makespan();
    if (m < best_makespan) {
      best_makespan = m;
      best = std::move(candidate);
    }
  }
  return best;
}

SpiderSchedule single_node_spider(const Spider& spider, const Workload& workload) {
  MST_REQUIRE(workload.count() >= 1, "need at least one task");
  SpiderSchedule best{spider, {}};
  Time best_makespan = kTimeInfinity;
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    for (std::size_t q = 0; q < spider.leg(l).size(); ++q) {
      SpiderSchedule candidate = asap_spider_schedule(
          spider, std::vector<SpiderDest>(workload.count(), SpiderDest{l, q}), workload);
      const Time m = candidate.makespan();
      if (m < best_makespan) {
        best_makespan = m;
        best = std::move(candidate);
      }
    }
  }
  return best;
}

}  // namespace mst
