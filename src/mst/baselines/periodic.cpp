#include "mst/baselines/periodic.hpp"

#include <algorithm>

#include "mst/baselines/asap.hpp"
#include "mst/common/assert.hpp"

namespace mst {

std::vector<Rational> chain_lp_rates(const Chain& chain) {
  const std::size_t p = chain.size();
  // residual[k]: remaining capacity of link k (1/c_k minus allocations);
  // `unbounded[k]` marks zero-latency links.
  std::vector<Rational> residual(p, Rational(0));
  std::vector<bool> unbounded(p, false);
  for (std::size_t k = 0; k < p; ++k) {
    if (chain.comm(k) == 0) {
      unbounded[k] = true;
    } else {
      residual[k] = Rational(1, chain.comm(k));
    }
  }

  std::vector<Rational> rates(p, Rational(0));
  for (std::size_t q = 0; q < p; ++q) {
    // Processor q is capped by its speed and by every link on its path.
    Rational x(1, chain.work(q));
    for (std::size_t k = 0; k <= q; ++k) {
      if (!unbounded[k]) x = Rational::min(x, residual[k]);
    }
    if (x.is_zero()) continue;
    rates[q] = x;
    for (std::size_t k = 0; k <= q; ++k) {
      if (!unbounded[k]) residual[k] = residual[k] - x;
    }
  }
  return rates;
}

double PeriodicPattern::rate() const {
  double total = 0.0;
  for (const Rational& r : rates) total += r.to_double();
  return total;
}

PeriodicPattern chain_periodic_pattern(const Chain& chain) {
  PeriodicPattern pattern;
  pattern.rates = chain_lp_rates(chain);

  // Hyperperiod: lcm of the denominators of the non-zero rates.
  std::int64_t h = 1;
  bool any = false;
  for (const Rational& r : pattern.rates) {
    if (!r.is_zero()) {
      h = lcm64(h, r.den());
      any = true;
    }
  }
  MST_REQUIRE(any, "chain has zero steady-state rate");
  pattern.hyperperiod = h;

  pattern.counts.resize(pattern.rates.size(), 0);
  std::size_t total = 0;
  for (std::size_t q = 0; q < pattern.rates.size(); ++q) {
    const Rational tasks = pattern.rates[q] * Rational(h);
    MST_ASSERT(tasks.den() == 1 && tasks.num() >= 0);
    pattern.counts[q] = static_cast<std::size_t>(tasks.num());
    total += pattern.counts[q];
  }
  MST_ASSERT(total >= 1);

  // Evenly interleave the counts (per-processor Bresenham): at block
  // position i, emit processor q when its accumulated share crosses the
  // next integer.  Smooth interleaving keeps every link's load spread out,
  // which is what lets ASAP timing track the fluid schedule.
  pattern.block.reserve(total);
  std::vector<std::size_t> emitted(pattern.counts.size(), 0);
  for (std::size_t i = 1; i <= total; ++i) {
    // Pick the processor whose deficit (expected share - emitted) is
    // largest; ties toward the nearer processor.
    std::size_t best = pattern.counts.size();
    double best_deficit = -1e300;
    for (std::size_t q = 0; q < pattern.counts.size(); ++q) {
      if (pattern.counts[q] == 0) continue;
      const double expected = static_cast<double>(pattern.counts[q]) *
                              static_cast<double>(i) / static_cast<double>(total);
      const double deficit = expected - static_cast<double>(emitted[q]);
      if (deficit > best_deficit + 1e-12) {
        best_deficit = deficit;
        best = q;
      }
    }
    MST_ASSERT(best < pattern.counts.size());
    ++emitted[best];
    pattern.block.push_back(best);
  }
  return pattern;
}

ChainSchedule periodic_chain_schedule(const Chain& chain, const PeriodicPattern& pattern,
                                      std::size_t repetitions) {
  MST_REQUIRE(repetitions >= 1, "need at least one period");
  std::vector<std::size_t> dests;
  dests.reserve(pattern.block.size() * repetitions);
  for (std::size_t r = 0; r < repetitions; ++r) {
    dests.insert(dests.end(), pattern.block.begin(), pattern.block.end());
  }
  return asap_chain_schedule(chain, dests);
}

}  // namespace mst
