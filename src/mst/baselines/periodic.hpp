#pragma once

#include <cstddef>
#include <vector>

#include "mst/common/rational.hpp"
#include "mst/platform/chain.hpp"
#include "mst/schedule/chain_schedule.hpp"

/// \file periodic.hpp
/// Exact steady-state rates and periodic schedule construction for chains —
/// the bandwidth-centric program of Beaumont et al. [2] made concrete.
///
/// `bounds.hpp` computes the chain's aggregate LP rate in doubles (enough
/// for bounds); this module solves the same LP *exactly* in rationals and
/// per processor:
///
///     maximize   Σ_q x_q
///     subject to x_q <= 1/w_q                    (processor speed)
///                Σ_{j>=k} x_j <= 1/c_k  ∀k       (link k busy time)
///
/// The nested constraint structure makes a forward greedy optimal: allocate
/// processors near the master first — they consume capacity on fewer links.
/// From the exact rates a *periodic pattern* follows: over a hyperperiod of
/// `H` time units (the lcm of the rate denominators) processor `q` receives
/// exactly `x_q·H` tasks; interleaving those counts evenly and repeating
/// the block yields an explicit schedule whose throughput converges to the
/// LP optimum — the steady-state counterpart of the paper's exact finite
/// construction.

namespace mst {

/// Exact per-processor LP rates; their sum equals `chain_steady_state_rate`
/// up to floating-point rounding (asserted in tests).
std::vector<Rational> chain_lp_rates(const Chain& chain);

/// One period of the bandwidth-centric schedule.
struct PeriodicPattern {
  std::vector<Rational> rates;      ///< exact per-processor rates
  Time hyperperiod = 0;             ///< H: lcm of rate denominators
  std::vector<std::size_t> counts;  ///< tasks per processor per period (x_q·H)
  std::vector<std::size_t> block;   ///< destination sequence of one period,
                                    ///< counts interleaved evenly (Bresenham)

  [[nodiscard]] std::size_t tasks_per_period() const { return block.size(); }
  [[nodiscard]] double rate() const;  ///< Σ rates as a double
};

/// Builds the pattern; throws if the chain has zero total rate (impossible
/// for valid platforms: w >= 1 gives every processor positive speed, only
/// an all-zero-capacity link chain could stall, and c=0 means infinite
/// capacity instead).
PeriodicPattern chain_periodic_pattern(const Chain& chain);

/// Materializes `repetitions` periods as an ASAP schedule (feasible by
/// construction; used to measure convergence to the LP rate).
ChainSchedule periodic_chain_schedule(const Chain& chain, const PeriodicPattern& pattern,
                                      std::size_t repetitions);

}  // namespace mst
