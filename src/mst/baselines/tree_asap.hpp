#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/tree.hpp"

/// \file tree_asap.hpp
/// Forward ASAP timing on general trees — the tree-shaped sibling of
/// `asap.hpp`.
///
/// Because the master is the only task source and every out-port forwards
/// FIFO, the incremental estimate below predicts the discrete-event
/// simulator's timing *exactly* (same argument as for chains; verified in
/// the test suite).  It powers the tree forward-greedy baseline, the ECT
/// online policy and the exhaustive tree optimum used to judge the §8
/// covering heuristics.

namespace mst {

/// Incremental ASAP state over a tree: per node, when its out-port and its
/// processor become free.
class TreeAsapState {
 public:
  explicit TreeAsapState(const Tree& tree);

  /// Completion time if the next task were sent to `dest` (a slave node),
  /// without committing.  `size` scales every hop and the execution; the
  /// master emission starts no earlier than `release` (defaults reproduce
  /// the identical-task arithmetic exactly, matching the simulator).
  [[nodiscard]] Time peek_completion(NodeId dest, Time size = 1, Time release = 0) const;

  /// Appends a task to `dest`; returns its completion time.
  Time commit(NodeId dest, Time size = 1, Time release = 0);

  [[nodiscard]] const Tree& tree() const { return *tree_; }

 private:
  friend class TreeSearch;  // exhaustive search needs save/restore access

  const Tree* tree_;
  std::vector<Time> port_free_;
  std::vector<Time> proc_free_;
};

/// Makespan of dispatching the given destination sequence ASAP.
Time asap_tree_makespan(const Tree& tree, const std::vector<NodeId>& dests);

/// Earliest-completion-time forward greedy on a tree; returns the chosen
/// destination sequence (ties toward the smaller node id).
std::vector<NodeId> forward_greedy_tree(const Tree& tree, std::size_t n);
Time forward_greedy_tree_makespan(const Tree& tree, std::size_t n);

/// Exhaustive exact optimum on a tree (branch & bound over destination
/// sequences, exponential — small instances only).  This is the ground
/// truth the §8 covering heuristics are measured against.
Time brute_force_tree_makespan(const Tree& tree, std::size_t n);

}  // namespace mst
