#pragma once

#include <cstddef>
#include <vector>

#include "mst/platform/tree.hpp"

/// \file tree_asap.hpp
/// Forward ASAP timing on general trees — the tree-shaped sibling of
/// `asap.hpp`.
///
/// Because the master is the only task source and every out-port forwards
/// FIFO, the incremental estimate below predicts the discrete-event
/// simulator's timing *exactly* (same argument as for chains; verified in
/// the test suite).  It powers the tree forward-greedy baseline, the ECT
/// online policy and the exhaustive tree optimum used to judge the §8
/// covering heuristics.

namespace mst {

/// Incremental ASAP state over a tree: per node, when its out-port and its
/// processor become free.  The root→node paths are flattened into one table
/// at construction, so `peek_completion` and `commit` never allocate — the
/// local-search descent evaluates thousands of candidate sequences per solve
/// through one state, `reset()`-ing between replays.
class TreeAsapState {
 public:
  explicit TreeAsapState(const Tree& tree);

  /// Completion time if the next task were sent to `dest` (a slave node),
  /// without committing.  `size` scales every hop and the execution; the
  /// master emission starts no earlier than `release` (defaults reproduce
  /// the identical-task arithmetic exactly, matching the simulator).
  [[nodiscard]] Time peek_completion(NodeId dest, Time size = 1, Time release = 0) const;

  /// Appends a task to `dest`; returns its completion time.
  Time commit(NodeId dest, Time size = 1, Time release = 0);

  /// Forget every committed task (all ports and processors free at 0); the
  /// path table is tree-shaped and survives.  Allocation-free.
  void reset();

  [[nodiscard]] const Tree& tree() const { return *tree_; }

 private:
  friend class TreeSearch;  // exhaustive search needs save/restore access

  /// The root-excluded root→`v` path, as a view into the flat table.
  [[nodiscard]] const NodeId* path_begin(NodeId v) const {
    return path_nodes_.data() + path_offset_[v];
  }
  [[nodiscard]] const NodeId* path_end(NodeId v) const {
    return path_nodes_.data() + path_offset_[v + 1];
  }

  const Tree* tree_;
  std::vector<Time> port_free_;
  std::vector<Time> proc_free_;
  std::vector<std::size_t> path_offset_;  ///< size() + 1 entries
  std::vector<NodeId> path_nodes_;        ///< concatenated root-excluded paths
};

/// Makespan of dispatching the given destination sequence ASAP.
Time asap_tree_makespan(const Tree& tree, const std::vector<NodeId>& dests);

/// Scratch-reusing variant: resets `state` and replays `dests` through it.
/// Identical result; zero allocations on a constructed state.
Time asap_tree_makespan(const std::vector<NodeId>& dests, TreeAsapState& state);

/// Earliest-completion-time forward greedy on a tree; returns the chosen
/// destination sequence (ties toward the smaller node id).
std::vector<NodeId> forward_greedy_tree(const Tree& tree, std::size_t n);
Time forward_greedy_tree_makespan(const Tree& tree, std::size_t n);

/// Scratch-reusing greedy: resets `state`, rebuilds the sequence into
/// `dests` (capacity reused) and returns the makespan alongside.  The
/// chosen sequence is identical to `forward_greedy_tree`.
Time forward_greedy_tree_into(std::size_t n, TreeAsapState& state, std::vector<NodeId>& dests);

/// Exhaustive exact optimum on a tree (branch & bound over destination
/// sequences, exponential — small instances only).  This is the ground
/// truth the §8 covering heuristics are measured against.
Time brute_force_tree_makespan(const Tree& tree, std::size_t n);

}  // namespace mst
