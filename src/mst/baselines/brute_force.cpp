#include "mst/baselines/brute_force.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "mst/baselines/asap.hpp"
#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// DFS over chain destination sequences with incremental ASAP state and
/// makespan pruning.  `emit` receives the best sequence found (optional).
class ChainSearch {
 public:
  ChainSearch(const Chain& chain, std::size_t n) : chain_(chain), n_(n) {
    link_free_.assign(chain.size(), 0);
    proc_free_.assign(chain.size(), 0);
    current_.reserve(n);
  }

  Time run(std::vector<std::size_t>* best_seq) {
    dfs(0);
    MST_ASSERT(best_ > 0 || n_ == 0);
    if (best_seq != nullptr) *best_seq = best_sequence_;
    return best_;
  }

 private:
  void dfs(Time current_makespan) {
    if (current_makespan >= best_) return;  // prune: can only grow
    if (current_.size() == n_) {
      best_ = current_makespan;
      best_sequence_ = current_;
      return;
    }
    for (std::size_t dest = 0; dest < chain_.size(); ++dest) {
      // Inline ASAP commit with undo.
      std::vector<Time> saved_links(link_free_.begin(),
                                    link_free_.begin() + static_cast<std::ptrdiff_t>(dest) + 1);
      const Time saved_proc = proc_free_[dest];

      Time emission = link_free_[0];
      link_free_[0] = emission + chain_.comm(0);
      for (std::size_t k = 1; k <= dest; ++k) {
        emission = std::max(emission + chain_.comm(k - 1), link_free_[k]);
        link_free_[k] = emission + chain_.comm(k);
      }
      const Time arrival = emission + chain_.comm(dest);
      const Time start = std::max(arrival, proc_free_[dest]);
      const Time end = start + chain_.work(dest);
      proc_free_[dest] = end;

      current_.push_back(dest);
      dfs(std::max(current_makespan, end));
      current_.pop_back();

      std::copy(saved_links.begin(), saved_links.end(), link_free_.begin());
      proc_free_[dest] = saved_proc;
    }
  }

  const Chain& chain_;
  std::size_t n_;
  std::vector<Time> link_free_;
  std::vector<Time> proc_free_;
  std::vector<std::size_t> current_;
  std::vector<std::size_t> best_sequence_;
  Time best_ = kTimeInfinity;
};

/// Same search over spider destinations.
class SpiderSearch {
 public:
  SpiderSearch(const Spider& spider, std::size_t n) : spider_(spider), n_(n) {
    link_free_.resize(spider.num_legs());
    proc_free_.resize(spider.num_legs());
    for (std::size_t l = 0; l < spider.num_legs(); ++l) {
      link_free_[l].assign(spider.leg(l).size(), 0);
      proc_free_[l].assign(spider.leg(l).size(), 0);
    }
    current_.reserve(n);
  }

  Time run(std::vector<SpiderDest>* best_seq) {
    dfs(0);
    if (best_seq != nullptr) *best_seq = best_sequence_;
    return best_;
  }

 private:
  void dfs(Time current_makespan) {
    if (current_makespan >= best_) return;
    if (current_.size() == n_) {
      best_ = current_makespan;
      best_sequence_ = current_;
      return;
    }
    for (std::size_t l = 0; l < spider_.num_legs(); ++l) {
      const Chain& leg = spider_.leg(l);
      for (std::size_t q = 0; q < leg.size(); ++q) {
        std::vector<Time> saved_links(link_free_[l].begin(),
                                      link_free_[l].begin() + static_cast<std::ptrdiff_t>(q) + 1);
        const Time saved_proc = proc_free_[l][q];
        const Time saved_port = port_free_;

        Time emission = std::max(port_free_, link_free_[l][0]);
        port_free_ = emission + leg.comm(0);
        link_free_[l][0] = port_free_;
        for (std::size_t k = 1; k <= q; ++k) {
          emission = std::max(emission + leg.comm(k - 1), link_free_[l][k]);
          link_free_[l][k] = emission + leg.comm(k);
        }
        const Time arrival = emission + leg.comm(q);
        const Time start = std::max(arrival, proc_free_[l][q]);
        const Time end = start + leg.work(q);
        proc_free_[l][q] = end;

        current_.push_back({l, q});
        dfs(std::max(current_makespan, end));
        current_.pop_back();

        std::copy(saved_links.begin(), saved_links.end(), link_free_[l].begin());
        proc_free_[l][q] = saved_proc;
        port_free_ = saved_port;
      }
    }
  }

  const Spider& spider_;
  std::size_t n_;
  Time port_free_ = 0;
  std::vector<std::vector<Time>> link_free_;
  std::vector<std::vector<Time>> proc_free_;
  std::vector<SpiderDest> current_;
  std::vector<SpiderDest> best_sequence_;
  Time best_ = kTimeInfinity;
};

}  // namespace

Time brute_force_chain_makespan(const Chain& chain, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  ChainSearch search(chain, n);
  return search.run(nullptr);
}

ChainSchedule brute_force_chain_schedule(const Chain& chain, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  ChainSearch search(chain, n);
  std::vector<std::size_t> seq;
  search.run(&seq);
  return asap_chain_schedule(chain, seq);
}

Time brute_force_spider_makespan(const Spider& spider, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  SpiderSearch search(spider, n);
  return search.run(nullptr);
}

SpiderSchedule brute_force_spider_schedule(const Spider& spider, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  SpiderSearch search(spider, n);
  std::vector<SpiderDest> seq;
  search.run(&seq);
  return asap_spider_schedule(spider, seq);
}

Time brute_force_fork_makespan(const Fork& fork, std::size_t n) {
  return brute_force_spider_makespan(Spider::from_fork(fork), n);
}

std::size_t brute_force_chain_max_tasks(const Chain& chain, Time t_lim, std::size_t cap) {
  std::size_t count = 0;
  while (count < cap && brute_force_chain_makespan(chain, count + 1) <= t_lim) ++count;
  return count;
}

std::size_t brute_force_spider_max_tasks(const Spider& spider, Time t_lim, std::size_t cap) {
  std::size_t count = 0;
  while (count < cap && brute_force_spider_makespan(spider, count + 1) <= t_lim) ++count;
  return count;
}

}  // namespace mst
