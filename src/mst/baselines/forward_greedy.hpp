#pragma once

#include <cstddef>

#include "mst/platform/chain.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file forward_greedy.hpp
/// Earliest-completion-time list scheduling — the natural *forward*
/// heuristic the paper's backward construction competes against.
///
/// Tasks are dispatched one at a time; each picks the destination whose
/// ASAP completion time is smallest (ties toward the nearer processor).
/// This is what a master-worker runtime with perfect platform knowledge but
/// no lookahead would do.  It is feasible by construction but not optimal:
/// the HEUR experiment quantifies the gap against the paper's algorithm.

namespace mst {

ChainSchedule forward_greedy_chain(const Chain& chain, std::size_t n);
SpiderSchedule forward_greedy_spider(const Spider& spider, std::size_t n);

Time forward_greedy_chain_makespan(const Chain& chain, std::size_t n);
Time forward_greedy_spider_makespan(const Spider& spider, std::size_t n);

/// Workload forms: tasks are dispatched in canonical workload order, each
/// picking the destination with the earliest size-scaled, release-gated
/// ASAP completion.  `Workload::identical(n)` reproduces the `n` forms
/// bit-for-bit.
ChainSchedule forward_greedy_chain(const Chain& chain, const Workload& workload);
SpiderSchedule forward_greedy_spider(const Spider& spider, const Workload& workload);

}  // namespace mst
