#include "mst/baselines/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// 1/t with t == 0 meaning an infinitely fast resource.
double inv(Time t) { return t > 0 ? 1.0 / static_cast<double>(t) : kInf; }

/// Greedy one-port allocation: children offering rates `offers[i]` at
/// per-task port cost `costs[i]`; the port has one unit of time per time
/// unit.  Filling cheapest-cost first maximizes the total accepted rate
/// (the bandwidth-centric argument of [2]).  Sorts in place so warm scratch
/// callers stay allocation-free.
double one_port_fill(std::vector<std::pair<Time, double>>& cost_offer) {
  std::sort(cost_offer.begin(), cost_offer.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  double budget = 1.0;
  double rate = 0.0;
  for (const auto& [cost, offer] : cost_offer) {
    if (budget <= 0.0) break;
    if (cost <= 0) {  // free link: take the whole offer
      rate += offer;
      continue;
    }
    const double take = std::min(offer, budget / static_cast<double>(cost));
    rate += take;
    budget -= take * static_cast<double>(cost);
  }
  return rate;
}

double one_port_fill(std::vector<std::pair<Time, double>>&& cost_offer) {
  return one_port_fill(cost_offer);
}

/// Ceiling of n/rate as a Time, robust to the fp representation.
Time rate_bound(std::size_t n, double rate) {
  if (!(rate > 0.0) || std::isinf(rate)) return 0;
  return static_cast<Time>(std::ceil(static_cast<double>(n) / rate - 1e-9));
}

}  // namespace

double chain_steady_state_rate(const Chain& chain) {
  // Backward nested-LP recursion: the sub-chain starting at k absorbs
  // lambda_k = min(1/c_k, 1/w_k + lambda_{k+1}) tasks per time unit.
  double lambda = 0.0;
  for (std::size_t k1 = chain.size(); k1 >= 1; --k1) {
    const std::size_t k = k1 - 1;
    lambda = std::min(inv(chain.comm(k)), inv(chain.work(k)) + lambda);
  }
  return lambda;
}

namespace {

double spider_steady_state_rate(const Spider& spider, OnePortScratch& scratch) {
  scratch.clear();
  for (const Chain& leg : spider.legs()) {
    scratch.emplace_back(leg.comm(0), chain_steady_state_rate(leg));
  }
  return one_port_fill(scratch);
}

}  // namespace

double spider_steady_state_rate(const Spider& spider) {
  OnePortScratch scratch;
  scratch.reserve(spider.num_legs());
  return spider_steady_state_rate(spider, scratch);
}

namespace {

double tree_rate_rec(const Tree& tree, NodeId v) {
  double own = tree.is_root(v) ? 0.0 : inv(tree.proc(v).work);
  std::vector<std::pair<Time, double>> cost_offer;
  for (NodeId child : tree.children(v)) {
    cost_offer.emplace_back(tree.proc(child).comm, tree_rate_rec(tree, child));
  }
  return own + one_port_fill(std::move(cost_offer));
}

}  // namespace

double tree_steady_state_rate(const Tree& tree) {
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  return tree_rate_rec(tree, 0);
}

Time chain_makespan_lower_bound(const Chain& chain, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  // (a) LP/steady-state busy-time bound.
  Time lb = rate_bound(n, chain_steady_state_rate(chain));
  // (b) Every task crosses link 0; after the last emission ends (>= n*c_0)
  //     the cheapest continuation still costs transit + work.
  Time tail = kTimeInfinity;
  for (std::size_t q = 0; q < chain.size(); ++q) {
    tail = std::min(tail, chain.path_latency(q) - chain.comm(0) + chain.work(q));
  }
  lb = std::max(lb, static_cast<Time>(n) * chain.comm(0) + tail);
  // (c) Any single task pays its full path plus its work.
  Time single = kTimeInfinity;
  for (std::size_t q = 0; q < chain.size(); ++q) {
    single = std::min(single, chain.path_latency(q) + chain.work(q));
  }
  return std::max(lb, single);
}

Time spider_makespan_lower_bound(const Spider& spider, std::size_t n, OnePortScratch& scratch) {
  MST_REQUIRE(n >= 1, "need at least one task");
  Time lb = rate_bound(n, spider_steady_state_rate(spider, scratch));
  // Master-port busy time: every task occupies the port for at least the
  // cheapest first link; the last-emitted task still needs the cheapest
  // continuation.
  Time min_c0 = kTimeInfinity;
  Time tail = kTimeInfinity;
  Time single = kTimeInfinity;
  for (const Chain& leg : spider.legs()) {
    min_c0 = std::min(min_c0, leg.comm(0));
    for (std::size_t q = 0; q < leg.size(); ++q) {
      tail = std::min(tail, leg.path_latency(q) - leg.comm(0) + leg.work(q));
      single = std::min(single, leg.path_latency(q) + leg.work(q));
    }
  }
  lb = std::max(lb, static_cast<Time>(n) * min_c0 + tail);
  return std::max(lb, single);
}

Time spider_makespan_lower_bound(const Spider& spider, std::size_t n) {
  OnePortScratch scratch;
  scratch.reserve(spider.num_legs());
  return spider_makespan_lower_bound(spider, n, scratch);
}

Time fork_makespan_lower_bound(const Fork& fork, std::size_t n, OnePortScratch& scratch) {
  MST_REQUIRE(n >= 1, "need at least one task");
  // A fork is a spider of single-processor legs: leg rate
  // `min(1/c_i, 1/w_i)`, first-link cost `c_i`, path latency `c_i`.  The
  // terms below mirror the spider bound on `Spider::from_fork(fork)`
  // term-for-term (same iteration order, same arithmetic), so the result is
  // bit-identical — without building the spider.
  scratch.clear();
  for (const Processor& slave : fork.slaves()) {
    scratch.emplace_back(slave.comm, std::min(inv(slave.comm), inv(slave.work)));
  }
  Time lb = rate_bound(n, one_port_fill(scratch));
  Time min_c0 = kTimeInfinity;
  Time tail = kTimeInfinity;
  Time single = kTimeInfinity;
  for (const Processor& slave : fork.slaves()) {
    min_c0 = std::min(min_c0, slave.comm);
    tail = std::min(tail, slave.work);
    single = std::min(single, slave.comm + slave.work);
  }
  lb = std::max(lb, static_cast<Time>(n) * min_c0 + tail);
  return std::max(lb, single);
}

}  // namespace mst
