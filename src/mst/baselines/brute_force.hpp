#pragma once

#include <cstddef>

#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file brute_force.hpp
/// Exhaustive exact optimum — the ground truth for Theorem 1 / Theorem 3
/// validation.
///
/// For identical tasks the search space collapses to *destination
/// sequences*: per-link FIFO order is WLOG (identical tasks can be relabeled
/// to uncross any two communications, cf. Lemma 1), and for a fixed sequence
/// ASAP forward timing is optimal because every completion time is monotone
/// in every resource-availability input.  The search is a DFS over the
/// `p^n` sequences with branch-and-bound pruning on the partial makespan.
///
/// Cost is exponential — intended for instances around `n <= 9`, `p <= 4`
/// (tests) and the OPT-* experiment tables; the library's schedulers solve
/// the same instances in polynomial time.

namespace mst {

/// Exact optimal makespan of `n` tasks on a chain.
Time brute_force_chain_makespan(const Chain& chain, std::size_t n);

/// Exact optimal schedule (one of the minimizers).
ChainSchedule brute_force_chain_schedule(const Chain& chain, std::size_t n);

/// Exact optimal makespan on a spider (master one-port across legs).
Time brute_force_spider_makespan(const Spider& spider, std::size_t n);

/// Exact optimal schedule on a spider.
SpiderSchedule brute_force_spider_schedule(const Spider& spider, std::size_t n);

/// Exact optimal makespan on a fork (via the one-slave-per-leg spider).
Time brute_force_fork_makespan(const Fork& fork, std::size_t n);

/// Exact decision form: the maximum number of tasks (at most `cap`)
/// completable within `t_lim`.  Computed by searching the smallest `k` whose
/// exact optimal makespan exceeds `t_lim` (optimal makespan is monotone in
/// the task count).
std::size_t brute_force_chain_max_tasks(const Chain& chain, Time t_lim, std::size_t cap);
std::size_t brute_force_spider_max_tasks(const Spider& spider, Time t_lim, std::size_t cap);

}  // namespace mst
