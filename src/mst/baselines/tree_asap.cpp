#include "mst/baselines/tree_asap.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

TreeAsapState::TreeAsapState(const Tree& tree)
    : tree_(&tree), port_free_(tree.size(), 0), proc_free_(tree.size(), 0) {
  // Flatten every root-excluded root→v path into one table so the hot
  // peek/commit loops below walk spans instead of materializing vectors.
  path_offset_.reserve(tree.size() + 1);
  path_offset_.push_back(0);
  for (NodeId v = 0; v < tree.size(); ++v) {
    if (v != 0) {
      for (NodeId hop : tree.path_from_root(v)) path_nodes_.push_back(hop);
    }
    path_offset_.push_back(path_nodes_.size());
  }
}

void TreeAsapState::reset() {
  std::fill(port_free_.begin(), port_free_.end(), 0);
  std::fill(proc_free_.begin(), proc_free_.end(), 0);
}

// mstlint: zero-alloc
Time TreeAsapState::peek_completion(NodeId dest, Time size, Time release) const {
  MST_REQUIRE(dest != 0 && dest < tree_->size(), "destination must be a slave node");
  Time ready = release;
  NodeId prev = 0;
  for (const NodeId* hop = path_begin(dest); hop != path_end(dest); ++hop) {
    const Time emit = std::max(ready, port_free_[prev]);
    ready = emit + size * tree_->proc(*hop).comm;
    prev = *hop;
  }
  return std::max(ready, proc_free_[dest]) + size * tree_->proc(dest).work;
}

Time TreeAsapState::commit(NodeId dest, Time size, Time release) {
  MST_REQUIRE(dest != 0 && dest < tree_->size(), "destination must be a slave node");
  Time ready = release;
  NodeId prev = 0;
  for (const NodeId* hop = path_begin(dest); hop != path_end(dest); ++hop) {
    const Time emit = std::max(ready, port_free_[prev]);
    ready = emit + size * tree_->proc(*hop).comm;
    port_free_[prev] = ready;
    prev = *hop;
  }
  proc_free_[dest] = std::max(ready, proc_free_[dest]) + size * tree_->proc(dest).work;
  return proc_free_[dest];
}

Time asap_tree_makespan(const std::vector<NodeId>& dests, TreeAsapState& state) {
  state.reset();
  Time makespan = 0;
  for (NodeId dest : dests) makespan = std::max(makespan, state.commit(dest));
  return makespan;
}
// mstlint: zero-alloc-end

Time asap_tree_makespan(const Tree& tree, const std::vector<NodeId>& dests) {
  TreeAsapState state(tree);
  return asap_tree_makespan(dests, state);
}

std::vector<NodeId> forward_greedy_tree(const Tree& tree, std::size_t n) {
  TreeAsapState state(tree);
  std::vector<NodeId> dests;
  forward_greedy_tree_into(n, state, dests);
  return dests;
}

// mstlint: zero-alloc
Time forward_greedy_tree_into(std::size_t n, TreeAsapState& state, std::vector<NodeId>& dests) {
  const Tree& tree = state.tree();
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  state.reset();
  dests.clear();
  Time makespan = 0;
  for (std::size_t i = 0; i < n; ++i) {
    NodeId best = 1;
    Time best_completion = kTimeInfinity;
    for (NodeId v = 1; v < tree.size(); ++v) {
      const Time completion = state.peek_completion(v);
      if (completion < best_completion) {
        best_completion = completion;
        best = v;
      }
    }
    makespan = std::max(makespan, state.commit(best));
    dests.push_back(best);
  }
  return makespan;
}
// mstlint: zero-alloc-end

Time forward_greedy_tree_makespan(const Tree& tree, std::size_t n) {
  return asap_tree_makespan(tree, forward_greedy_tree(tree, n));
}

/// Branch-and-bound DFS over destination sequences, mirroring the chain /
/// spider searches in brute_force.cpp but over tree paths.
class TreeSearch {
 public:
  TreeSearch(const Tree& tree, std::size_t n) : state_(tree), n_(n) {}

  Time run() {
    dfs(0, 0);
    return best_;
  }

 private:
  void dfs(std::size_t placed, Time current_makespan) {
    if (current_makespan >= best_) return;
    if (placed == n_) {
      best_ = current_makespan;
      return;
    }
    const Tree& tree = state_.tree();
    for (NodeId dest = 1; dest < tree.size(); ++dest) {
      // Save the touched state slots (ports along the path + the cpu).
      const NodeId* const path = state_.path_begin(dest);
      const std::size_t path_len =
          static_cast<std::size_t>(state_.path_end(dest) - path);
      std::vector<Time> saved_ports;
      saved_ports.reserve(path_len);
      NodeId prev = 0;
      for (std::size_t i = 0; i < path_len; ++i) {
        saved_ports.push_back(state_.port_free_[prev]);
        prev = path[i];
      }
      const Time saved_proc = state_.proc_free_[dest];

      const Time end = state_.commit(dest);
      dfs(placed + 1, std::max(current_makespan, end));

      prev = 0;
      for (std::size_t i = 0; i < path_len; ++i) {
        state_.port_free_[prev] = saved_ports[i];
        prev = path[i];
      }
      state_.proc_free_[dest] = saved_proc;
    }
  }

  TreeAsapState state_;
  std::size_t n_;
  Time best_ = kTimeInfinity;
};

Time brute_force_tree_makespan(const Tree& tree, std::size_t n) {
  MST_REQUIRE(n >= 1, "need at least one task");
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  TreeSearch search(tree, n);
  return search.run();
}

}  // namespace mst
