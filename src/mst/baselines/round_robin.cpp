#include "mst/baselines/round_robin.hpp"

#include <vector>

#include "mst/baselines/asap.hpp"

namespace mst {

ChainSchedule round_robin_chain(const Chain& chain, std::size_t n) {
  std::vector<std::size_t> dests(n);
  for (std::size_t i = 0; i < n; ++i) dests[i] = i % chain.size();
  return asap_chain_schedule(chain, dests);
}

SpiderSchedule round_robin_spider(const Spider& spider, std::size_t n) {
  std::vector<SpiderDest> all;
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    for (std::size_t q = 0; q < spider.leg(l).size(); ++q) all.push_back({l, q});
  }
  std::vector<SpiderDest> dests(n);
  for (std::size_t i = 0; i < n; ++i) dests[i] = all[i % all.size()];
  return asap_spider_schedule(spider, dests);
}

ChainSchedule round_robin_chain(const Chain& chain, const Workload& workload) {
  std::vector<std::size_t> dests(workload.count());
  for (std::size_t i = 0; i < dests.size(); ++i) dests[i] = i % chain.size();
  return asap_chain_schedule(chain, dests, workload);
}

SpiderSchedule round_robin_spider(const Spider& spider, const Workload& workload) {
  std::vector<SpiderDest> all;
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    for (std::size_t q = 0; q < spider.leg(l).size(); ++q) all.push_back({l, q});
  }
  std::vector<SpiderDest> dests(workload.count());
  for (std::size_t i = 0; i < dests.size(); ++i) dests[i] = all[i % all.size()];
  return asap_spider_schedule(spider, dests, workload);
}

Time round_robin_chain_makespan(const Chain& chain, std::size_t n) {
  return round_robin_chain(chain, n).makespan();
}

Time round_robin_spider_makespan(const Spider& spider, std::size_t n) {
  return round_robin_spider(spider, n).makespan();
}

}  // namespace mst
