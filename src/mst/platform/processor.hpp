#pragma once

#include "mst/common/time.hpp"

/// \file processor.hpp
/// The atomic platform element of the paper's model.

namespace mst {

/// A slave processor together with its *incoming* communication link.
///
/// In the paper's chain model (Fig 1) processor `i` is reached through a link
/// of latency `c_i` and needs `w_i` time units to process one task.  The same
/// pair describes a fork (star) slave or a tree node: the link is always the
/// unique edge toward the master.
///
/// `comm == 0` models an infinitely fast link (allowed: condition (4) of
/// Definition 1 degenerates gracefully); `work` must be strictly positive —
/// a zero-work processor would absorb unbounded tasks in zero time and the
/// paper's `T∞` construction would not terminate meaningfully.
struct Processor {
  Time comm = 1;  ///< `c_i`: incoming link latency per task.
  Time work = 1;  ///< `w_i`: processing time per task.

  friend bool operator==(const Processor&, const Processor&) = default;
};

}  // namespace mst
