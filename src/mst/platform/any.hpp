#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

/// \file any.hpp
/// The topology-erased platform value: one variant over the four concrete
/// platform families, plus the kind enum and the uniform accessors every
/// layer above `platform/` shares.
///
/// This lives in the platform layer on purpose.  The simulator, the
/// analysis curves and the registry all need "a platform of any kind"
/// without caring who dispatches on it; keeping the variant here lets them
/// depend downward only (enforced by mstlint's layering pass — see the
/// module DAG in tools/mstlint).  `api/registry.hpp` re-exports these names
/// into `mst::api`, so registry call sites keep spelling `api::Platform`.

namespace mst {

/// Topology families the library schedules on.
enum class PlatformKind { kChain, kFork, kSpider, kTree };

std::string to_string(PlatformKind kind);

/// Inverse of `to_string`; empty optional on unknown names.
std::optional<PlatformKind> platform_kind_from(std::string_view name);

/// All kinds, for sweep loops.
const std::vector<PlatformKind>& all_platform_kinds();

/// A platform of any topology.  Algorithms receive this and throw
/// `std::invalid_argument` when handed the wrong alternative.
using Platform = std::variant<Chain, Fork, Spider, Tree>;

PlatformKind kind_of(const Platform& platform);
std::string describe(const Platform& platform);

/// Total number of slave processors, whatever the topology.
std::size_t num_processors(const Platform& platform);

}  // namespace mst
