#include "mst/platform/any.hpp"

namespace mst {

std::string to_string(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kChain: return "chain";
    case PlatformKind::kFork: return "fork";
    case PlatformKind::kSpider: return "spider";
    case PlatformKind::kTree: return "tree";
  }
  return "?";
}

std::optional<PlatformKind> platform_kind_from(std::string_view name) {
  for (PlatformKind kind : all_platform_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<PlatformKind>& all_platform_kinds() {
  static const std::vector<PlatformKind> kinds{PlatformKind::kChain, PlatformKind::kFork,
                                               PlatformKind::kSpider, PlatformKind::kTree};
  return kinds;
}

PlatformKind kind_of(const Platform& platform) {
  switch (platform.index()) {
    case 0: return PlatformKind::kChain;
    case 1: return PlatformKind::kFork;
    case 2: return PlatformKind::kSpider;
    default: return PlatformKind::kTree;
  }
}

std::string describe(const Platform& platform) {
  return std::visit([](const auto& p) { return p.describe(); }, platform);
}

std::size_t num_processors(const Platform& platform) {
  if (const auto* chain = std::get_if<Chain>(&platform)) return chain->size();
  if (const auto* fork = std::get_if<Fork>(&platform)) return fork->size();
  if (const auto* spider = std::get_if<Spider>(&platform)) return spider->num_processors();
  return std::get<Tree>(platform).num_slaves();
}

}  // namespace mst
