#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"

/// \file spider.hpp
/// Spider platform of §6–7: a tree whose only node of arity > 2 is the master.

namespace mst {

/// A spider graph: the master (root) feeds several independent chains
/// ("legs").  The master's out-port is shared across legs — it sends one task
/// at a time, so a task bound for leg `l` occupies the master for the leg's
/// first-link latency before the next emission (to any leg) may begin.
class Spider {
 public:
  Spider() = default;

  /// Throws if there is no leg (each leg validates itself).
  explicit Spider(std::vector<Chain> legs);
  Spider(std::initializer_list<Chain> legs);

  /// A fork is the special spider whose legs all have length 1.
  static Spider from_fork(const Fork& fork);

  [[nodiscard]] std::size_t num_legs() const { return legs_.size(); }
  [[nodiscard]] const Chain& leg(std::size_t l) const;
  [[nodiscard]] const std::vector<Chain>& legs() const { return legs_; }

  /// Total number of slave processors over all legs.
  [[nodiscard]] std::size_t num_processors() const;

  /// True iff every leg has length 1 (the platform is a fork).
  [[nodiscard]] bool is_fork() const;

  /// Down-convert to a Fork; throws unless `is_fork()`.
  [[nodiscard]] Fork to_fork() const;

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Spider&, const Spider&) = default;

 private:
  std::vector<Chain> legs_;
};

}  // namespace mst
