#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "mst/platform/processor.hpp"

/// \file fork.hpp
/// Fork (star) platform of §6: one master directly connected to p slaves.

namespace mst {

/// A fork graph: the master has `p` children, each a single slave processor
/// reached through its own link.  The master's *out-port* is the shared
/// resource — it sends one task at a time, so emissions to different slaves
/// serialize even though the links are distinct.
class Fork {
 public:
  Fork() = default;

  /// Throws if empty or any slave is invalid.
  explicit Fork(std::vector<Processor> slaves);
  Fork(std::initializer_list<Processor> slaves);

  [[nodiscard]] std::size_t size() const { return slaves_.size(); }
  [[nodiscard]] const Processor& slave(std::size_t i) const;
  [[nodiscard]] const std::vector<Processor>& slaves() const { return slaves_; }

  /// `m_i = max(c_i, w_i)`: the per-task cadence of slave `i` in the
  /// virtual-node expansion of Fig 6.
  [[nodiscard]] Time cadence(std::size_t i) const;

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Fork&, const Fork&) = default;

 private:
  std::vector<Processor> slaves_;
};

}  // namespace mst
