#include "mst/platform/tree.hpp"

#include <algorithm>
#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

Tree::Tree() {
  parent_.push_back(0);
  children_.emplace_back();
  proc_.push_back(Processor{0, 1});  // dummy for the master slot
}

NodeId Tree::add_node(NodeId parent, Processor proc) {
  MST_REQUIRE(parent < parent_.size(), "parent node does not exist");
  MST_REQUIRE(proc.comm >= 0, "link latency must be non-negative");
  MST_REQUIRE(proc.work > 0, "processing time must be strictly positive");
  const NodeId id = parent_.size();
  parent_.push_back(parent);
  children_.emplace_back();
  proc_.push_back(proc);
  children_[parent].push_back(id);
  return id;
}

NodeId Tree::parent(NodeId v) const {
  MST_REQUIRE(v < parent_.size() && v != 0, "node has no parent");
  return parent_[v];
}

const std::vector<NodeId>& Tree::children(NodeId v) const {
  MST_REQUIRE(v < children_.size(), "node does not exist");
  return children_[v];
}

const Processor& Tree::proc(NodeId v) const {
  MST_REQUIRE(v < proc_.size() && v != 0, "the master has no processor record");
  return proc_[v];
}

std::size_t Tree::depth(NodeId v) const {
  MST_REQUIRE(v < parent_.size(), "node does not exist");
  std::size_t d = 0;
  while (v != 0) {
    v = parent_[v];
    ++d;
  }
  return d;
}

Time Tree::path_latency(NodeId v) const {
  MST_REQUIRE(v < parent_.size() && v != 0, "path latency defined for slaves only");
  Time sum = 0;
  while (v != 0) {
    sum += proc_[v].comm;
    v = parent_[v];
  }
  return sum;
}

std::vector<NodeId> Tree::path_from_root(NodeId v) const {
  MST_REQUIRE(v < parent_.size() && v != 0, "path defined for slaves only");
  std::vector<NodeId> path;
  while (v != 0) {
    path.push_back(v);
    v = parent_[v];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool Tree::is_chain() const {
  for (const auto& kids : children_) {
    if (kids.size() > 1) return false;
  }
  return num_slaves() >= 1;
}

bool Tree::is_spider() const {
  if (num_slaves() < 1) return false;
  for (NodeId v = 1; v < children_.size(); ++v) {
    if (children_[v].size() > 1) return false;
  }
  return true;
}

Chain Tree::to_chain() const {
  MST_REQUIRE(is_chain(), "tree is not a chain");
  std::vector<Processor> procs;
  NodeId v = 0;
  while (!children_[v].empty()) {
    v = children_[v].front();
    procs.push_back(proc_[v]);
  }
  return Chain(std::move(procs));
}

Tree::SpiderView Tree::to_spider() const {
  MST_REQUIRE(is_spider(), "tree is not a spider");
  std::vector<Chain> legs;
  std::vector<std::vector<NodeId>> node_of;
  for (NodeId head : children_[0]) {
    std::vector<Processor> procs;
    std::vector<NodeId> ids;
    NodeId v = head;
    while (true) {
      procs.push_back(proc_[v]);
      ids.push_back(v);
      if (children_[v].empty()) break;
      v = children_[v].front();
    }
    legs.emplace_back(std::move(procs));
    node_of.push_back(std::move(ids));
  }
  return SpiderView{Spider(std::move(legs)), std::move(node_of)};
}

Tree tree_from_chain(const Chain& chain) {
  Tree tree;
  NodeId parent = 0;
  for (const Processor& p : chain.procs()) parent = tree.add_node(parent, p);
  return tree;
}

Tree tree_from_spider(const Spider& spider) {
  Tree tree;
  for (const Chain& leg : spider.legs()) {
    NodeId parent = 0;
    for (const Processor& p : leg.procs()) parent = tree.add_node(parent, p);
  }
  return tree;
}

std::string Tree::describe() const {
  std::ostringstream os;
  os << "tree{n=" << size() << ", slaves=" << num_slaves() << '}';
  return os.str();
}

}  // namespace mst
