#include "mst/platform/chain.hpp"

#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

namespace {
void validate(const std::vector<Processor>& procs) {
  MST_REQUIRE(!procs.empty(), "chain must contain at least one processor");
  for (const Processor& p : procs) {
    MST_REQUIRE(p.comm >= 0, "link latency c_i must be non-negative");
    MST_REQUIRE(p.work > 0, "processing time w_i must be strictly positive");
  }
}
}  // namespace

Chain::Chain(std::vector<Processor> procs) : procs_(std::move(procs)) { validate(procs_); }

Chain::Chain(std::initializer_list<Processor> procs) : procs_(procs) { validate(procs_); }

Chain Chain::from_vectors(const std::vector<Time>& comms, const std::vector<Time>& works) {
  MST_REQUIRE(comms.size() == works.size(), "comm/work vectors must have equal length");
  std::vector<Processor> procs;
  procs.reserve(comms.size());
  for (std::size_t i = 0; i < comms.size(); ++i) procs.push_back({comms[i], works[i]});
  return Chain(std::move(procs));
}

const Processor& Chain::proc(std::size_t i) const {
  MST_REQUIRE(i < procs_.size(), "processor index out of range");
  return procs_[i];
}

Time Chain::path_latency(std::size_t i) const {
  MST_REQUIRE(i < procs_.size(), "processor index out of range");
  Time sum = 0;
  for (std::size_t j = 0; j <= i; ++j) sum += procs_[j].comm;
  return sum;
}

Chain Chain::suffix(std::size_t from) const {
  MST_REQUIRE(from < procs_.size(), "suffix start out of range");
  return Chain(std::vector<Processor>(procs_.begin() + static_cast<std::ptrdiff_t>(from),
                                      procs_.end()));
}

Time Chain::t_infinity(std::size_t n) const {
  MST_REQUIRE(n >= 1, "t_infinity needs at least one task");
  const Processor& p0 = procs_.front();
  const Time step = std::max(p0.work, p0.comm);
  return p0.comm + static_cast<Time>(n - 1) * step + p0.work;
}

std::string Chain::describe() const {
  std::ostringstream os;
  os << "chain[";
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    if (i) os << ',';
    os << "(c=" << procs_[i].comm << ",w=" << procs_[i].work << ')';
  }
  os << ']';
  return os.str();
}

}  // namespace mst
