#include "mst/platform/generator.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst {

std::string to_string(PlatformClass cls) {
  switch (cls) {
    case PlatformClass::kUniform: return "uniform";
    case PlatformClass::kCommBound: return "comm-bound";
    case PlatformClass::kComputeBound: return "compute-bound";
    case PlatformClass::kCorrelated: return "correlated";
    case PlatformClass::kAntiCorrelated: return "anti-correlated";
  }
  return "?";
}

const std::vector<PlatformClass>& all_platform_classes() {
  static const std::vector<PlatformClass> kAll = {
      PlatformClass::kUniform, PlatformClass::kCommBound, PlatformClass::kComputeBound,
      PlatformClass::kCorrelated, PlatformClass::kAntiCorrelated};
  return kAll;
}

Processor random_processor(Rng& rng, const GeneratorParams& params) {
  MST_REQUIRE(params.lo >= 1 && params.hi >= params.lo, "need 1 <= lo <= hi");
  const Time lo = params.lo;
  const Time hi = params.hi;
  const Time mid = std::max<Time>(lo, hi / 2);
  switch (params.cls) {
    case PlatformClass::kUniform:
      return {rng.uniform(lo, hi), rng.uniform(lo, hi)};
    case PlatformClass::kCommBound:
      return {rng.uniform(mid, hi), rng.uniform(lo, mid)};
    case PlatformClass::kComputeBound:
      return {rng.uniform(lo, std::max<Time>(lo, hi / 4)), rng.uniform(mid, hi)};
    case PlatformClass::kCorrelated: {
      const Time base = rng.uniform(lo, hi);
      const Time jitter = std::max<Time>(1, (hi - lo) / 8);
      const Time c = std::clamp<Time>(base + rng.uniform(-jitter, jitter), lo, hi);
      return {c, base};
    }
    case PlatformClass::kAntiCorrelated: {
      const Time base = rng.uniform(lo, hi);
      const Time jitter = std::max<Time>(1, (hi - lo) / 8);
      const Time c = std::clamp<Time>(lo + hi - base + rng.uniform(-jitter, jitter), lo, hi);
      return {c, base};
    }
  }
  MST_ASSERT(false);
}

Chain random_chain(Rng& rng, std::size_t p, const GeneratorParams& params) {
  MST_REQUIRE(p >= 1, "chain needs at least one processor");
  std::vector<Processor> procs;
  procs.reserve(p);
  for (std::size_t i = 0; i < p; ++i) procs.push_back(random_processor(rng, params));
  return Chain(std::move(procs));
}

Fork random_fork(Rng& rng, std::size_t p, const GeneratorParams& params) {
  MST_REQUIRE(p >= 1, "fork needs at least one slave");
  std::vector<Processor> slaves;
  slaves.reserve(p);
  for (std::size_t i = 0; i < p; ++i) slaves.push_back(random_processor(rng, params));
  return Fork(std::move(slaves));
}

Spider random_spider(Rng& rng, std::size_t legs, std::size_t max_leg_len,
                     const GeneratorParams& params) {
  return random_spider(rng, legs, 1, max_leg_len, params);
}

Spider random_spider(Rng& rng, std::size_t legs, std::size_t min_leg_len,
                     std::size_t max_leg_len, const GeneratorParams& params) {
  MST_REQUIRE(legs >= 1, "spider needs at least one leg");
  MST_REQUIRE(min_leg_len >= 1 && min_leg_len <= max_leg_len,
              "need 1 <= min_leg_len <= max_leg_len");
  std::vector<Chain> chains;
  chains.reserve(legs);
  for (std::size_t l = 0; l < legs; ++l) {
    const auto len = static_cast<std::size_t>(
        rng.uniform(static_cast<Time>(min_leg_len), static_cast<Time>(max_leg_len)));
    chains.push_back(random_chain(rng, len, params));
  }
  return Spider(std::move(chains));
}

Tree random_tree(Rng& rng, std::size_t slaves, const GeneratorParams& params) {
  return random_tree(rng, slaves, params, 0.0);
}

Tree random_tree(Rng& rng, std::size_t slaves, const GeneratorParams& params,
                 double depth_bias) {
  MST_REQUIRE(slaves >= 1, "tree needs at least one slave");
  MST_REQUIRE(depth_bias >= 0.0 && depth_bias <= 1.0, "depth_bias must be in [0, 1]");
  Tree tree;
  NodeId last = 0;
  for (std::size_t i = 0; i < slaves; ++i) {
    // No `chance` draw at bias 0: the uniform-parent stream must stay
    // aligned with the historical `random_tree` instances.
    const bool extend = depth_bias > 0.0 && rng.chance(depth_bias);
    const NodeId parent =
        extend ? last
               : static_cast<NodeId>(rng.uniform(0, static_cast<Time>(tree.size() - 1)));
    last = tree.add_node(parent, random_processor(rng, params));
  }
  return tree;
}

}  // namespace mst
