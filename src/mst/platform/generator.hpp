#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mst/common/rng.hpp"
#include "mst/common/time.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

/// \file generator.hpp
/// Seeded random platform generators.
///
/// The paper evaluates analytically on hand-built examples; to run the
/// comparison and scaling experiments a release needs reproducible synthetic
/// platforms.  Every generator takes an explicit `Rng` so a (class, seed)
/// pair fully determines the instance.

namespace mst {

/// Heterogeneity classes modelled after the paper's motivating platforms
/// (SETI@home-style volunteer pools behind slow links, clusters behind fast
/// interconnects, and balanced grids).
enum class PlatformClass {
  kUniform,           ///< c, w both uniform in [lo, hi]
  kCommBound,         ///< slow links: c in [hi/2, hi], w in [lo, hi/2]
  kComputeBound,      ///< fast links: c in [lo, hi/4+lo], w in [hi/2, hi]
  kCorrelated,        ///< fast links go with fast processors (c ≈ w)
  kAntiCorrelated,    ///< fast links go with slow processors and vice versa
};

/// Returns the short name used in experiment tables ("uniform", "comm", ...).
std::string to_string(PlatformClass cls);

/// All classes, for sweep loops.
const std::vector<PlatformClass>& all_platform_classes();

/// Parameters shared by the generators.  Times are drawn in `[lo, hi]`
/// (inclusive) and then shaped per class; `lo >= 1` keeps processing times
/// positive.
struct GeneratorParams {
  Time lo = 1;
  Time hi = 10;
  PlatformClass cls = PlatformClass::kUniform;
};

/// One random processor of the given class.
Processor random_processor(Rng& rng, const GeneratorParams& params);

/// A chain of `p` processors.
Chain random_chain(Rng& rng, std::size_t p, const GeneratorParams& params);

/// A fork of `p` slaves.
Fork random_fork(Rng& rng, std::size_t p, const GeneratorParams& params);

/// A spider with `legs` legs whose lengths are uniform in
/// `[1, max_leg_len]`.
Spider random_spider(Rng& rng, std::size_t legs, std::size_t max_leg_len,
                     const GeneratorParams& params);

/// A spider whose leg lengths are uniform in `[min_leg_len, max_leg_len]`
/// (the scenario specs' width knob; `min == max` pins the length exactly).
Spider random_spider(Rng& rng, std::size_t legs, std::size_t min_leg_len,
                     std::size_t max_leg_len, const GeneratorParams& params);

/// A random tree with `slaves` slave nodes: each new node picks a uniformly
/// random existing node as parent (yields realistic mixed shapes: stars near
/// the root, chains in the tails).
Tree random_tree(Rng& rng, std::size_t slaves, const GeneratorParams& params);

/// Shape-controlled tree: with probability `depth_bias` a new node extends
/// the most recently added node (deepening a path), otherwise it attaches
/// to a uniformly random existing node.  `depth_bias = 0` reproduces
/// `random_tree`; `1` yields a pure chain; values between interpolate from
/// bushy/star-like to path-heavy — the scenario specs' depth knob.
Tree random_tree(Rng& rng, std::size_t slaves, const GeneratorParams& params,
                 double depth_bias);

}  // namespace mst
