#include "mst/platform/spider.hpp"

#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

Spider::Spider(std::vector<Chain> legs) : legs_(std::move(legs)) {
  MST_REQUIRE(!legs_.empty(), "spider must contain at least one leg");
}

Spider::Spider(std::initializer_list<Chain> legs) : legs_(legs) {
  MST_REQUIRE(!legs_.empty(), "spider must contain at least one leg");
}

Spider Spider::from_fork(const Fork& fork) {
  std::vector<Chain> legs;
  legs.reserve(fork.size());
  for (const Processor& p : fork.slaves()) legs.push_back(Chain({p}));
  return Spider(std::move(legs));
}

const Chain& Spider::leg(std::size_t l) const {
  MST_REQUIRE(l < legs_.size(), "leg index out of range");
  return legs_[l];
}

std::size_t Spider::num_processors() const {
  std::size_t total = 0;
  for (const Chain& leg : legs_) total += leg.size();
  return total;
}

bool Spider::is_fork() const {
  for (const Chain& leg : legs_) {
    if (leg.size() != 1) return false;
  }
  return true;
}

Fork Spider::to_fork() const {
  MST_REQUIRE(is_fork(), "spider has a leg longer than 1; not a fork");
  std::vector<Processor> slaves;
  slaves.reserve(legs_.size());
  for (const Chain& leg : legs_) slaves.push_back(leg.proc(0));
  return Fork(std::move(slaves));
}

std::string Spider::describe() const {
  std::ostringstream os;
  os << "spider{";
  for (std::size_t l = 0; l < legs_.size(); ++l) {
    if (l) os << "; ";
    os << legs_[l].describe();
  }
  os << '}';
  return os.str();
}

}  // namespace mst
