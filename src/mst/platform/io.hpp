#pragma once

#include <iosfwd>
#include <string>

#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"

/// \file io.hpp
/// Plain-text platform descriptions.
///
/// Format (line oriented, `#` starts a comment):
///
///     chain <p>
///     <c_1> <w_1>
///     ...
///     <c_p> <w_p>
///
///     fork <p>
///     <c_1> <w_1> ...
///
///     spider <legs>
///     leg <p>
///     <c_1> <w_1> ...
///     leg <p>
///     ...
///
/// `parse_*` throws `std::invalid_argument` with a line number on malformed
/// input.  `write_*`/`parse_*` round-trip exactly.

namespace mst {

std::string write_chain(const Chain& chain);
std::string write_fork(const Fork& fork);
std::string write_spider(const Spider& spider);

Chain parse_chain(const std::string& text);
Fork parse_fork(const std::string& text);
Spider parse_spider(const std::string& text);

/// Reads the header keyword and dispatches; returns the platform as a Spider
/// (a chain becomes a one-leg spider, a fork becomes single-node legs).
Spider parse_platform(const std::string& text);

}  // namespace mst
