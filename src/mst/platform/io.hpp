#pragma once

#include <iosfwd>
#include <string>

#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

/// \file io.hpp
/// Plain-text platform descriptions.
///
/// Format (line oriented, `#` starts a comment):
///
///     chain <p>
///     <c_1> <w_1>
///     ...
///     <c_p> <w_p>
///
///     fork <p>
///     <c_1> <w_1> ...
///
///     spider <legs>
///     leg <p>
///     <c_1> <w_1> ...
///     leg <p>
///     ...
///
///     tree <slaves>
///     <parent_1> <c_1> <w_1>   # slaves in id order 1..slaves; parent is 0
///     ...                      # (the master) or an earlier slave id
///
/// `parse_*` throws `std::invalid_argument` with a line number on malformed
/// input.  `write_*`/`parse_*` round-trip exactly.

namespace mst {

std::string write_chain(const Chain& chain);
std::string write_fork(const Fork& fork);
std::string write_spider(const Spider& spider);
std::string write_tree(const Tree& tree);

Chain parse_chain(const std::string& text);
Fork parse_fork(const std::string& text);
Spider parse_spider(const std::string& text);
Tree parse_tree(const std::string& text);

/// The header keyword of a platform description ("chain", "fork", "spider",
/// "tree", ...), read with the same comment/whitespace rules as the parsers.
/// Throws on empty input; does not validate the keyword.
/// For kind-preserving parsing into the registry's typed variant, use
/// `api::parse_any_platform` (mst/api/platform_io.hpp).
std::string peek_platform_kind(const std::string& text);

}  // namespace mst
