#include "mst/platform/io.hpp"

#include <sstream>
#include <vector>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Tokenized input with comment stripping and line tracking for errors.
class Lexer {
 public:
  explicit Lexer(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens_.push_back({tok, lineno});
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }

  std::string next(const char* what) {
    MST_REQUIRE(!done(), std::string("unexpected end of input, expected ") + what);
    return tokens_[pos_++].text;
  }

  Time next_time(const char* what) {
    MST_REQUIRE(!done(), std::string("unexpected end of input, expected ") + what);
    const std::size_t line = tokens_[pos_].line;
    const std::string tok = next(what);
    std::size_t used = 0;
    Time v = 0;
    try {
      v = std::stoll(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    MST_REQUIRE(used == tok.size(), "line " + std::to_string(line) + ": expected " +
                                        std::string(what) + ", got '" + tok + "'");
    return v;
  }

  std::size_t next_count(const char* what) {
    const Time v = next_time(what);
    MST_REQUIRE(v >= 1, std::string(what) + " must be >= 1");
    return static_cast<std::size_t>(v);
  }

  void expect(const std::string& keyword) {
    const auto line = done() ? 0 : tokens_[pos_].line;
    const std::string tok = next(keyword.c_str());
    MST_REQUIRE(tok == keyword,
                "line " + std::to_string(line) + ": expected '" + keyword + "', got '" + tok + "'");
  }

  void expect_end() const {
    if (!done()) {
      MST_REQUIRE(false, "line " + std::to_string(tokens_[pos_].line) + ": trailing input '" +
                             tokens_[pos_].text + "'");
    }
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
  };
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

std::vector<Processor> parse_proc_list(Lexer& lex, std::size_t p) {
  std::vector<Processor> procs;
  procs.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    const Time c = lex.next_time("link latency");
    const Time w = lex.next_time("processing time");
    procs.push_back({c, w});
  }
  return procs;
}

void write_proc_list(std::ostringstream& os, const std::vector<Processor>& procs) {
  for (const Processor& p : procs) os << p.comm << ' ' << p.work << '\n';
}

}  // namespace

std::string write_chain(const Chain& chain) {
  std::ostringstream os;
  os << "chain " << chain.size() << '\n';
  write_proc_list(os, chain.procs());
  return os.str();
}

std::string write_fork(const Fork& fork) {
  std::ostringstream os;
  os << "fork " << fork.size() << '\n';
  write_proc_list(os, fork.slaves());
  return os.str();
}

std::string write_spider(const Spider& spider) {
  std::ostringstream os;
  os << "spider " << spider.num_legs() << '\n';
  for (const Chain& leg : spider.legs()) {
    os << "leg " << leg.size() << '\n';
    write_proc_list(os, leg.procs());
  }
  return os.str();
}

std::string write_tree(const Tree& tree) {
  std::ostringstream os;
  os << "tree " << tree.num_slaves() << '\n';
  // One line per slave in id order; `add_node` assigns ids sequentially, so
  // parents always precede children and `parse_tree` can rebuild verbatim.
  for (NodeId v = 1; v < tree.size(); ++v) {
    os << tree.parent(v) << ' ' << tree.proc(v).comm << ' ' << tree.proc(v).work << '\n';
  }
  return os.str();
}

Chain parse_chain(const std::string& text) {
  Lexer lex(text);
  lex.expect("chain");
  const std::size_t p = lex.next_count("processor count");
  Chain chain(parse_proc_list(lex, p));
  lex.expect_end();
  return chain;
}

Fork parse_fork(const std::string& text) {
  Lexer lex(text);
  lex.expect("fork");
  const std::size_t p = lex.next_count("slave count");
  Fork fork(parse_proc_list(lex, p));
  lex.expect_end();
  return fork;
}

Spider parse_spider(const std::string& text) {
  Lexer lex(text);
  lex.expect("spider");
  const std::size_t legs = lex.next_count("leg count");
  std::vector<Chain> chains;
  chains.reserve(legs);
  for (std::size_t l = 0; l < legs; ++l) {
    lex.expect("leg");
    const std::size_t p = lex.next_count("leg length");
    chains.emplace_back(parse_proc_list(lex, p));
  }
  lex.expect_end();
  return Spider(std::move(chains));
}

Tree parse_tree(const std::string& text) {
  Lexer lex(text);
  lex.expect("tree");
  const std::size_t slaves = lex.next_count("slave count");
  Tree tree;
  for (std::size_t i = 1; i <= slaves; ++i) {
    const Time parent = lex.next_time("parent id");
    MST_REQUIRE(parent >= 0 && static_cast<std::size_t>(parent) < i,
                "slave " + std::to_string(i) + ": parent must be 0 (the master) or an earlier "
                "slave id, got " + std::to_string(parent));
    const Time c = lex.next_time("link latency");
    const Time w = lex.next_time("processing time");
    tree.add_node(static_cast<NodeId>(parent), Processor{c, w});
  }
  lex.expect_end();
  return tree;
}

std::string peek_platform_kind(const std::string& text) {
  Lexer probe(text);
  return probe.next("platform kind");
}

}  // namespace mst
