#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "mst/platform/chain.hpp"
#include "mst/platform/processor.hpp"
#include "mst/platform/spider.hpp"

/// \file tree.hpp
/// General tree platform — the target the paper names as future work (§8).
/// The library schedules chains and spiders optimally; trees are handled by
/// the covering heuristics in `mst/heuristics/`, which need this structure.

namespace mst {

/// Node id inside a Tree.  Node 0 is always the master (root); the master has
/// no incoming link and does not compute.
using NodeId = std::size_t;

/// A rooted tree of slave processors.  Every non-root node carries the
/// latency of the link to its parent (`comm`) and its processing time
/// (`work`); the one-port rule applies at every node: at most one outgoing
/// emission at a time and at most one incoming reception at a time.
class Tree {
 public:
  /// Creates a tree containing only the master.
  Tree();

  /// Adds a slave under `parent` and returns its id.  Throws on invalid
  /// parent or invalid processor values.
  NodeId add_node(NodeId parent, Processor proc);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }
  [[nodiscard]] std::size_t num_slaves() const { return size() - 1; }

  [[nodiscard]] NodeId parent(NodeId v) const;
  [[nodiscard]] const std::vector<NodeId>& children(NodeId v) const;
  [[nodiscard]] const Processor& proc(NodeId v) const;  ///< throws for the root
  [[nodiscard]] bool is_root(NodeId v) const { return v == 0; }

  /// Depth of `v` (root has depth 0).
  [[nodiscard]] std::size_t depth(NodeId v) const;

  /// Sum of link latencies from the root down to `v` inclusive.
  [[nodiscard]] Time path_latency(NodeId v) const;

  /// The node ids on the path root→`v`, excluding the root.
  [[nodiscard]] std::vector<NodeId> path_from_root(NodeId v) const;

  /// True iff every node has at most one child (the tree is a chain).
  [[nodiscard]] bool is_chain() const;

  /// True iff only the root has more than one child (the tree is a spider).
  [[nodiscard]] bool is_spider() const;

  /// Convert to Chain / Spider; throws unless the shape matches.  The spider
  /// conversion also returns, for every leg position, the original NodeId so
  /// heuristic schedules can be mapped back onto the tree.
  [[nodiscard]] Chain to_chain() const;

  struct SpiderView {
    Spider spider;
    /// `node_of[l][d]` = tree node at depth `d` (0-based) of leg `l`.
    std::vector<std::vector<NodeId>> node_of;
  };
  [[nodiscard]] SpiderView to_spider() const;

  /// Construct a random-shaped tree is provided by `mst/platform/generator.hpp`.
  [[nodiscard]] std::string describe() const;

  /// Structural equality (same parents and same processors in id order);
  /// the scenario sweep specs compare embedded platforms with this.
  friend bool operator==(const Tree&, const Tree&) = default;

 private:
  std::vector<NodeId> parent_;                 // parent_[0] == 0 (unused)
  std::vector<std::vector<NodeId>> children_;  // adjacency
  std::vector<Processor> proc_;                // proc_[0] is a dummy
};

/// Embeds a chain as a tree (master → single path).
Tree tree_from_chain(const Chain& chain);

/// Embeds a spider as a tree (master → one path per leg).  Node ids are
/// assigned leg by leg, depth first, so leg `l` processor `d` is node
/// `1 + sum(len of legs < l) + d`.
Tree tree_from_spider(const Spider& spider);

}  // namespace mst
