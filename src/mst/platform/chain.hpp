#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "mst/common/time.hpp"
#include "mst/platform/processor.hpp"

/// \file chain.hpp
/// Chain platform (Fig 1 of the paper): a master feeding a line of slaves.

namespace mst {

/// A chain of heterogeneous processors.
///
/// The master (task source) sits in front of processor 0; a task destined to
/// processor `k` is relayed over links `0..k`, paying latency `comm(j)` on
/// each and obeying the one-port rule on every link.  Processor indices are
/// 0-based in code; the paper numbers them 1..p.
class Chain {
 public:
  Chain() = default;

  /// Build from explicit processors.  Throws if empty or if any processor is
  /// invalid (negative latency, non-positive work).
  explicit Chain(std::vector<Processor> procs);
  Chain(std::initializer_list<Processor> procs);

  /// Build from parallel `(c_i)` / `(w_i)` vectors, paper-style.
  static Chain from_vectors(const std::vector<Time>& comms, const std::vector<Time>& works);

  [[nodiscard]] std::size_t size() const { return procs_.size(); }
  [[nodiscard]] bool empty() const { return procs_.empty(); }

  [[nodiscard]] const Processor& proc(std::size_t i) const;
  [[nodiscard]] Time comm(std::size_t i) const { return proc(i).comm; }
  [[nodiscard]] Time work(std::size_t i) const { return proc(i).work; }

  [[nodiscard]] const std::vector<Processor>& procs() const { return procs_; }

  /// Cumulative link latency from the master up to and including processor
  /// `i`'s link: `sum_{j<=i} c_j`.  This is the minimum transit time of one
  /// task to processor `i`.
  [[nodiscard]] Time path_latency(std::size_t i) const;

  /// The sub-chain starting at processor `from` (used by Lemma 2 tests and
  /// the optimality proof machinery).
  [[nodiscard]] Chain suffix(std::size_t from) const;

  /// `T∞` of the paper's §3: the makespan of the trivial schedule that puts
  /// all `n` tasks on the first processor,
  /// `c_0 + (n-1)·max(w_0, c_0) + w_0`.  Defined for `n >= 1`.
  [[nodiscard]] Time t_infinity(std::size_t n) const;

  /// Human-readable one-liner, e.g. `chain[(c=2,w=5),(c=3,w=3)]`.
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Chain&, const Chain&) = default;

 private:
  std::vector<Processor> procs_;
};

}  // namespace mst
