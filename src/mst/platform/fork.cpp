#include "mst/platform/fork.hpp"

#include <algorithm>
#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

namespace {
void validate(const std::vector<Processor>& slaves) {
  MST_REQUIRE(!slaves.empty(), "fork must contain at least one slave");
  for (const Processor& p : slaves) {
    MST_REQUIRE(p.comm >= 0, "link latency c_i must be non-negative");
    MST_REQUIRE(p.work > 0, "processing time w_i must be strictly positive");
  }
}
}  // namespace

Fork::Fork(std::vector<Processor> slaves) : slaves_(std::move(slaves)) { validate(slaves_); }

Fork::Fork(std::initializer_list<Processor> slaves) : slaves_(slaves) { validate(slaves_); }

const Processor& Fork::slave(std::size_t i) const {
  MST_REQUIRE(i < slaves_.size(), "slave index out of range");
  return slaves_[i];
}

Time Fork::cadence(std::size_t i) const {
  const Processor& p = slave(i);
  return std::max(p.comm, p.work);
}

std::string Fork::describe() const {
  std::ostringstream os;
  os << "fork[";
  for (std::size_t i = 0; i < slaves_.size(); ++i) {
    if (i) os << ',';
    os << "(c=" << slaves_[i].comm << ",w=" << slaves_[i].work << ')';
  }
  os << ']';
  return os.str();
}

}  // namespace mst
