#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mst/common/time.hpp"

/// \file workload.hpp
/// The task set as a first-class value.
///
/// The paper schedules `n` *identical, always-available* tasks, and that
/// assumption used to be baked into every signature in the library
/// (`solve(platform, n)`).  A `Workload` promotes the task set to a value
/// type so that three generalizations land as data instead of new APIs:
///
///  * **non-identical sizes** — task `i` carries a positive integer size
///    `s_i`; it occupies link `k` for `s_i * c_k` and its processor for
///    `s_i * w_k` (uniform scaling of the paper's communication/execution
///    model);
///  * **release dates** — task `i` becomes available at the master at time
///    `r_i >= 0` and must not start its first (master) emission earlier;
///  * **online arrivals** — seeded stochastic arrival processes
///    (`arrival.hpp`) generate release dates deterministically.
///
/// Semantics of release dates for *identical-size* tasks: tasks are
/// interchangeable, so the dates bind positionally — in any schedule, the
/// j-th master emission in time order must start at or after the j-th
/// smallest release date.  For non-uniform sizes, task `i` of the canonical
/// order is the i-th dispatched task.
///
/// Canonical order: the constructor sorts tasks by (release, size), so two
/// workloads describing the same task multiset compare equal, `prefix(k)`
/// is always the k earliest-released tasks, and schedule task `i` maps to
/// workload task `i` in every materialized result.
///
/// `Workload::identical(n)` reproduces the paper's model exactly — every
/// scheduler's behaviour on it is bit-identical to the historical
/// `solve(platform, n)` entry points (asserted by the equivalence suite in
/// tests/test_workload_equivalence.cpp).

namespace mst {

/// Which generalizations a workload actually uses (and, on the algorithm
/// side, which ones an entry can handle — see `api::AlgorithmInfo`).
struct WorkloadFeatures {
  bool sizes = false;    ///< some task size differs from 1
  bool release = false;  ///< some release date is positive
  /// Capability side only (`Workload::features()` never sets it): the entry
  /// can run under the no-lookahead streaming driver (`sim/streaming.hpp`),
  /// where the task count is unknown and tasks are observed one arrival at
  /// a time.  Streaming requests add this to the workload's features, so
  /// the same `subset_of` gate rejects non-streaming entries up front.
  bool streaming = false;

  [[nodiscard]] bool any() const { return sizes || release; }

  /// True iff every feature set here is also set in `caps`.
  [[nodiscard]] bool subset_of(const WorkloadFeatures& caps) const {
    return (!sizes || caps.sizes) && (!release || caps.release) &&
           (!streaming || caps.streaming);
  }

  friend bool operator==(const WorkloadFeatures&, const WorkloadFeatures&) = default;
};

/// Human-readable feature list, e.g. "sizes+release" ("identical" when none).
std::string to_string(const WorkloadFeatures& features);

/// An immutable set of independent tasks: a count plus optional per-task
/// sizes and release dates, kept in canonical (release, size) order.
class Workload {
 public:
  /// Empty workload (no tasks).
  Workload() = default;

  /// The paper's model: `n` identical unit tasks, all available at time 0.
  static Workload identical(std::size_t n);

  /// `sizes.size()` tasks with the given sizes, all available at time 0.
  static Workload of_sizes(std::vector<Time> sizes);

  /// `release.size()` unit tasks with the given release dates.
  static Workload released(std::vector<Time> release);

  /// General form.  `sizes` / `release` must each be empty (defaulted to 1 /
  /// 0) or hold exactly `count` entries; sizes must be >= 1 and release
  /// dates >= 0.  Throws `std::invalid_argument` otherwise.  Tasks are
  /// sorted into canonical (release, size) order; all-1 sizes and all-0
  /// releases normalize to the empty representation, so
  /// `Workload(n, {}, {}) == Workload::identical(n)`.
  Workload(std::size_t count, std::vector<Time> sizes, std::vector<Time> release);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Size of task `i` in canonical order (1 when sizes are uniform).
  [[nodiscard]] Time size_of(std::size_t i) const { return sizes_.empty() ? 1 : sizes_[i]; }
  /// Release date of task `i` in canonical order (0 when none are set).
  [[nodiscard]] Time release_of(std::size_t i) const {
    return release_.empty() ? 0 : release_[i];
  }

  [[nodiscard]] bool uniform_sizes() const { return sizes_.empty(); }
  [[nodiscard]] bool has_release_dates() const { return !release_.empty(); }
  [[nodiscard]] WorkloadFeatures features() const {
    return WorkloadFeatures{!sizes_.empty(), !release_.empty()};
  }

  /// Raw vectors (empty in the uniform / all-zero cases).  `releases()` is
  /// always sorted ascending — the positional-release algorithms rely on it.
  [[nodiscard]] const std::vector<Time>& sizes() const { return sizes_; }
  [[nodiscard]] const std::vector<Time>& releases() const { return release_; }

  /// Largest release date (0 for none): the earliest time by which the whole
  /// workload is available.
  [[nodiscard]] Time last_release() const { return release_.empty() ? 0 : release_.back(); }

  /// Sum of task sizes (== count() for uniform workloads).
  [[nodiscard]] Time total_size() const;

  /// The first `k <= count()` tasks in canonical order — the k
  /// earliest-released tasks.  This is the probe set of the decision-form
  /// makespan-inversion adapter.
  [[nodiscard]] Workload prefix(std::size_t k) const;

  /// One-line description for tables and errors, e.g.
  /// "workload(8 tasks, sizes 1..4, release 0..21)".
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Workload&, const Workload&) = default;

 private:
  std::size_t count_ = 0;
  std::vector<Time> sizes_;    ///< empty = all 1
  std::vector<Time> release_;  ///< empty = all 0; sorted ascending otherwise
};

}  // namespace mst
