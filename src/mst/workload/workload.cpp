#include "mst/workload/workload.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mst {

std::string to_string(const WorkloadFeatures& features) {
  if (!features.any() && !features.streaming) return "identical";
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (features.sizes) append("sizes");
  if (features.release) append("release");
  if (features.streaming) append("streaming");
  return out;
}

Workload Workload::identical(std::size_t n) { return Workload(n, {}, {}); }

Workload Workload::of_sizes(std::vector<Time> sizes) {
  const std::size_t n = sizes.size();
  return Workload(n, std::move(sizes), {});
}

Workload Workload::released(std::vector<Time> release) {
  const std::size_t n = release.size();
  return Workload(n, {}, std::move(release));
}

Workload::Workload(std::size_t count, std::vector<Time> sizes, std::vector<Time> release)
    : count_(count), sizes_(std::move(sizes)), release_(std::move(release)) {
  if (!sizes_.empty() && sizes_.size() != count_) {
    throw std::invalid_argument("workload: sizes must be empty or hold one entry per task");
  }
  if (!release_.empty() && release_.size() != count_) {
    throw std::invalid_argument("workload: release must be empty or hold one entry per task");
  }
  for (const Time s : sizes_) {
    if (s < 1) throw std::invalid_argument("workload: task sizes must be >= 1");
  }
  for (const Time r : release_) {
    if (r < 0) throw std::invalid_argument("workload: release dates must be >= 0");
  }

  // Canonicalize: sort tasks by (release, size), then drop degenerate
  // vectors so equal task multisets have equal representations.
  if (!release_.empty()) {
    if (sizes_.empty()) {
      std::sort(release_.begin(), release_.end());
    } else {
      std::vector<std::pair<Time, Time>> tasks(count_);
      for (std::size_t i = 0; i < count_; ++i) tasks[i] = {release_[i], sizes_[i]};
      std::sort(tasks.begin(), tasks.end());
      for (std::size_t i = 0; i < count_; ++i) {
        release_[i] = tasks[i].first;
        sizes_[i] = tasks[i].second;
      }
    }
  } else if (!sizes_.empty()) {
    std::sort(sizes_.begin(), sizes_.end());
  }
  if (std::all_of(sizes_.begin(), sizes_.end(), [](Time s) { return s == 1; })) {
    sizes_.clear();
  }
  if (std::all_of(release_.begin(), release_.end(), [](Time r) { return r == 0; })) {
    release_.clear();
  }
}

Time Workload::total_size() const {
  if (sizes_.empty()) return static_cast<Time>(count_);
  return std::accumulate(sizes_.begin(), sizes_.end(), Time{0});
}

Workload Workload::prefix(std::size_t k) const {
  if (k > count_) {
    throw std::invalid_argument("workload: prefix length exceeds the task count");
  }
  std::vector<Time> sizes;
  if (!sizes_.empty()) sizes.assign(sizes_.begin(), sizes_.begin() + static_cast<std::ptrdiff_t>(k));
  std::vector<Time> release;
  if (!release_.empty()) {
    release.assign(release_.begin(), release_.begin() + static_cast<std::ptrdiff_t>(k));
  }
  return Workload(k, std::move(sizes), std::move(release));
}

std::string Workload::describe() const {
  std::ostringstream os;
  os << "workload(" << count_ << (count_ == 1 ? " task" : " tasks");
  if (!sizes_.empty()) {
    os << ", sizes " << *std::min_element(sizes_.begin(), sizes_.end()) << ".."
       << *std::max_element(sizes_.begin(), sizes_.end());
  }
  if (!release_.empty()) os << ", release " << release_.front() << ".." << release_.back();
  os << ")";
  return os.str();
}

}  // namespace mst
