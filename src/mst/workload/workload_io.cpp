#include "mst/workload/workload_io.hpp"

#include <sstream>
#include <vector>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

/// Tokenized input with comment stripping and line tracking, mirroring the
/// platform parser's error style.
class Lexer {
 public:
  explicit Lexer(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
      ++lineno;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::string tok;
      while (ls >> tok) tokens_.push_back({tok, lineno});
    }
  }

  [[nodiscard]] bool done() const { return pos_ >= tokens_.size(); }

  [[nodiscard]] const std::string& peek() const {
    MST_REQUIRE(!done(), "unexpected end of workload input");
    return tokens_[pos_].text;
  }

  std::string next(const char* what) {
    MST_REQUIRE(!done(), std::string("unexpected end of input, expected ") + what);
    return tokens_[pos_++].text;
  }

  Time next_time(const char* what) {
    MST_REQUIRE(!done(), std::string("unexpected end of input, expected ") + what);
    const std::size_t line = tokens_[pos_].line;
    const std::string tok = next(what);
    std::size_t used = 0;
    Time v = 0;
    try {
      v = std::stoll(tok, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    MST_REQUIRE(used == tok.size(), "line " + std::to_string(line) + ": expected " +
                                        std::string(what) + ", got '" + tok + "'");
    return v;
  }

  void expect_end() const {
    if (!done()) {
      MST_REQUIRE(false, "line " + std::to_string(tokens_[pos_].line) + ": trailing input '" +
                             tokens_[pos_].text + "'");
    }
  }

 private:
  struct Token {
    std::string text;
    std::size_t line;
  };
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string write_workload(const Workload& workload) {
  std::ostringstream os;
  os << "workload " << workload.count() << '\n';
  if (!workload.uniform_sizes()) {
    os << "sizes";
    for (const Time s : workload.sizes()) os << ' ' << s;
    os << '\n';
  }
  if (workload.has_release_dates()) {
    os << "release";
    for (const Time r : workload.releases()) os << ' ' << r;
    os << '\n';
  }
  return os.str();
}

Workload parse_workload(const std::string& text) {
  Lexer lex(text);
  const std::string head = lex.next("'workload' header");
  MST_REQUIRE(head == "workload", "expected 'workload', got '" + head + "'");
  const Time count = lex.next_time("task count");
  MST_REQUIRE(count >= 0, "task count must be >= 0");
  const auto n = static_cast<std::size_t>(count);

  std::vector<Time> sizes;
  std::vector<Time> release;
  while (!lex.done()) {
    const std::string key = lex.next("'sizes' or 'release'");
    if (key == "sizes") {
      MST_REQUIRE(sizes.empty(), "duplicate 'sizes' line");
      sizes.reserve(n);
      for (std::size_t i = 0; i < n; ++i) sizes.push_back(lex.next_time("task size"));
    } else if (key == "release") {
      MST_REQUIRE(release.empty(), "duplicate 'release' line");
      release.reserve(n);
      for (std::size_t i = 0; i < n; ++i) release.push_back(lex.next_time("release date"));
    } else {
      MST_REQUIRE(false, "unknown workload key '" + key + "'");
    }
  }
  lex.expect_end();
  // Range validation (sizes >= 1, release >= 0) lives in the constructor.
  return Workload(n, std::move(sizes), std::move(release));
}

}  // namespace mst
