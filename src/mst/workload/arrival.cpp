#include "mst/workload/arrival.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "mst/common/rng.hpp"

namespace mst {

WorkloadFeatures WorkloadGen::features() const {
  WorkloadFeatures features;
  features.sizes = sizes.kind != SizeDist::Kind::kUnit &&
                   !(sizes.kind == SizeDist::Kind::kFixed && sizes.a == 1);
  features.release = arrival.kind != ArrivalDist::Kind::kNone;
  return features;
}

void validate(const WorkloadGen& gen) {
  switch (gen.sizes.kind) {
    case SizeDist::Kind::kUnit: break;
    case SizeDist::Kind::kFixed:
      if (gen.sizes.a < 1) throw std::invalid_argument("workload gen: fixed size must be >= 1");
      break;
    case SizeDist::Kind::kUniform:
      if (gen.sizes.a < 1 || gen.sizes.b < gen.sizes.a) {
        throw std::invalid_argument("workload gen: size range needs 1 <= lo <= hi");
      }
      break;
  }
  switch (gen.arrival.kind) {
    case ArrivalDist::Kind::kNone: break;
    case ArrivalDist::Kind::kPeriodic:
      if (gen.arrival.a < 1) throw std::invalid_argument("workload gen: periodic gap must be >= 1");
      break;
    case ArrivalDist::Kind::kJitter:
      if (gen.arrival.a < 0 || gen.arrival.b < gen.arrival.a) {
        throw std::invalid_argument("workload gen: jitter window needs 0 <= lo <= hi");
      }
      break;
    case ArrivalDist::Kind::kPoisson:
      if (gen.arrival.a < 1) throw std::invalid_argument("workload gen: poisson mean must be >= 1");
      break;
    case ArrivalDist::Kind::kBursts:
      if (gen.arrival.a < 1 || gen.arrival.b < 1) {
        throw std::invalid_argument("workload gen: bursts need size >= 1 and gap >= 1");
      }
      break;
  }
}

Workload WorkloadGen::make(std::size_t n, std::uint64_t seed) const {
  validate(*this);
  Rng rng(seed);
  // Independent streams per dimension: adding an arrival family never
  // perturbs the size draws and vice versa.
  Rng size_rng = rng.split();
  Rng arrival_rng = rng.split();

  std::vector<Time> sizes_vec;
  switch (sizes.kind) {
    case SizeDist::Kind::kUnit: break;
    case SizeDist::Kind::kFixed: sizes_vec.assign(n, sizes.a); break;
    case SizeDist::Kind::kUniform:
      sizes_vec.reserve(n);
      for (std::size_t i = 0; i < n; ++i) sizes_vec.push_back(size_rng.uniform(sizes.a, sizes.b));
      break;
  }

  std::vector<Time> release_vec;
  switch (arrival.kind) {
    case ArrivalDist::Kind::kNone: break;
    case ArrivalDist::Kind::kPeriodic:
      release_vec.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        release_vec.push_back(static_cast<Time>(i) * arrival.a);
      }
      break;
    case ArrivalDist::Kind::kJitter:
      release_vec.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        release_vec.push_back(arrival_rng.uniform(arrival.a, arrival.b));
      }
      break;
    case ArrivalDist::Kind::kPoisson: {
      release_vec.reserve(n);
      Time clock = 0;
      for (std::size_t i = 0; i < n; ++i) {
        // Exponential inter-arrival gap of mean `a`, rounded to the integer
        // time base.  `1 - u` keeps the log argument in (0, 1].
        const double u = arrival_rng.uniform01();
        const double gap = -static_cast<double>(arrival.a) * std::log(1.0 - u);
        clock += static_cast<Time>(std::llround(gap));
        release_vec.push_back(clock);
      }
      break;
    }
    case ArrivalDist::Kind::kBursts: {
      release_vec.reserve(n);
      const auto burst = static_cast<std::size_t>(arrival.a);
      for (std::size_t i = 0; i < n; ++i) {
        release_vec.push_back(static_cast<Time>(i / burst) * arrival.b);
      }
      break;
    }
  }

  // Canonical sorting happens in the constructor; sizes drawn i.i.d. are
  // exchangeable, so pairing them with sorted releases loses nothing.
  return Workload(n, std::move(sizes_vec), std::move(release_vec));
}

std::string WorkloadGen::label() const {
  std::ostringstream os;
  switch (sizes.kind) {
    case SizeDist::Kind::kUnit: break;
    case SizeDist::Kind::kFixed: os << "sizes-fixed(" << sizes.a << ")"; break;
    case SizeDist::Kind::kUniform:
      os << "sizes-uniform(" << sizes.a << ":" << sizes.b << ")";
      break;
  }
  switch (arrival.kind) {
    case ArrivalDist::Kind::kNone: break;
    case ArrivalDist::Kind::kPeriodic:
      if (os.tellp() > 0) os << "+";
      os << "periodic(" << arrival.a << ")";
      break;
    case ArrivalDist::Kind::kJitter:
      if (os.tellp() > 0) os << "+";
      os << "jitter(" << arrival.a << ":" << arrival.b << ")";
      break;
    case ArrivalDist::Kind::kPoisson:
      if (os.tellp() > 0) os << "+";
      os << "poisson(" << arrival.a << ")";
      break;
    case ArrivalDist::Kind::kBursts:
      if (os.tellp() > 0) os << "+";
      os << "bursts(" << arrival.a << ":" << arrival.b << ")";
      break;
  }
  const std::string text = os.str();
  return text.empty() ? "unit" : text;
}

}  // namespace mst
