#pragma once

#include <string>

#include "mst/workload/workload.hpp"

/// \file workload_io.hpp
/// Plain-text workload descriptions — the workload sibling of the platform
/// format (mst/platform/io.hpp).
///
/// Format (line oriented, `#` starts a comment):
///
///     workload <n>
///     sizes <s_1> ... <s_n>      # optional; task sizes, each >= 1
///     release <r_1> ... <r_n>    # optional; release dates, each >= 0
///
/// Both optional lines may appear at most once, in either order.  The
/// parser throws `std::invalid_argument` on malformed input; values are
/// canonicalized by the `Workload` constructor, so
/// `parse_workload(write_workload(w)) == w` for every workload.

namespace mst {

std::string write_workload(const Workload& workload);
Workload parse_workload(const std::string& text);

}  // namespace mst
