#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "mst/workload/workload.hpp"

/// \file arrival.hpp
/// Seeded workload generator families: per-task size distributions and
/// release-date / arrival processes.
///
/// These are the workload counterpart of the platform generators
/// (mst/platform/generator.hpp): a `(WorkloadGen, n, seed)` triple fully
/// determines the workload, with every draw coming from the library's
/// SplitMix64 `Rng` — never from global state — so scenario grids stay
/// byte-identical across runs and thread counts.
///
/// Two flavours of release-date generation are distinguished in the sweep
/// spec language (scenario/spec.hpp):
///  * `tasks.release` — deterministic date families (`periodic`, seeded
///    `jitter`), modelling planned / batched availability;
///  * `tasks.arrival` — stochastic arrival processes (`poisson` for
///    independent online arrivals, `bursts` for group arrivals), modelling
///    the SETI@home-style request streams of the paper's motivation.
/// Both produce release dates; the split is about how specs read.

namespace mst {

/// Per-task size family.
struct SizeDist {
  enum class Kind {
    kUnit,     ///< every task has size 1 (the paper's model)
    kFixed,    ///< every task has size `a`
    kUniform,  ///< sizes drawn uniformly from `[a, b]`
  };
  Kind kind = Kind::kUnit;
  Time a = 1;
  Time b = 1;

  friend bool operator==(const SizeDist&, const SizeDist&) = default;
};

/// Release-date / arrival family.
struct ArrivalDist {
  enum class Kind {
    kNone,      ///< all tasks available at time 0 (the paper's model)
    kPeriodic,  ///< r_i = i * a (a fixed inter-release gap)
    kJitter,    ///< dates drawn uniformly from `[a, b]`
    kPoisson,   ///< i.i.d. exponential inter-arrival gaps of mean `a`
    kBursts,    ///< groups of `a` simultaneous tasks, one group every `b`
  };
  Kind kind = Kind::kNone;
  Time a = 0;
  Time b = 0;

  friend bool operator==(const ArrivalDist&, const ArrivalDist&) = default;
};

/// One point on a sweep's workload axis: a size family plus an arrival
/// family.  `make(n, seed)` synthesizes the workload deterministically.
struct WorkloadGen {
  SizeDist sizes;
  ArrivalDist arrival;

  /// True for the identical-unit-task generator (the default axis entry).
  [[nodiscard]] bool identical() const {
    return sizes.kind == SizeDist::Kind::kUnit && arrival.kind == ArrivalDist::Kind::kNone;
  }

  /// The features this generator may produce — used by the sweep expander
  /// to pair generators only with algorithms that support them.  (A lucky
  /// draw may produce fewer features; the registry re-checks the actual
  /// workload, so the static answer only needs to be an upper bound.)
  [[nodiscard]] WorkloadFeatures features() const;

  /// Deterministic synthesis: same (generator, n, seed) → same workload.
  [[nodiscard]] Workload make(std::size_t n, std::uint64_t seed) const;

  /// Single-token label for report columns, e.g. "unit",
  /// "sizes-uniform(1:4)", "periodic(3)", "poisson(5)", "bursts(4:12)".
  [[nodiscard]] std::string label() const;

  friend bool operator==(const WorkloadGen&, const WorkloadGen&) = default;
};

/// Throws `std::invalid_argument` unless the generator's parameters are in
/// range (sizes >= 1 with a <= b, gaps / means >= 1, jitter 0 <= a <= b,
/// burst size >= 1).  Called by the spec parser and by `make`.
void validate(const WorkloadGen& gen);

}  // namespace mst
