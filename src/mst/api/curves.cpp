#include "mst/api/curves.hpp"

#include <string>

namespace mst::api {

ThroughputCurve throughput_curve(const Platform& platform,
                                 const std::vector<std::size_t>& ns,
                                 std::string_view algorithm, const Registry& registry) {
  const std::string name =
      algorithm.empty() ? default_algorithm(kind_of(platform)) : std::string(algorithm);
  SolveOptions fast;
  fast.materialize = false;
  return mst::throughput_curve(platform, ns, [&](std::size_t n) {
    return registry.solve(platform, name, n, fast).makespan;
  });
}

}  // namespace mst::api
