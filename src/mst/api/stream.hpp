#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "mst/api/registry.hpp"
#include "mst/platform/any.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/sim/streaming.hpp"
#include "mst/workload/workload.hpp"

/// \file stream.hpp
/// The registry bridge for streaming (no-lookahead) solves.
///
/// The streaming driver and its policies live in `mst/sim/streaming.hpp`,
/// strictly below the api layer; this module owns everything that needs the
/// registry — the capability gate, algorithm-name resolution, and the exact
/// offline reference that turns a streamed makespan into a regret.

namespace mst::api {

/// One streaming solve, resolved through the registry.
struct StreamOutcome {
  std::string algorithm;
  PlatformKind kind = PlatformKind::kChain;
  std::size_t tasks = 0;
  Time makespan = 0;
  sim::StreamMetrics metrics;
  /// Exact offline optimum of the same workload (the registered "optimal"
  /// entry of the platform's kind, when it exists, is provably optimal and
  /// supports the workload's features).  0 = no exact reference — trees
  /// always, and released fork/spider streams too: their positional-release
  /// selection is not exact (the exhaustive oracle beats it on some
  /// instances), so regret against it would be meaningless.
  Time offline_makespan = 0;
  /// Competitive ratio `makespan / offline_makespan` (>= 1).  Negative =
  /// unavailable: no exact offline reference, or a degenerate zero-makespan
  /// run — the reporters print the sentinel as an empty cell instead of
  /// ever leaking `inf`/`nan` into CSV/JSON.
  double regret = -1;
  sim::SimResult sim;  ///< full per-task timeline, dispatch order

  /// Tasks per unit time; same degenerate-platform sentinel semantics as
  /// `SolveResult::throughput` (+inf on nonempty zero-makespan runs).
  [[nodiscard]] double throughput() const;
};

/// Streams `workload` through the named algorithm: capability check
/// (`supports.streaming` plus the workload's features — rejected up front
/// with a `std::invalid_argument` naming the remedy), policy construction
/// (`replan` or an `online-*` adaptation), driver run, metrics and regret.
/// Deterministic per (platform, algorithm, workload, seed).
/// `attach_reference = false` skips the offline reference solve (regret
/// stays the sentinel) — for timed repetitions that must measure the
/// streamed run alone; attach it once afterwards with
/// `attach_offline_reference`.  `observation` (optional, defaulted off)
/// instruments the streamed run: the simulator's Gantt/queue signals, the
/// streaming layer's arrival/latency/backlog signals, and an
/// "api.stream.runs" counter.
StreamOutcome run_stream(const Platform& platform, std::string_view algorithm,
                         const Workload& workload, std::uint64_t seed = 1,
                         const Registry& registry = api::registry(),
                         bool attach_reference = true,
                         const obs::Observation& observation = {});

/// Computes `outcome.offline_makespan` / `outcome.regret` for a run of
/// `workload` on `platform` (see `StreamOutcome::offline_makespan` for
/// when a reference exists).  Idempotent; no-op on empty runs.  `metrics`
/// (optional) counts the reference solve through the registry's
/// per-algorithm dispatch counters.
void attach_offline_reference(StreamOutcome& outcome, const Platform& platform,
                              const Workload& workload,
                              const Registry& registry = api::registry(),
                              obs::MetricsRegistry* metrics = nullptr);

}  // namespace mst::api
