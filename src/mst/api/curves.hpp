#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "mst/analysis/throughput.hpp"
#include "mst/api/registry.hpp"
#include "mst/platform/any.hpp"

/// \file curves.hpp
/// The registry bridge for makespan-curve analysis.
///
/// The curve machinery (affine-tail fit, steady-state rates) lives in
/// `mst/analysis/throughput.hpp`, strictly below the api layer and sampled
/// through a callback; this module owns the overload that resolves an
/// algorithm *name* through the registry.

namespace mst::api {

/// Samples `M(n)` at the given counts (must be increasing, >= 1) by
/// dispatching `algorithm` through `registry` on the makespan-only fast
/// path — any platform kind, any registered algorithm.  An empty
/// `algorithm` picks the kind's default: "optimal" where an exact algorithm
/// is registered, else the first registered entry (trees: "spider-cover").
ThroughputCurve throughput_curve(const Platform& platform,
                                 const std::vector<std::size_t>& ns,
                                 std::string_view algorithm = {},
                                 const Registry& registry = api::registry());

}  // namespace mst::api
