#pragma once

#include <string>

#include "mst/api/registry.hpp"

/// \file platform_io.hpp
/// Typed platform text I/O for the registry layer.
///
/// A kind-erasing `mst::parse_platform` (returning every topology as a
/// `Spider`) predated the registry; it was deprecated in favour of these
/// functions and has been removed.  They parse into the registry's
/// `api::Platform` variant, so the header keyword of the file decides which
/// algorithm family a solve dispatches to.

namespace mst::api {

/// Parses any platform text (`chain` / `fork` / `spider` / `tree` headers,
/// format of mst/platform/io.hpp) into the typed variant.  Throws
/// `std::invalid_argument` on malformed input or unknown keywords.
Platform parse_any_platform(const std::string& text);

/// Serializes the variant back to text; `parse_any_platform` round-trips it
/// exactly, preserving the kind.
std::string write_platform(const Platform& platform);

}  // namespace mst::api
