#pragma once

#include <string>

#include "mst/api/registry.hpp"

/// \file platform_io.hpp
/// Typed platform text I/O for the registry layer.
///
/// `mst::parse_platform` (platform/io.hpp) predates the registry and returns
/// every topology as a `Spider`, which silently erases the platform kind —
/// a chain file stops dispatching to the chain algorithms.  These functions
/// parse into the registry's `api::Platform` variant instead, so the header
/// keyword of the file decides which algorithm family a solve dispatches to.

namespace mst::api {

/// Parses any platform text (`chain` / `fork` / `spider` / `tree` headers,
/// format of mst/platform/io.hpp) into the typed variant.  Throws
/// `std::invalid_argument` on malformed input or unknown keywords.
Platform parse_any_platform(const std::string& text);

/// Serializes the variant back to text; `parse_any_platform` round-trips it
/// exactly, preserving the kind.
std::string write_platform(const Platform& platform);

}  // namespace mst::api
