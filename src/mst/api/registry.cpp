#include "mst/api/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "mst/baselines/asap.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/baselines/brute_force.hpp"
#include "mst/baselines/forward_greedy.hpp"
#include "mst/baselines/periodic.hpp"
#include "mst/baselines/round_robin.hpp"
#include "mst/baselines/single_node.hpp"
#include "mst/baselines/tree_asap.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/heuristics/local_search.hpp"
#include "mst/heuristics/tree_schedule.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"

namespace mst::api {

// ---------------------------------------------------------------------------
// Platforms

std::string to_string(PlatformKind kind) {
  switch (kind) {
    case PlatformKind::kChain: return "chain";
    case PlatformKind::kFork: return "fork";
    case PlatformKind::kSpider: return "spider";
    case PlatformKind::kTree: return "tree";
  }
  return "?";
}

std::optional<PlatformKind> platform_kind_from(std::string_view name) {
  for (PlatformKind kind : all_platform_kinds()) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<PlatformKind>& all_platform_kinds() {
  static const std::vector<PlatformKind> kinds{PlatformKind::kChain, PlatformKind::kFork,
                                              PlatformKind::kSpider, PlatformKind::kTree};
  return kinds;
}

PlatformKind kind_of(const Platform& platform) {
  switch (platform.index()) {
    case 0: return PlatformKind::kChain;
    case 1: return PlatformKind::kFork;
    case 2: return PlatformKind::kSpider;
    default: return PlatformKind::kTree;
  }
}

std::string describe(const Platform& platform) {
  return std::visit([](const auto& p) { return p.describe(); }, platform);
}

std::size_t num_processors(const Platform& platform) {
  if (const auto* chain = std::get_if<Chain>(&platform)) return chain->size();
  if (const auto* fork = std::get_if<Fork>(&platform)) return fork->size();
  if (const auto* spider = std::get_if<Spider>(&platform)) return spider->num_processors();
  return std::get<Tree>(platform).num_slaves();
}

namespace {

// Alternative extraction with an error message naming the algorithm, so a
// mismatched dispatch reads "optimal: expected a chain platform" instead of
// a bare bad_variant_access.
template <typename T>
const T& expect(const Platform& platform, const char* algorithm, const char* kind_name) {
  const T* p = std::get_if<T>(&platform);
  if (p == nullptr) {
    throw std::invalid_argument(std::string(algorithm) + ": expected a " + kind_name +
                                " platform, got " + to_string(kind_of(platform)));
  }
  return *p;
}

const Chain& expect_chain(const Platform& p, const char* a) { return expect<Chain>(p, a, "chain"); }
const Fork& expect_fork(const Platform& p, const char* a) { return expect<Fork>(p, a, "fork"); }
const Spider& expect_spider(const Platform& p, const char* a) {
  return expect<Spider>(p, a, "spider");
}
const Tree& expect_tree(const Platform& p, const char* a) { return expect<Tree>(p, a, "tree"); }

void require_tasks(std::size_t n) {
  if (n == 0) throw std::invalid_argument("solve: need at least one task");
}

}  // namespace

// ---------------------------------------------------------------------------
// Results

double SolveResult::throughput() const {
  if (makespan <= 0) return 0.0;
  return static_cast<double>(tasks) / static_cast<double>(makespan);
}

namespace {

void check_task_count(const SolveResult& result, std::size_t scheduled, FeasibilityReport& out) {
  if (scheduled != result.tasks) {
    std::ostringstream os;
    os << "task count mismatch: result claims " << result.tasks << " tasks, schedule holds "
       << scheduled;
    out.add_violation(os.str());
  }
}

void check_makespan(const SolveResult& result, Time actual, bool exact, FeasibilityReport& out) {
  const bool bad = exact ? actual != result.makespan : actual > result.makespan;
  if (bad) {
    std::ostringstream os;
    os << "makespan mismatch: result claims " << result.makespan << ", schedule "
       << (exact ? "has" : "replays to") << " " << actual;
    out.add_violation(os.str());
  }
}

}  // namespace

FeasibilityReport check_feasibility(const SolveResult& result) {
  FeasibilityReport report;
  if (const auto* s = std::get_if<ChainSchedule>(&result.schedule)) {
    report = mst::check_feasibility(*s);
    check_task_count(result, s->num_tasks(), report);
    check_makespan(result, s->makespan(), /*exact=*/true, report);
  } else if (const auto* s = std::get_if<ForkSchedule>(&result.schedule)) {
    report = mst::check_feasibility(*s);
    check_task_count(result, s->num_tasks(), report);
    check_makespan(result, s->makespan(), /*exact=*/true, report);
  } else if (const auto* s = std::get_if<SpiderSchedule>(&result.schedule)) {
    report = mst::check_feasibility(*s);
    check_task_count(result, s->num_tasks(), report);
    check_makespan(result, s->makespan(), /*exact=*/true, report);
  } else if (const auto* d = std::get_if<TreeDispatch>(&result.schedule)) {
    for (NodeId dest : d->dests) {
      if (dest == 0 || dest >= d->tree.size()) {
        std::ostringstream os;
        os << "dispatch destination " << dest << " is not a slave of the tree";
        report.add_violation(os.str());
      }
    }
    if (report.ok()) {
      // No link-level timing to verify — replay the plan operationally.  The
      // replay may only move work earlier (eager forwarding), so the
      // reported makespan must be an upper bound on it.
      const sim::SimResult replay = sim::simulate_dispatch(d->tree, d->dests);
      check_task_count(result, replay.num_tasks(), report);
      check_makespan(result, replay.makespan, /*exact=*/false, report);
    }
  } else {
    report.add_violation("algorithm reported a makespan without a materialized schedule");
  }
  return report;
}

// ---------------------------------------------------------------------------
// Registry mechanics

namespace {

/// Adapts a callable to the Scheduler interface (used by the lambda overload
/// of Registry::add and by every built-in registration below).
class FunctionScheduler final : public Scheduler {
 public:
  explicit FunctionScheduler(std::function<SolveResult(const Platform&, std::size_t)> fn)
      : fn_(std::move(fn)) {}

  [[nodiscard]] SolveResult solve(const Platform& platform, std::size_t n) const override {
    return fn_(platform, n);
  }

 private:
  std::function<SolveResult(const Platform&, std::size_t)> fn_;
};

}  // namespace

void Registry::add(AlgorithmInfo info, std::shared_ptr<const Scheduler> scheduler) {
  if (info.name.empty()) throw std::invalid_argument("registry: algorithm name must be non-empty");
  if (scheduler == nullptr) throw std::invalid_argument("registry: null scheduler");
  if (find(info.kind, info.name) != nullptr) {
    throw std::invalid_argument("registry: duplicate algorithm (" + to_string(info.kind) + ", " +
                                info.name + ")");
  }
  entries_.push_back(Entry{std::move(info), std::move(scheduler)});
}

void Registry::add(AlgorithmInfo info,
                   std::function<SolveResult(const Platform&, std::size_t)> fn) {
  add(std::move(info), std::make_shared<const FunctionScheduler>(std::move(fn)));
}

const Scheduler* Registry::find(PlatformKind kind, std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.info.kind == kind && e.info.name == name) return e.scheduler.get();
  }
  return nullptr;
}

const AlgorithmInfo* Registry::info(PlatformKind kind, std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.info.kind == kind && e.info.name == name) return &e.info;
  }
  return nullptr;
}

std::vector<AlgorithmInfo> Registry::list() const {
  std::vector<AlgorithmInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

std::vector<AlgorithmInfo> Registry::list(PlatformKind kind) const {
  std::vector<AlgorithmInfo> out;
  for (const Entry& e : entries_) {
    if (e.info.kind == kind) out.push_back(e.info);
  }
  return out;
}

std::vector<std::string> Registry::names(PlatformKind kind) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.info.kind == kind) out.push_back(e.info.name);
  }
  return out;
}

SolveResult Registry::solve(const Platform& platform, std::string_view algorithm,
                            std::size_t n) const {
  const PlatformKind kind = kind_of(platform);
  const Scheduler* scheduler = find(kind, algorithm);
  if (scheduler == nullptr) {
    std::ostringstream os;
    os << "no algorithm '" << algorithm << "' for " << to_string(kind) << " platforms; known:";
    for (const std::string& name : names(kind)) os << " " << name;
    throw std::invalid_argument(os.str());
  }
  return scheduler->solve(platform, n);
}

// ---------------------------------------------------------------------------
// Built-in algorithms

namespace {

SolveResult make_result(const char* algorithm, PlatformKind kind, std::size_t tasks,
                        Time makespan, Time lower_bound, bool optimal, AnySchedule schedule) {
  SolveResult result;
  result.algorithm = algorithm;
  result.kind = kind;
  result.tasks = tasks;
  result.makespan = makespan;
  result.lower_bound = lower_bound;
  result.optimal = optimal;
  result.schedule = std::move(schedule);
  return result;
}

// NB: makespan and bound are computed into locals before the `make_result`
// call — argument evaluation order is unspecified, so `schedule.makespan()`
// must not race the `std::move(schedule)` argument.
SolveResult chain_result(const char* algorithm, ChainSchedule schedule, std::size_t n,
                         bool optimal) {
  const Time lb = chain_makespan_lower_bound(schedule.chain, n);
  const Time makespan = schedule.makespan();
  return make_result(algorithm, PlatformKind::kChain, n, makespan, lb, optimal,
                     std::move(schedule));
}

SolveResult spider_result(const char* algorithm, PlatformKind kind, SpiderSchedule schedule,
                          std::size_t n, bool optimal) {
  const Time lb = spider_makespan_lower_bound(schedule.spider, n);
  const Time makespan = schedule.makespan();
  return make_result(algorithm, kind, n, makespan, lb, optimal, std::move(schedule));
}

SolveResult tree_result(const char* algorithm, const Tree& tree, std::vector<NodeId> dests,
                        Time makespan, std::size_t n) {
  TreeDispatch dispatch{tree, std::move(dests)};
  return make_result(algorithm, PlatformKind::kTree, n, makespan, /*lower_bound=*/0,
                     /*optimal=*/false, std::move(dispatch));
}

/// The bandwidth-centric baseline as a makespan-form scheduler: dispatch the
/// first `n` destinations of the repeated periodic block with ASAP timing.
ChainSchedule periodic_prefix_schedule(const Chain& chain, std::size_t n) {
  const PeriodicPattern pattern = chain_periodic_pattern(chain);
  std::vector<std::size_t> dests;
  dests.reserve(n);
  while (dests.size() < n) {
    for (std::size_t dest : pattern.block) {
      if (dests.size() == n) break;
      dests.push_back(dest);
    }
  }
  return asap_chain_schedule(chain, dests);
}

/// Makespan form of the paper's §6 fork greedy: smallest window whose greedy
/// selection reaches `n` tasks, found by binary search (the count is
/// monotone in the window for the ascending-`c` greedy) with a doubling
/// safety net, then materialized.
ForkSchedule fork_greedy_schedule(const Fork& fork, std::size_t n) {
  Time lo = 1;
  Time hi = single_node_spider_makespan(Spider::from_fork(fork), n);
  while (ForkScheduler::greedy_max_tasks(fork, hi, n) < n) hi *= 2;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (ForkScheduler::greedy_max_tasks(fork, mid, n) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ForkSchedule schedule = ForkScheduler::greedy_schedule_within(fork, lo, n);
  while (schedule.num_tasks() < n) {
    lo *= 2;
    schedule = ForkScheduler::greedy_schedule_within(fork, lo, n);
  }
  return schedule;
}

SolveResult solve_tree_online(const Tree& tree, std::size_t n, sim::OnlinePolicy policy,
                              const char* algorithm) {
  const sim::SimResult run = sim::simulate_online(tree, n, policy, /*seed=*/1);
  std::vector<NodeId> dests;
  dests.reserve(run.tasks.size());
  for (const sim::SimTask& task : run.tasks) dests.push_back(task.dest);
  return tree_result(algorithm, tree, std::move(dests), run.makespan, n);
}

void register_chain_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kChain;
  r.add({k, "optimal", "backward construction, Theorem 1 (O(n*p^2))", /*optimal=*/true},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "optimal");
          return chain_result("optimal", ChainScheduler::schedule(chain, n), n, true);
        });
  r.add({k, "forward-greedy", "earliest-completion-time list scheduling"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "forward-greedy");
          return chain_result("forward-greedy", forward_greedy_chain(chain, n), n, false);
        });
  r.add({k, "round-robin", "heterogeneity-blind cyclic dispatch"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "round-robin");
          return chain_result("round-robin", round_robin_chain(chain, n), n, false);
        });
  r.add({k, "single-node", "best single-processor pipeline (generalized T-infinity)"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "single-node");
          return chain_result("single-node", single_node_chain(chain, n), n, false);
        });
  r.add({k, "periodic", "bandwidth-centric periodic pattern, ASAP prefix"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "periodic");
          return chain_result("periodic", periodic_prefix_schedule(chain, n), n, false);
        });
  r.add({k, "brute-force", "exhaustive destination-sequence search", /*optimal=*/true,
         /*exponential=*/true},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "brute-force");
          return chain_result("brute-force", brute_force_chain_schedule(chain, n), n, true);
        });
}

void register_fork_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kFork;
  r.add({k, "optimal", "Moore-Hodgson virtual-node selection, Fig 6", /*optimal=*/true},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Fork& fork = expect_fork(p, "optimal");
          ForkSchedule schedule = ForkScheduler::schedule(fork, n);
          const Time lb = spider_makespan_lower_bound(Spider::from_fork(fork), n);
          const Time makespan = schedule.makespan();
          return make_result("optimal", k, n, makespan, lb, true, std::move(schedule));
        });
  r.add({k, "greedy", "the paper's ascending-c greedy (Beaumont et al.)"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Fork& fork = expect_fork(p, "greedy");
          ForkSchedule schedule = fork_greedy_schedule(fork, n);
          const Time lb = spider_makespan_lower_bound(Spider::from_fork(fork), n);
          const Time makespan = schedule.makespan();
          return make_result("greedy", k, n, makespan, lb, false, std::move(schedule));
        });
  r.add({k, "forward-greedy", "earliest-completion-time list scheduling"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Fork& fork = expect_fork(p, "forward-greedy");
          return spider_result("forward-greedy", k,
                               forward_greedy_spider(Spider::from_fork(fork), n), n, false);
        });
  r.add({k, "round-robin", "heterogeneity-blind cyclic dispatch"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Fork& fork = expect_fork(p, "round-robin");
          return spider_result("round-robin", k, round_robin_spider(Spider::from_fork(fork), n),
                               n, false);
        });
  r.add({k, "single-node", "best single-slave pipeline"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Fork& fork = expect_fork(p, "single-node");
          return spider_result("single-node", k, single_node_spider(Spider::from_fork(fork), n),
                               n, false);
        });
  r.add({k, "brute-force", "exhaustive destination-sequence search", /*optimal=*/true,
         /*exponential=*/true},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Fork& fork = expect_fork(p, "brute-force");
          return spider_result("brute-force", k,
                               brute_force_spider_schedule(Spider::from_fork(fork), n), n, true);
        });
}

void register_spider_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kSpider;
  r.add({k, "optimal", "per-leg decision form + Moore-Hodgson, Theorem 3", /*optimal=*/true},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Spider& spider = expect_spider(p, "optimal");
          return spider_result("optimal", k, SpiderScheduler::schedule(spider, n), n, true);
        });
  r.add({k, "forward-greedy", "earliest-completion-time list scheduling"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Spider& spider = expect_spider(p, "forward-greedy");
          return spider_result("forward-greedy", k, forward_greedy_spider(spider, n), n, false);
        });
  r.add({k, "round-robin", "heterogeneity-blind cyclic dispatch"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Spider& spider = expect_spider(p, "round-robin");
          return spider_result("round-robin", k, round_robin_spider(spider, n), n, false);
        });
  r.add({k, "single-node", "best single-processor pipeline over all legs"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Spider& spider = expect_spider(p, "single-node");
          return spider_result("single-node", k, single_node_spider(spider, n), n, false);
        });
  r.add({k, "brute-force", "exhaustive destination-sequence search", /*optimal=*/true,
         /*exponential=*/true},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Spider& spider = expect_spider(p, "brute-force");
          return spider_result("brute-force", k, brute_force_spider_schedule(spider, n), n, true);
        });
}

void register_tree_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kTree;
  r.add({k, "spider-cover", "optimal plan on the best-rate spider cover (section 8)"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Tree& tree = expect_tree(p, "spider-cover");
          TreeScheduleResult plan = schedule_tree_via_cover(tree, n);
          return tree_result("spider-cover", tree, std::move(plan.destinations), plan.makespan,
                             n);
        });
  r.add({k, "forward-greedy", "earliest-completion-time dispatch on the full tree"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Tree& tree = expect_tree(p, "forward-greedy");
          std::vector<NodeId> dests = forward_greedy_tree(tree, n);
          const Time makespan = asap_tree_makespan(tree, dests);
          return tree_result("forward-greedy", tree, std::move(dests), makespan, n);
        });
  r.add({k, "local-search", "greedy start + reassign/swap descent"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Tree& tree = expect_tree(p, "local-search");
          LocalSearchResult improved = local_search_tree(tree, n);
          return tree_result("local-search", tree, std::move(improved.dests), improved.makespan,
                             n);
        });
  r.add({k, "online-ect", "simulated online earliest-completion policy"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          return solve_tree_online(expect_tree(p, "online-ect"), n,
                                   sim::OnlinePolicy::kEarliestCompletion, "online-ect");
        });
  r.add({k, "online-jsq", "simulated online join-shortest-queue policy"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          return solve_tree_online(expect_tree(p, "online-jsq"), n,
                                   sim::OnlinePolicy::kJoinShortestQueue, "online-jsq");
        });
  r.add({k, "online-round-robin", "simulated online round-robin policy"},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          return solve_tree_online(expect_tree(p, "online-round-robin"), n,
                                   sim::OnlinePolicy::kRoundRobin, "online-round-robin");
        });
}

}  // namespace

Registry& Registry::instance() {
  static Registry* shared = [] {
    auto* r = new Registry();
    register_chain_algorithms(*r);
    register_fork_algorithms(*r);
    register_spider_algorithms(*r);
    register_tree_algorithms(*r);
    return r;
  }();
  return *shared;
}

Registry& registry() { return Registry::instance(); }

}  // namespace mst::api
