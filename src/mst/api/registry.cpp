#include "mst/api/registry.hpp"

#include <algorithm>

#include "mst/api/solve_scratch.hpp"
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "mst/baselines/asap.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/baselines/brute_force.hpp"
#include "mst/baselines/forward_greedy.hpp"
#include "mst/baselines/periodic.hpp"
#include "mst/baselines/round_robin.hpp"
#include "mst/baselines/single_node.hpp"
#include "mst/baselines/tree_asap.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/heuristics/local_search.hpp"
#include "mst/heuristics/tree_schedule.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/sim/streaming.hpp"

namespace mst::api {

// The Platform variant and its kind helpers moved to the platform layer
// (src/mst/platform/any.cpp); `registry.hpp` re-exports them into this
// namespace.

namespace {

// Alternative extraction with an error message naming the algorithm, so a
// mismatched dispatch reads "optimal: expected a chain platform" instead of
// a bare bad_variant_access.
template <typename T>
const T& expect(const Platform& platform, const char* algorithm, const char* kind_name) {
  const T* p = std::get_if<T>(&platform);
  if (p == nullptr) {
    throw std::invalid_argument(std::string(algorithm) + ": expected a " + kind_name +
                                " platform, got " + to_string(kind_of(platform)));
  }
  return *p;
}

const Chain& expect_chain(const Platform& p, const char* a) { return expect<Chain>(p, a, "chain"); }
const Fork& expect_fork(const Platform& p, const char* a) { return expect<Fork>(p, a, "fork"); }
const Spider& expect_spider(const Platform& p, const char* a) {
  return expect<Spider>(p, a, "spider");
}
const Tree& expect_tree(const Platform& p, const char* a) { return expect<Tree>(p, a, "tree"); }

void require_tasks(std::size_t n) {
  if (n == 0) throw std::invalid_argument("solve: need at least one task");
}

void require_tasks(const Workload& workload) { require_tasks(workload.count()); }

/// The capability gate: unsupported workload features are rejected up
/// front, with a message naming algorithm, feature and remedy — never
/// silently mis-scheduled.
void require_supported(std::string_view algorithm, const WorkloadFeatures& supports,
                       const WorkloadFeatures& requested) {
  if (requested.subset_of(supports)) return;
  std::ostringstream os;
  os << "algorithm '" << algorithm << "' does not support workloads with "
     << to_string(requested) << " (supported: " << to_string(supports)
     << "); see the capability matrix in mstctl --mode=list";
  throw std::invalid_argument(os.str());
}

/// Per-algorithm dispatch counter, e.g. "api.solve.optimal".  The name is
/// assembled in a stack buffer — instrumented dispatch allocates nothing the
/// uninstrumented one does not.
void count_dispatch(obs::MetricsRegistry* metrics, const char* prefix,
                    std::string_view algorithm) {
  if (metrics == nullptr) return;
  char name[obs::MetricsRegistry::kNameCapacity];
  std::snprintf(name, sizeof name, "%s%.*s", prefix, static_cast<int>(algorithm.size()),
                algorithm.data());
  metrics->counter(name).increment();
}

}  // namespace

// ---------------------------------------------------------------------------
// Results

double SolveResult::throughput() const {
  if (tasks == 0) return 0.0;
  // A nonempty schedule claiming zero (or negative) time is a degenerate
  // platform description, not a slow one — surface it as +inf so sweep
  // tables cannot silently bury it at the bottom of a ranking.
  if (makespan <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(tasks) / static_cast<double>(makespan);
}

double DecisionResult::throughput() const {
  if (tasks == 0) return 0.0;
  if (deadline <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(tasks) / static_cast<double>(deadline);
}

namespace {

void check_task_count(std::size_t claimed, std::size_t scheduled, FeasibilityReport& out) {
  if (scheduled != claimed) {
    std::ostringstream os;
    os << "task count mismatch: result claims " << claimed << " tasks, schedule holds "
       << scheduled;
    out.add_violation(os.str());
  }
}

void check_makespan(Time claimed, Time actual, bool exact, FeasibilityReport& out) {
  const bool bad = exact ? actual != claimed : actual > claimed;
  if (bad) {
    std::ostringstream os;
    os << "makespan mismatch: result claims " << claimed << ", schedule "
       << (exact ? "has" : "replays to") << " " << actual;
    out.add_violation(os.str());
  }
}

/// The payload checks shared by the makespan- and decision-form reports:
/// workload-aware Definition 1 feasibility plus task-count / makespan
/// consistency.  Results built outside the registry may carry a default
/// workload; they are checked under identical-task semantics.
FeasibilityReport check_payload(const AnySchedule& schedule, std::size_t tasks, Time makespan,
                                const Workload& workload) {
  FeasibilityReport report;
  const Workload& effective =
      workload.count() == tasks ? workload : Workload::identical(tasks);
  if (tasks > 0 && makespan <= 0) {
    std::ostringstream os;
    os << "degenerate result: " << tasks << " tasks in non-positive makespan " << makespan;
    report.add_violation(os.str());
  }
  std::visit(
      [&](const auto& payload) {
        using S = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<S, ChainSchedule> || std::is_same_v<S, ForkSchedule> ||
                      std::is_same_v<S, SpiderSchedule>) {
          const Workload& payload_workload =
              payload.num_tasks() == effective.count() ? effective
                                                       : Workload::identical(payload.num_tasks());
          const FeasibilityReport inner = mst::check_feasibility(payload, payload_workload);
          for (const std::string& v : inner.violations()) report.add_violation(v);
          check_task_count(tasks, payload.num_tasks(), report);
          check_makespan(makespan, payload.makespan(), /*exact=*/true, report);
        } else if constexpr (std::is_same_v<S, TreeDispatch>) {
          bool dests_ok = true;
          for (NodeId dest : payload.dests) {
            if (dest == 0 || dest >= payload.tree.size()) {
              std::ostringstream os;
              os << "dispatch destination " << dest << " is not a slave of the tree";
              report.add_violation(os.str());
              dests_ok = false;
            }
          }
          if (dests_ok) {
            // No link-level timing to verify — replay the plan operationally
            // (sizes scaled, release dates gating the master).  The replay
            // may only move work earlier (eager forwarding), so the reported
            // makespan must be an upper bound on it.
            const Workload& replay_workload =
                payload.dests.size() == effective.count()
                    ? effective
                    : Workload::identical(payload.dests.size());
            const sim::SimResult replay =
                sim::simulate_dispatch(payload.tree, payload.dests, replay_workload);
            check_task_count(tasks, replay.num_tasks(), report);
            check_makespan(makespan, replay.makespan, /*exact=*/false, report);
          }
        } else {
          report.add_violation("algorithm reported a makespan without a materialized schedule");
        }
      },
      schedule);
  return report;
}

}  // namespace

FeasibilityReport check_feasibility(const SolveResult& result) {
  return check_payload(result.schedule, result.tasks, result.makespan, result.workload);
}

FeasibilityReport check_feasibility(const DecisionResult& result) {
  FeasibilityReport report;
  if (result.tasks == 0) {
    // An empty decision result is the correct answer for an impossible
    // window (including negative deadlines); it must carry no payload and
    // claim no completion time.
    if (!std::holds_alternative<std::monostate>(result.schedule)) {
      report.add_violation("empty decision result carries a schedule payload");
    }
    if (result.makespan != 0) {
      std::ostringstream os;
      os << "empty decision result claims a makespan of " << result.makespan;
      report.add_violation(os.str());
    }
    return report;
  }
  if (result.makespan > result.deadline) {
    std::ostringstream os;
    os << "deadline exceeded: makespan " << result.makespan << " > deadline " << result.deadline;
    report.add_violation(os.str());
  }
  const FeasibilityReport payload =
      check_payload(result.schedule, result.tasks, result.makespan, result.workload);
  for (const std::string& v : payload.violations()) report.add_violation(v);
  return report;
}

// ---------------------------------------------------------------------------
// Registry mechanics

// ---------------------------------------------------------------------------
// Scheduler defaults: decision form by makespan inversion

DecisionResult Scheduler::solve_within(const Platform& platform, Time deadline,
                                       const SolveOptions& options) const {
  // Invert the makespan form: the largest task set whose makespan fits the
  // window, found by exponential growth then binary search.  Exact whenever
  // the algorithm's makespan is monotone non-decreasing in the task count.
  // With a finite pool (`options.workload`) the probes are the pool's
  // canonical prefixes — appending a task never shrinks a makespan, so the
  // same search applies.
  SolveOptions probe = options;
  probe.materialize = false;
  const Workload* pool = options.workload.get();
  const std::size_t cap =
      std::min(std::max<std::size_t>(1, options.cap),
               pool != nullptr ? pool->count() : std::numeric_limits<std::size_t>::max());

  DecisionResult out;
  out.kind = kind_of(platform);
  out.deadline = deadline;
  // Trivially-empty window (or empty pool): skip the probe solve entirely.
  // The algorithm name stays empty here; Registry::solve_within fills it on
  // dispatch.
  if (deadline <= 0 || cap == 0) return out;

  // Instrumentation point: every makespan-form evaluation the inversion
  // spends — exponential growth, bisection and the final materializing
  // solve — lands on one counter.
  obs::Counter probes;
  if (options.metrics != nullptr) {
    probes = options.metrics->counter("api.decision.probe_solves");
  }
  const auto probe_solve = [&](std::size_t k, const SolveOptions& solve_options) {
    probes.increment();
    return pool != nullptr ? solve(platform, pool->prefix(k), solve_options)
                           : solve(platform, k, solve_options);
  };

  const SolveResult first = probe_solve(1, probe);
  out.algorithm = first.algorithm;
  out.optimal = first.optimal;  // an optimal makespan form inverts exactly
  if (first.makespan > deadline) return out;

  std::size_t lo = 1;  // largest count known to fit
  Time lo_makespan = first.makespan;
  std::size_t hi = 1;  // first count known not to fit, once lo < hi
  while (lo == hi && hi < cap) {
    const std::size_t next = hi > cap / 2 ? cap : hi * 2;
    const SolveResult r = probe_solve(next, probe);
    if (r.makespan <= deadline) {
      lo = next;
      lo_makespan = r.makespan;
    }
    hi = next;
  }
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const SolveResult r = probe_solve(mid, probe);
    if (r.makespan <= deadline) {
      lo = mid;
      lo_makespan = r.makespan;
    } else {
      hi = mid;
    }
  }

  out.tasks = lo;
  out.makespan = lo_makespan;
  // A search stopped by the cap may be truncated — the count is then not
  // provably maximal no matter how exact the makespan form is.  Exhausting
  // a finite pool, by contrast, is proof.
  out.optimal = out.optimal && (lo < cap || (pool != nullptr && lo >= pool->count()));
  if (options.materialize) {
    SolveResult full = probe_solve(lo, options);
    out.makespan = full.makespan;
    out.schedule = std::move(full.schedule);
  }
  return out;
}

std::size_t Scheduler::max_tasks(const Platform& platform, Time deadline,
                                 const SolveOptions& options) const {
  SolveOptions count_only = options;
  count_only.materialize = false;
  return solve_within(platform, deadline, count_only).tasks;
}

namespace {

/// Adapts callables to the Scheduler interface (used by both lambda
/// overloads of Registry::add and by every built-in registration below).
/// Enforces the `materialize` contract and the workload capability gate
/// centrally, so individual registrations cannot forget either.
class FunctionScheduler final : public Scheduler {
 public:
  FunctionScheduler(std::string name, WorkloadFeatures supports, Registry::SolveFn solve_fn,
                    Registry::DecisionFn within_fn)
      : name_(std::move(name)),
        supports_(supports),
        solve_fn_(std::move(solve_fn)),
        within_fn_(std::move(within_fn)) {}

  using Scheduler::solve;

  [[nodiscard]] SolveResult solve(const Platform& platform, const Workload& workload,
                                  const SolveOptions& options) const override {
    require_supported(name_, supports_, workload.features());
    SolveResult result = solve_fn_(platform, workload, options);
    result.workload = workload;
    if (!options.materialize) {
      // Stripping a pooled payload must return its buffers to the scratch,
      // not free them — count-only sweeps recycle here, every solve.
      if (options.scratch != nullptr) options.scratch->recycle_schedule(std::move(result.schedule));
      result.schedule = std::monostate{};
    }
    return result;
  }

  [[nodiscard]] DecisionResult solve_within(const Platform& platform, Time deadline,
                                            const SolveOptions& options) const override {
    if (options.workload != nullptr) {
      require_supported(name_, supports_, options.workload->features());
    }
    if (!within_fn_) return Scheduler::solve_within(platform, deadline, options);
    DecisionResult result = within_fn_(platform, deadline, options);
    if (!options.materialize) {
      if (options.scratch != nullptr) options.scratch->recycle_schedule(std::move(result.schedule));
      result.schedule = std::monostate{};
    }
    return result;
  }

 private:
  std::string name_;
  WorkloadFeatures supports_;
  Registry::SolveFn solve_fn_;
  Registry::DecisionFn within_fn_;
};

}  // namespace

void Registry::add(AlgorithmInfo info, std::shared_ptr<const Scheduler> scheduler) {
  if (info.name.empty()) throw std::invalid_argument("registry: algorithm name must be non-empty");
  if (scheduler == nullptr) throw std::invalid_argument("registry: null scheduler");
  if (find(info.kind, info.name) != nullptr) {
    throw std::invalid_argument("registry: duplicate algorithm (" + to_string(info.kind) + ", " +
                                info.name + ")");
  }
  entries_.push_back(Entry{std::move(info), std::move(scheduler)});
}

void Registry::add(AlgorithmInfo info,
                   std::function<SolveResult(const Platform&, std::size_t)> fn) {
  if (fn == nullptr) throw std::invalid_argument("registry: null solve function");
  // The callable only sees a count: identical workloads only, whatever the
  // info claims.
  info.supports = WorkloadFeatures{};
  add(std::move(info),
      [fn = std::move(fn)](const Platform& p, const Workload& w, const SolveOptions&) {
        return fn(p, w.count());
      },
      nullptr);
}

void Registry::add(AlgorithmInfo info, SolveFn solve_fn, DecisionFn within_fn) {
  if (solve_fn == nullptr) throw std::invalid_argument("registry: null solve function");
  auto scheduler = std::make_shared<const FunctionScheduler>(
      info.name, info.supports, std::move(solve_fn), std::move(within_fn));
  add(std::move(info), std::move(scheduler));
}

bool Registry::supports(PlatformKind kind, std::string_view name,
                        const WorkloadFeatures& features) const {
  const AlgorithmInfo* entry = info(kind, name);
  return entry != nullptr && features.subset_of(entry->supports);
}

const Scheduler* Registry::find(PlatformKind kind, std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.info.kind == kind && e.info.name == name) return e.scheduler.get();
  }
  return nullptr;
}

const AlgorithmInfo* Registry::info(PlatformKind kind, std::string_view name) const {
  for (const Entry& e : entries_) {
    if (e.info.kind == kind && e.info.name == name) return &e.info;
  }
  return nullptr;
}

std::vector<AlgorithmInfo> Registry::list() const {
  std::vector<AlgorithmInfo> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.info);
  return out;
}

std::vector<AlgorithmInfo> Registry::list(PlatformKind kind) const {
  std::vector<AlgorithmInfo> out;
  for (const Entry& e : entries_) {
    if (e.info.kind == kind) out.push_back(e.info);
  }
  return out;
}

std::vector<std::string> Registry::names(PlatformKind kind) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.info.kind == kind) out.push_back(e.info.name);
  }
  return out;
}

namespace {

const Scheduler& resolve(const Registry& registry, const Platform& platform,
                         std::string_view algorithm) {
  const PlatformKind kind = kind_of(platform);
  const Scheduler* scheduler = registry.find(kind, algorithm);
  if (scheduler == nullptr) {
    std::ostringstream os;
    os << "no algorithm '" << algorithm << "' for " << to_string(kind) << " platforms; known:";
    for (const std::string& name : registry.names(kind)) os << " " << name;
    throw std::invalid_argument(os.str());
  }
  return *scheduler;
}

}  // namespace

SolveResult Registry::solve(const Platform& platform, std::string_view algorithm,
                            const Workload& workload, const SolveOptions& options) const {
  // Central capability gate (FunctionScheduler re-checks for direct
  // Scheduler access; custom schedulers registered by pointer rely on this
  // one).
  if (const AlgorithmInfo* entry = info(kind_of(platform), algorithm)) {
    require_supported(algorithm, entry->supports, workload.features());
  }
  count_dispatch(options.metrics, "api.solve.", algorithm);
  SolveResult result = resolve(*this, platform, algorithm).solve(platform, workload, options);
  result.workload = workload;
  return result;
}

SolveResult Registry::solve(const Platform& platform, std::string_view algorithm, std::size_t n,
                            const SolveOptions& options) const {
  return solve(platform, algorithm, Workload::identical(n), options);
}

DecisionResult Registry::solve_within(const Platform& platform, std::string_view algorithm,
                                      Time deadline, const SolveOptions& options) const {
  if (options.workload != nullptr) {
    if (const AlgorithmInfo* entry = info(kind_of(platform), algorithm)) {
      require_supported(algorithm, entry->supports, options.workload->features());
    }
  }
  count_dispatch(options.metrics, "api.decide.", algorithm);
  DecisionResult result =
      resolve(*this, platform, algorithm).solve_within(platform, deadline, options);
  // The adapter's empty-window early return has no probe to learn its
  // registry name from.
  if (result.algorithm.empty()) result.algorithm = algorithm;
  // The tasks that made the count: canonical prefix of the pool, or the
  // identical stream's first `tasks`.
  result.workload = options.workload != nullptr ? options.workload->prefix(result.tasks)
                                                : Workload::identical(result.tasks);
  return result;
}

std::size_t Registry::max_tasks(const Platform& platform, std::string_view algorithm,
                                Time deadline, const SolveOptions& options) const {
  return resolve(*this, platform, algorithm).max_tasks(platform, deadline, options);
}

// ---------------------------------------------------------------------------
// Built-in algorithms

namespace {

SolveResult make_result(const char* algorithm, PlatformKind kind, std::size_t tasks,
                        Time makespan, Time lower_bound, bool optimal, AnySchedule schedule) {
  SolveResult result;
  result.algorithm = algorithm;
  result.kind = kind;
  result.tasks = tasks;
  result.makespan = makespan;
  result.lower_bound = lower_bound;
  result.optimal = optimal;
  result.schedule = std::move(schedule);
  return result;
}

// NB: makespan and bound are computed into locals before the `make_result`
// call — argument evaluation order is unspecified, so `schedule.makespan()`
// must not race the `std::move(schedule)` argument.
SolveResult chain_result(const char* algorithm, ChainSchedule schedule, std::size_t n,
                         bool optimal) {
  const Time lb = chain_makespan_lower_bound(schedule.chain, n);
  const Time makespan = schedule.makespan();
  return make_result(algorithm, PlatformKind::kChain, n, makespan, lb, optimal,
                     std::move(schedule));
}

SolveResult spider_result(const char* algorithm, PlatformKind kind, SpiderSchedule schedule,
                          std::size_t n, bool optimal) {
  const Time lb = spider_makespan_lower_bound(schedule.spider, n);
  const Time makespan = schedule.makespan();
  return make_result(algorithm, kind, n, makespan, lb, optimal, std::move(schedule));
}

SolveResult tree_result(const char* algorithm, const Tree& tree, std::vector<NodeId> dests,
                        Time makespan, std::size_t n) {
  TreeDispatch dispatch{tree, std::move(dests)};
  return make_result(algorithm, PlatformKind::kTree, n, makespan, /*lower_bound=*/0,
                     /*optimal=*/false, std::move(dispatch));
}

DecisionResult make_decision(const char* algorithm, PlatformKind kind, Time deadline,
                             std::size_t tasks, Time makespan, bool optimal,
                             AnySchedule schedule) {
  DecisionResult result;
  result.algorithm = algorithm;
  result.kind = kind;
  result.deadline = deadline;
  result.tasks = tasks;
  result.makespan = makespan;
  result.optimal = optimal;
  result.schedule = std::move(schedule);
  return result;
}

std::size_t decision_cap(const SolveOptions& options) {
  return std::max<std::size_t>(1, options.cap);
}

/// Workload features the built-ins declare.
constexpr WorkloadFeatures kReleaseOnly{/*sizes=*/false, /*release=*/true};
constexpr WorkloadFeatures kSizesAndRelease{/*sizes=*/true, /*release=*/true};
constexpr WorkloadFeatures kReleaseStreaming{/*sizes=*/false, /*release=*/true,
                                             /*streaming=*/true};
constexpr WorkloadFeatures kSizesReleaseStreaming{/*sizes=*/true, /*release=*/true,
                                                  /*streaming=*/true};

/// The decision-form task pool, when one was supplied.
const Workload* pool_of(const SolveOptions& options) { return options.workload.get(); }

/// Effective decision cap: the search cap, clamped to a finite pool.
std::size_t decision_cap(const SolveOptions& options, const Workload* pool) {
  const std::size_t cap = decision_cap(options);
  return pool != nullptr ? std::min(cap, pool->count()) : cap;
}

/// A count is provably maximal when the search was not truncated: it ended
/// strictly inside the cap, or it exhausted a finite pool.
bool decision_maximal(std::size_t tasks, std::size_t cap, const Workload* pool) {
  if (pool != nullptr && tasks >= pool->count()) return true;
  return tasks < cap;
}

/// Wraps a core decision-form schedule (`schedule_within` family) into a
/// DecisionResult.  The core schedules stay absolute in `[0, deadline]`, so
/// `makespan() <= deadline` by construction; an empty selection yields a
/// payload-free result.  A count that hit `cap` may be truncated, so it is
/// only reported as provably maximal when it also exhausted a finite pool.
template <typename Schedule>
DecisionResult decision_from_schedule(const char* algorithm, PlatformKind kind, Time deadline,
                                      bool optimal, std::size_t cap, const Workload* pool,
                                      Schedule schedule) {
  const std::size_t tasks = schedule.num_tasks();
  const Time makespan = schedule.makespan();
  AnySchedule payload;
  if (tasks > 0) payload = std::move(schedule);
  return make_decision(algorithm, kind, deadline, tasks, makespan,
                       optimal && decision_maximal(tasks, cap, pool), std::move(payload));
}

/// `decision_from_schedule` for a pooled schedule: moves the pool into the
/// payload only when nonempty, so an empty window never discards the pool's
/// warm buffers.
template <typename Schedule>
DecisionResult decision_from_pooled(const char* algorithm, PlatformKind kind, Time deadline,
                                    bool optimal, std::size_t cap, const Workload* pool,
                                    Schedule& schedule) {
  const std::size_t tasks = schedule.num_tasks();
  const Time makespan = schedule.makespan();
  AnySchedule payload;
  if (tasks > 0) payload = std::move(schedule);
  return make_decision(algorithm, kind, deadline, tasks, makespan,
                       optimal && decision_maximal(tasks, cap, pool), std::move(payload));
}

// Count-path scratch: the caller's SolveScratch when one was threaded
// through the options, else a per-thread fallback.  `thread_local` is the
// fallback's whole thread-safety story — each pool worker owns its scratch
// outright, so the handoff into count_within needs no lock (and the
// shared-mutable-state lint exempts it).
ChainCountScratch& chain_count_scratch(const SolveOptions& options) {
  if (options.scratch != nullptr) return options.scratch->chain;
  static thread_local ChainCountScratch fallback;
  return fallback;
}

ForkCountScratch& fork_count_scratch(const SolveOptions& options) {
  if (options.scratch != nullptr) return options.scratch->fork;
  static thread_local ForkCountScratch fallback;
  return fallback;
}

SpiderCountScratch& spider_count_scratch(const SolveOptions& options) {
  if (options.scratch != nullptr) return options.scratch->spider.count;
  static thread_local SpiderCountScratch fallback;
  return fallback;
}

/// Decision form of the exhaustive oracles: exact count from the monotone
/// makespan staircase, optionally materialized as the optimal schedule of
/// that count (its makespan fits the window by definition of the count).
DecisionResult chain_brute_force_decision(const Chain& chain, Time deadline,
                                          const SolveOptions& options) {
  const Workload* pool = pool_of(options);
  const std::size_t cap = decision_cap(options, pool);
  const std::size_t tasks =
      deadline > 0 && cap > 0 ? brute_force_chain_max_tasks(chain, deadline, cap) : 0;
  Time makespan = 0;
  AnySchedule payload;
  if (tasks > 0) {
    if (options.materialize) {
      ChainSchedule schedule = brute_force_chain_schedule(chain, tasks);
      makespan = schedule.makespan();
      payload = std::move(schedule);
    } else {
      makespan = brute_force_chain_makespan(chain, tasks);
    }
  }
  return make_decision("brute-force", PlatformKind::kChain, deadline, tasks, makespan,
                       /*optimal=*/decision_maximal(tasks, cap, pool), std::move(payload));
}

DecisionResult spider_brute_force_decision(PlatformKind kind, const Spider& spider, Time deadline,
                                           const SolveOptions& options) {
  const Workload* pool = pool_of(options);
  const std::size_t cap = decision_cap(options, pool);
  const std::size_t tasks =
      deadline > 0 && cap > 0 ? brute_force_spider_max_tasks(spider, deadline, cap) : 0;
  Time makespan = 0;
  AnySchedule payload;
  if (tasks > 0) {
    if (options.materialize) {
      SpiderSchedule schedule = brute_force_spider_schedule(spider, tasks);
      makespan = schedule.makespan();
      payload = std::move(schedule);
    } else {
      makespan = brute_force_spider_makespan(spider, tasks);
    }
  }
  return make_decision("brute-force", kind, deadline, tasks, makespan,
                       /*optimal=*/decision_maximal(tasks, cap, pool), std::move(payload));
}

/// The bandwidth-centric baseline as a makespan-form scheduler: dispatch the
/// first `n` destinations of the repeated periodic block with ASAP timing.
ChainSchedule periodic_prefix_schedule(const Chain& chain, std::size_t n) {
  const PeriodicPattern pattern = chain_periodic_pattern(chain);
  std::vector<std::size_t> dests;
  dests.reserve(n);
  while (dests.size() < n) {
    for (std::size_t dest : pattern.block) {
      if (dests.size() == n) break;
      dests.push_back(dest);
    }
  }
  return asap_chain_schedule(chain, dests);
}

/// Makespan form of the paper's §6 fork greedy: smallest window whose greedy
/// selection reaches `n` tasks, found by binary search (the count is
/// monotone in the window for the ascending-`c` greedy) with a doubling
/// safety net, then materialized.
ForkSchedule fork_greedy_schedule(const Fork& fork, std::size_t n) {
  Time lo = 1;
  Time hi = single_node_spider_makespan(Spider::from_fork(fork), n);
  while (ForkScheduler::greedy_max_tasks(fork, hi, n) < n) hi *= 2;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (ForkScheduler::greedy_max_tasks(fork, mid, n) >= n) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  ForkSchedule schedule = ForkScheduler::greedy_schedule_within(fork, lo, n);
  while (schedule.num_tasks() < n) {
    lo *= 2;
    schedule = ForkScheduler::greedy_schedule_within(fork, lo, n);
  }
  return schedule;
}

/// Registers the streaming horizon re-planner for one exactly-solved kind.
/// The makespan form is the no-lookahead streaming simulation of the
/// workload's release stream (`sim/streaming.hpp`: the exact solver re-runs
/// on the known backlog at each arrival), materialized as the dispatch plan
/// on the embedded tree substrate; with every task released at 0 the single
/// plan is the offline optimum and the simulated makespan matches it.  The
/// streaming capability flag is what `mode=stream` sweep cells and
/// `mstctl --mode=stream` key on.
void register_replan(Registry& r, PlatformKind k) {
  r.add({k, "replan", "streaming horizon re-planning (exact solver re-run per arrival)",
         /*optimal=*/false, /*exponential=*/false, kReleaseStreaming},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          Tree tree = sim::stream_substrate(p);
          const std::unique_ptr<sim::StreamPolicy> policy = sim::make_replan_policy(p);
          const sim::StreamResult run = sim::simulate_stream(tree, w, *policy);
          std::vector<NodeId> dests;
          dests.reserve(run.sim.tasks.size());
          for (const sim::SimTask& task : run.sim.tasks) dests.push_back(task.dest);
          TreeDispatch dispatch{std::move(tree), std::move(dests)};
          return make_result("replan", k, w.count(), run.sim.makespan, /*lower_bound=*/0,
                             /*optimal=*/false, std::move(dispatch));
        },
        nullptr);
}

SolveResult solve_tree_online(const Tree& tree, const Workload& workload,
                              sim::OnlinePolicy policy, const char* algorithm,
                              std::uint64_t seed) {
  const sim::SimResult run = sim::simulate_online(tree, workload, policy, seed);
  std::vector<NodeId> dests;
  dests.reserve(run.tasks.size());
  for (const sim::SimTask& task : run.tasks) dests.push_back(task.dest);
  return tree_result(algorithm, tree, std::move(dests), run.makespan, workload.count());
}

void register_chain_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kChain;
  r.add({k, "optimal", "backward construction, Theorem 1 (O(n*p^2))", /*optimal=*/true,
         /*exponential=*/false, kReleaseOnly},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          const Chain& chain = expect_chain(p, "optimal");
          if (opts.scratch != nullptr && !w.has_release_dates()) {
            // Pooled materialization: rebuild the scratch's chain pool in
            // place (bit-identical to the value-returning path).
            ChainSchedule& pooled = opts.scratch->chain_pool;
            ChainScheduler::schedule_into(chain, w.count(), opts.scratch->chain, pooled);
            const Time lb = chain_makespan_lower_bound(chain, w.count());
            const Time makespan = pooled.makespan();
            return make_result("optimal", PlatformKind::kChain, w.count(), makespan, lb, true,
                               std::move(pooled));
          }
          // Identical workloads take the historical path inside the core
          // scheduler; release dates anchor the backward construction at
          // the minimal feasible horizon instead.
          return chain_result("optimal", ChainScheduler::schedule(chain, w), w.count(), true);
        },
        [k](const Platform& p, Time deadline, const SolveOptions& opts) {
          const Chain& chain = expect_chain(p, "optimal");
          if (deadline <= 0) return make_decision("optimal", k, deadline, 0, 0, true, {});
          const Workload* pool = pool_of(opts);
          const std::size_t cap = decision_cap(opts, pool);
          if (!opts.materialize) {
            // Genuinely allocation-free counting for sweeps: warm scratch
            // (caller-provided or per-thread), no placement vectors ever
            // built.  A nonempty backward construction always ends exactly
            // at the horizon, so the completion time is `deadline` itself
            // (release dates included — the horizon anchor is unchanged).
            ChainCountScratch& scratch = chain_count_scratch(opts);
            const std::size_t tasks =
                pool != nullptr && pool->has_release_dates()
                    ? ChainScheduler::count_within(chain, deadline, *pool, decision_cap(opts),
                                                   scratch)
                    : ChainScheduler::count_within(chain, deadline, cap, scratch);
            return make_decision("optimal", k, deadline, tasks, tasks > 0 ? deadline : 0,
                                 /*optimal=*/decision_maximal(tasks, cap, pool), {});
          }
          if (pool != nullptr && pool->has_release_dates()) {
            return decision_from_schedule(
                "optimal", k, deadline, /*optimal=*/true, cap, pool,
                ChainScheduler::schedule_within(chain, deadline, *pool, decision_cap(opts)));
          }
          if (opts.scratch != nullptr) {
            ChainSchedule& pooled = opts.scratch->chain_pool;
            ChainScheduler::schedule_within_into(chain, deadline, cap, opts.scratch->chain,
                                                 pooled);
            return decision_from_pooled("optimal", k, deadline, /*optimal=*/true, cap, pool,
                                        pooled);
          }
          return decision_from_schedule(
              "optimal", k, deadline, /*optimal=*/true, cap, pool,
              ChainScheduler::schedule_within(chain, deadline, cap));
        });
  r.add({k, "forward-greedy", "earliest-completion-time list scheduling", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Chain& chain = expect_chain(p, "forward-greedy");
          return chain_result("forward-greedy", forward_greedy_chain(chain, w), w.count(),
                              false);
        },
        nullptr);
  r.add({k, "round-robin", "heterogeneity-blind cyclic dispatch", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Chain& chain = expect_chain(p, "round-robin");
          return chain_result("round-robin", round_robin_chain(chain, w), w.count(), false);
        },
        nullptr);
  r.add({k, "single-node", "best single-processor pipeline (generalized T-infinity)",
         /*optimal=*/false, /*exponential=*/false, kSizesAndRelease},
        [](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Chain& chain = expect_chain(p, "single-node");
          return chain_result("single-node", single_node_chain(chain, w), w.count(), false);
        },
        nullptr);
  r.add({k, "periodic", "bandwidth-centric periodic pattern, ASAP prefix", /*optimal=*/false,
         /*exponential=*/false, WorkloadFeatures{}},
        [](const Platform& p, std::size_t n) {
          require_tasks(n);
          const Chain& chain = expect_chain(p, "periodic");
          return chain_result("periodic", periodic_prefix_schedule(chain, n), n, false);
        });
  r.add({k, "brute-force", "exhaustive destination-sequence search", /*optimal=*/true,
         /*exponential=*/true, WorkloadFeatures{}},
        [](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Chain& chain = expect_chain(p, "brute-force");
          return chain_result("brute-force", brute_force_chain_schedule(chain, w.count()),
                              w.count(), true);
        },
        [](const Platform& p, Time deadline, const SolveOptions& opts) {
          return chain_brute_force_decision(expect_chain(p, "brute-force"), deadline, opts);
        });
  register_replan(r, k);
}

void register_fork_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kFork;
  r.add({k, "optimal", "Moore-Hodgson virtual-node selection, Fig 6", /*optimal=*/true,
         /*exponential=*/false, kReleaseOnly},
        [k](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          const Fork& fork = expect_fork(p, "optimal");
          if (opts.scratch != nullptr && !w.has_release_dates()) {
            ForkSchedule& pooled = opts.scratch->fork_pool;
            ForkScheduler::schedule_into(fork, w.count(), opts.scratch->fork, pooled);
            const Time lb = fork_makespan_lower_bound(fork, w.count(), opts.scratch->bound);
            const Time makespan = pooled.makespan();
            return make_result("optimal", k, w.count(), makespan, lb, true, std::move(pooled));
          }
          ForkSchedule schedule = ForkScheduler::schedule(fork, w);
          const Time lb = spider_makespan_lower_bound(Spider::from_fork(fork), w.count());
          const Time makespan = schedule.makespan();
          return make_result("optimal", k, w.count(), makespan, lb, true, std::move(schedule));
        },
        [k](const Platform& p, Time deadline, const SolveOptions& opts) {
          const Fork& fork = expect_fork(p, "optimal");
          if (deadline <= 0) return make_decision("optimal", k, deadline, 0, 0, true, {});
          const Workload* pool = pool_of(opts);
          const std::size_t cap = decision_cap(opts, pool);
          if (pool != nullptr && pool->has_release_dates()) {
            // Unlike chain/spider, a fork decision makespan is the EDD
            // packing's completion time (not the horizon), so a count-only
            // path cannot report it without the DP's selection — released
            // pools therefore go through the materializing construction
            // even when `materialize` is off (the payload is stripped by
            // the wrapper; pools are sweep-sized, so this stays cheap).
            return decision_from_schedule(
                "optimal", k, deadline, /*optimal=*/true, cap, pool,
                ForkScheduler::schedule_within(fork, deadline, *pool, decision_cap(opts)));
          }
          if (!opts.materialize) {
            // Allocation-free count + makespan: the whole selection /
            // normalization / EDD sequencing pipeline replayed in warm
            // scratch (caller-provided or per-thread), no task vectors
            // built.
            ForkCountScratch& scratch = fork_count_scratch(opts);
            const auto [tasks, makespan] =
                ForkScheduler::makespan_within(fork, deadline, cap, scratch);
            return make_decision("optimal", k, deadline, tasks, makespan,
                                 /*optimal=*/decision_maximal(tasks, cap, pool), {});
          }
          if (opts.scratch != nullptr) {
            ForkSchedule& pooled = opts.scratch->fork_pool;
            ForkScheduler::schedule_within_into(fork, deadline, cap, opts.scratch->fork, pooled);
            return decision_from_pooled("optimal", k, deadline, /*optimal=*/true, cap, pool,
                                        pooled);
          }
          return decision_from_schedule(
              "optimal", k, deadline, /*optimal=*/true, cap, pool,
              ForkScheduler::schedule_within(fork, deadline, cap));
        });
  r.add({k, "greedy", "the paper's ascending-c greedy (Beaumont et al.)", /*optimal=*/false,
         /*exponential=*/false, WorkloadFeatures{}},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Fork& fork = expect_fork(p, "greedy");
          ForkSchedule schedule = fork_greedy_schedule(fork, w.count());
          const Time lb = spider_makespan_lower_bound(Spider::from_fork(fork), w.count());
          const Time makespan = schedule.makespan();
          return make_result("greedy", k, w.count(), makespan, lb, false, std::move(schedule));
        },
        [k](const Platform& p, Time deadline, const SolveOptions& opts) {
          const Fork& fork = expect_fork(p, "greedy");
          if (deadline <= 0) return make_decision("greedy", k, deadline, 0, 0, false, {});
          const Workload* pool = pool_of(opts);
          const std::size_t cap = decision_cap(opts, pool);
          return decision_from_schedule(
              "greedy", k, deadline, /*optimal=*/false, cap, pool,
              ForkScheduler::greedy_schedule_within(fork, deadline, cap));
        });
  r.add({k, "forward-greedy", "earliest-completion-time list scheduling", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Fork& fork = expect_fork(p, "forward-greedy");
          return spider_result("forward-greedy", k,
                               forward_greedy_spider(Spider::from_fork(fork), w), w.count(),
                               false);
        },
        nullptr);
  r.add({k, "round-robin", "heterogeneity-blind cyclic dispatch", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Fork& fork = expect_fork(p, "round-robin");
          return spider_result("round-robin", k,
                               round_robin_spider(Spider::from_fork(fork), w), w.count(), false);
        },
        nullptr);
  r.add({k, "single-node", "best single-slave pipeline", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Fork& fork = expect_fork(p, "single-node");
          return spider_result("single-node", k,
                               single_node_spider(Spider::from_fork(fork), w), w.count(), false);
        },
        nullptr);
  r.add({k, "brute-force", "exhaustive destination-sequence search", /*optimal=*/true,
         /*exponential=*/true, WorkloadFeatures{}},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Fork& fork = expect_fork(p, "brute-force");
          return spider_result("brute-force", k,
                               brute_force_spider_schedule(Spider::from_fork(fork), w.count()),
                               w.count(), true);
        },
        [k](const Platform& p, Time deadline, const SolveOptions& opts) {
          const Fork& fork = expect_fork(p, "brute-force");
          return spider_brute_force_decision(k, Spider::from_fork(fork), deadline, opts);
        });
  register_replan(r, k);
}

void register_spider_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kSpider;
  r.add({k, "optimal", "per-leg decision form + Moore-Hodgson, Theorem 3", /*optimal=*/true,
         /*exponential=*/false, kReleaseOnly},
        [k](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          const Spider& spider = expect_spider(p, "optimal");
          if (opts.scratch != nullptr && !w.has_release_dates()) {
            SpiderSchedule& pooled = opts.scratch->spider_pool;
            SpiderScheduler::schedule_into(spider, w.count(), opts.scratch->spider, pooled);
            const Time lb = spider_makespan_lower_bound(spider, w.count(), opts.scratch->bound);
            const Time makespan = pooled.makespan();
            return make_result("optimal", k, w.count(), makespan, lb, true, std::move(pooled));
          }
          return spider_result("optimal", k, SpiderScheduler::schedule(spider, w), w.count(),
                               true);
        },
        [k](const Platform& p, Time deadline, const SolveOptions& opts) {
          const Spider& spider = expect_spider(p, "optimal");
          if (deadline <= 0) return make_decision("optimal", k, deadline, 0, 0, true, {});
          const Workload* pool = pool_of(opts);
          const std::size_t cap = decision_cap(opts, pool);
          if (!opts.materialize) {
            // Allocation-free counting (per-leg backward count + count-only
            // selection, positional-release DP when the pool has release
            // dates); any kept leg's latest task ends at the horizon, so a
            // nonempty count completes exactly at `deadline`.
            SpiderCountScratch& scratch = spider_count_scratch(opts);
            const std::size_t tasks =
                pool != nullptr && pool->has_release_dates()
                    ? SpiderScheduler::count_within(spider, deadline, *pool,
                                                    decision_cap(opts), scratch)
                    : SpiderScheduler::count_within(spider, deadline, cap, scratch);
            return make_decision("optimal", k, deadline, tasks, tasks > 0 ? deadline : 0,
                                 /*optimal=*/decision_maximal(tasks, cap, pool), {});
          }
          if (pool != nullptr && pool->has_release_dates()) {
            return decision_from_schedule(
                "optimal", k, deadline, /*optimal=*/true, cap, pool,
                SpiderScheduler::schedule_within(spider, deadline, *pool, decision_cap(opts)));
          }
          if (opts.scratch != nullptr) {
            SpiderSchedule& pooled = opts.scratch->spider_pool;
            SpiderScheduler::schedule_within_into(spider, deadline, cap, opts.scratch->spider,
                                                  pooled);
            return decision_from_pooled("optimal", k, deadline, /*optimal=*/true, cap, pool,
                                        pooled);
          }
          return decision_from_schedule(
              "optimal", k, deadline, /*optimal=*/true, cap, pool,
              SpiderScheduler::schedule_within(spider, deadline, cap));
        });
  r.add({k, "forward-greedy", "earliest-completion-time list scheduling", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Spider& spider = expect_spider(p, "forward-greedy");
          return spider_result("forward-greedy", k, forward_greedy_spider(spider, w), w.count(),
                               false);
        },
        nullptr);
  r.add({k, "round-robin", "heterogeneity-blind cyclic dispatch", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Spider& spider = expect_spider(p, "round-robin");
          return spider_result("round-robin", k, round_robin_spider(spider, w), w.count(),
                               false);
        },
        nullptr);
  r.add({k, "single-node", "best single-processor pipeline over all legs", /*optimal=*/false,
         /*exponential=*/false, kSizesAndRelease},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Spider& spider = expect_spider(p, "single-node");
          return spider_result("single-node", k, single_node_spider(spider, w), w.count(),
                               false);
        },
        nullptr);
  r.add({k, "brute-force", "exhaustive destination-sequence search", /*optimal=*/true,
         /*exponential=*/true, WorkloadFeatures{}},
        [k](const Platform& p, const Workload& w, const SolveOptions&) {
          require_tasks(w);
          const Spider& spider = expect_spider(p, "brute-force");
          return spider_result("brute-force", k, brute_force_spider_schedule(spider, w.count()),
                               w.count(), true);
        },
        [k](const Platform& p, Time deadline, const SolveOptions& opts) {
          return spider_brute_force_decision(k, expect_spider(p, "brute-force"), deadline, opts);
        });
  register_replan(r, k);
}

void register_tree_algorithms(Registry& r) {
  const PlatformKind k = PlatformKind::kTree;
  // The three offline heuristics take the full SolveFn form (identical
  // workloads only, as before) so a caller-provided SolveScratch can pool
  // the dispatch plan and the pipeline working sets; with warm scratch
  // their per-solve allocation count is independent of `n`.
  r.add({k, "spider-cover", "optimal plan on the best-rate spider cover (section 8)",
         /*optimal=*/false, /*exponential=*/false, WorkloadFeatures{}},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          const Tree& tree = expect_tree(p, "spider-cover");
          const std::size_t n = w.count();
          if (opts.scratch != nullptr) {
            TreeDispatch& pooled = opts.scratch->tree_pool;
            Time makespan = 0;
            schedule_tree_via_cover_into(tree, n, opts.scratch->tree_cover, pooled.dests,
                                         makespan);
            pooled.tree = tree;
            return make_result("spider-cover", PlatformKind::kTree, n, makespan,
                               /*lower_bound=*/0, /*optimal=*/false, std::move(pooled));
          }
          TreeScheduleResult plan = schedule_tree_via_cover(tree, n);
          return tree_result("spider-cover", tree, std::move(plan.destinations), plan.makespan,
                             n);
        },
        nullptr);
  r.add({k, "forward-greedy", "earliest-completion-time dispatch on the full tree",
         /*optimal=*/false, /*exponential=*/false, WorkloadFeatures{}},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          const Tree& tree = expect_tree(p, "forward-greedy");
          const std::size_t n = w.count();
          if (opts.scratch != nullptr) {
            TreeDispatch& pooled = opts.scratch->tree_pool;
            TreeAsapState state(tree);  // tree-shaped, so n-independent
            const Time makespan = forward_greedy_tree_into(n, state, pooled.dests);
            pooled.tree = tree;
            return make_result("forward-greedy", PlatformKind::kTree, n, makespan,
                               /*lower_bound=*/0, /*optimal=*/false, std::move(pooled));
          }
          std::vector<NodeId> dests = forward_greedy_tree(tree, n);
          const Time makespan = asap_tree_makespan(tree, dests);
          return tree_result("forward-greedy", tree, std::move(dests), makespan, n);
        },
        nullptr);
  r.add({k, "local-search", "greedy start + reassign/swap descent", /*optimal=*/false,
         /*exponential=*/false, WorkloadFeatures{}},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          const Tree& tree = expect_tree(p, "local-search");
          const std::size_t n = w.count();
          if (opts.scratch != nullptr) {
            TreeDispatch& pooled = opts.scratch->tree_pool;
            TreeAsapState state(tree);
            forward_greedy_tree_into(n, state, pooled.dests);
            LocalSearchResult improved = improve_tree_dispatch(tree, std::move(pooled.dests));
            pooled.dests = std::move(improved.dests);
            pooled.tree = tree;
            return make_result("local-search", PlatformKind::kTree, n, improved.makespan,
                               /*lower_bound=*/0, /*optimal=*/false, std::move(pooled));
          }
          LocalSearchResult improved = local_search_tree(tree, n);
          return tree_result("local-search", tree, std::move(improved.dests), improved.makespan,
                             n);
        },
        nullptr);
  // The online policies run on the discrete-event simulator, which executes
  // per-task sizes and release dates natively — the arrival-process axis of
  // the scenario engine lands here.  All four also adapt to the
  // no-lookahead streaming driver (the `streaming` capability flag), which
  // is what `mode=stream` sweep cells key on.
  r.add({k, "online-ect", "simulated online earliest-completion policy", /*optimal=*/false,
         /*exponential=*/false, kSizesReleaseStreaming},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          return solve_tree_online(expect_tree(p, "online-ect"), w,
                                   sim::OnlinePolicy::kEarliestCompletion, "online-ect",
                                   opts.seed);
        },
        nullptr);
  r.add({k, "online-jsq", "simulated online join-shortest-queue policy", /*optimal=*/false,
         /*exponential=*/false, kSizesReleaseStreaming},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          return solve_tree_online(expect_tree(p, "online-jsq"), w,
                                   sim::OnlinePolicy::kJoinShortestQueue, "online-jsq",
                                   opts.seed);
        },
        nullptr);
  r.add({k, "online-round-robin", "simulated online round-robin policy", /*optimal=*/false,
         /*exponential=*/false, kSizesReleaseStreaming},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          return solve_tree_online(expect_tree(p, "online-round-robin"), w,
                                   sim::OnlinePolicy::kRoundRobin, "online-round-robin",
                                   opts.seed);
        },
        nullptr);
  // Registered now that solves carry options: the policy is deterministic
  // per SolveOptions::seed, so mstctl runs are reproducible.
  r.add({k, "online-random", "simulated online uniform-random policy (SolveOptions::seed)",
         /*optimal=*/false, /*exponential=*/false, kSizesReleaseStreaming},
        [](const Platform& p, const Workload& w, const SolveOptions& opts) {
          require_tasks(w);
          return solve_tree_online(expect_tree(p, "online-random"), w,
                                   sim::OnlinePolicy::kRandom, "online-random", opts.seed);
        },
        nullptr);
}

}  // namespace

Registry& Registry::instance() {
  // `* const`: the pointer is written exactly once, under the C++11
  // thread-safe static-initialization guarantee; the Registry it points to
  // is fully populated before the first reference escapes.
  static Registry* const shared = [] {
    auto* r = new Registry();
    register_chain_algorithms(*r);
    register_fork_algorithms(*r);
    register_spider_algorithms(*r);
    register_tree_algorithms(*r);
    return r;
  }();
  return *shared;
}

Registry& registry() { return Registry::instance(); }

std::string default_algorithm(PlatformKind kind) {
  if (registry().find(kind, "optimal") != nullptr) return "optimal";
  const std::vector<std::string> names = registry().names(kind);
  if (names.empty()) {
    throw std::invalid_argument("no algorithms registered for " + to_string(kind) +
                                " platforms");
  }
  return names.front();
}

}  // namespace mst::api
