#include "mst/api/trace_replay.hpp"

#include <stdexcept>
#include <variant>
#include <vector>

namespace mst::api {

namespace {

struct ReplayVisitor {
  const SolveResult& result;
  const obs::Observation& observation;

  sim::SimResult operator()(const std::monostate&) const {
    throw std::invalid_argument(
        "replay_schedule: result carries no materialized schedule (solve with "
        "options.materialize = true)");
  }

  sim::SimResult operator()(const ChainSchedule& schedule) const {
    std::vector<NodeId> dests;
    dests.reserve(schedule.tasks.size());
    for (const ChainTask& task : schedule.tasks) {
      dests.push_back(static_cast<NodeId>(task.proc + 1));
    }
    return sim::simulate_dispatch(tree_from_chain(schedule.chain), dests, result.workload,
                                  observation);
  }

  sim::SimResult operator()(const ForkSchedule& schedule) const {
    std::vector<NodeId> dests;
    dests.reserve(schedule.tasks.size());
    for (const ForkTask& task : schedule.tasks) {
      dests.push_back(static_cast<NodeId>(task.slave + 1));
    }
    return sim::simulate_dispatch(tree_from_spider(Spider::from_fork(schedule.fork)), dests,
                                  result.workload, observation);
  }

  sim::SimResult operator()(const SpiderSchedule& schedule) const {
    // Embedding bases: leg `l`'s first node is 1 + total length of legs < l.
    std::vector<NodeId> leg_base;
    leg_base.reserve(schedule.spider.num_legs());
    NodeId base = 1;
    for (std::size_t l = 0; l < schedule.spider.num_legs(); ++l) {
      leg_base.push_back(base);
      base += static_cast<NodeId>(schedule.spider.leg(l).size());
    }
    std::vector<NodeId> dests;
    dests.reserve(schedule.tasks.size());
    for (const SpiderTask& task : schedule.tasks) {
      dests.push_back(leg_base[task.leg] + static_cast<NodeId>(task.proc));
    }
    return sim::simulate_dispatch(tree_from_spider(schedule.spider), dests, result.workload,
                                  observation);
  }

  sim::SimResult operator()(const TreeDispatch& dispatch) const {
    return sim::simulate_dispatch(dispatch.tree, dispatch.dests, result.workload, observation);
  }
};

}  // namespace

sim::SimResult replay_schedule(const SolveResult& result, const obs::Observation& observation) {
  return std::visit(ReplayVisitor{result, observation}, result.schedule);
}

}  // namespace mst::api
