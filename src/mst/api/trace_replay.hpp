#pragma once

#include "mst/api/registry.hpp"
#include "mst/obs/observation.hpp"
#include "mst/sim/platform_sim.hpp"

/// \file trace_replay.hpp
/// Operational replay of a solved schedule, for observability.
///
/// The analytic schedulers emit timing vectors, not event streams; to trace
/// a solve as a Gantt chart the schedule is replayed through the
/// store-and-forward simulator (`sim::simulate_dispatch`) on the platform's
/// tree embedding, with the observation attached.  For the optimal
/// constructions the replayed makespan reproduces the analytic one exactly
/// (the cross-validation invariant the simulator was built on), so the
/// trace *is* the schedule — the paper's Figure 2, machine-readable.

namespace mst::api {

/// Replays `result`'s materialized schedule and records it on
/// `observation`.  The destination sequence follows the schedule's
/// master-emission order under the canonical embeddings (chain processor
/// `i` -> node `i + 1`; fork slave `s` -> node `s + 1` via the spider form;
/// spider leg `l` depth `d` -> node `1 + sum(len of legs < l) + d`; tree
/// dispatch plans replay as-is).  Throws `std::invalid_argument` for a
/// `monostate` schedule — a makespan-only result has nothing to replay.
sim::SimResult replay_schedule(const SolveResult& result,
                               const obs::Observation& observation = {});

}  // namespace mst::api
