#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "mst/common/time.hpp"
#include "mst/platform/any.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"
#include "mst/workload/workload.hpp"

/// \file registry.hpp
/// Uniform dispatch over every scheduler in the library.
///
/// The core algorithms (`ChainScheduler`, `SpiderScheduler`, ...), the
/// baselines and the tree heuristics each grew their own entry point; the
/// CLI, the experiment drivers and the tests all hard-coded those calls.
/// This module puts one API in front of all of them:
///
///     const api::SolveResult r =
///         api::registry().solve(platform, "forward-greedy", n);
///
/// Algorithms are keyed by `(PlatformKind, name)` and enumerable, so a new
/// algorithm becomes visible to `mstctl --mode=list`, the experiment sweeps
/// and the registry test through a single `add()` call — no per-consumer
/// wiring.
///
/// Both of the paper's equivalent problem statements are exposed:
///
///  * makespan form — schedule a whole workload as fast as possible
///    (`solve`; the classic `n` identical tasks are `Workload::identical(n)`
///    and keep their historical entry points bit-for-bit), and
///  * decision form — schedule as many tasks as possible within a deadline
///    `T` (`solve_within` / `max_tasks`), drawing either from the unbounded
///    identical stream (default) or from a finite `SolveOptions::workload`.
///
/// Every entry supports the decision form: algorithms with a native decision
/// procedure (the chain backward construction, the fork/spider Moore–Hodgson
/// selections, the brute-force oracles) register it directly; every other
/// entry inherits an adapter that inverts its makespan form by exponential +
/// binary search, which is exact whenever the makespan is monotone in the
/// task count (true for all built-ins).  For finite workloads the adapter
/// probes canonical prefixes instead of counts.
///
/// Workload generality is opt-in per algorithm: `AlgorithmInfo::supports`
/// declares which features (non-uniform sizes, release dates) an entry can
/// handle, and `Registry::solve*` rejects unsupported workloads with a
/// clear `std::invalid_argument` instead of silently mis-scheduling.

namespace mst::obs {
class MetricsRegistry;
}  // namespace mst::obs

namespace mst::api {

// ---------------------------------------------------------------------------
// Platforms
//
// The topology-erased `Platform` variant and its kind enum live in the
// platform layer (`mst/platform/any.hpp`) so the simulator and analysis
// modules can use them without depending upward on the registry.  The
// re-exports below keep every historical `api::Platform` spelling working.

using mst::all_platform_kinds;
using mst::describe;
using mst::kind_of;
using mst::num_processors;
using mst::Platform;
using mst::platform_kind_from;
using mst::PlatformKind;
using mst::to_string;

// ---------------------------------------------------------------------------
// Results

/// Dispatch plan on a tree: the destination sequence in master-emission
/// order.  Tree heuristics do not produce link-level timing vectors, so the
/// plan is validated by operational replay (`sim::simulate_dispatch`).
struct TreeDispatch {
  Tree tree;
  std::vector<NodeId> dests;

  friend bool operator==(const TreeDispatch&, const TreeDispatch&) = default;
};

/// Whichever concrete schedule the algorithm produced.  `monostate` means
/// the algorithm reports a makespan without materializing placements.
using AnySchedule =
    std::variant<std::monostate, ChainSchedule, ForkSchedule, SpiderSchedule, TreeDispatch>;

struct SolveScratch;  // solve_scratch.hpp: borrowed cross-solve buffers

/// Per-call knobs, carried by every registry solve.  Defaults reproduce the
/// historical behaviour, so `solve(platform, n)` call sites never change.
struct SolveOptions {
  /// When false, the algorithm may skip building placement vectors and
  /// return a `monostate` schedule — the count/makespan-only fast path for
  /// sweeps.  `check_feasibility` flags such results as unchecked.
  bool materialize = true;
  /// Seed for randomized policies (currently only the tree `online-random`
  /// entry); deterministic per (platform, n, seed).
  std::uint64_t seed = 1;
  /// Upper bound on the task count explored by decision-form solves (both
  /// the native counting procedures and the makespan-inversion adapter).
  std::size_t cap = 1u << 20;
  /// Decision-form task pool.  Null (default) keeps the historical
  /// semantics — an unbounded stream of identical tasks, capped by `cap`.
  /// When set, `solve_within` selects from this finite workload instead
  /// (release dates and all), and the effective cap is
  /// `min(cap, workload->count())`.  Shared pointer so copying options per
  /// cell stays cheap in sweeps.
  std::shared_ptr<const Workload> workload;
  /// Optional, borrowed metrics sink.  When set, registry dispatch counts
  /// solves per algorithm and the decision-form adapter counts its
  /// makespan-inversion probes; every metric recorded through this pointer
  /// is deterministic-class (pure function of the inputs).  The caller owns
  /// the registry and keeps it alive for the call.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional, borrowed cross-solve scratch (`solve_scratch.hpp`).  When
  /// set, the built-in exact solvers materialize through warm pooled
  /// buffers instead of per-thread `thread_local` fallbacks, and repeated
  /// solves become allocation-free once the pools are warm — recycle each
  /// consumed result back via `SolveScratch::recycle` to close the loop.
  /// Results are bit-identical with and without scratch.  Not thread-safe:
  /// one scratch serves one thread at a time; the caller owns it and keeps
  /// it alive for the call.
  SolveScratch* scratch = nullptr;
};

/// Uniform outcome of `Scheduler::solve`: the schedule plus the metrics the
/// experiment tables need.
struct SolveResult {
  std::string algorithm;    ///< registry name that produced this
  PlatformKind kind = PlatformKind::kChain;
  std::size_t tasks = 0;    ///< tasks actually scheduled (== workload count)
  Time makespan = 0;
  Time lower_bound = 0;     ///< steady-state makespan lower bound (0: none)
  bool optimal = false;     ///< guaranteed optimal by construction
  AnySchedule schedule;
  /// The workload this result scheduled, in canonical order — schedule task
  /// `i` is workload task `i`.  Feasibility checking scales and gates by it.
  Workload workload;

  /// Tasks per unit time, `tasks / makespan`.  0 for empty results; +inf for
  /// the degenerate "nonempty schedule in zero time" case, so sweep tables
  /// show the anomaly instead of silently ranking the platform last.
  [[nodiscard]] double throughput() const;
};

/// Outcome of the decision form `solve_within(platform, T)`: the maximum
/// number of tasks completable by the deadline, plus the witness schedule
/// when materialization was requested.
struct DecisionResult {
  std::string algorithm;    ///< registry name that produced this
  PlatformKind kind = PlatformKind::kChain;
  Time deadline = 0;        ///< the queried window `T`
  std::size_t tasks = 0;    ///< tasks completing within the window
  Time makespan = 0;        ///< completion time achieved (`<= deadline`)
  /// The count is provably maximal.  Always false when the search stopped
  /// at `SolveOptions::cap` — a truncated count proves nothing.
  bool optimal = false;
  AnySchedule schedule;     ///< `monostate` unless options.materialize
  /// The tasks that made the count: the canonical `tasks`-prefix of the
  /// pool (`SolveOptions::workload`), or `Workload::identical(tasks)` for
  /// the identical stream.  Filled by the registry dispatch.
  Workload workload;

  /// Window utilization, `tasks / deadline` (0 for an empty window).
  [[nodiscard]] double throughput() const;
};

/// Validates the materialized schedule: Definition 1 conditions for chain /
/// fork / spider payloads, operational replay for tree dispatch plans
/// (replayed makespan must not exceed the reported one), and task-count
/// consistency.  A `monostate` payload yields an "unchecked" violation so
/// callers never mistake makespan-only results for verified ones, and a
/// nonempty result claiming a non-positive makespan is rejected outright.
FeasibilityReport check_feasibility(const SolveResult& result);

/// Decision-form variant: the same payload checks, plus `makespan <=
/// deadline`.  An empty result (`tasks == 0`) with no payload is valid — it
/// asserts that nothing fits in the window.
FeasibilityReport check_feasibility(const DecisionResult& result);

// ---------------------------------------------------------------------------
// Schedulers and the registry

/// Polymorphic scheduling algorithm: pure function of (platform, workload,
/// options).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Makespan form: schedules the whole non-empty workload.  Throws
  /// `std::invalid_argument` if the platform alternative does not match the
  /// algorithm's kind or the workload uses features the algorithm cannot
  /// handle.  Implementations must honor `options.materialize == false` by
  /// returning a `monostate` schedule.
  [[nodiscard]] virtual SolveResult solve(const Platform& platform, const Workload& workload,
                                          const SolveOptions& options) const = 0;

  /// The paper's classic form: `n` identical tasks.  Exactly
  /// `solve(platform, Workload::identical(n), options)` — one code path, so
  /// equivalence is structural, not tested-for.
  [[nodiscard]] SolveResult solve(const Platform& platform, std::size_t n,
                                  const SolveOptions& options = {}) const {
    return solve(platform, Workload::identical(n), options);
  }

  /// Decision form: the maximum number of tasks completable within
  /// `deadline` — at most `options.cap`, drawn from
  /// `options.workload` when set (its canonical prefixes) or from the
  /// unbounded identical stream — with a witness schedule when
  /// `options.materialize`.  The base implementation inverts the makespan
  /// form by exponential + binary search (exact for monotone makespans);
  /// algorithms with a native decision procedure override it.
  [[nodiscard]] virtual DecisionResult solve_within(const Platform& platform, Time deadline,
                                                    const SolveOptions& options) const;

  /// Count-only decision form (never materializes).
  [[nodiscard]] std::size_t max_tasks(const Platform& platform, Time deadline,
                                      const SolveOptions& options = {}) const;
};

/// Metadata shown by `mstctl --mode=list` and used by sweeps to filter.
struct AlgorithmInfo {
  PlatformKind kind = PlatformKind::kChain;
  std::string name;       ///< unique within the kind, e.g. "forward-greedy"
  std::string summary;    ///< one-line description
  bool optimal = false;   ///< produces provably optimal makespans
  bool exponential = false;  ///< worst-case exponential (brute force) —
                             ///< sweeps over large `n` should skip these
  /// Workload features this entry handles (identical-only by default).
  /// `Registry::solve*` rejects workloads outside this set up front, and
  /// the sweep expander pairs workload generators only with entries that
  /// support them.
  WorkloadFeatures supports{};
};

/// The algorithm table.  `registry()` returns the process-wide instance with
/// every built-in scheduler pre-registered; tests may also construct empty
/// registries of their own.
class Registry {
 public:
  /// An empty registry (no built-ins).
  Registry() = default;

  /// The process-wide registry, built-ins registered on first use.
  static Registry& instance();

  /// Makespan-form callable; receives the per-call options (materialize /
  /// seed) and must honor them.
  using SolveFn =
      std::function<SolveResult(const Platform&, const Workload&, const SolveOptions&)>;
  /// Native decision-form callable.
  using DecisionFn = std::function<DecisionResult(const Platform&, Time, const SolveOptions&)>;

  /// Registers an algorithm.  Throws `std::invalid_argument` if
  /// `(info.kind, info.name)` is already taken or the name is empty.
  void add(AlgorithmInfo info, std::shared_ptr<const Scheduler> scheduler);

  /// One-line registration from a callable — this is the extension point:
  ///   registry().add(info, [](const Platform& p, std::size_t n) {...});
  /// Entries registered this way are identical-workload algorithms (the
  /// callable only sees a count, so `info.supports` is forced to none), get
  /// the decision form through the makespan-inversion adapter, and
  /// `materialize == false` by payload stripping.
  void add(AlgorithmInfo info, std::function<SolveResult(const Platform&, std::size_t)> fn);

  /// Options-aware registration, with an optional native decision form
  /// (pass `nullptr` to keep the adapter).
  void add(AlgorithmInfo info, SolveFn solve_fn, DecisionFn within_fn);

  /// Lookup; null when absent.
  [[nodiscard]] const Scheduler* find(PlatformKind kind, std::string_view name) const;
  [[nodiscard]] const AlgorithmInfo* info(PlatformKind kind, std::string_view name) const;

  /// All registered algorithms, in registration order.
  [[nodiscard]] std::vector<AlgorithmInfo> list() const;
  /// Algorithms for one kind, in registration order.
  [[nodiscard]] std::vector<AlgorithmInfo> list(PlatformKind kind) const;
  /// Names for one kind, in registration order.
  [[nodiscard]] std::vector<std::string> names(PlatformKind kind) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// True iff the named algorithm exists for `kind` and declares support
  /// for every feature in `features`.  The sweep expander's pairing test.
  [[nodiscard]] bool supports(PlatformKind kind, std::string_view name,
                              const WorkloadFeatures& features) const;

  /// Dispatch: resolves `(kind_of(platform), algorithm)` and solves the
  /// workload.  Throws `std::invalid_argument` naming the known algorithms
  /// when the lookup fails, and a feature-naming message when the workload
  /// uses features the entry does not declare in `supports` — unsupported
  /// workloads are rejected up front, never silently mis-scheduled.
  [[nodiscard]] SolveResult solve(const Platform& platform, std::string_view algorithm,
                                  const Workload& workload,
                                  const SolveOptions& options = {}) const;

  /// The paper's classic form; exactly `solve(platform, algorithm,
  /// Workload::identical(n), options)`.
  [[nodiscard]] SolveResult solve(const Platform& platform, std::string_view algorithm,
                                  std::size_t n, const SolveOptions& options = {}) const;

  /// Decision-form dispatch: the maximum number of tasks completable within
  /// `deadline`, with a witness schedule when `options.materialize`.  The
  /// pool is `options.workload` when set (checked against the entry's
  /// `supports`), else the unbounded identical stream.
  [[nodiscard]] DecisionResult solve_within(const Platform& platform, std::string_view algorithm,
                                            Time deadline, const SolveOptions& options = {}) const;

  /// Count-only decision-form dispatch (never materializes).
  [[nodiscard]] std::size_t max_tasks(const Platform& platform, std::string_view algorithm,
                                      Time deadline, const SolveOptions& options = {}) const;

 private:
  struct Entry {
    AlgorithmInfo info;
    std::shared_ptr<const Scheduler> scheduler;
  };
  std::vector<Entry> entries_;
};

/// Shorthand for `Registry::instance()`.
Registry& registry();

/// The kind's conventional default in `registry()`: "optimal" where an
/// exact algorithm is registered, else the first registered entry (trees:
/// "spider-cover").  Throws `std::invalid_argument` when the kind has no
/// entries.  Shared by `mstctl` and the analysis curves.
std::string default_algorithm(PlatformKind kind);

}  // namespace mst::api
