#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "mst/common/time.hpp"
#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"
#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file registry.hpp
/// Uniform dispatch over every scheduler in the library.
///
/// The core algorithms (`ChainScheduler`, `SpiderScheduler`, ...), the
/// baselines and the tree heuristics each grew their own entry point; the
/// CLI, the experiment drivers and the tests all hard-coded those calls.
/// This module puts one API in front of all of them:
///
///     const api::SolveResult r =
///         api::registry().solve(platform, "forward-greedy", n);
///
/// Algorithms are keyed by `(PlatformKind, name)` and enumerable, so a new
/// algorithm becomes visible to `mstctl --mode=list`, the experiment sweeps
/// and the registry test through a single `add()` call — no per-consumer
/// wiring.

namespace mst::api {

// ---------------------------------------------------------------------------
// Platforms

/// Topology families the library schedules on.
enum class PlatformKind { kChain, kFork, kSpider, kTree };

std::string to_string(PlatformKind kind);

/// Inverse of `to_string`; empty optional on unknown names.
std::optional<PlatformKind> platform_kind_from(std::string_view name);

/// All kinds, for sweep loops.
const std::vector<PlatformKind>& all_platform_kinds();

/// A platform of any topology.  Algorithms receive this and throw
/// `std::invalid_argument` when handed the wrong alternative.
using Platform = std::variant<Chain, Fork, Spider, Tree>;

PlatformKind kind_of(const Platform& platform);
std::string describe(const Platform& platform);

/// Total number of slave processors, whatever the topology.
std::size_t num_processors(const Platform& platform);

// ---------------------------------------------------------------------------
// Results

/// Dispatch plan on a tree: the destination sequence in master-emission
/// order.  Tree heuristics do not produce link-level timing vectors, so the
/// plan is validated by operational replay (`sim::simulate_dispatch`).
struct TreeDispatch {
  Tree tree;
  std::vector<NodeId> dests;
};

/// Whichever concrete schedule the algorithm produced.  `monostate` means
/// the algorithm reports a makespan without materializing placements.
using AnySchedule =
    std::variant<std::monostate, ChainSchedule, ForkSchedule, SpiderSchedule, TreeDispatch>;

/// Uniform outcome of `Scheduler::solve`: the schedule plus the metrics the
/// experiment tables need.
struct SolveResult {
  std::string algorithm;    ///< registry name that produced this
  PlatformKind kind = PlatformKind::kChain;
  std::size_t tasks = 0;    ///< tasks actually scheduled (== n requested)
  Time makespan = 0;
  Time lower_bound = 0;     ///< steady-state makespan lower bound (0: none)
  bool optimal = false;     ///< guaranteed optimal by construction
  AnySchedule schedule;

  /// Tasks per unit time, `tasks / makespan` (0 for empty schedules).
  [[nodiscard]] double throughput() const;
};

/// Validates the materialized schedule: Definition 1 conditions for chain /
/// fork / spider payloads, operational replay for tree dispatch plans
/// (replayed makespan must not exceed the reported one), and task-count
/// consistency.  A `monostate` payload yields an "unchecked" violation so
/// callers never mistake makespan-only results for verified ones.
FeasibilityReport check_feasibility(const SolveResult& result);

// ---------------------------------------------------------------------------
// Schedulers and the registry

/// Polymorphic scheduling algorithm: pure function of (platform, n).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Schedules exactly `n >= 1` tasks.  Throws `std::invalid_argument` if
  /// the platform alternative does not match the algorithm's kind.
  [[nodiscard]] virtual SolveResult solve(const Platform& platform, std::size_t n) const = 0;
};

/// Metadata shown by `mstctl --mode=list` and used by sweeps to filter.
struct AlgorithmInfo {
  PlatformKind kind = PlatformKind::kChain;
  std::string name;       ///< unique within the kind, e.g. "forward-greedy"
  std::string summary;    ///< one-line description
  bool optimal = false;   ///< produces provably optimal makespans
  bool exponential = false;  ///< worst-case exponential (brute force) —
                             ///< sweeps over large `n` should skip these
};

/// The algorithm table.  `registry()` returns the process-wide instance with
/// every built-in scheduler pre-registered; tests may also construct empty
/// registries of their own.
class Registry {
 public:
  /// An empty registry (no built-ins).
  Registry() = default;

  /// The process-wide registry, built-ins registered on first use.
  static Registry& instance();

  /// Registers an algorithm.  Throws `std::invalid_argument` if
  /// `(info.kind, info.name)` is already taken or the name is empty.
  void add(AlgorithmInfo info, std::shared_ptr<const Scheduler> scheduler);

  /// One-line registration from a callable — this is the extension point:
  ///   registry().add(info, [](const Platform& p, std::size_t n) {...});
  void add(AlgorithmInfo info, std::function<SolveResult(const Platform&, std::size_t)> fn);

  /// Lookup; null when absent.
  [[nodiscard]] const Scheduler* find(PlatformKind kind, std::string_view name) const;
  [[nodiscard]] const AlgorithmInfo* info(PlatformKind kind, std::string_view name) const;

  /// All registered algorithms, in registration order.
  [[nodiscard]] std::vector<AlgorithmInfo> list() const;
  /// Algorithms for one kind, in registration order.
  [[nodiscard]] std::vector<AlgorithmInfo> list(PlatformKind kind) const;
  /// Names for one kind, in registration order.
  [[nodiscard]] std::vector<std::string> names(PlatformKind kind) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Dispatch: resolves `(kind_of(platform), algorithm)` and solves.  Throws
  /// `std::invalid_argument` naming the known algorithms when the lookup
  /// fails.
  [[nodiscard]] SolveResult solve(const Platform& platform, std::string_view algorithm,
                                  std::size_t n) const;

 private:
  struct Entry {
    AlgorithmInfo info;
    std::shared_ptr<const Scheduler> scheduler;
  };
  std::vector<Entry> entries_;
};

/// Shorthand for `Registry::instance()`.
Registry& registry();

}  // namespace mst::api
