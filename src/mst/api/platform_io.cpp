#include "mst/api/platform_io.hpp"

#include <stdexcept>
#include <variant>

#include "mst/platform/io.hpp"

namespace mst::api {

Platform parse_any_platform(const std::string& text) {
  const std::string kind = peek_platform_kind(text);
  if (kind == "chain") return parse_chain(text);
  if (kind == "fork") return parse_fork(text);
  if (kind == "spider") return parse_spider(text);
  if (kind == "tree") return parse_tree(text);
  throw std::invalid_argument("unknown platform kind '" + kind +
                              "' (expected chain|fork|spider|tree)");
}

std::string write_platform(const Platform& platform) {
  if (const auto* chain = std::get_if<Chain>(&platform)) return write_chain(*chain);
  if (const auto* fork = std::get_if<Fork>(&platform)) return write_fork(*fork);
  if (const auto* spider = std::get_if<Spider>(&platform)) return write_spider(*spider);
  return write_tree(std::get<Tree>(platform));
}

}  // namespace mst::api
