#pragma once

#include <utility>
#include <variant>

#include "mst/api/registry.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/heuristics/tree_schedule.hpp"

/// \file solve_scratch.hpp
/// Cross-solve scratch for the registry's built-in exact solvers.
///
/// A `SolveScratch` bundles every reusable buffer a materializing solve
/// needs — the counting scratch of each core scheduler, the tree-cover
/// pipeline's arena and working sets, and one pooled schedule per payload
/// kind.  Thread it through `SolveOptions::scratch` and hand consumed
/// results back via `recycle`: the schedule payload's buffers move back
/// into the pool, so the next solve of similar shape rebuilds in place and
/// performs zero heap allocations once warm (pinned by
/// tests/test_zero_alloc.cpp).  One scratch per thread; sweeps keep one per
/// worker and reuse it across a whole batch of same-platform cells.

namespace mst::api {

struct SolveScratch {
  // Core counting + materialization scratch, one per exactly-solved kind.
  ChainCountScratch chain;
  ForkCountScratch fork;
  SpiderSolveScratch spider;
  TreeCoverScratch tree_cover;
  OnePortScratch bound;  ///< spider/fork lower-bound one-port fill

  // Pooled schedule payloads.  A solve moves the pool into its result; the
  // caller moves it back with `recycle` once the result is consumed.
  ChainSchedule chain_pool;
  ForkSchedule fork_pool;
  SpiderSchedule spider_pool;
  TreeDispatch tree_pool;

  /// Reclaims the buffers of a consumed schedule payload.  Accepts any
  /// alternative (including `monostate`), so callers can recycle every
  /// result unconditionally.
  void recycle_schedule(AnySchedule&& schedule) {
    if (auto* chain_schedule = std::get_if<ChainSchedule>(&schedule)) {
      chain_pool = std::move(*chain_schedule);
    } else if (auto* fork_schedule = std::get_if<ForkSchedule>(&schedule)) {
      fork_pool = std::move(*fork_schedule);
    } else if (auto* spider_schedule = std::get_if<SpiderSchedule>(&schedule)) {
      spider_pool = std::move(*spider_schedule);
    } else if (auto* dispatch = std::get_if<TreeDispatch>(&schedule)) {
      tree_pool = std::move(*dispatch);
    }
  }

  void recycle(SolveResult&& result) { recycle_schedule(std::move(result.schedule)); }
  void recycle(DecisionResult&& result) { recycle_schedule(std::move(result.schedule)); }
};

}  // namespace mst::api
