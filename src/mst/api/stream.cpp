#include "mst/api/stream.hpp"

#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "mst/obs/metrics.hpp"

namespace mst::api {

double StreamOutcome::throughput() const {
  if (tasks == 0) return 0.0;
  if (makespan <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(tasks) / static_cast<double>(makespan);
}

void attach_offline_reference(StreamOutcome& outcome, const Platform& platform,
                              const Workload& workload, const Registry& registry,
                              obs::MetricsRegistry* metrics) {
  // Exact offline reference: the kind's "optimal" entry, when it is
  // registered, provably optimal, and able to schedule this workload.
  //
  // Provably is the operative word.  The chain release-date construction is
  // exact (minimal-horizon anchoring, Lemma 4 suffix optimality), but the
  // fork/spider positional-release selection commits to one EDD emission
  // order, which the exhaustive release-gated ASAP oracle beats on some
  // instances — a streamed execution can then undercut the claimed
  // "optimum" and regret would dip below 1.  Until an exact released
  // selection exists (ROADMAP), released fork/spider runs report the
  // sentinel instead of a regret against a beatable reference.
  if (workload.empty()) return;
  const PlatformKind kind = kind_of(platform);
  const bool reference_is_exact =
      kind == PlatformKind::kChain || !workload.has_release_dates();
  if (const AlgorithmInfo* offline = registry.info(kind, "optimal");
      reference_is_exact && offline != nullptr && offline->optimal &&
      workload.features().subset_of(offline->supports)) {
    SolveOptions fast;
    fast.materialize = false;
    fast.metrics = metrics;
    outcome.offline_makespan = registry.solve(platform, "optimal", workload, fast).makespan;
  }
  // The regret sentinel stays negative unless both makespans are genuinely
  // positive — a degenerate zero-makespan run must never put inf/nan into a
  // report column.
  if (outcome.offline_makespan > 0 && outcome.makespan > 0) {
    outcome.regret =
        static_cast<double>(outcome.makespan) / static_cast<double>(outcome.offline_makespan);
  }
}

StreamOutcome run_stream(const Platform& platform, std::string_view algorithm,
                         const Workload& workload, std::uint64_t seed,
                         const Registry& registry, bool attach_reference,
                         const obs::Observation& observation) {
  const PlatformKind kind = kind_of(platform);
  const AlgorithmInfo* info = registry.info(kind, algorithm);
  if (info == nullptr) {
    std::ostringstream os;
    os << "no algorithm '" << algorithm << "' for " << to_string(kind) << " platforms";
    throw std::invalid_argument(os.str());
  }
  // The up-front streaming gate: requested features are the workload's plus
  // the streaming capability itself.
  WorkloadFeatures requested = workload.features();
  requested.streaming = true;
  if (!requested.subset_of(info->supports)) {
    std::ostringstream os;
    os << "algorithm '" << algorithm << "' cannot run in streaming mode with "
       << to_string(requested) << " (supported: " << to_string(info->supports)
       << "); see the capability matrix in mstctl --mode=list";
    throw std::invalid_argument(os.str());
  }

  const Tree tree = sim::stream_substrate(platform);
  const std::unique_ptr<sim::StreamPolicy> policy =
      sim::make_named_policy(platform, tree, algorithm, seed);

  if (observation.metrics != nullptr) {
    observation.metrics->counter("api.stream.runs").increment();
  }

  StreamOutcome out;
  out.algorithm = std::string(algorithm);
  out.kind = kind;
  if (!workload.empty()) {
    sim::StreamResult run = sim::simulate_stream(tree, workload, *policy, observation);
    out.tasks = run.sim.num_tasks();
    out.makespan = run.sim.makespan;
    out.metrics = std::move(run.metrics);
    out.sim = std::move(run.sim);
  }

  if (attach_reference) {
    attach_offline_reference(out, platform, workload, registry, observation.metrics);
  }
  return out;
}

}  // namespace mst::api
