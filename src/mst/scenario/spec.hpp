#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/common/time.hpp"
#include "mst/platform/generator.hpp"
#include "mst/workload/arrival.hpp"

/// \file spec.hpp
/// Declarative sweep specifications — the input language of the scenario
/// engine.
///
/// The paper's results are parameter sweeps: curves over families of chain,
/// fork, spider and tree platforms.  A `SweepSpec` states such a family
/// once — which platform kinds, which heterogeneity classes, which sizes,
/// how many seeded instances, which task counts / deadlines, which
/// algorithms — and the engine expands it into a deterministic grid of
/// cells (`generators.hpp`), executes the grid on a thread pool
/// (`runner.hpp`) and renders long-form tables (`report.hpp`).  A new
/// workload is one generator plus one spec; `mstctl --mode=sweep` runs spec
/// files without recompiling.
///
/// Text format (line oriented, `#` starts a comment, `end` closes the
/// spec):
///
///     sweep <name>
///     seed <u64>
///     kinds chain fork spider tree
///     classes uniform comm-bound
///     sizes 2 4 8
///     instances 3
///     times 1 10            # per-processor c/w draw range [lo, hi]
///     leg-len 1 3           # spider leg length range
///     depth-bias 0.5        # tree shape: 0 = bushy/random, 1 = chain
///     tasks 8 32            # makespan-form cells (solve n tasks)
///     deadlines 40 80       # decision-form cells (max tasks within T)
///     stream                # also expand streaming (no-lookahead) cells
///     tasks.sizes uniform 1 4       # workload axis: per-task size family
///     tasks.release periodic 3      # workload axis: release-date family
///     tasks.arrival poisson 5      # workload axis: stochastic arrivals
///     algos optimal forward-greedy   # omit for every non-exponential entry
///     platform              # optional explicit platform(s), text format of
///     chain 2               # mst/platform/io.hpp, terminated by `end`
///     2 3
///     3 5
///     end
///     end
///
/// The three `tasks.*` keys each append one generator to the workload axis
/// (families: `tasks.sizes unit | fixed K | uniform LO HI`, `tasks.release
/// periodic GAP | jitter LO HI`, `tasks.arrival poisson MEAN | bursts SIZE
/// GAP`).  An empty axis means the paper's identical unit tasks; listing
/// `tasks.sizes unit` alongside other entries keeps the identical point in
/// the grid explicitly.  Workload cells draw their task count from `tasks`
/// — including decision-form cells, whose pool is then finite.
///
/// `parse_spec(write_spec(s)) == s` holds for every valid spec.

namespace mst::scenario {

/// A declarative sweep: the cross product of the generator grid (and any
/// explicit platforms) with the work axes and the algorithm list.
struct SweepSpec {
  std::string name = "sweep";
  std::uint64_t seed = 1;

  /// Generator grid: instances are generated per (kind, class, size).
  std::vector<api::PlatformKind> kinds;
  std::vector<PlatformClass> classes = {PlatformClass::kUniform};
  std::vector<std::size_t> sizes;  ///< processors / slaves / legs per kind
  std::size_t instances = 1;       ///< seeded instances per grid point

  /// Generator knobs (see `GeneratorParams` and the tree/spider shapes).
  Time lo = 1;
  Time hi = 10;
  std::size_t min_leg_len = 1;  ///< spider legs: length range
  std::size_t max_leg_len = 3;
  double depth_bias = 0.0;      ///< trees: 0 = random parent, 1 = chain

  /// Explicit platforms swept in addition to (or instead of) the grid.
  std::vector<api::Platform> platforms;

  /// Work axes: each platform × algorithm runs every entry of both.
  std::vector<std::size_t> tasks;  ///< makespan-form cells
  std::vector<Time> deadlines;     ///< decision-form cells

  /// `stream` key: additionally expand streaming-mode cells — the
  /// no-lookahead driver (`sim/streaming.hpp`) over every `tasks` entry,
  /// paired only with algorithms whose `supports.streaming` flag is set.
  bool stream = false;

  /// Workload axis (`tasks.sizes` / `tasks.release` / `tasks.arrival`
  /// keys).  Empty = identical unit tasks only.  Non-identical generators
  /// pair only with algorithms that support their features, and their
  /// decision-form cells cross with `tasks` (the pool size).
  std::vector<WorkloadGen> workloads;

  /// Algorithm names, matched per platform kind.  Empty = every registered
  /// non-exponential algorithm of the kind.
  std::vector<std::string> algorithms;

  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

/// Parses the text format above.  Throws `std::invalid_argument` with a
/// line number on malformed input, unknown keys or unknown enum names.
SweepSpec parse_spec(const std::string& text);

/// Canonical rendering; `parse_spec` round-trips it exactly.
std::string write_spec(const SweepSpec& spec);

}  // namespace mst::scenario
