#pragma once

#include <string>
#include <vector>

#include "mst/obs/trace.hpp"
#include "mst/scenario/runner.hpp"

/// \file report.hpp
/// Long-form sweep tables: one row per cell, machine-readable.
///
/// Both writers are deterministic functions of the outcomes by default —
/// `wall_ms` (the only value that varies between runs) is emitted only when
/// `ReportOptions::timing` asks for it, so a fixed-seed sweep produces
/// byte-identical CSV/JSON at any thread count.  Doubles render at
/// `max_digits10` (`%.17g`) in both writers — a bit-exact round trip, so
/// the CSV and the JSON of the same sweep can never disagree on a cell —
/// and the streaming metric columns use an explicit empty-cell sentinel
/// wherever a value is undefined: `inf`/`nan` never appear there.

namespace mst::scenario {

struct ReportOptions {
  /// Include the `wall_ms` column.  Off by default: timing is the one
  /// non-deterministic column, and determinism is the default contract.
  bool timing = false;
};

/// Long-form CSV with header:
///   spec,kind,class,size,instance,platform_seed,algorithm,mode,n,deadline,
///   workload,cell_seed,tasks,makespan,lower_bound,optimal,throughput,
///   latency,backlog,regret[,wall_ms],error
/// `deadline` is empty on makespan-form and stream rows; `n` is empty on
/// decision-form rows of the identical stream (on workload-axis decision
/// rows it is the finite pool size); `workload` is the generator label
/// ("unit" for the paper's identical tasks); `latency`/`backlog`/`regret`
/// are filled on streaming rows only (regret stays empty without an exact
/// offline reference); `error` is CSV-quoted when needed.
std::string to_csv(const std::vector<CellOutcome>& outcomes, const ReportOptions& options = {});

/// JSON array, one object per row (same fields, inapplicable ones omitted).
std::string to_json(const std::vector<CellOutcome>& outcomes,
                    const ReportOptions& options = {});

/// Sweep overview trace: one track per cell (labelled
/// `cell NNN <kind>/<algorithm>`), carrying a `[0, makespan]` span named by
/// the cell's mode and a failure instant for error rows.  All sim-clock
/// spans over index-ordered outcomes — deterministic at any thread count,
/// like the CSV/JSON writers.
void trace_outcomes(const std::vector<CellOutcome>& outcomes, obs::TraceSink& sink);

}  // namespace mst::scenario
