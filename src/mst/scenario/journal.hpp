#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mst/common/mutex.hpp"
#include "mst/common/thread_annotations.hpp"
#include "mst/scenario/runner.hpp"

/// \file journal.hpp
/// Crash-safe per-shard cell journals for distributed, resumable sweeps.
///
/// A million-cell sweep that dies at cell 900k should not start over from
/// zero.  Cells are self-contained and byte-identical at any thread count,
/// so the unit of durability is one completed cell: the runner appends one
/// checksummed, fsync'd record per finished cell to its shard's journal,
/// and a restarted run replays the journal, skips every completed cell and
/// recomputes nothing.  A crash can tear at most the final record (appends
/// are sequential and each one is fsync'd before the next begins); replay
/// detects the torn tail by frame length / CRC and truncates the file back
/// to the last valid record.
///
/// File format (text-framed, binary-safe payloads):
///
///     mstjournal 1 <shard> <shards> <cells> <fingerprint>\n
///     rec <payload-bytes> <crc32>\n
///     <payload>\n
///     rec ...
///
/// The header binds the file to one run: shard position, grid size, and a
/// fingerprint folded over every cell's key fields (seeds, algorithm, mode,
/// work point), so a journal can never silently resume a *different* sweep.
/// The payload serializes the cell's key plus the full `CellOutcome` —
/// including the per-cell metric snapshot — with `%.17g` doubles, so a
/// decoded record reproduces the reporters' bytes exactly.
///
/// Reassembly: `merge_journals` reads every shard file of a directory,
/// checks the shards agree (same shard count, cell count, fingerprint) and
/// jointly cover every cell index exactly once, and returns the outcomes in
/// canonical grid order — `to_csv`/`to_json` over the merged vector is
/// byte-identical to the single-process unsharded run.

namespace mst::scenario {

/// Deterministic fingerprint of an expanded grid: a stable fold over every
/// cell's key fields (index, seeds, labels, mode, work point).  Every shard
/// of the same grid computes the same value; any change to the spec, seed
/// or registry resolution changes it, so stale journals are rejected
/// loudly instead of merged silently.
std::uint64_t grid_fingerprint(const std::vector<Cell>& cells);

/// `DIR/shard-<i>-of-<N>.mstj`.
std::string journal_path(const std::string& dir, std::size_t shard_index,
                         std::size_t shard_count);

/// One record's payload text.  Exposed (with `decode_record`) so tests can
/// pin the round trip; the framing (length + CRC32 + fsync) is the
/// journal's own business.
std::string encode_record(const CellOutcome& outcome);

/// Inverse of `encode_record`.  The decoded `Cell` carries key fields only
/// — `platform`/`workload` stay null (reporters never dereference them;
/// the resuming runner restores the live pointers after validating the
/// key).  Throws `std::invalid_argument` on malformed payloads.
CellOutcome decode_record(const std::string& payload);

/// What replaying an existing journal file found.
struct JournalReplay {
  std::vector<CellOutcome> outcomes;  ///< valid records, file order
  bool torn = false;  ///< a torn/corrupt tail was found (and truncated)
};

/// An open, append-only shard journal.
///
/// Construction creates `dir` (and the file) as needed, validates the
/// header against this run's (shard, grid) identity, replays every valid
/// record and truncates a torn tail in place, leaving the file ready for
/// appends.  Throws `std::runtime_error` when the file belongs to a
/// different run (header mismatch) or cannot be opened.
///
/// `append` is thread-safe (the runner's workers call it directly) and
/// durable: the framed record is written and fsync'd before it returns, so
/// a cell reported complete stays complete across a SIGKILL.
class Journal {
 public:
  Journal(const std::string& dir, std::size_t shard_index, std::size_t shard_count,
          std::size_t total_cells, std::uint64_t fingerprint);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  [[nodiscard]] const JournalReplay& replayed() const { return replay_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void append(const CellOutcome& outcome) MST_EXCLUDES(mutex_);

 private:
  std::string path_;
  JournalReplay replay_;
  Mutex mutex_;
  int fd_ MST_GUARDED_BY(mutex_) = -1;
};

/// Reads every `shard-*-of-*.mstj` under `dir`, validates cross-shard
/// consistency (same shard count, cell count and grid fingerprint; shards
/// 0..N-1 all present; indices cover the grid exactly once) and returns
/// the outcomes ordered by canonical cell index.  Read-only: a torn tail
/// is skipped, not truncated — but the cell it would have carried is then
/// missing, which fails the coverage check with a "resume shard k" hint.
/// Throws `std::runtime_error` on any inconsistency.
std::vector<CellOutcome> merge_journals(const std::string& dir);

}  // namespace mst::scenario
