#include "mst/scenario/runner.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>

#include "mst/api/solve_scratch.hpp"
#include "mst/api/stream.hpp"
#include "mst/common/mutex.hpp"
#include "mst/common/thread_annotations.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/scenario/journal.hpp"

namespace mst::scenario {

namespace {

/// The pool's one cross-thread aggregation point.  Result slots are
/// disjoint by construction (slot `i` belongs to cell `i`), so the only
/// genuinely shared state is this progress tally — guarded by an annotated
/// mutex so the Clang `-Wthread-safety` job proves every access holds it.
class ProgressSink {
 public:
  ProgressSink(std::function<void(std::size_t, std::size_t, bool)> callback, std::size_t total,
               obs::MetricsRegistry* metrics)
      : callback_(std::move(callback)), total_(total) {
    if (metrics != nullptr) {
      completed_counter_ = metrics->counter("scenario.cells.completed");
      failed_counter_ = metrics->counter("scenario.cells.failed");
      total_gauge_ = metrics->gauge("scenario.cells.total");
    }
  }

  /// Announces the run before any cell executes: records the shard's cell
  /// count on the metrics sink, credits the journal-replayed cells (they
  /// count as completed — the sweep's totals must match the uninterrupted
  /// run's) and fires the callback's leading `(replayed, total, false)`
  /// report, so consumers learn the total up front and progress never
  /// appears to jump backwards after a resume.
  void start(std::size_t replayed, std::size_t replayed_failed) MST_EXCLUDES(mutex_) {
    total_gauge_.record(static_cast<Time>(total_));
    completed_counter_.add(static_cast<std::int64_t>(replayed));
    failed_counter_.add(static_cast<std::int64_t>(replayed_failed));
    if (callback_ == nullptr) return;
    LockGuard lock(mutex_);
    done_ = replayed;
    failed_ = replayed_failed;
    callback_(replayed, total_, false);
  }

  /// Records one finished cell — counters always, then the user callback
  /// (if any) while still holding the lock, so callbacks never interleave.
  void report(bool failed) MST_EXCLUDES(mutex_) {
    completed_counter_.increment();
    if (failed) failed_counter_.increment();
    if (callback_ == nullptr) return;
    LockGuard lock(mutex_);
    ++done_;
    if (failed) ++failed_;
    callback_(done_, total_, failed);
  }

 private:
  const std::function<void(std::size_t, std::size_t, bool)> callback_;
  const std::size_t total_;
  obs::Counter completed_counter_;
  obs::Counter failed_counter_;
  obs::Gauge total_gauge_;
  Mutex mutex_;
  std::size_t done_ MST_GUARDED_BY(mutex_) = 0;
  std::size_t failed_ MST_GUARDED_BY(mutex_) = 0;
};

double ms_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// The one timing loop all three cell modes share: runs `solve` `reps`
/// times, keeps the smallest wall time in `wall_ms`, and returns the last
/// result.  When the result type is recyclable (solve/decision results) and
/// a scratch is present, each overwritten rep hands its payload back first,
/// so the rep loop itself runs on warm pools.
template <typename Solve>
auto best_of_reps(int reps, api::SolveScratch* scratch, double& wall_ms, Solve&& solve) {
  using Result = std::invoke_result_t<Solve&>;
  Result result;
  for (int rep = 0; rep < reps; ++rep) {
    if constexpr (requires(api::SolveScratch& s) { s.recycle(std::move(result)); }) {
      if (rep > 0 && scratch != nullptr) scratch->recycle(std::move(result));
    }
    const auto start = std::chrono::steady_clock::now();
    result = solve();
    const double ms = ms_since(start);
    if (rep == 0 || ms < wall_ms) wall_ms = ms;
  }
  return result;
}

void run_one(const Cell& cell, const RunOptions& options, const api::Registry& registry,
             api::SolveScratch* scratch, CellOutcome& out) {
  api::SolveOptions solve_options;
  solve_options.materialize = options.materialize;
  solve_options.seed = cell.seed;
  solve_options.cap = options.cap;
  solve_options.scratch = scratch;
  // Decision-form cells of the workload axis select from a finite pool.
  if (cell.mode == CellMode::kWithin) solve_options.workload = cell.workload;

  // Cell-local metrics: each cell records into its own registry (giving the
  // per-cell snapshot), then merges into the sweep-wide one on exit — a
  // commutative fold, so the aggregate is thread-count independent.
  std::optional<obs::MetricsRegistry> cell_metrics;
  if (options.metrics != nullptr) {
    cell_metrics.emplace();
    solve_options.metrics = &*cell_metrics;
  }
  const auto flush_metrics = [&] {
    if (!cell_metrics.has_value()) return;
    // Host-measured, hence wall-time class: excluded from default
    // snapshots, mirroring the reporters' --timing convention.
    cell_metrics->counter("scenario.cell.wall_us", obs::DeterminismClass::kWallTime)
        .add(static_cast<Time>(out.wall_ms * 1000.0));
    out.metrics = cell_metrics->snapshot(/*include_wall_time=*/true);
    cell_metrics->merge_into(*options.metrics);
  };

  try {
    const int reps = options.reps < 1 ? 1 : options.reps;
    if (cell.mode == CellMode::kStream) {
      // Streaming cells run the no-lookahead driver; identical-axis cells
      // stream `n` tasks all released at 0 (the equivalence baseline).
      const Workload workload =
          cell.workload != nullptr ? *cell.workload : Workload::identical(cell.n);
      // Reference-free inside the timed loop: wall_ms measures the
      // streamed run alone, not the offline regret baseline.
      api::StreamOutcome result = best_of_reps(reps, scratch, out.wall_ms, [&] {
        return api::run_stream(*cell.platform, cell.algorithm, workload, cell.seed, registry,
                               /*attach_reference=*/false,
                               obs::Observation{solve_options.metrics, nullptr});
      });
      api::attach_offline_reference(result, *cell.platform, workload, registry,
                                    solve_options.metrics);
      out.tasks = result.tasks;
      out.makespan = result.makespan;
      out.throughput = result.throughput();
      out.mean_latency = result.metrics.mean_latency;
      out.peak_backlog = result.metrics.peak_backlog;
      out.regret = result.regret;
      flush_metrics();
      return;
    }
    if (cell.mode == CellMode::kSolve) {
      api::SolveResult result = best_of_reps(reps, scratch, out.wall_ms, [&] {
        return cell.workload != nullptr
                   ? registry.solve(*cell.platform, cell.algorithm, *cell.workload,
                                    solve_options)
                   : registry.solve(*cell.platform, cell.algorithm, cell.n, solve_options);
      });
      out.tasks = result.tasks;
      out.makespan = result.makespan;
      out.lower_bound = result.lower_bound;
      out.optimal = result.optimal;
      out.throughput = result.throughput();
      if (options.check && options.materialize) {
        const FeasibilityReport report = api::check_feasibility(result);
        if (!report.ok()) out.error = report.summary();
      }
      if (scratch != nullptr) scratch->recycle(std::move(result));
    } else {
      api::DecisionResult result = best_of_reps(reps, scratch, out.wall_ms, [&] {
        return registry.solve_within(*cell.platform, cell.algorithm, cell.deadline,
                                     solve_options);
      });
      out.tasks = result.tasks;
      out.makespan = result.makespan;
      out.optimal = result.optimal;
      out.throughput = result.throughput();
      if (options.check && options.materialize) {
        const FeasibilityReport report = api::check_feasibility(result);
        if (!report.ok()) out.error = report.summary();
      }
      if (scratch != nullptr) scratch->recycle(std::move(result));
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  flush_metrics();
}

/// Journal records identify cells by key fields only; before trusting a
/// record, the resuming runner checks the live cell agrees on every one of
/// them.  The grid fingerprint in the journal header already makes a
/// mismatch nearly impossible — this is the per-record belt to that
/// suspender.
bool same_cell_key(const Cell& a, const Cell& b) {
  return a.index == b.index && a.spec_name == b.spec_name && a.kind == b.kind &&
         a.cls == b.cls && a.size == b.size && a.instance == b.instance &&
         a.platform_seed == b.platform_seed && a.algorithm == b.algorithm &&
         a.mode == b.mode && a.n == b.n && a.deadline == b.deadline && a.seed == b.seed &&
         a.workload_label == b.workload_label && a.workload_seed == b.workload_seed;
}

// The resume skip test runs once per owned cell while the batches are
// built: one byte load.  Completed cells never reach a worker — the solve
// hot path itself re-checks nothing — and the region pins the lookup
// allocation-free.
// mstlint: zero-alloc
bool journal_done(const std::vector<unsigned char>& done, std::size_t slot) {
  return done[slot] != 0;
}
// mstlint: zero-alloc-end

}  // namespace

std::vector<CellOutcome> run_cells(const std::vector<Cell>& cells, const RunOptions& options,
                                   const api::Registry& registry) {
  if (options.shard_count == 0 || options.shard_index >= options.shard_count) {
    throw std::invalid_argument("run_cells: shard " + std::to_string(options.shard_index) +
                                "/" + std::to_string(options.shard_count) +
                                " out of range (need 0 <= index < count)");
  }

  // Deterministic partition by canonical cell index, applied before any
  // batching: shard i of N owns exactly the indices congruent to i mod N,
  // so per-cell seeds are untouched, same-platform batching is unchanged
  // within the shard, and the N shards' union is provably the full grid.
  std::vector<std::size_t> owned;
  owned.reserve(cells.size() / options.shard_count + 1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].index % options.shard_count == options.shard_index) owned.push_back(i);
  }

  std::vector<CellOutcome> results(owned.size());
  for (std::size_t j = 0; j < owned.size(); ++j) results[j].cell = cells[owned[j]];

  // Crash-safe resume: replay this shard's journal (if any), mark every
  // valid record's cell as done, and re-absorb its metric snapshot so the
  // sweep aggregate matches the uninterrupted run's.
  std::vector<unsigned char> done(owned.size(), 0);
  std::optional<Journal> journal;
  std::size_t replayed = 0;
  std::size_t replayed_failed = 0;
  obs::Counter appended_counter;
  obs::Counter skipped_counter;
  if (!options.journal_dir.empty()) {
    journal.emplace(options.journal_dir, options.shard_index, options.shard_count,
                    cells.size(), grid_fingerprint(cells));
    if (options.metrics != nullptr) {
      appended_counter = options.metrics->counter("scenario.journal.appended");
      skipped_counter = options.metrics->counter("scenario.journal.skipped");
      options.metrics->counter("scenario.journal.replayed")
          .add(static_cast<std::int64_t>(journal->replayed().outcomes.size()));
      options.metrics->counter("scenario.journal.torn")
          .add(journal->replayed().torn ? 1 : 0);
    }
    std::map<std::size_t, std::size_t> slot_of;  // canonical index -> result slot
    for (std::size_t j = 0; j < owned.size(); ++j) slot_of[cells[owned[j]].index] = j;
    for (const CellOutcome& record : journal->replayed().outcomes) {
      const auto found = slot_of.find(record.cell.index);
      if (found == slot_of.end() ||
          !same_cell_key(record.cell, cells[owned[found->second]])) {
        throw std::runtime_error(journal->path() + ": journal record for cell " +
                                 std::to_string(record.cell.index) +
                                 " does not match this sweep's grid; refusing to resume");
      }
      const std::size_t j = found->second;
      if (done[j] != 0) continue;  // duplicate record: identical by determinism
      results[j] = record;
      results[j].cell = cells[owned[j]];  // restore the live platform/workload pointers
      done[j] = 1;
      ++replayed;
      if (!results[j].ok()) ++replayed_failed;
      if (options.metrics != nullptr) {
        for (const obs::MetricSample& sample : results[j].metrics) {
          options.metrics->absorb(sample);
        }
      }
    }
  }

  // Group the remaining cells into same-platform batches, first-occurrence
  // order (`expand` shares each spec's platform via shared_ptr, so pointer
  // identity is the grouping key; the linear scan keeps the grouping
  // deterministic — no unordered containers anywhere in the runner).  A
  // worker executes a whole batch with one warm SolveScratch, so every cell
  // after the first reuses the previous solve's buffers.  `batch = false`
  // reproduces the historical per-cell stealing with no scratch at all.
  // Journal-completed cells are filtered out here, before batching — the
  // solve hot path never sees them.
  std::vector<std::vector<std::size_t>> batches;  // entries are result slots
  if (options.batch) {
    std::vector<const api::Platform*> seen;
    for (std::size_t j = 0; j < owned.size(); ++j) {
      if (journal_done(done, j)) {
        skipped_counter.increment();
        continue;
      }
      const api::Platform* platform = cells[owned[j]].platform.get();
      std::size_t b = 0;
      while (b < seen.size() && seen[b] != platform) ++b;
      if (b == seen.size()) {
        seen.push_back(platform);
        batches.emplace_back();
      }
      batches[b].push_back(j);
    }
  } else {
    batches.reserve(owned.size());
    for (std::size_t j = 0; j < owned.size(); ++j) {
      if (journal_done(done, j)) {
        skipped_counter.increment();
        continue;
      }
      batches.push_back({j});
    }
  }

  unsigned threads =
      options.threads == 0 ? std::thread::hardware_concurrency() : options.threads;
  if (threads == 0) threads = 1;
  if (static_cast<std::size_t>(threads) > batches.size()) {
    threads = static_cast<unsigned>(batches.size());
  }

  // Work stealing by atomic batch index; slot `j` belongs to owned cell
  // `j`, so the result order never depends on scheduling, and the
  // scratch-reusing solves are bit-identical to scratch-free ones — output
  // stays identical at any thread count and in both batch modes.  A
  // journal failure (disk full, fsync error) in any worker stops the pool
  // and rethrows on the calling thread: a sweep that cannot record its
  // progress must fail loudly, not finish unresumably.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> stop{false};
  std::exception_ptr journal_failure;
  Mutex failure_mutex;
  ProgressSink progress(options.on_progress, owned.size(), options.metrics);
  progress.start(replayed, replayed_failed);
  auto worker = [&] {
    api::SolveScratch scratch;
    for (std::size_t b = next.fetch_add(1); b < batches.size() && !stop.load();
         b = next.fetch_add(1)) {
      for (std::size_t j : batches[b]) {
        run_one(cells[owned[j]], options, registry, options.batch ? &scratch : nullptr,
                results[j]);
        if (journal.has_value()) {
          try {
            journal->append(results[j]);
            appended_counter.increment();
          } catch (...) {
            LockGuard lock(failure_mutex);
            if (journal_failure == nullptr) journal_failure = std::current_exception();
            stop.store(true);
            return;
          }
        }
        progress.report(!results[j].ok());
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (journal_failure != nullptr) std::rethrow_exception(journal_failure);
  return results;
}

std::vector<CellOutcome> run_sweep(const SweepSpec& spec, const RunOptions& options,
                                   const api::Registry& registry) {
  return run_cells(expand(spec, registry), options, registry);
}

}  // namespace mst::scenario
