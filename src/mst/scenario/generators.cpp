#include "mst/scenario/generators.hpp"

#include <map>
#include <memory>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "mst/common/rng.hpp"

namespace mst::scenario {

api::Platform make_platform(const PlatformSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  const GeneratorParams params{spec.lo, spec.hi, spec.cls};
  switch (spec.kind) {
    case api::PlatformKind::kChain: return random_chain(rng, spec.size, params);
    case api::PlatformKind::kFork: return random_fork(rng, spec.size, params);
    case api::PlatformKind::kSpider:
      return random_spider(rng, spec.size, spec.min_leg_len, spec.max_leg_len, params);
    case api::PlatformKind::kTree:
      return random_tree(rng, spec.size, params, spec.depth_bias);
  }
  throw std::invalid_argument("make_platform: unknown platform kind");
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a, std::uint64_t b,
                          std::uint64_t c) {
  // Each component advances an independent SplitMix64 step; feeding the
  // running state back in keeps distinct (a, b, c) triples decorrelated.
  Rng rng(root ^ (a * 0x9E3779B97F4A7C15ull));
  std::uint64_t state = rng.next_u64();
  state ^= Rng(state ^ (b * 0xBF58476D1CE4E5B9ull)).next_u64();
  state ^= Rng(state ^ (c * 0x94D049BB133111EBull)).next_u64();
  return state;
}

std::string to_string(CellMode mode) {
  switch (mode) {
    case CellMode::kSolve: return "solve";
    case CellMode::kWithin: return "within";
    case CellMode::kStream: return "stream";
  }
  return "?";
}

namespace {

/// The algorithms a platform kind contributes to the sweep.
std::vector<std::string> algorithms_for(const SweepSpec& spec, api::PlatformKind kind,
                                        const api::Registry& registry) {
  std::vector<std::string> names;
  if (spec.algorithms.empty()) {
    for (const api::AlgorithmInfo& info : registry.list(kind)) {
      // Exponential oracles would hang on sweep-sized grids; specs must name
      // them explicitly to include them.
      if (!info.exponential) names.push_back(info.name);
    }
  } else {
    for (const std::string& name : spec.algorithms) {
      if (registry.find(kind, name) != nullptr) names.push_back(name);
    }
  }
  return names;
}

/// The workload axis: the spec's generators, or the single identical point.
const std::vector<WorkloadGen>& workload_axis(const SweepSpec& spec) {
  static const std::vector<WorkloadGen> kIdentical{WorkloadGen{}};
  return spec.workloads.empty() ? kIdentical : spec.workloads;
}

/// Appends one platform's cells (all algorithms × workload axis × work-axis
/// points), all sharing one immutable platform instance.  Workloads are
/// generated once per (generator, n) and shared across the platform's
/// algorithms.
void append_platform_cells(const SweepSpec& spec, const api::Registry& registry,
                           std::shared_ptr<const api::Platform> platform,
                           const std::string& cls_label, std::size_t size,
                           std::size_t instance, std::uint64_t platform_seed,
                           std::vector<Cell>& out) {
  const api::PlatformKind kind = api::kind_of(*platform);
  const std::vector<WorkloadGen>& gens = workload_axis(spec);

  // (generator index, n) → (seed, workload), shared across algorithms.
  struct GeneratedWorkload {
    std::uint64_t seed = 0;
    std::shared_ptr<const Workload> workload;
  };
  std::map<std::pair<std::size_t, std::size_t>, GeneratedWorkload> workloads;
  const auto workload_for = [&](std::size_t gen_index,
                                std::size_t n) -> const GeneratedWorkload& {
    GeneratedWorkload& entry = workloads[std::make_pair(gen_index, n)];
    if (entry.workload == nullptr) {
      entry.seed = derive_seed(spec.seed, 0x3A5C10ADull + gen_index, platform_seed, n);
      entry.workload = std::make_shared<const Workload>(gens[gen_index].make(n, entry.seed));
    }
    return entry;
  };

  for (const std::string& algorithm : algorithms_for(spec, kind, registry)) {
    auto push = [&](CellMode mode, std::size_t n, Time deadline, std::size_t gen_index) {
      Cell cell;
      cell.index = out.size();
      cell.spec_name = spec.name;
      cell.platform = platform;
      cell.kind = to_string(kind);
      cell.cls = cls_label;
      cell.size = size;
      cell.instance = instance;
      cell.platform_seed = platform_seed;
      cell.algorithm = algorithm;
      cell.mode = mode;
      cell.n = n;
      cell.deadline = deadline;
      cell.seed = derive_seed(spec.seed, /*a=*/0x5EEDCE11ull, platform_seed, out.size());
      if (!gens[gen_index].identical()) {
        const GeneratedWorkload& generated = workload_for(gen_index, n);
        cell.workload = generated.workload;
        cell.workload_label = gens[gen_index].label();
        cell.workload_seed = generated.seed;
      }
      out.push_back(std::move(cell));
    };
    // Cells only exist for (algorithm, generator) pairs the registry would
    // accept — the capability gate at expansion instead of a guaranteed
    // per-cell failure at run time.
    const auto paired = [&](std::size_t gen_index) {
      return gens[gen_index].identical() ||
             registry.supports(kind, algorithm, gens[gen_index].features());
    };
    for (std::size_t g = 0; g < gens.size(); ++g) {
      if (!paired(g)) continue;
      for (std::size_t n : spec.tasks) push(CellMode::kSolve, n, 0, g);
    }
    for (std::size_t g = 0; g < gens.size(); ++g) {
      if (!paired(g)) continue;
      for (Time deadline : spec.deadlines) {
        if (gens[g].identical()) {
          // Historical semantics: the unbounded identical stream.
          push(CellMode::kWithin, 0, deadline, g);
        } else {
          // Finite pools need a size: cross with the tasks axis.
          for (std::size_t n : spec.tasks) push(CellMode::kWithin, n, deadline, g);
        }
      }
    }
    if (spec.stream) {
      // Streaming cells request the streaming capability on top of the
      // generator's features — identical generators included, since most
      // entries cannot run without knowing `n`.
      const auto stream_paired = [&](std::size_t gen_index) {
        WorkloadFeatures features = gens[gen_index].features();
        features.streaming = true;
        return registry.supports(kind, algorithm, features);
      };
      for (std::size_t g = 0; g < gens.size(); ++g) {
        if (!stream_paired(g)) continue;
        for (std::size_t n : spec.tasks) push(CellMode::kStream, n, 0, g);
      }
    }
  }
}

}  // namespace

std::vector<Cell> expand(const SweepSpec& spec, const api::Registry& registry) {
  if (spec.kinds.empty() && spec.platforms.empty()) {
    throw std::invalid_argument("spec '" + spec.name +
                                "': needs 'kinds' (a generator grid) or a 'platform' block");
  }
  if (!spec.kinds.empty() && spec.sizes.empty()) {
    throw std::invalid_argument("spec '" + spec.name + "': a generator grid needs 'sizes'");
  }
  if (!spec.kinds.empty() && spec.classes.empty()) {
    throw std::invalid_argument("spec '" + spec.name + "': a generator grid needs 'classes'");
  }
  if (spec.tasks.empty() && spec.deadlines.empty()) {
    throw std::invalid_argument("spec '" + spec.name + "': needs 'tasks' or 'deadlines'");
  }
  if (spec.stream && spec.tasks.empty()) {
    throw std::invalid_argument("spec '" + spec.name +
                                "': 'stream' cells draw their task count from 'tasks'");
  }
  if (spec.min_leg_len < 1 || spec.min_leg_len > spec.max_leg_len) {
    throw std::invalid_argument("spec '" + spec.name + "': need 1 <= leg-len min <= max");
  }
  if (!spec.kinds.empty() && (spec.lo < 1 || spec.hi < spec.lo)) {
    throw std::invalid_argument("spec '" + spec.name + "': need 1 <= times lo <= hi");
  }
  if (spec.depth_bias < 0.0 || spec.depth_bias > 1.0) {
    throw std::invalid_argument("spec '" + spec.name + "': depth-bias must be in [0, 1]");
  }
  if (!spec.algorithms.empty()) {
    // A name that matches no swept kind is a typo, not a filter.
    for (const std::string& name : spec.algorithms) {
      bool known = false;
      for (api::PlatformKind kind : spec.kinds) {
        known = known || registry.find(kind, name) != nullptr;
      }
      for (const api::Platform& platform : spec.platforms) {
        known = known || registry.find(api::kind_of(platform), name) != nullptr;
      }
      if (!known) {
        throw std::invalid_argument("spec '" + spec.name + "': algorithm '" + name +
                                    "' is not registered for any swept platform kind");
      }
    }
  }
  for (const WorkloadGen& gen : spec.workloads) {
    try {
      validate(gen);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("spec '" + spec.name + "': " + e.what());
    }
    if (!gen.identical() && !spec.deadlines.empty() && spec.tasks.empty()) {
      throw std::invalid_argument("spec '" + spec.name +
                                  "': a non-identical workload axis with 'deadlines' needs "
                                  "'tasks' (the finite pool size)");
    }
  }

  std::vector<Cell> cells;
  for (std::size_t i = 0; i < spec.platforms.size(); ++i) {
    auto platform = std::make_shared<const api::Platform>(spec.platforms[i]);
    const std::size_t size = api::num_processors(*platform);
    append_platform_cells(spec, registry, std::move(platform), "-", size,
                          /*instance=*/i, /*platform_seed=*/0, cells);
  }
  // Platform cache: grid points that resolve to the same (generator inputs,
  // seed) key — e.g. a spec listing a size or class twice — share one
  // immutable instance instead of re-generating it per point.  Expansion is
  // single-threaded, so the sharing is invisible to the runner's
  // determinism contract.
  using PlatformKey = std::tuple<int, int, std::size_t, Time, Time, std::size_t, std::size_t,
                                 double, std::uint64_t>;
  std::map<PlatformKey, std::shared_ptr<const api::Platform>> platform_cache;
  for (api::PlatformKind kind : spec.kinds) {
    for (PlatformClass cls : spec.classes) {
      for (std::size_t size : spec.sizes) {
        for (std::size_t instance = 0; instance < spec.instances; ++instance) {
          PlatformSpec pspec;
          pspec.kind = kind;
          pspec.cls = cls;
          pspec.size = size;
          pspec.lo = spec.lo;
          pspec.hi = spec.hi;
          pspec.min_leg_len = spec.min_leg_len;
          pspec.max_leg_len = spec.max_leg_len;
          pspec.depth_bias = spec.depth_bias;
          const std::uint64_t platform_seed =
              derive_seed(spec.seed,
                          (static_cast<std::uint64_t>(kind) << 8) |
                              static_cast<std::uint64_t>(cls),
                          size, instance);
          const PlatformKey key{static_cast<int>(kind),    static_cast<int>(cls),
                                size,                      spec.lo,
                                spec.hi,                   spec.min_leg_len,
                                spec.max_leg_len,          spec.depth_bias,
                                platform_seed};
          auto& cached = platform_cache[key];
          if (cached == nullptr) {
            cached = std::make_shared<const api::Platform>(make_platform(pspec, platform_seed));
          }
          append_platform_cells(spec, registry, cached, to_string(cls), size, instance,
                                platform_seed, cells);
        }
      }
    }
  }
  return cells;
}

}  // namespace mst::scenario
