#include "mst/scenario/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "mst/common/fmt.hpp"
#include "mst/obs/metrics.hpp"

namespace mst::scenario {

namespace {

// ---------------------------------------------------------------------------
// Checksums and mixing

/// CRC-32 (reflected 0xEDB88320, the zlib polynomial) over the payload
/// bytes.  Torn appends are the expected failure mode; the CRC additionally
/// catches bit rot and hand-edited records.
std::uint32_t crc32(const std::string& data) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// SplitMix64's finalizer — the same stable mixing the seed derivation
/// uses, applied here to fold cell keys into the grid fingerprint.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t fold(std::uint64_t h, std::uint64_t v) { return mix(h ^ mix(v)); }

std::uint64_t fold(std::uint64_t h, const std::string& s) {
  // FNV-1a over the bytes, then mixed in like any other word.
  std::uint64_t f = 0xCBF29CE484222325ull;
  for (const char ch : s) {
    f = (f ^ static_cast<unsigned char>(ch)) * 0x100000001B3ull;
  }
  return fold(h, f);
}

// ---------------------------------------------------------------------------
// Payload serialization
//
// Line-oriented `tag fields...` records; string fields are
// escaped-to-end-of-line (only `\\`, `\n`, `\r` need escaping — the rest of
// the line is taken verbatim), doubles render with the sanctioned `%.17g`
// formatter so every value survives the round trip bit-for-bit.

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += ch;
    }
  }
  return out;
}

std::string unescape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] != '\\' || i + 1 == text.size()) {
      out += text[i];
      continue;
    }
    const char next = text[++i];
    out += next == 'n' ? '\n' : next == 'r' ? '\r' : next;
  }
  return out;
}

/// The tail of `line` after `prefix + ' '`, unescaped; "" when the line is
/// exactly the bare tag (an empty string field).
std::string string_field(const std::string& line, std::size_t tag_end) {
  if (tag_end >= line.size()) return {};
  return unescape(line.substr(tag_end + 1));
}

double parse_double(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw std::invalid_argument("journal: bad double '" + token + "'");
  }
  return value;
}

CellMode mode_from(const std::string& name) {
  if (name == "solve") return CellMode::kSolve;
  if (name == "within") return CellMode::kWithin;
  if (name == "stream") return CellMode::kStream;
  throw std::invalid_argument("journal: unknown cell mode '" + name + "'");
}

/// Throws when an extraction failed mid-line.
void expect(std::istream& is, const char* what) {
  if (!is) throw std::invalid_argument(std::string("journal: malformed ") + what + " line");
}

// ---------------------------------------------------------------------------
// File framing

constexpr const char* kMagic = "mstjournal";
constexpr int kVersion = 1;

std::string render_header(std::size_t shard_index, std::size_t shard_count,
                          std::size_t total_cells, std::uint64_t fingerprint) {
  std::ostringstream os;
  os << kMagic << ' ' << kVersion << ' ' << shard_index << ' ' << shard_count << ' '
     << total_cells << ' ' << fingerprint << '\n';
  return os.str();
}

struct Header {
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t total_cells = 0;
  std::uint64_t fingerprint = 0;
};

/// Parses and validates the first line of `content`.  Returns the offset
/// just past the header's newline.
std::size_t parse_header(const std::string& path, const std::string& content, Header& out) {
  const std::size_t eol = content.find('\n');
  if (eol == std::string::npos) {
    throw std::runtime_error(path + ": not a journal (missing header line)");
  }
  std::istringstream is(content.substr(0, eol));
  std::string magic;
  int version = 0;
  is >> magic >> version >> out.shard_index >> out.shard_count >> out.total_cells >>
      out.fingerprint;
  if (!is || magic != kMagic) {
    throw std::runtime_error(path + ": not a journal (bad header)");
  }
  if (version != kVersion) {
    throw std::runtime_error(path + ": unsupported journal version " +
                             std::to_string(version));
  }
  return eol + 1;
}

/// Scans the framed records after the header.  `valid_end` is the offset
/// just past the last intact record: anything beyond it — a truncated
/// frame, a short payload, a CRC mismatch, any malformed header line — is
/// the torn tail.  Only the *final* record can legitimately tear (appends
/// are sequential and fsync'd), so scanning stops at the first bad frame.
JournalReplay scan_records(const std::string& content, std::size_t start,
                           std::size_t& valid_end) {
  JournalReplay replay;
  std::size_t at = start;
  valid_end = start;
  while (at < content.size()) {
    const std::size_t eol = content.find('\n', at);
    if (eol == std::string::npos) break;  // torn frame header
    std::istringstream frame(content.substr(at, eol - at));
    std::string tag;
    std::size_t payload_size = 0;
    std::uint32_t crc = 0;
    frame >> tag >> payload_size >> crc;
    if (!frame || tag != "rec") break;
    const std::size_t payload_at = eol + 1;
    // The payload is followed by its framing newline; both must fit.
    if (payload_at + payload_size + 1 > content.size()) break;  // torn payload
    const std::string payload = content.substr(payload_at, payload_size);
    if (content[payload_at + payload_size] != '\n') break;
    if (crc32(payload) != crc) break;  // corrupt tail
    try {
      replay.outcomes.push_back(decode_record(payload));
    } catch (const std::invalid_argument&) {
      break;  // checksummed but undecodable: treat like any other bad tail
    }
    at = payload_at + payload_size + 1;
    valid_end = at;
  }
  replay.torn = valid_end < content.size();
  return replay;
}

std::string slurp_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_all(int fd, const std::string& path, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(path + ": journal write failed: " + std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public payload codec

std::uint64_t grid_fingerprint(const std::vector<Cell>& cells) {
  std::uint64_t h = mix(cells.size());
  for (const Cell& cell : cells) {
    h = fold(h, cell.index);
    h = fold(h, cell.spec_name);
    h = fold(h, cell.kind);
    h = fold(h, cell.cls);
    h = fold(h, cell.size);
    h = fold(h, cell.instance);
    h = fold(h, cell.platform_seed);
    h = fold(h, cell.algorithm);
    h = fold(h, static_cast<std::uint64_t>(cell.mode));
    h = fold(h, cell.n);
    h = fold(h, static_cast<std::uint64_t>(cell.deadline));
    h = fold(h, cell.seed);
    h = fold(h, cell.workload_label);
    h = fold(h, cell.workload_seed);
  }
  return h;
}

std::string journal_path(const std::string& dir, std::size_t shard_index,
                         std::size_t shard_count) {
  std::ostringstream os;
  os << dir << "/shard-" << shard_index << "-of-" << shard_count << ".mstj";
  return os.str();
}

std::string encode_record(const CellOutcome& outcome) {
  const Cell& cell = outcome.cell;
  std::ostringstream os;
  os << "cell " << cell.index << ' ' << cell.size << ' ' << cell.instance << ' '
     << cell.platform_seed << ' ' << cell.seed << ' ' << cell.workload_seed << ' ' << cell.n
     << ' ' << cell.deadline << ' ' << to_string(cell.mode) << '\n';
  os << "spec " << escape(cell.spec_name) << '\n';
  os << "kind " << escape(cell.kind) << '\n';
  os << "class " << escape(cell.cls) << '\n';
  os << "algo " << escape(cell.algorithm) << '\n';
  os << "wl " << escape(cell.workload_label) << '\n';
  os << "out " << outcome.tasks << ' ' << outcome.makespan << ' ' << outcome.lower_bound << ' '
     << (outcome.optimal ? 1 : 0) << ' ' << outcome.peak_backlog << '\n';
  os << "num " << format_double(outcome.throughput) << ' ' << format_double(outcome.wall_ms)
     << ' ' << format_double(outcome.mean_latency) << ' ' << format_double(outcome.regret)
     << '\n';
  os << "err " << escape(outcome.error) << '\n';
  for (const obs::MetricSample& sample : outcome.metrics) {
    os << "metric " << static_cast<int>(sample.type) << ' '
       << static_cast<int>(sample.determinism) << ' ' << sample.value << ' ' << sample.count
       << ' ' << sample.sum;
    for (const std::int64_t bucket : sample.buckets) os << ' ' << bucket;
    os << ' ' << escape(sample.name) << '\n';
  }
  return os.str();
}

CellOutcome decode_record(const std::string& payload) {
  CellOutcome out;
  std::istringstream lines(payload);
  std::string line;
  bool saw_cell = false;
  while (std::getline(lines, line)) {
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "cell") {
      std::string mode;
      is >> out.cell.index >> out.cell.size >> out.cell.instance >> out.cell.platform_seed >>
          out.cell.seed >> out.cell.workload_seed >> out.cell.n >> out.cell.deadline >> mode;
      expect(is, "cell");
      out.cell.mode = mode_from(mode);
      saw_cell = true;
    } else if (tag == "spec") {
      out.cell.spec_name = string_field(line, 4);
    } else if (tag == "kind") {
      out.cell.kind = string_field(line, 4);
    } else if (tag == "class") {
      out.cell.cls = string_field(line, 5);
    } else if (tag == "algo") {
      out.cell.algorithm = string_field(line, 4);
    } else if (tag == "wl") {
      out.cell.workload_label = string_field(line, 2);
    } else if (tag == "out") {
      int optimal = 0;
      is >> out.tasks >> out.makespan >> out.lower_bound >> optimal >> out.peak_backlog;
      expect(is, "out");
      out.optimal = optimal != 0;
    } else if (tag == "num") {
      std::string throughput;
      std::string wall;
      std::string latency;
      std::string regret;
      is >> throughput >> wall >> latency >> regret;
      expect(is, "num");
      out.throughput = parse_double(throughput);
      out.wall_ms = parse_double(wall);
      out.mean_latency = parse_double(latency);
      out.regret = parse_double(regret);
    } else if (tag == "err") {
      out.error = string_field(line, 3);
    } else if (tag == "metric") {
      obs::MetricSample sample;
      int type = 0;
      int determinism = 0;
      is >> type >> determinism >> sample.value >> sample.count >> sample.sum;
      for (std::int64_t& bucket : sample.buckets) is >> bucket;
      expect(is, "metric");
      sample.type = static_cast<obs::MetricType>(type);
      sample.determinism = static_cast<obs::DeterminismClass>(determinism);
      // The name is the rest of the line past the 21 numeric fields.
      std::string name;
      std::getline(is >> std::ws, name);
      sample.name = unescape(name);
      out.metrics.push_back(std::move(sample));
    } else if (!tag.empty()) {
      throw std::invalid_argument("journal: unknown record tag '" + tag + "'");
    }
  }
  if (!saw_cell) throw std::invalid_argument("journal: record without a cell line");
  return out;
}

// ---------------------------------------------------------------------------
// The append-only shard journal

Journal::Journal(const std::string& dir, std::size_t shard_index, std::size_t shard_count,
                 std::size_t total_cells, std::uint64_t fingerprint) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw std::runtime_error(dir + ": cannot create journal directory: " + ec.message());
  path_ = journal_path(dir, shard_index, shard_count);

  const std::string content = slurp_file(path_);
  std::size_t valid_end = 0;
  if (content.empty()) {
    valid_end = 0;  // fresh journal: header written below
  } else {
    Header header;
    const std::size_t body = parse_header(path_, content, header);
    if (header.shard_index != shard_index || header.shard_count != shard_count ||
        header.total_cells != total_cells || header.fingerprint != fingerprint) {
      throw std::runtime_error(
          path_ + ": journal belongs to a different run (header mismatch); "
                  "point --journal at a fresh directory or rerun the original spec");
    }
    replay_ = scan_records(content, body, valid_end);
  }

  LockGuard lock(mutex_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    throw std::runtime_error(path_ + ": cannot open journal: " + std::strerror(errno));
  }
  if (content.empty()) {
    write_all(fd_, path_, render_header(shard_index, shard_count, total_cells, fingerprint));
  } else if (replay_.torn) {
    // Drop the torn tail so the next append starts on a clean frame.
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      throw std::runtime_error(path_ + ": cannot truncate torn journal tail: " +
                               std::strerror(errno));
    }
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    throw std::runtime_error(path_ + ": cannot seek journal: " + std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    throw std::runtime_error(path_ + ": journal fsync failed: " + std::strerror(errno));
  }
}

Journal::~Journal() {
  LockGuard lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(const CellOutcome& outcome) {
  const std::string payload = encode_record(outcome);
  std::ostringstream frame;
  frame << "rec " << payload.size() << ' ' << crc32(payload) << '\n' << payload << '\n';
  // One writer at a time: frames must land contiguously, and the fsync
  // must cover this frame before the next one begins — that ordering is
  // what limits a crash to tearing only the final record.
  LockGuard lock(mutex_);
  write_all(fd_, path_, frame.str());
  if (::fsync(fd_) != 0) {
    throw std::runtime_error(path_ + ": journal fsync failed: " + std::strerror(errno));
  }
}

// ---------------------------------------------------------------------------
// Merge

std::vector<CellOutcome> merge_journals(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".mstj") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) throw std::runtime_error(dir + ": cannot read journal directory: " + ec.message());
  if (paths.empty()) throw std::runtime_error(dir + ": no shard journals (shard-*.mstj) found");
  // Directory iteration order is unspecified; sort for deterministic error
  // reporting (the merged output is index-ordered regardless).
  std::sort(paths.begin(), paths.end());

  Header first;
  std::vector<bool> shard_seen;
  std::vector<CellOutcome> slots;
  std::vector<bool> filled;
  bool any = false;
  for (const std::string& path : paths) {
    const std::string content = slurp_file(path);
    Header header;
    const std::size_t body = parse_header(path, content, header);
    if (!any) {
      first = header;
      any = true;
      shard_seen.assign(first.shard_count, false);
      slots.resize(first.total_cells);
      filled.assign(first.total_cells, false);
    } else if (header.shard_count != first.shard_count ||
               header.total_cells != first.total_cells ||
               header.fingerprint != first.fingerprint) {
      throw std::runtime_error(path + ": shard journals disagree (different sweep or seed?); "
                                      "merge needs all shards of one run in one directory");
    }
    if (header.shard_index >= header.shard_count) {
      throw std::runtime_error(path + ": shard index out of range");
    }
    if (shard_seen[header.shard_index]) {
      throw std::runtime_error(path + ": duplicate journal for shard " +
                               std::to_string(header.shard_index));
    }
    shard_seen[header.shard_index] = true;

    std::size_t valid_end = 0;
    JournalReplay replay = scan_records(content, body, valid_end);
    for (CellOutcome& outcome : replay.outcomes) {
      const std::size_t index = outcome.cell.index;
      if (index >= first.total_cells || index % first.shard_count != header.shard_index) {
        throw std::runtime_error(path + ": record for cell " + std::to_string(index) +
                                 " does not belong to shard " +
                                 std::to_string(header.shard_index));
      }
      if (filled[index]) {
        throw std::runtime_error(path + ": duplicate record for cell " +
                                 std::to_string(index));
      }
      filled[index] = true;
      slots[index] = std::move(outcome);
    }
  }

  for (std::size_t s = 0; s < first.shard_count; ++s) {
    if (!shard_seen[s]) {
      throw std::runtime_error(dir + ": missing journal for shard " + std::to_string(s) +
                               " of " + std::to_string(first.shard_count) +
                               "; run (or resume) that shard before merging");
    }
  }
  std::size_t missing = 0;
  std::size_t first_missing = 0;
  for (std::size_t i = 0; i < filled.size(); ++i) {
    if (!filled[i]) {
      if (missing == 0) first_missing = i;
      ++missing;
    }
  }
  if (missing > 0) {
    throw std::runtime_error(
        dir + ": journals cover only " + std::to_string(filled.size() - missing) + " of " +
        std::to_string(filled.size()) + " cells (first missing: cell " +
        std::to_string(first_missing) + ", shard " +
        std::to_string(first_missing % first.shard_count) +
        "); resume the incomplete shard runs before merging");
  }
  return slots;
}

}  // namespace mst::scenario
