#include "mst/scenario/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "mst/common/fmt.hpp"

namespace mst::scenario {

namespace {

/// Streaming metric columns: negative (the "not applicable" sentinel) and
/// non-finite values render as an empty cell — `inf`/`nan` never reach the
/// tables (see CellOutcome::mean_latency/regret).
std::string format_metric(double value) {
  if (value < 0 || !std::isfinite(value)) return "";
  return format_double(value);
}

/// RFC-4180 quoting, applied only when the field needs it.
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (const char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_csv(const std::vector<CellOutcome>& outcomes, const ReportOptions& options) {
  std::ostringstream os;
  os << "spec,kind,class,size,instance,platform_seed,algorithm,mode,n,deadline,workload,"
        "cell_seed,tasks,makespan,lower_bound,optimal,throughput,latency,backlog,regret";
  if (options.timing) os << ",wall_ms";
  os << ",error\n";
  for (const CellOutcome& out : outcomes) {
    const Cell& cell = out.cell;
    os << csv_escape(cell.spec_name) << ',' << cell.kind << ',' << cell.cls << ','
       << cell.size << ',' << cell.instance << ',' << cell.platform_seed << ','
       << cell.algorithm << ',' << to_string(cell.mode) << ',';
    // `n` also appears on decision-form cells of the workload axis, where
    // it is the finite pool size; the identical stream leaves it blank.
    if (cell.mode != CellMode::kWithin || cell.n > 0) os << cell.n;
    os << ',';
    if (cell.mode == CellMode::kWithin) os << cell.deadline;
    os << ',' << csv_escape(cell.workload_label) << ',' << cell.seed << ',' << out.tasks << ','
       << out.makespan << ',' << out.lower_bound << ',' << (out.optimal ? "yes" : "no") << ','
       << format_double(out.throughput);
    // Streaming metrics: empty on non-stream rows, on errored cells, and
    // wherever a value is unavailable (e.g. regret without an exact offline
    // reference) — the sentinel never leaks as inf/nan.
    const bool stream_row = cell.mode == CellMode::kStream && out.ok();
    os << ',' << (stream_row ? format_metric(out.mean_latency) : "");
    os << ',';
    if (stream_row) os << out.peak_backlog;
    os << ',' << (stream_row ? format_metric(out.regret) : "");
    if (options.timing) os << ',' << format_double(out.wall_ms);
    os << ',' << csv_escape(out.error) << '\n';
  }
  return os.str();
}

std::string to_json(const std::vector<CellOutcome>& outcomes, const ReportOptions& options) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CellOutcome& out = outcomes[i];
    const Cell& cell = out.cell;
    os << "  {\"spec\":\"" << json_escape(cell.spec_name) << "\",\"kind\":\"" << cell.kind
       << "\",\"class\":\"" << cell.cls << "\",\"size\":" << cell.size
       << ",\"instance\":" << cell.instance << ",\"platform_seed\":" << cell.platform_seed
       << ",\"algorithm\":\"" << json_escape(cell.algorithm) << "\",\"mode\":\""
       << to_string(cell.mode) << "\"";
    if (cell.mode == CellMode::kWithin) {
      if (cell.n > 0) os << ",\"n\":" << cell.n;
      os << ",\"deadline\":" << cell.deadline;
    } else {
      os << ",\"n\":" << cell.n;
    }
    os << ",\"workload\":\"" << json_escape(cell.workload_label) << "\"";
    os << ",\"cell_seed\":" << cell.seed << ",\"tasks\":" << out.tasks << ",\"makespan\":"
       << out.makespan << ",\"lower_bound\":" << out.lower_bound << ",\"optimal\":"
       << (out.optimal ? "true" : "false");
    // JSON has no infinity literal; quote the sentinel.
    if (std::isinf(out.throughput)) {
      os << ",\"throughput\":\"inf\"";
    } else {
      os << ",\"throughput\":" << format_double(out.throughput);
    }
    // Streaming metrics appear only where they are defined — an absent key
    // is the JSON form of the CSV's empty cell, so inf/nan never leak.
    if (cell.mode == CellMode::kStream && out.ok()) {
      if (const std::string latency = format_metric(out.mean_latency); !latency.empty()) {
        os << ",\"latency\":" << latency;
      }
      os << ",\"backlog\":" << out.peak_backlog;
      if (const std::string regret = format_metric(out.regret); !regret.empty()) {
        os << ",\"regret\":" << regret;
      }
    }
    if (options.timing) os << ",\"wall_ms\":" << format_double(out.wall_ms);
    if (!out.error.empty()) os << ",\"error\":\"" << json_escape(out.error) << "\"";
    os << "}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

void trace_outcomes(const std::vector<CellOutcome>& outcomes, obs::TraceSink& sink) {
  const obs::NameId solve_name = sink.name("solve");
  const obs::NameId within_name = sink.name("within");
  const obs::NameId stream_name = sink.name("stream");
  const obs::NameId failed_name = sink.name("failed");
  char label[obs::TraceSink::kLabelCapacity];
  for (const CellOutcome& out : outcomes) {
    const Cell& cell = out.cell;
    std::snprintf(label, sizeof label, "cell %03zu %s/%s", cell.index, cell.kind.c_str(),
                  cell.algorithm.c_str());
    const obs::TrackId track = sink.track(label);
    if (!out.ok()) {
      sink.instant(track, failed_name, 0);
      continue;
    }
    const obs::NameId mode_name = cell.mode == CellMode::kStream  ? stream_name
                                  : cell.mode == CellMode::kWithin ? within_name
                                                                   : solve_name;
    sink.begin(track, mode_name, 0, static_cast<Time>(out.tasks));
    sink.end(track, mode_name, out.makespan);
  }
}

}  // namespace mst::scenario
