#include "mst/scenario/spec.hpp"

#include <sstream>
#include <stdexcept>

#include "mst/api/platform_io.hpp"
#include "mst/common/fmt.hpp"

namespace mst::scenario {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "spec line " << line << ": " << what;
  throw std::invalid_argument(os.str());
}

/// Strips a trailing comment and surrounding whitespace.
std::string strip(const std::string& raw) {
  std::string line = raw;
  const std::size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const std::size_t first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = line.find_last_not_of(" \t\r");
  return line.substr(first, last - first + 1);
}

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string token;
  while (is >> token) tokens.push_back(token);
  return tokens;
}

std::int64_t parse_int(const std::string& token, std::size_t line) {
  std::size_t pos = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(token, &pos);
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + token + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + token + "'");
  }
  if (pos != token.size()) fail(line, "trailing characters in number '" + token + "'");
  return value;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line) {
  const std::int64_t value = parse_int(token, line);
  if (value < 0) fail(line, "expected a non-negative number, got '" + token + "'");
  return static_cast<std::uint64_t>(value);
}

std::size_t parse_size(const std::string& token, std::size_t line) {
  const std::int64_t value = parse_int(token, line);
  if (value < 1) fail(line, "expected a positive number, got '" + token + "'");
  return static_cast<std::size_t>(value);
}

double parse_double(const std::string& token, std::size_t line) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    fail(line, "expected a floating-point number, got '" + token + "'");
  }
  if (pos != token.size()) fail(line, "trailing characters in number '" + token + "'");
  return value;
}

api::PlatformKind parse_kind(const std::string& token, std::size_t line) {
  const auto kind = api::platform_kind_from(token);
  if (!kind) fail(line, "unknown platform kind '" + token + "'");
  return *kind;
}

PlatformClass parse_class(const std::string& token, std::size_t line) {
  for (PlatformClass cls : all_platform_classes()) {
    if (token == to_string(cls)) return cls;
  }
  fail(line, "unknown platform class '" + token + "'");
}

/// One `tasks.sizes` line → a size-only workload generator.
WorkloadGen parse_sizes_gen(const std::vector<std::string>& tokens, std::size_t line) {
  WorkloadGen gen;
  if (tokens.size() < 2) fail(line, "'tasks.sizes' needs a family (unit|fixed|uniform)");
  const std::string& family = tokens[1];
  if (family == "unit") {
    if (tokens.size() != 2) fail(line, "'tasks.sizes unit' takes no parameters");
  } else if (family == "fixed") {
    if (tokens.size() != 3) fail(line, "'tasks.sizes fixed' takes '<size>'");
    gen.sizes = SizeDist{SizeDist::Kind::kFixed, parse_int(tokens[2], line), 0};
  } else if (family == "uniform") {
    if (tokens.size() != 4) fail(line, "'tasks.sizes uniform' takes '<lo> <hi>'");
    gen.sizes =
        SizeDist{SizeDist::Kind::kUniform, parse_int(tokens[2], line), parse_int(tokens[3], line)};
  } else {
    fail(line, "unknown size family '" + family + "' (expected unit|fixed|uniform)");
  }
  try {
    validate(gen);
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
  return gen;
}

/// One `tasks.release` / `tasks.arrival` line → a release-only generator.
WorkloadGen parse_release_gen(const std::vector<std::string>& tokens, std::size_t line,
                              bool arrival_key) {
  WorkloadGen gen;
  const char* key = arrival_key ? "'tasks.arrival'" : "'tasks.release'";
  if (tokens.size() < 2) {
    fail(line, std::string(key) + (arrival_key ? " needs a family (poisson|bursts)"
                                               : " needs a family (periodic|jitter)"));
  }
  const std::string& family = tokens[1];
  if (!arrival_key && family == "periodic") {
    if (tokens.size() != 3) fail(line, "'tasks.release periodic' takes '<gap>'");
    gen.arrival = ArrivalDist{ArrivalDist::Kind::kPeriodic, parse_int(tokens[2], line), 0};
  } else if (!arrival_key && family == "jitter") {
    if (tokens.size() != 4) fail(line, "'tasks.release jitter' takes '<lo> <hi>'");
    gen.arrival = ArrivalDist{ArrivalDist::Kind::kJitter, parse_int(tokens[2], line),
                              parse_int(tokens[3], line)};
  } else if (arrival_key && family == "poisson") {
    if (tokens.size() != 3) fail(line, "'tasks.arrival poisson' takes '<mean-gap>'");
    gen.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, parse_int(tokens[2], line), 0};
  } else if (arrival_key && family == "bursts") {
    if (tokens.size() != 4) fail(line, "'tasks.arrival bursts' takes '<size> <gap>'");
    gen.arrival = ArrivalDist{ArrivalDist::Kind::kBursts, parse_int(tokens[2], line),
                              parse_int(tokens[3], line)};
  } else {
    fail(line, "unknown family '" + family + "' for " + key);
  }
  try {
    validate(gen);
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
  return gen;
}

}  // namespace

SweepSpec parse_spec(const std::string& text) {
  SweepSpec spec;
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = strip(raw);
    if (line.empty()) continue;
    const std::vector<std::string> tokens = tokens_of(line);
    const std::string& key = tokens.front();

    if (!saw_header) {
      if (key != "sweep") fail(line_no, "spec must start with 'sweep <name>'");
      if (tokens.size() > 2) fail(line_no, "'sweep' takes at most one name");
      if (tokens.size() == 2) spec.name = tokens[1];
      saw_header = true;
      continue;
    }

    if (key == "end") break;
    if (key == "seed") {
      if (tokens.size() != 2) fail(line_no, "'seed' takes one value");
      spec.seed = parse_u64(tokens[1], line_no);
    } else if (key == "kinds") {
      spec.kinds.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        spec.kinds.push_back(parse_kind(tokens[i], line_no));
      }
    } else if (key == "classes") {
      spec.classes.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        spec.classes.push_back(parse_class(tokens[i], line_no));
      }
    } else if (key == "sizes") {
      spec.sizes.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        spec.sizes.push_back(parse_size(tokens[i], line_no));
      }
    } else if (key == "instances") {
      if (tokens.size() != 2) fail(line_no, "'instances' takes one value");
      spec.instances = parse_size(tokens[1], line_no);
    } else if (key == "times") {
      if (tokens.size() != 3) fail(line_no, "'times' takes '<lo> <hi>'");
      spec.lo = parse_int(tokens[1], line_no);
      spec.hi = parse_int(tokens[2], line_no);
    } else if (key == "leg-len") {
      if (tokens.size() != 3) fail(line_no, "'leg-len' takes '<min> <max>'");
      spec.min_leg_len = parse_size(tokens[1], line_no);
      spec.max_leg_len = parse_size(tokens[2], line_no);
    } else if (key == "depth-bias") {
      if (tokens.size() != 2) fail(line_no, "'depth-bias' takes one value");
      spec.depth_bias = parse_double(tokens[1], line_no);
    } else if (key == "tasks") {
      spec.tasks.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        spec.tasks.push_back(parse_size(tokens[i], line_no));
      }
    } else if (key == "deadlines") {
      spec.deadlines.clear();
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        spec.deadlines.push_back(parse_int(tokens[i], line_no));
      }
    } else if (key == "stream") {
      if (tokens.size() != 1) fail(line_no, "'stream' is a bare keyword (no values)");
      spec.stream = true;
    } else if (key == "tasks.sizes") {
      spec.workloads.push_back(parse_sizes_gen(tokens, line_no));
    } else if (key == "tasks.release") {
      spec.workloads.push_back(parse_release_gen(tokens, line_no, /*arrival_key=*/false));
    } else if (key == "tasks.arrival") {
      spec.workloads.push_back(parse_release_gen(tokens, line_no, /*arrival_key=*/true));
    } else if (key == "algos") {
      spec.algorithms.assign(tokens.begin() + 1, tokens.end());
    } else if (key == "platform") {
      if (tokens.size() != 1) fail(line_no, "'platform' starts a block; no inline values");
      // Collect the block verbatim until its own 'end' and hand it to the
      // typed platform parser.
      std::ostringstream block;
      bool closed = false;
      while (std::getline(in, raw)) {
        ++line_no;
        if (strip(raw) == "end") {
          closed = true;
          break;
        }
        block << raw << '\n';
      }
      if (!closed) fail(line_no, "unterminated 'platform' block (missing 'end')");
      try {
        spec.platforms.push_back(api::parse_any_platform(block.str()));
      } catch (const std::invalid_argument& e) {
        fail(line_no, std::string("bad platform block: ") + e.what());
      }
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_header) throw std::invalid_argument("spec: empty input (expected 'sweep <name>')");
  return spec;
}

std::string write_spec(const SweepSpec& spec) {
  // Names are single tokens in the text format; refuse to serialize a spec
  // the parser could not read back (whitespace splits the token, '#' starts
  // a comment).
  if (spec.name.empty() ||
      spec.name.find_first_of(" \t\r\n#") != std::string::npos) {
    throw std::invalid_argument("write_spec: spec name '" + spec.name +
                                "' must be a nonempty token without whitespace or '#'");
  }
  std::ostringstream os;
  os << "sweep " << spec.name << '\n';
  os << "seed " << spec.seed << '\n';
  os << "kinds";
  for (api::PlatformKind kind : spec.kinds) os << ' ' << to_string(kind);
  os << '\n';
  os << "classes";
  for (PlatformClass cls : spec.classes) os << ' ' << to_string(cls);
  os << '\n';
  os << "sizes";
  for (std::size_t size : spec.sizes) os << ' ' << size;
  os << '\n';
  os << "instances " << spec.instances << '\n';
  os << "times " << spec.lo << ' ' << spec.hi << '\n';
  os << "leg-len " << spec.min_leg_len << ' ' << spec.max_leg_len << '\n';
  os << "depth-bias " << format_double(spec.depth_bias) << '\n';
  os << "tasks";
  for (std::size_t n : spec.tasks) os << ' ' << n;
  os << '\n';
  os << "deadlines";
  for (Time deadline : spec.deadlines) os << ' ' << deadline;
  os << '\n';
  if (spec.stream) os << "stream\n";
  for (const WorkloadGen& gen : spec.workloads) {
    // The text format keeps the axes orthogonal: one `tasks.*` line per
    // generator.  A combined sizes+arrival generator (constructible in
    // code) has no line form, so refuse to emit a spec the parser could
    // not read back.
    if (gen.sizes.kind != SizeDist::Kind::kUnit &&
        gen.arrival.kind != ArrivalDist::Kind::kNone) {
      throw std::invalid_argument(
          "write_spec: combined size+arrival workload generators have no text form");
    }
    switch (gen.arrival.kind) {
      case ArrivalDist::Kind::kNone:
        switch (gen.sizes.kind) {
          case SizeDist::Kind::kUnit: os << "tasks.sizes unit\n"; break;
          case SizeDist::Kind::kFixed: os << "tasks.sizes fixed " << gen.sizes.a << '\n'; break;
          case SizeDist::Kind::kUniform:
            os << "tasks.sizes uniform " << gen.sizes.a << ' ' << gen.sizes.b << '\n';
            break;
        }
        break;
      case ArrivalDist::Kind::kPeriodic:
        os << "tasks.release periodic " << gen.arrival.a << '\n';
        break;
      case ArrivalDist::Kind::kJitter:
        os << "tasks.release jitter " << gen.arrival.a << ' ' << gen.arrival.b << '\n';
        break;
      case ArrivalDist::Kind::kPoisson:
        os << "tasks.arrival poisson " << gen.arrival.a << '\n';
        break;
      case ArrivalDist::Kind::kBursts:
        os << "tasks.arrival bursts " << gen.arrival.a << ' ' << gen.arrival.b << '\n';
        break;
    }
  }
  os << "algos";
  for (const std::string& name : spec.algorithms) os << ' ' << name;
  os << '\n';
  for (const api::Platform& platform : spec.platforms) {
    os << "platform\n" << api::write_platform(platform) << "end\n";
  }
  os << "end\n";
  return os.str();
}

}  // namespace mst::scenario
