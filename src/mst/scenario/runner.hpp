#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/scenario/generators.hpp"
#include "mst/scenario/spec.hpp"

/// \file runner.hpp
/// The sweep executor: fans a cell grid over a thread pool, every solve
/// dispatched through `api::Registry`.
///
/// Determinism: cells are self-contained and carry their own solve seed
/// (and, on the workload axis, their own pre-generated workload), a worker
/// claims cells by atomic index, and results land in a vector slot keyed by
/// `Cell::index` — so the output is identical at any thread count
/// (`--threads` changes wall time, never results).  The default is the
/// `materialize = false` fast path: no schedule payloads cross the registry
/// boundary, and decision-form (`deadlines`) cells on chain/spider
/// `optimal` run the genuinely allocation-free counting constructions on
/// warm per-thread scratch.  Makespan-form (`tasks`) cells still compute
/// placements internally — the makespan *is* the construction's output —
/// they just skip returning them.

namespace mst::scenario {

/// Execution knobs.
struct RunOptions {
  /// Worker threads; 0 = `std::thread::hardware_concurrency()`.
  unsigned threads = 1;
  /// Materialize schedules.  Off (default) is the count/makespan-only fast
  /// path; on enables `check`.
  bool materialize = false;
  /// With `materialize`, run `api::check_feasibility` on every result and
  /// report violations through `CellOutcome::error`.
  bool check = false;
  /// Timing repetitions per cell; `wall_ms` keeps the best (smallest) run.
  int reps = 1;
  /// Batched execution (default): cells are grouped into same-platform
  /// batches (first-occurrence order), workers steal whole batches, and
  /// each worker threads one warm `api::SolveScratch` through its batch —
  /// repeated solves reuse buffers instead of reallocating per cell.
  /// Results are bit-identical either way (results land in index-keyed
  /// slots; the scratch paths are pinned equal to the plain ones), so this
  /// only moves wall time.  `false` reproduces the historical per-cell
  /// stealing with no scratch — kept for benchmarking the difference
  /// (bench/bench_sweep.cpp).
  bool batch = true;
  /// Decision-form search cap (`SolveOptions::cap`).
  std::size_t cap = 1u << 20;
  /// Deterministic grid partition for distributed sweeps: this run executes
  /// exactly the cells whose canonical index `i` satisfies
  /// `i % shard_count == shard_index`.  The partition is applied *before*
  /// batching, so per-cell seed derivation and same-platform batching are
  /// unchanged within a shard, and the union of the N shard runs is
  /// provably the full grid (every index lands in exactly one residue
  /// class).  The default `0/1` is the whole grid — the historical
  /// single-process behaviour.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Crash-safe resume: when nonempty, the runner opens (or creates)
  /// `journal_dir/shard-<i>-of-<N>.mstj` (scenario/journal.hpp), replays
  /// every completed cell recorded there — skipping its solve entirely;
  /// completed cells never even enter a batch — and appends one fsync'd,
  /// checksummed record per newly finished cell.  A SIGKILL'd run resumes
  /// from its last completed cell; a torn final record is truncated away.
  /// Replayed per-cell metric snapshots are absorbed back into `metrics`,
  /// so the aggregate matches the uninterrupted run's.  The journals of
  /// all N shards reassemble into the single-process bytes via
  /// `scenario::merge_journals` (`mstctl --mode=merge`).
  std::string journal_dir;
  /// Progress callback: invoked once up front with
  /// `(replayed, shard_total, false)` — announcing the shard's cell count
  /// (and how many of them the journal already completed, 0 on a fresh
  /// run) before any cell runs, so consumers can size progress bars
  /// without waiting for the first completion, and progress never appears
  /// to jump backwards after a resume — then once per newly finished cell
  /// with (cells done so far incl. replayed, shard total, whether that
  /// cell failed).  Calls are serialized under a mutex (the pool's one
  /// shared-state channel — see ProgressSink in runner.cpp, whose counters
  /// are compiler-checked `MST_GUARDED_BY` under the Clang CI job), and
  /// `done` is monotone replayed, replayed+1 .. total; completion *order*
  /// still depends on thread scheduling, so a callback that cares about
  /// determinism should key on counts, never on which cell landed.
  std::function<void(std::size_t done, std::size_t total, bool failed)> on_progress;
  /// Optional, borrowed metrics sink for the whole sweep.  Each cell solves
  /// against its own local registry (so per-cell snapshots exist in
  /// `CellOutcome::metrics`) and merges into this one when it finishes;
  /// merging is commutative, so the aggregate — like every other runner
  /// output — is byte-identical at any thread count.  Wall-time-class
  /// entries (e.g. `scenario.cell.wall_us`) are segregated at serialization
  /// time, mirroring the reporters' `--timing` convention.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One cell's result row.
struct CellOutcome {
  Cell cell;
  std::size_t tasks = 0;
  Time makespan = 0;
  Time lower_bound = 0;   ///< makespan form only (0 otherwise)
  bool optimal = false;
  double throughput = 0;  ///< tasks/makespan (solve/stream) or tasks/deadline (within)
  double wall_ms = 0;     ///< best-of-`reps` wall time of the solve call
  std::string error;      ///< nonempty: the cell failed (dispatch/feasibility)

  /// Streaming-mode metrics (`cell.mode == CellMode::kStream` rows only).
  /// Negative doubles are the "not applicable" sentinel — the reporters
  /// render them as empty cells, never as `inf`/`nan`.
  double mean_latency = -1;      ///< mean per-task (completion - release)
  std::size_t peak_backlog = 0;  ///< max tasks arrived but not yet emitted
  double regret = -1;            ///< online/offline makespan ratio (>= 1)

  /// Per-cell metric snapshot (sorted by name, wall-time entries included —
  /// consumers filter by `DeterminismClass`).  Empty unless
  /// `RunOptions::metrics` was set.
  std::vector<obs::MetricSample> metrics;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Executes this shard's cells.  With the default `shard_count == 1` the
/// returned vector is index-aligned with the input (the historical
/// contract); with N shards it holds exactly the owned cells' outcomes in
/// ascending canonical-index order — the rows of this shard's report.
/// Journal metrics (when `RunOptions::metrics` is set):
/// `scenario.journal.appended` / `.replayed` / `.skipped` / `.torn`.
/// Throws `std::invalid_argument` on an out-of-range shard and
/// `std::runtime_error` when a journal belongs to a different sweep.
std::vector<CellOutcome> run_cells(const std::vector<Cell>& cells, const RunOptions& options,
                                   const api::Registry& registry = api::registry());

/// `expand` + `run_cells`.
std::vector<CellOutcome> run_sweep(const SweepSpec& spec, const RunOptions& options,
                                   const api::Registry& registry = api::registry());

}  // namespace mst::scenario
