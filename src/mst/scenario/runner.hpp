#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/scenario/generators.hpp"
#include "mst/scenario/spec.hpp"

/// \file runner.hpp
/// The sweep executor: fans a cell grid over a thread pool, every solve
/// dispatched through `api::Registry`.
///
/// Determinism: cells are self-contained and carry their own solve seed
/// (and, on the workload axis, their own pre-generated workload), a worker
/// claims cells by atomic index, and results land in a vector slot keyed by
/// `Cell::index` — so the output is identical at any thread count
/// (`--threads` changes wall time, never results).  The default is the
/// `materialize = false` fast path: no schedule payloads cross the registry
/// boundary, and decision-form (`deadlines`) cells on chain/spider
/// `optimal` run the genuinely allocation-free counting constructions on
/// warm per-thread scratch.  Makespan-form (`tasks`) cells still compute
/// placements internally — the makespan *is* the construction's output —
/// they just skip returning them.

namespace mst::scenario {

/// Execution knobs.
struct RunOptions {
  /// Worker threads; 0 = `std::thread::hardware_concurrency()`.
  unsigned threads = 1;
  /// Materialize schedules.  Off (default) is the count/makespan-only fast
  /// path; on enables `check`.
  bool materialize = false;
  /// With `materialize`, run `api::check_feasibility` on every result and
  /// report violations through `CellOutcome::error`.
  bool check = false;
  /// Timing repetitions per cell; `wall_ms` keeps the best (smallest) run.
  int reps = 1;
  /// Batched execution (default): cells are grouped into same-platform
  /// batches (first-occurrence order), workers steal whole batches, and
  /// each worker threads one warm `api::SolveScratch` through its batch —
  /// repeated solves reuse buffers instead of reallocating per cell.
  /// Results are bit-identical either way (results land in index-keyed
  /// slots; the scratch paths are pinned equal to the plain ones), so this
  /// only moves wall time.  `false` reproduces the historical per-cell
  /// stealing with no scratch — kept for benchmarking the difference
  /// (bench/bench_sweep.cpp).
  bool batch = true;
  /// Decision-form search cap (`SolveOptions::cap`).
  std::size_t cap = 1u << 20;
  /// Progress callback: invoked once up front with `(0, total, false)` —
  /// announcing the grid size before any cell runs, so consumers can size
  /// progress bars without waiting for the first completion — then once per
  /// finished cell with (cells done so far, total cells, whether that cell
  /// failed).  Calls are serialized under a mutex (the pool's one
  /// shared-state channel — see ProgressSink in runner.cpp, whose counters
  /// are compiler-checked `MST_GUARDED_BY` under the Clang CI job), and
  /// `done` is monotone 0, 1 .. total; completion *order* still depends on
  /// thread scheduling, so a callback that cares about determinism should
  /// key on counts, never on which cell landed.
  std::function<void(std::size_t done, std::size_t total, bool failed)> on_progress;
  /// Optional, borrowed metrics sink for the whole sweep.  Each cell solves
  /// against its own local registry (so per-cell snapshots exist in
  /// `CellOutcome::metrics`) and merges into this one when it finishes;
  /// merging is commutative, so the aggregate — like every other runner
  /// output — is byte-identical at any thread count.  Wall-time-class
  /// entries (e.g. `scenario.cell.wall_us`) are segregated at serialization
  /// time, mirroring the reporters' `--timing` convention.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One cell's result row.
struct CellOutcome {
  Cell cell;
  std::size_t tasks = 0;
  Time makespan = 0;
  Time lower_bound = 0;   ///< makespan form only (0 otherwise)
  bool optimal = false;
  double throughput = 0;  ///< tasks/makespan (solve/stream) or tasks/deadline (within)
  double wall_ms = 0;     ///< best-of-`reps` wall time of the solve call
  std::string error;      ///< nonempty: the cell failed (dispatch/feasibility)

  /// Streaming-mode metrics (`cell.mode == CellMode::kStream` rows only).
  /// Negative doubles are the "not applicable" sentinel — the reporters
  /// render them as empty cells, never as `inf`/`nan`.
  double mean_latency = -1;      ///< mean per-task (completion - release)
  std::size_t peak_backlog = 0;  ///< max tasks arrived but not yet emitted
  double regret = -1;            ///< online/offline makespan ratio (>= 1)

  /// Per-cell metric snapshot (sorted by name, wall-time entries included —
  /// consumers filter by `DeterminismClass`).  Empty unless
  /// `RunOptions::metrics` was set.
  std::vector<obs::MetricSample> metrics;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Executes the cells; the returned vector is index-aligned with the input.
std::vector<CellOutcome> run_cells(const std::vector<Cell>& cells, const RunOptions& options,
                                   const api::Registry& registry = api::registry());

/// `expand` + `run_cells`.
std::vector<CellOutcome> run_sweep(const SweepSpec& spec, const RunOptions& options,
                                   const api::Registry& registry = api::registry());

}  // namespace mst::scenario
