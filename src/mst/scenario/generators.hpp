#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/common/time.hpp"
#include "mst/platform/generator.hpp"
#include "mst/scenario/spec.hpp"

/// \file generators.hpp
/// Seeded platform families and the expansion of a `SweepSpec` into its
/// deterministic cell grid.
///
/// Determinism contract: a `(PlatformSpec, seed)` pair fully determines the
/// instance, and `expand` derives every platform seed and per-cell solve
/// seed from `SweepSpec::seed` by stable mixing — never from global state —
/// so the grid is byte-identical across runs, platforms, and (because the
/// runner writes results by cell index) thread counts.

namespace mst::scenario {

/// One point of the generator grid: everything needed to synthesize a
/// platform except the seed.
struct PlatformSpec {
  api::PlatformKind kind = api::PlatformKind::kChain;
  PlatformClass cls = PlatformClass::kUniform;
  std::size_t size = 1;         ///< processors (chain/fork), legs (spider), slaves (tree)
  Time lo = 1;
  Time hi = 10;
  std::size_t min_leg_len = 1;  ///< spiders only
  std::size_t max_leg_len = 3;
  double depth_bias = 0.0;      ///< trees only

  friend bool operator==(const PlatformSpec&, const PlatformSpec&) = default;
};

/// Synthesizes the platform; same (spec, seed) → identical platform.
api::Platform make_platform(const PlatformSpec& spec, std::uint64_t seed);

/// Stable seed derivation (SplitMix64 mixing).  Exposed so experiment
/// drivers can derive per-trial seeds the same way the expander does.
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a, std::uint64_t b = 0,
                          std::uint64_t c = 0);

/// Which problem form a cell exercises.  `kStream` is the no-lookahead
/// driver of `sim/streaming.hpp`: the workload's release dates arrive
/// online and the policy never learns the task count — expanded only when
/// the spec sets `stream`, and only for algorithms whose
/// `AlgorithmInfo::supports.streaming` flag is set.
enum class CellMode { kSolve, kWithin, kStream };

std::string to_string(CellMode mode);

/// One unit of sweep work: a concrete platform, an algorithm name and one
/// point on a work axis.  Cells are self-contained — executing one touches
/// no shared mutable state (the platform is shared immutably among the
/// cells of one instance, so a grid of A algorithms × W work points holds
/// one platform, not A·W copies) — which is what makes the runner
/// embarrassingly parallel.
struct Cell {
  std::size_t index = 0;          ///< position in expansion order
  std::string spec_name;
  std::shared_ptr<const api::Platform> platform;  ///< never null after expand
  std::string kind;               ///< label: "chain" / "fork" / ...
  std::string cls;                ///< generator class label; "-" for explicit platforms
  std::size_t size = 0;           ///< generator size; num_processors for explicit
  std::size_t instance = 0;       ///< instance ordinal within the grid point
  std::uint64_t platform_seed = 0;  ///< 0 for explicit platforms
  std::string algorithm;
  CellMode mode = CellMode::kSolve;
  std::size_t n = 0;              ///< task count (0 on identical-stream kWithin cells)
  Time deadline = 0;              ///< kWithin: window length
  std::uint64_t seed = 0;         ///< per-cell `SolveOptions::seed`

  /// Workload axis point.  `workload` is null on identical-axis cells (the
  /// historical grid is byte-identical); otherwise the concrete generated
  /// workload, shared by every cell of the same (platform instance,
  /// generator, n).  `workload_label` is the generator's report label
  /// ("unit" on identical cells).
  std::shared_ptr<const Workload> workload;
  std::string workload_label = "unit";
  std::uint64_t workload_seed = 0;  ///< 0 on identical cells
};

/// Expands the spec into its cell grid: explicit platforms first, then the
/// generator grid in (kind, class, size, instance) order; per platform, the
/// resolved algorithms each run, per workload generator, every `tasks`
/// entry, then every `deadlines` entry (crossed with `tasks` for
/// non-identical generators — the pool must be finite), then — when the
/// spec sets `stream` — every streaming cell over `tasks`, restricted to
/// entries with the streaming capability.  Algorithm
/// resolution: an empty list selects every registered non-exponential
/// algorithm of the platform's kind; an explicit name is applied to the
/// kinds that register it and must exist for at least one swept kind.
/// Non-identical workload generators pair only with algorithms whose
/// `AlgorithmInfo::supports` covers their features (the registry would
/// reject the others anyway; the expander just skips the doomed cells).
/// Platforms are generated once per unique (spec-point, seed) key and
/// shared across cells — duplicate grid points (repeated classes or sizes)
/// reuse the instance instead of re-generating it.  Throws
/// `std::invalid_argument` on empty or inconsistent specs.
std::vector<Cell> expand(const SweepSpec& spec,
                         const api::Registry& registry = api::registry());

}  // namespace mst::scenario
