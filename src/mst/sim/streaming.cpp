#include "mst/sim/streaming.hpp"

#include <deque>
#include <stdexcept>
#include <utility>

#include "mst/baselines/tree_asap.hpp"
#include "mst/common/assert.hpp"
#include "mst/common/rng.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/obs/trace.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"

namespace mst::sim {

namespace {

std::size_t require_slaves(const Tree& tree) {
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  return tree.num_slaves();
}

// ---------------------------------------------------------------------------
// The four online dispatchers, restated as stream policies.  Each mirrors
// its `simulate_online` twin decision for decision — with every release at
// 0 the adaptation is bit-for-bit identical (asserted by the test suite) —
// but none of them ever holds a `Workload`: sizes and release dates reach
// them one `observe` at a time.

class RoundRobinStream final : public StreamPolicy {
 public:
  explicit RoundRobinStream(const Tree& tree) : num_slaves_(require_slaves(tree)) {}
  void observe(const StreamArrival&) override {}
  NodeId choose(std::size_t task, const DispatchContext&) override {
    return 1 + task % num_slaves_;
  }

 private:
  std::size_t num_slaves_;
};

class RandomStream final : public StreamPolicy {
 public:
  RandomStream(const Tree& tree, std::uint64_t seed)
      : num_slaves_(require_slaves(tree)), rng_(seed) {}
  void observe(const StreamArrival&) override {}
  NodeId choose(std::size_t, const DispatchContext&) override {
    // One draw per dispatch, in dispatch order: the same SplitMix64 stream
    // `simulate_online` pre-draws, consumed lazily because `n` is unknown.
    return 1 + static_cast<NodeId>(
                   rng_.uniform(0, static_cast<std::int64_t>(num_slaves_) - 1));
  }

 private:
  std::size_t num_slaves_;
  Rng rng_;
};

class JsqStream final : public StreamPolicy {
 public:
  explicit JsqStream(const Tree& tree) : tree_(&tree) { require_slaves(tree); }
  void observe(const StreamArrival&) override {}
  NodeId choose(std::size_t, const DispatchContext& ctx) override {
    // The shared decider (online.cpp) keeps the adaptation identical to
    // `simulate_online` decision for decision.
    return choose_jsq(*tree_, ctx);
  }

 private:
  const Tree* tree_;
};

class EctStream final : public StreamPolicy {
 public:
  explicit EctStream(const Tree& tree) : asap_(tree) { require_slaves(tree); }
  void observe(const StreamArrival& arrival) override {
    MST_ASSERT(arrival.task == arrivals_.size());
    arrivals_.push_back(arrival);
  }
  NodeId choose(std::size_t task, const DispatchContext&) override {
    const StreamArrival& arrival = arrivals_[task];
    return choose_ect(asap_, arrival.size, arrival.release);
  }

 private:
  TreeAsapState asap_;
  std::vector<StreamArrival> arrivals_;
};

// ---------------------------------------------------------------------------
// Horizon re-planning: on every arrival, re-run the exact solver on the
// known undispatched backlog and follow the new plan's master-emission
// order.  The plan models an idle platform — in-flight work shifts the real
// timeline later through the substrate's FIFO queues — so this is the exact
// algorithm as a reactive heuristic, not an optimality claim; with all
// tasks released at 0 the single plan is the offline optimum itself.

class ReplanStream final : public StreamPolicy {
 public:
  explicit ReplanStream(Platform platform) : platform_(std::move(platform)) {
    if (const auto* spider = std::get_if<Spider>(&platform_)) {
      leg_base_.reserve(spider->num_legs());
      NodeId base = 1;
      for (std::size_t l = 0; l < spider->num_legs(); ++l) {
        leg_base_.push_back(base);
        base += spider->leg(l).size();
      }
    }
  }

  void observe(const StreamArrival&) override {
    ++backlog_;
    stale_ = true;
  }

  NodeId choose(std::size_t, const DispatchContext&) override {
    // Arrivals since the last decision invalidated the plan; recompute it
    // now (one solve per arrival batch — re-solving per arrival inside the
    // batch would produce the same final plan at strictly more cost).
    if (stale_) replan();
    MST_ASSERT(!plan_.empty());
    const NodeId dest = plan_.front();
    plan_.pop_front();
    --backlog_;
    return dest;
  }

 private:
  void replan() {
    plan_.clear();
    if (const auto* chain = std::get_if<Chain>(&platform_)) {
      // ChainSchedule keeps tasks in first-link emission order; processor
      // `i` embeds as node `i + 1`.
      for (const ChainTask& task : ChainScheduler::schedule(*chain, backlog_).tasks) {
        plan_.push_back(static_cast<NodeId>(task.proc + 1));
      }
    } else if (const auto* fork = std::get_if<Fork>(&platform_)) {
      // ForkSchedule keeps emission order; slave `s` embeds as node `s + 1`.
      for (const ForkTask& task : ForkScheduler::schedule(*fork, backlog_).tasks) {
        plan_.push_back(static_cast<NodeId>(task.slave + 1));
      }
    } else if (const auto* spider = std::get_if<Spider>(&platform_)) {
      for (const SpiderTask& task : SpiderScheduler::schedule(*spider, backlog_).tasks) {
        plan_.push_back(leg_base_[task.leg] + task.proc);
      }
    } else {
      throw std::logic_error("mst: replan policy constructed for a tree platform");
    }
    stale_ = false;
  }

  Platform platform_;
  std::vector<NodeId> leg_base_;  ///< spider leg -> first embedded node id
  std::size_t backlog_ = 0;       ///< observed, not yet dispatched
  bool stale_ = false;
  std::deque<NodeId> plan_;
};

// ---------------------------------------------------------------------------
// Metrics: exact post-processing of the operational timeline.  Backlog
// events are arrivals (+1, at the release date) and first emissions (-1, at
// `master_emission`); both lists are already sorted — releases canonically,
// emissions because the master dispatches in arrival order.

StreamMetrics compute_metrics(const Workload& workload, const SimResult& sim,
                              const obs::Observation& observation) {
  StreamMetrics metrics;
  const std::size_t n = sim.tasks.size();
  metrics.latency.reserve(n);
  obs::Histogram latency_histogram;
  if (observation.metrics != nullptr) {
    observation.metrics->counter("stream.arrivals").add(static_cast<Time>(n));
    latency_histogram = observation.metrics->histogram("stream.latency");
  }
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Time latency = sim.tasks[i].end - sim.tasks[i].release;
    MST_ASSERT(latency >= 0);
    metrics.latency.push_back(latency);
    metrics.max_latency = std::max(metrics.max_latency, latency);
    latency_histogram.observe(latency);
    total += static_cast<double>(latency);
  }
  metrics.mean_latency = n > 0 ? total / static_cast<double>(n) : 0.0;

  // Trace layout: arrival instants and the backlog counter series share one
  // "stream" track at the top of the Gantt.  The serializer's stable sort
  // folds these post-hoc events into timestamp order with the simulation's.
  obs::TrackId stream_track = obs::kInvalidTrack;
  obs::NameId arrive_name = obs::kInvalidName;
  obs::NameId backlog_name = obs::kInvalidName;
  if (observation.trace != nullptr) {
    stream_track = observation.trace->track("stream");
    arrive_name = observation.trace->name("arrive");
    backlog_name = observation.trace->name("backlog");
  }

  std::size_t arrived = 0;
  std::size_t emitted = 0;
  std::size_t backlog = 0;
  while (arrived < n) {
    // Arrivals first at equal times: a task dispatched the instant it
    // arrives still counts as backlog 1.
    if (emitted >= n || workload.release_of(arrived) <= sim.tasks[emitted].master_emission) {
      if (observation.trace != nullptr) {
        const Time release = workload.release_of(arrived);
        observation.trace->instant(stream_track, arrive_name, release,
                                   static_cast<Time>(arrived));
        observation.trace->counter(stream_track, backlog_name, release,
                                   static_cast<Time>(backlog + 1));
      }
      ++arrived;
      ++backlog;
      metrics.peak_backlog = std::max(metrics.peak_backlog, backlog);
    } else {
      if (observation.trace != nullptr) {
        observation.trace->counter(stream_track, backlog_name,
                                   sim.tasks[emitted].master_emission,
                                   static_cast<Time>(backlog - 1));
      }
      ++emitted;
      MST_ASSERT(backlog > 0);
      --backlog;
    }
  }
  if (observation.metrics != nullptr) {
    observation.metrics->gauge("stream.backlog.peak")
        .record(static_cast<Time>(metrics.peak_backlog));
    observation.metrics->gauge("stream.latency.max").record(metrics.max_latency);
  }
  return metrics;
}

}  // namespace

StreamResult simulate_stream(const Tree& tree, const Workload& workload, StreamPolicy& policy,
                             const obs::Observation& observation) {
  std::size_t revealed = 0;
  const DestinationChooser chooser = [&](std::size_t task, const DispatchContext& ctx) {
    // Reveal exactly the arrived prefix: every task whose release date the
    // clock has reached, and nothing else.  This is the no-lookahead
    // enforcement — the policy's whole world is these `observe` calls.
    while (revealed < workload.count() && workload.release_of(revealed) <= ctx.now) {
      policy.observe(StreamArrival{revealed, workload.size_of(revealed),
                                   workload.release_of(revealed)});
      ++revealed;
    }
    MST_ASSERT(revealed > task);  // the dispatched task itself has arrived
    return policy.choose(task, ctx);
  };
  StreamResult result;
  result.sim = simulate_chooser(tree, workload, chooser, observation);
  result.metrics = compute_metrics(workload, result.sim, observation);
  return result;
}

std::unique_ptr<StreamPolicy> make_stream_policy(const Tree& tree, OnlinePolicy policy,
                                                 std::uint64_t seed) {
  switch (policy) {
    case OnlinePolicy::kRoundRobin: return std::make_unique<RoundRobinStream>(tree);
    case OnlinePolicy::kRandom: return std::make_unique<RandomStream>(tree, seed);
    case OnlinePolicy::kJoinShortestQueue: return std::make_unique<JsqStream>(tree);
    case OnlinePolicy::kEarliestCompletion: return std::make_unique<EctStream>(tree);
  }
  throw std::logic_error("mst: unknown online policy");
}

std::unique_ptr<StreamPolicy> make_replan_policy(const Platform& platform) {
  if (std::holds_alternative<Tree>(platform)) {
    throw std::invalid_argument(
        "replan: no exact tree solver exists to re-plan with (chain/fork/spider only)");
  }
  return std::make_unique<ReplanStream>(platform);
}

Tree stream_substrate(const Platform& platform) {
  if (const auto* chain = std::get_if<Chain>(&platform)) return tree_from_chain(*chain);
  if (const auto* fork = std::get_if<Fork>(&platform)) {
    return tree_from_spider(Spider::from_fork(*fork));
  }
  if (const auto* spider = std::get_if<Spider>(&platform)) return tree_from_spider(*spider);
  return std::get<Tree>(platform);
}

std::unique_ptr<StreamPolicy> make_named_policy(const Platform& platform, const Tree& substrate,
                                                std::string_view algorithm, std::uint64_t seed) {
  if (algorithm == "replan") return make_replan_policy(platform);
  if (algorithm == "online-round-robin") {
    return make_stream_policy(substrate, OnlinePolicy::kRoundRobin, seed);
  }
  if (algorithm == "online-random") {
    return make_stream_policy(substrate, OnlinePolicy::kRandom, seed);
  }
  if (algorithm == "online-jsq") {
    return make_stream_policy(substrate, OnlinePolicy::kJoinShortestQueue, seed);
  }
  if (algorithm == "online-ect") {
    return make_stream_policy(substrate, OnlinePolicy::kEarliestCompletion, seed);
  }
  throw std::logic_error("mst: algorithm '" + std::string(algorithm) +
                         "' declares streaming support but has no stream policy");
}

}  // namespace mst::sim
