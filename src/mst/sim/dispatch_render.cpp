#include "mst/sim/dispatch_render.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "mst/common/assert.hpp"

namespace mst::sim {

namespace {

/// Same cell conventions as the chain/spider Gantt rows (gantt.cpp): a cell
/// covers `scale` time units and is marked when any busy instant falls in it.
class Row {
 public:
  Row(std::string name, Time horizon, Time scale)
      : name_(std::move(name)),
        scale_(scale),
        cells_(static_cast<std::size_t>((horizon + scale - 1) / std::max<Time>(scale, 1)),
               '.') {}

  void paint(Time begin, Time end, std::size_t task) {
    if (begin >= end) return;
    const char mark = static_cast<char>('0' + task % 10);
    const auto first = static_cast<std::size_t>(begin / scale_);
    const auto last = static_cast<std::size_t>((end - 1) / scale_);
    for (std::size_t c = first; c <= last && c < cells_.size(); ++c) cells_[c] = mark;
  }

  void print(std::ostream& os, std::size_t name_width) const {
    os << name_;
    os << std::string(name_width > name_.size() ? name_width - name_.size() : 0, ' ');
    os << " |";
    for (char c : cells_) os << c;
    os << "|\n";
  }

  [[nodiscard]] std::size_t name_size() const { return name_.size(); }

 private:
  std::string name_;
  Time scale_;
  std::string cells_;
};

}  // namespace

std::string render_dispatch(const Tree& tree, const SimResult& run, Time time_scale) {
  MST_REQUIRE(time_scale >= 1, "time_scale must be >= 1");
  const Time horizon = std::max<Time>(run.makespan, 1);

  std::vector<Row> rows;
  rows.emplace_back("port", horizon, time_scale);
  for (NodeId v = 1; v < tree.size(); ++v) {
    std::ostringstream name;
    name << "node " << v << " (d=" << tree.depth(v) << ")";
    rows.emplace_back(name.str(), horizon, time_scale);
  }

  for (std::size_t i = 0; i < run.tasks.size(); ++i) {
    const SimTask& task = run.tasks[i];
    MST_REQUIRE(task.dest >= 1 && task.dest < tree.size(),
                "dispatch replay references a node outside the tree");
    // The master's out-port is held for the first hop of the task's path:
    // walk up to the depth-1 ancestor.
    NodeId first_hop = task.dest;
    while (tree.parent(first_hop) != 0) first_hop = tree.parent(first_hop);
    rows[0].paint(task.master_emission, task.master_emission + tree.proc(first_hop).comm, i);
    rows[task.dest].paint(task.start, task.end, i);
  }

  std::size_t width = 0;
  for (const Row& row : rows) width = std::max(width, row.name_size());
  std::ostringstream os;
  for (const Row& row : rows) row.print(os, width);
  return os.str();
}

}  // namespace mst::sim
