#pragma once

#include <string>

#include "mst/platform/tree.hpp"
#include "mst/sim/platform_sim.hpp"

/// \file dispatch_render.hpp
/// ASCII timeline for tree dispatch plans — the tree analogue of
/// `render_gantt` (schedule/gantt.hpp).
///
/// Tree heuristics return destination sequences, not link-level timing
/// vectors, so the timeline is drawn from the operational replay
/// (`sim::simulate_dispatch`): a `port` row showing when each emission
/// occupies the master's out-port, then one row per slave node showing its
/// execution intervals.  Busy cells carry the task index modulo 10, '.' is
/// idle — the same visual conventions as the chain/spider Gantt.

namespace mst::sim {

/// Renders the replay of a dispatch plan on `tree`.  `run` must come from
/// `simulate_dispatch`/`simulate_chooser` on the same tree (destinations in
/// range).  `time_scale` compresses the axis: one cell covers `time_scale`
/// time units (>= 1); cells covering any busy instant are marked.
std::string render_dispatch(const Tree& tree, const SimResult& run, Time time_scale = 1);

}  // namespace mst::sim
