#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "mst/platform/any.hpp"
#include "mst/platform/tree.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/workload/workload.hpp"

/// \file streaming.hpp
/// Streaming (no-lookahead) scheduling: the task count `n` is unknown.
///
/// The paper plans the whole schedule offline with `n` known; the online
/// policies of `online.hpp` dispatch reactively but still receive the full
/// workload object up front.  This module closes the remaining gap to the
/// deployed master-worker pools the paper motivates: a `StreamPolicy`
/// observes tasks strictly one at a time, as their release dates pass on
/// the simulated clock, and never learns the total task count or any future
/// release date.  The driver — not policy discipline — enforces that: the
/// policy has no reference to the `Workload`; every fact it ever receives
/// arrives through `observe`, and the driver only calls `observe` for tasks
/// whose release date has passed.
///
/// Policies:
///  * the four `OnlinePolicy` dispatchers, adapted (`make_stream_policy`) —
///    on a workload whose tasks are all released at time 0 each adaptation
///    reproduces `simulate_online` bit for bit (asserted by
///    tests/test_streaming.cpp);
///  * `replan` (`make_replan_policy`) — horizon re-planning: on every
///    arrival the exact chain/fork/spider solver is re-run on the currently
///    known, still-undispatched backlog, and dispatch follows that plan's
///    master-emission order until the next arrival invalidates it.  With
///    everything released at 0 this degenerates to the offline optimum
///    (one plan over the whole instance).
///
/// The registry bridge (`api::run_stream`, in `mst/api/stream.hpp`)
/// resolves a `(platform kind, algorithm)` pair whose
/// `AlgorithmInfo::supports.streaming` flag is set, embeds the platform
/// into the store-and-forward tree substrate, runs this driver and computes
/// the streaming metrics — per-task latency, master backlog and the regret
/// against the exact offline optimum where one is registered.  This module
/// itself stays registry-free: the policies and the driver live strictly
/// below the api layer.

namespace mst::sim {

/// One task, as the policy learns about it: everything the master knows the
/// moment the task arrives, and nothing more.  `task` is the arrival
/// ordinal (== the canonical workload index, but the policy cannot tell).
struct StreamArrival {
  std::size_t task = 0;
  Time size = 1;
  Time release = 0;

  friend bool operator==(const StreamArrival&, const StreamArrival&) = default;
};

/// A no-lookahead dispatcher.  The driver calls `observe` once per task, in
/// arrival order, never before the simulated clock reaches the task's
/// release date; it calls `choose` when the master's out-port is free and
/// the oldest observed task is still undispatched.  Policies are stateful
/// and single-run: construct a fresh one per simulation.
class StreamPolicy {
 public:
  virtual ~StreamPolicy() = default;

  /// A new task became known at the master.
  virtual void observe(const StreamArrival& arrival) = 0;

  /// Destination (a slave NodeId) for `task`, the oldest undispatched
  /// observed task.  `ctx` carries the clock and per-node in-flight counts
  /// — present-state information only, same as `DispatchContext` in the
  /// online simulator.
  virtual NodeId choose(std::size_t task, const DispatchContext& ctx) = 0;
};

/// Aggregate streaming metrics, computed by the driver.
struct StreamMetrics {
  /// Per task (canonical order): completion minus release — how long the
  /// task spent in the system.  Always >= 0.
  std::vector<Time> latency;
  Time max_latency = 0;
  double mean_latency = 0;
  /// Largest number of tasks that had arrived at the master but whose first
  /// emission had not started yet (arrivals count before departures at
  /// equal times, so any nonempty run peaks at >= 1).
  std::size_t peak_backlog = 0;

  friend bool operator==(const StreamMetrics&, const StreamMetrics&) = default;
};

/// Outcome of one streaming run: the operational timeline plus the metrics.
struct StreamResult {
  SimResult sim;
  StreamMetrics metrics;
};

/// Runs `policy` over the workload's arrival stream on `tree`.  Dispatch is
/// FIFO in arrival order (tasks are interchangeable up to their observed
/// size, and the master serves its backlog in order); the policy only picks
/// destinations.  `tree` must outlive the call.
///
/// `observation` (optional, defaulted off) instruments the run: the
/// underlying simulation records its Gantt and queue metrics, and the
/// streaming layer adds arrival counts, a latency histogram and backlog
/// gauges to the registry plus per-task arrival instants and a backlog
/// counter series to the trace — all on the simulated clock.
StreamResult simulate_stream(const Tree& tree, const Workload& workload, StreamPolicy& policy,
                             const obs::Observation& observation = {});

/// Adapts one of the four online dispatchers to the streaming interface.
/// `tree` must outlive the returned policy; `seed` only matters for
/// `kRandom` (`online.hpp` documents the tie-breaking contract the others
/// inherit).
std::unique_ptr<StreamPolicy> make_stream_policy(const Tree& tree, OnlinePolicy policy,
                                                 std::uint64_t seed = 0);

/// The horizon re-planning policy for a chain, fork or spider platform
/// (throws `std::invalid_argument` for trees — no exact tree solver
/// exists).  Uniform task sizes only: the exact solvers' optimality proofs
/// do not cover sizes, and the registry gate rejects them up front.
std::unique_ptr<StreamPolicy> make_replan_policy(const Platform& platform);

/// The store-and-forward substrate a platform streams on: chains and
/// spiders embed via `tree_from_chain` / `tree_from_spider`, forks via
/// their spider form, trees are returned as-is.  Slave numbering follows
/// the embeddings (chain processor `i` is node `i + 1`; spider leg `l`
/// depth `d` is node `1 + sum(len of legs < l) + d`).
Tree stream_substrate(const Platform& platform);

/// Constructs the streaming policy a registry algorithm name denotes:
/// `replan` or one of the four `online-*` adaptations.  Throws
/// `std::logic_error` for any other name — callers gate on the registry's
/// `supports.streaming` flag first (`api::run_stream` does).
std::unique_ptr<StreamPolicy> make_named_policy(const Platform& platform, const Tree& substrate,
                                                std::string_view algorithm, std::uint64_t seed);

}  // namespace mst::sim
