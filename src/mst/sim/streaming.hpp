#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/platform/tree.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/workload/workload.hpp"

/// \file streaming.hpp
/// Streaming (no-lookahead) scheduling: the task count `n` is unknown.
///
/// The paper plans the whole schedule offline with `n` known; the online
/// policies of `online.hpp` dispatch reactively but still receive the full
/// workload object up front.  This module closes the remaining gap to the
/// deployed master-worker pools the paper motivates: a `StreamPolicy`
/// observes tasks strictly one at a time, as their release dates pass on
/// the simulated clock, and never learns the total task count or any future
/// release date.  The driver — not policy discipline — enforces that: the
/// policy has no reference to the `Workload`; every fact it ever receives
/// arrives through `observe`, and the driver only calls `observe` for tasks
/// whose release date has passed.
///
/// Policies:
///  * the four `OnlinePolicy` dispatchers, adapted (`make_stream_policy`) —
///    on a workload whose tasks are all released at time 0 each adaptation
///    reproduces `simulate_online` bit for bit (asserted by
///    tests/test_streaming.cpp);
///  * `replan` (`make_replan_policy`) — horizon re-planning: on every
///    arrival the exact chain/fork/spider solver is re-run on the currently
///    known, still-undispatched backlog, and dispatch follows that plan's
///    master-emission order until the next arrival invalidates it.  With
///    everything released at 0 this degenerates to the offline optimum
///    (one plan over the whole instance).
///
/// The registry bridge `run_stream` resolves a `(platform kind, algorithm)`
/// pair whose `AlgorithmInfo::supports.streaming` flag is set, embeds the
/// platform into the store-and-forward tree substrate, runs the driver and
/// computes the streaming metrics — per-task latency, master backlog and
/// the regret against the exact offline optimum where one is registered.

namespace mst::sim {

/// One task, as the policy learns about it: everything the master knows the
/// moment the task arrives, and nothing more.  `task` is the arrival
/// ordinal (== the canonical workload index, but the policy cannot tell).
struct StreamArrival {
  std::size_t task = 0;
  Time size = 1;
  Time release = 0;

  friend bool operator==(const StreamArrival&, const StreamArrival&) = default;
};

/// A no-lookahead dispatcher.  The driver calls `observe` once per task, in
/// arrival order, never before the simulated clock reaches the task's
/// release date; it calls `choose` when the master's out-port is free and
/// the oldest observed task is still undispatched.  Policies are stateful
/// and single-run: construct a fresh one per simulation.
class StreamPolicy {
 public:
  virtual ~StreamPolicy() = default;

  /// A new task became known at the master.
  virtual void observe(const StreamArrival& arrival) = 0;

  /// Destination (a slave NodeId) for `task`, the oldest undispatched
  /// observed task.  `ctx` carries the clock and per-node in-flight counts
  /// — present-state information only, same as `DispatchContext` in the
  /// online simulator.
  virtual NodeId choose(std::size_t task, const DispatchContext& ctx) = 0;
};

/// Aggregate streaming metrics, computed by the driver.
struct StreamMetrics {
  /// Per task (canonical order): completion minus release — how long the
  /// task spent in the system.  Always >= 0.
  std::vector<Time> latency;
  Time max_latency = 0;
  double mean_latency = 0;
  /// Largest number of tasks that had arrived at the master but whose first
  /// emission had not started yet (arrivals count before departures at
  /// equal times, so any nonempty run peaks at >= 1).
  std::size_t peak_backlog = 0;

  friend bool operator==(const StreamMetrics&, const StreamMetrics&) = default;
};

/// Outcome of one streaming run: the operational timeline plus the metrics.
struct StreamResult {
  SimResult sim;
  StreamMetrics metrics;
};

/// Runs `policy` over the workload's arrival stream on `tree`.  Dispatch is
/// FIFO in arrival order (tasks are interchangeable up to their observed
/// size, and the master serves its backlog in order); the policy only picks
/// destinations.  `tree` must outlive the call.
StreamResult simulate_stream(const Tree& tree, const Workload& workload, StreamPolicy& policy);

/// Adapts one of the four online dispatchers to the streaming interface.
/// `tree` must outlive the returned policy; `seed` only matters for
/// `kRandom` (`online.hpp` documents the tie-breaking contract the others
/// inherit).
std::unique_ptr<StreamPolicy> make_stream_policy(const Tree& tree, OnlinePolicy policy,
                                                 std::uint64_t seed = 0);

/// The horizon re-planning policy for a chain, fork or spider platform
/// (throws `std::invalid_argument` for trees — no exact tree solver
/// exists).  Uniform task sizes only: the exact solvers' optimality proofs
/// do not cover sizes, and the registry gate rejects them up front.
std::unique_ptr<StreamPolicy> make_replan_policy(const api::Platform& platform);

/// The store-and-forward substrate a platform streams on: chains and
/// spiders embed via `tree_from_chain` / `tree_from_spider`, forks via
/// their spider form, trees are returned as-is.  Slave numbering follows
/// the embeddings (chain processor `i` is node `i + 1`; spider leg `l`
/// depth `d` is node `1 + sum(len of legs < l) + d`).
Tree stream_substrate(const api::Platform& platform);

/// One streaming solve, resolved through the registry.
struct StreamOutcome {
  std::string algorithm;
  api::PlatformKind kind = api::PlatformKind::kChain;
  std::size_t tasks = 0;
  Time makespan = 0;
  StreamMetrics metrics;
  /// Exact offline optimum of the same workload (the registered "optimal"
  /// entry of the platform's kind, when it exists, is provably optimal and
  /// supports the workload's features).  0 = no exact reference — trees
  /// always, and released fork/spider streams too: their positional-release
  /// selection is not exact (the exhaustive oracle beats it on some
  /// instances), so regret against it would be meaningless.
  Time offline_makespan = 0;
  /// Competitive ratio `makespan / offline_makespan` (>= 1).  Negative =
  /// unavailable: no exact offline reference, or a degenerate zero-makespan
  /// run — the reporters print the sentinel as an empty cell instead of
  /// ever leaking `inf`/`nan` into CSV/JSON.
  double regret = -1;
  SimResult sim;  ///< full per-task timeline, dispatch order

  /// Tasks per unit time; same degenerate-platform sentinel semantics as
  /// `api::SolveResult::throughput` (+inf on nonempty zero-makespan runs).
  [[nodiscard]] double throughput() const;
};

/// Streams `workload` through the named algorithm: capability check
/// (`supports.streaming` plus the workload's features — rejected up front
/// with a `std::invalid_argument` naming the remedy), policy construction
/// (`replan` or an `online-*` adaptation), driver run, metrics and regret.
/// Deterministic per (platform, algorithm, workload, seed).
/// `attach_reference = false` skips the offline reference solve (regret
/// stays the sentinel) — for timed repetitions that must measure the
/// streamed run alone; attach it once afterwards with
/// `attach_offline_reference`.
StreamOutcome run_stream(const api::Platform& platform, std::string_view algorithm,
                         const Workload& workload, std::uint64_t seed = 1,
                         const api::Registry& registry = api::registry(),
                         bool attach_reference = true);

/// Computes `outcome.offline_makespan` / `outcome.regret` for a run of
/// `workload` on `platform` (see `StreamOutcome::offline_makespan` for
/// when a reference exists).  Idempotent; no-op on empty runs.
void attach_offline_reference(StreamOutcome& outcome, const api::Platform& platform,
                              const Workload& workload,
                              const api::Registry& registry = api::registry());

}  // namespace mst::sim
