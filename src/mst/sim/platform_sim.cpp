#include "mst/sim/platform_sim.hpp"

#include <cstdio>

#include "mst/common/assert.hpp"
#include "mst/obs/metrics.hpp"
#include "mst/obs/trace.hpp"
#include "mst/sim/engine.hpp"

namespace mst::sim {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Per-node gauge names are bounded so a sweep's merged registry cannot be
/// flooded by one very wide platform: nodes past the cap still feed the
/// global high-water gauge.
constexpr std::size_t kPerNodeMetricCap = 128;

/// Whole-run simulation state; nodes interact only through the engine.
///
/// The event loop is allocation-steady: all per-task state is sized once in
/// the constructor, routes are cached per destination (a platform has few
/// nodes, a run has many tasks), and the waiting tasks are linked through a
/// single shared `next_task_` array instead of per-node deques — a task
/// waits in at most one queue at a time, so one intrusive link suffices.
/// The streaming driver rides this same loop, so its steady state inherits
/// the property (pinned by tests/test_zero_alloc.cpp).
///
/// Observability rides the same discipline: trace tracks and event names
/// are interned here in the constructor (into the sink's fixed label
/// tables), so the per-event hooks are null checks plus reserved-capacity
/// pushes — the zero-alloc region below stays clean with a sink attached.
class Simulation {
 public:
  Simulation(const Tree& tree, const Workload& workload, const DestinationChooser& chooser,
             const obs::Observation& observation)
      : tree_(tree), workload_(workload), n_(workload.count()), chooser_(chooser),
        obs_(observation) {
    result_.tasks.resize(n_);
    hop_.assign(n_, 0);
    next_task_.assign(n_, kNone);
    route_to_.resize(tree.size());
    out_queue_.assign(tree.size(), Fifo{});
    out_busy_.assign(tree.size(), false);
    cpu_queue_.assign(tree.size(), Fifo{});
    cpu_busy_.assign(tree.size(), false);
    outstanding_.assign(tree.size(), 0);
    // A bounded cut of the event graph is live at once: per node one
    // in-flight send and one running execution, plus the dispatch re-arm.
    engine_.reserve(2 * tree.size() + 1);
    if (obs_.trace != nullptr) {
      // Gantt layout: one track for the master's emissions, one per link
      // (the span is the link's busy interval) and one per slave CPU.
      obs::TraceSink& trace = *obs_.trace;
      master_track_ = trace.track("master");
      comm_name_ = trace.name("comm");
      exec_name_ = trace.name("exec");
      emit_name_ = trace.name("emit");
      link_track_.assign(tree.size(), obs::kInvalidTrack);
      cpu_track_.assign(tree.size(), obs::kInvalidTrack);
      char label[obs::TraceSink::kLabelCapacity];
      for (NodeId v = 1; v < tree.size(); ++v) {
        std::snprintf(label, sizeof label, "link %zu->%zu", tree.parent(v), v);
        link_track_[v] = trace.track(label);
        std::snprintf(label, sizeof label, "cpu %zu", v);
        cpu_track_[v] = trace.track(label);
      }
    }
  }

  SimResult run() {
    engine_.at(0, [this] { master_dispatch(); });
    engine_.run();
    result_.makespan = 0;
    result_.tasks_per_node.assign(tree_.size(), 0);
    for (const SimTask& t : result_.tasks) {
      ++result_.tasks_per_node[t.dest];
      result_.makespan = std::max(result_.makespan, t.end);
    }
    record_metrics();
    return std::move(result_);
  }

 private:
  /// Intrusive FIFO of task indices threaded through `next_task_`.  Depth
  /// bookkeeping feeds the per-node queue high-water gauges.
  struct Fifo {
    std::size_t head = kNone;
    std::size_t tail = kNone;
    std::size_t depth = 0;
    std::size_t high_water = 0;
  };

  void push(Fifo& queue, std::size_t task) {
    next_task_[task] = kNone;
    if (queue.tail == kNone) {
      queue.head = task;
    } else {
      next_task_[queue.tail] = task;
    }
    queue.tail = task;
    if (++queue.depth > queue.high_water) queue.high_water = queue.depth;
  }

  std::size_t pop(Fifo& queue) {
    const std::size_t task = queue.head;
    MST_ASSERT(task != kNone);
    queue.head = next_task_[task];
    if (queue.head == kNone) queue.tail = kNone;
    --queue.depth;
    return task;
  }

  /// Root-to-destination route, computed once per destination ever used.
  const std::vector<NodeId>& route_to(NodeId dest) {
    std::vector<NodeId>& route = route_to_[dest];
    if (route.empty()) route = tree_.path_from_root(dest);
    return route;
  }

  /// Post-run counter flush; sim-clock derived, so every metric here is
  /// deterministic-class.
  void record_metrics() {
    if (obs_.metrics == nullptr) return;
    obs::MetricsRegistry& metrics = *obs_.metrics;
    metrics.counter("sim.engine.events").add(static_cast<Time>(engine_.events_processed()));
    metrics.counter("sim.tasks.completed").add(static_cast<Time>(n_));
    char name[obs::MetricsRegistry::kNameCapacity];
    Time global_hw = 0;
    for (NodeId v = 0; v < tree_.size(); ++v) {
      const std::size_t hw = std::max(out_queue_[v].high_water, cpu_queue_[v].high_water);
      global_hw = std::max(global_hw, static_cast<Time>(hw));
      if (v == 0 || v >= kPerNodeMetricCap || hw == 0) continue;
      std::snprintf(name, sizeof name, "sim.node.%03zu.queue_hw", v);
      metrics.gauge(name).record(static_cast<Time>(hw));
    }
    metrics.gauge("sim.queue.high_water").record(global_hw);
  }

  // The steady-state region: everything below runs per event, after the
  // constructor sized the arrays and the first task warmed each route.
  // Trace hooks are reserved-capacity pushes behind null checks.
  // mstlint: zero-alloc

  /// The master's out-port freed (or the run just started): pick the next
  /// task's destination and enqueue it, unless relayed traffic is pending —
  /// the master's queue holds fresh tasks only, so dispatching is simply
  /// appending to its out-queue.  A task whose release date has not arrived
  /// re-arms the dispatch at that date (the port sits idle; release dates
  /// gate the master's emissions).
  void master_dispatch() {
    if (dispatched_ < n_) {
      const Time release = workload_.release_of(dispatched_);
      if (engine_.now() < release) {
        engine_.at(release, [this] { master_dispatch(); });
        return;
      }
      const DispatchContext ctx{engine_.now(), outstanding_};
      const NodeId dest = chooser_(dispatched_, ctx);
      MST_REQUIRE(dest != 0 && dest < tree_.size(),
                  "dispatch destination must be a slave node");
      const std::size_t task = dispatched_++;
      result_.tasks[task].dest = dest;
      result_.tasks[task].release = release;
      ++outstanding_[dest];
      push(out_queue_[0], task);
      try_send(0);
    }
  }

  void try_send(NodeId v) {
    if (out_busy_[v] || out_queue_[v].head == kNone) return;
    const std::size_t task = pop(out_queue_[v]);
    const NodeId next = route_to(result_.tasks[task].dest)[hop_[task]];
    MST_ASSERT(tree_.parent(next) == v);
    if (v == 0 && hop_[task] == 0) {
      result_.tasks[task].master_emission = engine_.now();
      if (obs_.trace != nullptr) {
        obs_.trace->instant(master_track_, emit_name_, engine_.now(),
                            static_cast<Time>(task));
      }
    }
    out_busy_[v] = true;
    if (obs_.trace != nullptr) {
      obs_.trace->begin(link_track_[next], comm_name_, engine_.now(),
                        static_cast<Time>(task));
    }
    engine_.after(workload_.size_of(task) * tree_.proc(next).comm, [this, v, next, task] {
      out_busy_[v] = false;
      if (obs_.trace != nullptr) obs_.trace->end(link_track_[next], comm_name_, engine_.now());
      deliver(next, task);
      if (v == 0) master_dispatch();
      try_send(v);
    });
  }

  void deliver(NodeId node, std::size_t task) {
    ++hop_[task];
    if (hop_[task] == route_to(result_.tasks[task].dest).size()) {
      MST_ASSERT(node == result_.tasks[task].dest);
      result_.tasks[task].arrival = engine_.now();
      push(cpu_queue_[node], task);
      try_exec(node);
    } else {
      push(out_queue_[node], task);
      try_send(node);
    }
  }

  void try_exec(NodeId node) {
    if (cpu_busy_[node] || cpu_queue_[node].head == kNone) return;
    const std::size_t task = pop(cpu_queue_[node]);
    cpu_busy_[node] = true;
    result_.tasks[task].start = engine_.now();
    if (obs_.trace != nullptr) {
      obs_.trace->begin(cpu_track_[node], exec_name_, engine_.now(),
                        static_cast<Time>(task));
    }
    engine_.after(workload_.size_of(task) * tree_.proc(node).work, [this, node, task] {
      result_.tasks[task].end = engine_.now();
      cpu_busy_[node] = false;
      if (obs_.trace != nullptr) obs_.trace->end(cpu_track_[node], exec_name_, engine_.now());
      MST_ASSERT(outstanding_[node] > 0);
      --outstanding_[node];
      try_exec(node);
    });
  }

  // mstlint: zero-alloc-end

  const Tree& tree_;
  const Workload& workload_;
  std::size_t n_;
  const DestinationChooser& chooser_;
  obs::Observation obs_;
  Engine engine_;
  SimResult result_;
  std::size_t dispatched_ = 0;
  std::vector<std::size_t> hop_;
  std::vector<std::size_t> next_task_;
  std::vector<std::vector<NodeId>> route_to_;
  std::vector<Fifo> out_queue_;
  std::vector<bool> out_busy_;
  std::vector<Fifo> cpu_queue_;
  std::vector<bool> cpu_busy_;
  std::vector<std::size_t> outstanding_;
  obs::TrackId master_track_ = obs::kInvalidTrack;
  obs::NameId comm_name_ = obs::kInvalidName;
  obs::NameId exec_name_ = obs::kInvalidName;
  obs::NameId emit_name_ = obs::kInvalidName;
  std::vector<obs::TrackId> link_track_;
  std::vector<obs::TrackId> cpu_track_;
};

}  // namespace

SimResult simulate_chooser(const Tree& tree, std::size_t n, const DestinationChooser& chooser,
                           const obs::Observation& observation) {
  return simulate_chooser(tree, Workload::identical(n), chooser, observation);
}

SimResult simulate_chooser(const Tree& tree, const Workload& workload,
                           const DestinationChooser& chooser,
                           const obs::Observation& observation) {
  Simulation sim(tree, workload, chooser, observation);
  return sim.run();
}

SimResult simulate_dispatch(const Tree& tree, const std::vector<NodeId>& dests,
                            const obs::Observation& observation) {
  return simulate_dispatch(tree, dests, Workload::identical(dests.size()), observation);
}

SimResult simulate_dispatch(const Tree& tree, const std::vector<NodeId>& dests,
                            const Workload& workload, const obs::Observation& observation) {
  MST_REQUIRE(workload.count() == dests.size(),
              "workload and destination sequence must have the same length");
  return simulate_chooser(tree, workload,
                          [&dests](std::size_t i, const DispatchContext&) { return dests[i]; },
                          observation);
}

}  // namespace mst::sim
