#include "mst/sim/platform_sim.hpp"

#include <deque>

#include "mst/common/assert.hpp"
#include "mst/sim/engine.hpp"

namespace mst::sim {

namespace {

/// Whole-run simulation state; nodes interact only through the engine.
class Simulation {
 public:
  Simulation(const Tree& tree, const Workload& workload, const DestinationChooser& chooser)
      : tree_(tree), workload_(workload), n_(workload.count()), chooser_(chooser) {
    result_.tasks.resize(n_);
    routes_.resize(n_);
    hop_.assign(n_, 0);
    out_queue_.resize(tree.size());
    out_busy_.assign(tree.size(), false);
    cpu_queue_.resize(tree.size());
    cpu_busy_.assign(tree.size(), false);
    outstanding_.assign(tree.size(), 0);
  }

  SimResult run() {
    engine_.at(0, [this] { master_dispatch(); });
    engine_.run();
    result_.makespan = 0;
    result_.tasks_per_node.assign(tree_.size(), 0);
    for (const SimTask& t : result_.tasks) {
      ++result_.tasks_per_node[t.dest];
      result_.makespan = std::max(result_.makespan, t.end);
    }
    return std::move(result_);
  }

 private:
  /// The master's out-port freed (or the run just started): pick the next
  /// task's destination and enqueue it, unless relayed traffic is pending —
  /// the master's queue holds fresh tasks only, so dispatching is simply
  /// appending to its out-queue.  A task whose release date has not arrived
  /// re-arms the dispatch at that date (the port sits idle; release dates
  /// gate the master's emissions).
  void master_dispatch() {
    if (dispatched_ < n_) {
      const Time release = workload_.release_of(dispatched_);
      if (engine_.now() < release) {
        engine_.at(release, [this] { master_dispatch(); });
        return;
      }
      const DispatchContext ctx{engine_.now(), outstanding_};
      const NodeId dest = chooser_(dispatched_, ctx);
      MST_REQUIRE(dest != 0 && dest < tree_.size(),
                  "dispatch destination must be a slave node");
      const std::size_t task = dispatched_++;
      routes_[task] = tree_.path_from_root(dest);
      result_.tasks[task].dest = dest;
      result_.tasks[task].release = release;
      ++outstanding_[dest];
      out_queue_[0].push_back(task);
      try_send(0);
    }
  }

  void try_send(NodeId v) {
    if (out_busy_[v] || out_queue_[v].empty()) return;
    const std::size_t task = out_queue_[v].front();
    out_queue_[v].pop_front();
    const NodeId next = routes_[task][hop_[task]];
    MST_ASSERT(tree_.parent(next) == v);
    if (v == 0 && hop_[task] == 0) result_.tasks[task].master_emission = engine_.now();
    out_busy_[v] = true;
    engine_.after(workload_.size_of(task) * tree_.proc(next).comm, [this, v, next, task] {
      out_busy_[v] = false;
      deliver(next, task);
      if (v == 0) master_dispatch();
      try_send(v);
    });
  }

  void deliver(NodeId node, std::size_t task) {
    ++hop_[task];
    if (hop_[task] == routes_[task].size()) {
      MST_ASSERT(node == result_.tasks[task].dest);
      result_.tasks[task].arrival = engine_.now();
      cpu_queue_[node].push_back(task);
      try_exec(node);
    } else {
      out_queue_[node].push_back(task);
      try_send(node);
    }
  }

  void try_exec(NodeId node) {
    if (cpu_busy_[node] || cpu_queue_[node].empty()) return;
    const std::size_t task = cpu_queue_[node].front();
    cpu_queue_[node].pop_front();
    cpu_busy_[node] = true;
    result_.tasks[task].start = engine_.now();
    engine_.after(workload_.size_of(task) * tree_.proc(node).work, [this, node, task] {
      result_.tasks[task].end = engine_.now();
      cpu_busy_[node] = false;
      MST_ASSERT(outstanding_[node] > 0);
      --outstanding_[node];
      try_exec(node);
    });
  }

  const Tree& tree_;
  const Workload& workload_;
  std::size_t n_;
  const DestinationChooser& chooser_;
  Engine engine_;
  SimResult result_;
  std::size_t dispatched_ = 0;
  std::vector<std::vector<NodeId>> routes_;
  std::vector<std::size_t> hop_;
  std::vector<std::deque<std::size_t>> out_queue_;
  std::vector<bool> out_busy_;
  std::vector<std::deque<std::size_t>> cpu_queue_;
  std::vector<bool> cpu_busy_;
  std::vector<std::size_t> outstanding_;
};

}  // namespace

SimResult simulate_chooser(const Tree& tree, std::size_t n, const DestinationChooser& chooser) {
  return simulate_chooser(tree, Workload::identical(n), chooser);
}

SimResult simulate_chooser(const Tree& tree, const Workload& workload,
                           const DestinationChooser& chooser) {
  Simulation sim(tree, workload, chooser);
  return sim.run();
}

SimResult simulate_dispatch(const Tree& tree, const std::vector<NodeId>& dests) {
  return simulate_dispatch(tree, dests, Workload::identical(dests.size()));
}

SimResult simulate_dispatch(const Tree& tree, const std::vector<NodeId>& dests,
                            const Workload& workload) {
  MST_REQUIRE(workload.count() == dests.size(),
              "workload and destination sequence must have the same length");
  return simulate_chooser(tree, workload,
                          [&dests](std::size_t i, const DispatchContext&) { return dests[i]; });
}

}  // namespace mst::sim
