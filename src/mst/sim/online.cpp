#include "mst/sim/online.hpp"

#include <algorithm>
#include <memory>

#include "mst/baselines/tree_asap.hpp"
#include "mst/common/assert.hpp"
#include "mst/common/rng.hpp"

namespace mst::sim {

std::string to_string(OnlinePolicy policy) {
  switch (policy) {
    case OnlinePolicy::kRoundRobin: return "round-robin";
    case OnlinePolicy::kRandom: return "random";
    case OnlinePolicy::kJoinShortestQueue: return "jsq";
    case OnlinePolicy::kEarliestCompletion: return "ect";
  }
  return "?";
}

const std::vector<OnlinePolicy>& all_online_policies() {
  static const std::vector<OnlinePolicy> kAll = {
      OnlinePolicy::kRoundRobin, OnlinePolicy::kRandom, OnlinePolicy::kJoinShortestQueue,
      OnlinePolicy::kEarliestCompletion};
  return kAll;
}

namespace {

std::vector<NodeId> slave_nodes(const Tree& tree) {
  std::vector<NodeId> slaves;
  for (NodeId v = 1; v < tree.size(); ++v) slaves.push_back(v);
  return slaves;
}

}  // namespace

NodeId choose_jsq(const Tree& tree, const DispatchContext& ctx) {
  // Ascending node id with strict improvement: score ties break toward the
  // smallest slave index (the documented contract).
  NodeId best = 1;
  Time best_score = kTimeInfinity;
  for (NodeId v = 1; v < tree.size(); ++v) {
    const Time score =
        static_cast<Time>(ctx.outstanding[v] + 1) * tree.proc(v).work + tree.path_latency(v);
    if (score < best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

NodeId choose_ect(TreeAsapState& asap, Time size, Time release) {
  NodeId best = 1;
  Time best_completion = kTimeInfinity;
  for (NodeId v = 1; v < asap.tree().size(); ++v) {
    const Time completion = asap.peek_completion(v, size, release);
    if (completion < best_completion) {
      best_completion = completion;
      best = v;
    }
  }
  asap.commit(best, size, release);
  return best;
}

SimResult simulate_online(const Tree& tree, std::size_t n, OnlinePolicy policy,
                          std::uint64_t seed) {
  return simulate_online(tree, Workload::identical(n), policy, seed);
}

SimResult simulate_online(const Tree& tree, const Workload& workload, OnlinePolicy policy,
                          std::uint64_t seed) {
  MST_REQUIRE(tree.num_slaves() >= 1, "tree has no slaves");
  const std::vector<NodeId> slaves = slave_nodes(tree);
  const std::size_t n = workload.count();

  switch (policy) {
    case OnlinePolicy::kRoundRobin:
      return simulate_chooser(tree, workload,
                              [&slaves](std::size_t i, const DispatchContext&) {
                                return slaves[i % slaves.size()];
                              });

    case OnlinePolicy::kRandom: {
      Rng rng(seed);
      // Pre-draw so the chooser stays a pure lookup (deterministic even if
      // the engine ever reorders same-time dispatches).
      std::vector<NodeId> draws(n);
      for (std::size_t i = 0; i < n; ++i) {
        draws[i] = slaves[static_cast<std::size_t>(
            rng.uniform(0, static_cast<std::int64_t>(slaves.size()) - 1))];
      }
      return simulate_chooser(
          tree, workload, [&draws](std::size_t i, const DispatchContext&) { return draws[i]; });
    }

    case OnlinePolicy::kJoinShortestQueue:
      return simulate_chooser(tree, workload, [&](std::size_t, const DispatchContext& ctx) {
        return choose_jsq(tree, ctx);
      });

    case OnlinePolicy::kEarliestCompletion: {
      // Exact forward ASAP estimator: FIFO out-ports + a single source make
      // its predictions match the simulator exactly (see tree_asap.hpp);
      // the size/release arguments keep that true for workloads.
      auto asap = std::make_shared<TreeAsapState>(tree);
      return simulate_chooser(tree, workload, [&, asap](std::size_t i, const DispatchContext&) {
        return choose_ect(*asap, workload.size_of(i), workload.release_of(i));
      });
    }
  }
  throw std::logic_error("mst: unknown online policy");
}

}  // namespace mst::sim
