#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mst/platform/tree.hpp"
#include "mst/sim/platform_sim.hpp"

/// \file online.hpp
/// Online (no-lookahead) master policies — what deployed master-worker
/// runtimes actually do, simulated on the store-and-forward substrate.
///
/// The paper's algorithm plans the whole schedule offline; production
/// systems such as the SETI@home-style pools it motivates dispatch
/// reactively instead.  These policies quantify that gap in the HEUR
/// experiment:
///  * round-robin    — ignore heterogeneity entirely;
///  * random         — uniform destination (seeded, deterministic);
///  * JSQ            — join the slave with the least outstanding work,
///                     weighted by its processing time and path latency;
///  * ECT            — earliest estimated completion (forward greedy): the
///                     strongest online policy, exact estimates thanks to
///                     per-edge FIFO.

namespace mst {
class TreeAsapState;
}

namespace mst::sim {

enum class OnlinePolicy {
  kRoundRobin,
  kRandom,
  kJoinShortestQueue,
  kEarliestCompletion,
};

std::string to_string(OnlinePolicy policy);

/// All policies, for sweep loops.
const std::vector<OnlinePolicy>& all_online_policies();

/// Simulate `n` tasks dispatched by `policy`.
///
/// Determinism contract: `seed` only matters for `kRandom` — the other
/// policies never read it, asserted by the seed-invariance test.  Score
/// ties in JSQ and ECT break toward the *smallest slave node id*: both scan
/// candidates in ascending NodeId order and move only on strict
/// improvement, so the result is a pure function of the tree and the
/// workload, invariant under permuting the evaluation order of equal-score
/// slaves (and, on tie-free instances, equivariant under relabeling the
/// slaves — asserted by the permutation-invariance test in
/// tests/test_online.cpp).
SimResult simulate_online(const Tree& tree, std::size_t n, OnlinePolicy policy,
                          std::uint64_t seed = 0);

/// Workload form: tasks arrive at the master at their release dates (online
/// arrivals), carry per-task sizes, and are dispatched in canonical
/// workload order.  The ECT estimator stays exact — its incremental ASAP
/// state mirrors the simulator's size-scaled, release-gated recurrences.
SimResult simulate_online(const Tree& tree, const Workload& workload, OnlinePolicy policy,
                          std::uint64_t seed = 0);

/// One JSQ decision: the slave minimizing `(outstanding + 1) * work +
/// path_latency`, ties toward the smallest node id.  Shared by the online
/// simulator and the streaming adapters (`streaming.hpp`) so the two stay
/// decision-for-decision identical.
NodeId choose_jsq(const Tree& tree, const DispatchContext& ctx);

/// One ECT decision: peeks every slave's completion for a `(size, release)`
/// task, commits the earliest (ties toward the smallest node id) and
/// returns it.  Shared for the same reason as `choose_jsq`.
NodeId choose_ect(TreeAsapState& asap, Time size, Time release);

}  // namespace mst::sim
