#include "mst/sim/engine.hpp"

#include <algorithm>

#include "mst/common/assert.hpp"

namespace mst::sim {

// The steady-state loop below is allocation-free once the heap vector is
// warm: push_back reuses capacity, push_heap/pop_heap shuffle events in
// place, and the callbacks themselves live in InplaceCallback's inline
// buffer.  The dynamic half of the contract is pinned by the alloc probe
// (tests/test_zero_alloc.cpp).
// mstlint: zero-alloc

void Engine::at(Time t, Callback fn) {
  MST_REQUIRE(t >= now_, "cannot schedule an event in the past");
  events_.push_back(Event{t, next_seq_++, std::move(fn)});
  std::push_heap(events_.begin(), events_.end(), Later{});
}

Time Engine::run() {
  while (!events_.empty()) {
    // The earliest event is moved out before the callback runs so it may
    // push new events without invalidating anything.
    std::pop_heap(events_.begin(), events_.end(), Later{});
    Event event = std::move(events_.back());
    events_.pop_back();
    MST_ASSERT(event.time >= now_);
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  return now_;
}

// mstlint: zero-alloc-end

}  // namespace mst::sim
