#include "mst/sim/engine.hpp"

#include "mst/common/assert.hpp"

namespace mst::sim {

void Engine::at(Time t, Callback fn) {
  MST_REQUIRE(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

Time Engine::run() {
  while (!queue_.empty()) {
    // `top` is copied out before pop so the callback may push new events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    MST_ASSERT(event.time >= now_);
    now_ = event.time;
    ++processed_;
    event.fn();
  }
  return now_;
}

}  // namespace mst::sim
