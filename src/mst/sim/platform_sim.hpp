#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "mst/obs/observation.hpp"
#include "mst/platform/tree.hpp"
#include "mst/workload/workload.hpp"

/// \file platform_sim.hpp
/// Operational (event-driven) execution of master-slave tasking on a tree.
///
/// This is the library's store-and-forward network model: every node owns a
/// one-port sender (emissions to its children serialize), every link carries
/// one task at a time, intermediate nodes buffer and forward, destination
/// nodes queue tasks FIFO for their single processor.  Chains and spiders
/// embed via `tree_from_chain` / `tree_from_spider`, so the same simulator
/// cross-validates the analytic schedulers: feeding it the destination
/// sequence of an optimal schedule must reproduce the ASAP makespan exactly.

namespace mst::sim {

/// Per-task observable outcome.
struct SimTask {
  NodeId dest = 0;
  Time release = 0;          ///< when the task arrived at the master
  Time master_emission = 0;  ///< when the master started sending it
  Time arrival = 0;          ///< full reception at the destination
  Time start = 0;            ///< execution start
  Time end = 0;              ///< execution end

  /// Time in the system: `end - release` (the streaming latency metric).
  [[nodiscard]] Time sojourn() const { return end - release; }

  friend bool operator==(const SimTask&, const SimTask&) = default;
};

/// Outcome of one simulation run.  Equality is bit-for-bit over the whole
/// timeline — the streaming equivalence tests rely on it.
struct SimResult {
  Time makespan = 0;
  std::vector<SimTask> tasks;                ///< in dispatch order
  std::vector<std::size_t> tasks_per_node;   ///< indexed by NodeId

  [[nodiscard]] std::size_t num_tasks() const { return tasks.size(); }

  friend bool operator==(const SimResult&, const SimResult&) = default;
};

/// What an online dispatcher may observe when choosing a destination: the
/// virtual clock and, per node, the number of tasks assigned to it that have
/// not finished executing yet (in flight, buffered or running).
struct DispatchContext {
  Time now = 0;
  const std::vector<std::size_t>& outstanding;
};

/// Chooses the destination of task `task_index` at the moment the master's
/// out-port frees up.  Must return a slave NodeId.
using DestinationChooser = std::function<NodeId(std::size_t task_index, const DispatchContext&)>;

/// Simulate `n` tasks whose destinations are chosen on the fly.
///
/// Every entry point takes an optional `obs::Observation`.  With a metrics
/// registry attached the run records engine event counts, completed tasks
/// and per-node queue high-water marks; with a trace sink attached it
/// records the paper's Figure-2 Gantt on the sim clock — compute spans per
/// slave, communication spans per link, master emission instants.  Both
/// default to off, in which case the instrumentation is null checks only.
SimResult simulate_chooser(const Tree& tree, std::size_t n, const DestinationChooser& chooser,
                           const obs::Observation& observation = {});

/// Workload form: task `i` (canonical workload order) is dispatched no
/// earlier than its release date — the master's out-port sits idle until
/// the next task arrives — and occupies every link for `size·c` and its
/// processor for `size·w`.  `Workload::identical(n)` reproduces the `n`
/// form exactly.
SimResult simulate_chooser(const Tree& tree, const Workload& workload,
                           const DestinationChooser& chooser,
                           const obs::Observation& observation = {});

/// Simulate dispatching tasks to the given fixed destinations, in order,
/// each emitted by the master as soon as its out-port frees.
SimResult simulate_dispatch(const Tree& tree, const std::vector<NodeId>& dests,
                            const obs::Observation& observation = {});

/// Workload form of the above; requires `workload.count() == dests.size()`.
SimResult simulate_dispatch(const Tree& tree, const std::vector<NodeId>& dests,
                            const Workload& workload, const obs::Observation& observation = {});

}  // namespace mst::sim
