#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "mst/common/time.hpp"

/// \file engine.hpp
/// Minimal discrete-event engine.
///
/// The simulator substrate executes schedules and online policies on a
/// virtual clock: events fire in non-decreasing time order, ties in
/// scheduling order (deterministic — no wall-clock, no threads, so every
/// simulation is exactly reproducible).

namespace mst::sim {

/// Discrete-event loop.  Not reentrant: callbacks may schedule further
/// events but must not call `run()`.
class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `t >= now()`.
  void at(Time t, Callback fn);

  /// Schedule `fn` `delay >= 0` after the current time.
  void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Current virtual time (0 before the first event fires).
  [[nodiscard]] Time now() const { return now_; }

  /// Run until the event queue drains; returns the time of the last event.
  Time run();

  /// Number of events processed so far (for engine tests / stats).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mst::sim
