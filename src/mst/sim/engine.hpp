#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "mst/common/time.hpp"

/// \file engine.hpp
/// Minimal discrete-event engine.
///
/// The simulator substrate executes schedules and online policies on a
/// virtual clock: events fire in non-decreasing time order, ties in
/// scheduling order (deterministic — no wall-clock, no threads, so every
/// simulation is exactly reproducible).
///
/// The event loop is part of the zero-alloc club (see tests/support/
/// alloc_probe.hpp): once the heap vector is warm, scheduling and firing
/// events performs no heap allocation.  That rules out `std::function`,
/// whose capture state may live on the heap — callbacks are stored in
/// `InplaceCallback`'s fixed inline buffer instead, and a lambda whose
/// captures do not fit is rejected at compile time rather than silently
/// allocating per event.

namespace mst::sim {

/// Move-only `void()` callable with fixed inline storage.
///
/// A hand-rolled two-entry vtable (invoke + relocate) keeps the type a
/// plain standard-layout value the event heap can shuffle with move
/// assignment; relocation move-constructs into the destination buffer and
/// destroys the source, so non-trivial captures remain correct.
class InplaceCallback {
 public:
  /// Sized for the simulator's richest capture list (seven machine words)
  /// with headroom; raise it deliberately if a new callback needs more —
  /// the static_assert below names the offender.
  static constexpr std::size_t kStorage = 64;

  InplaceCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InplaceCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InplaceCallback(F&& fn) {  // NOLINT(google-explicit-constructor): callback sink
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kStorage,
                  "callback captures exceed InplaceCallback storage; capture by "
                  "reference or raise kStorage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callback requires extended alignment");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callback must be nothrow move constructible");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
    invoke_ = [](void* self) { (*static_cast<Fn*>(self))(); };
    relocate_ = [](void* dst, void* src) {
      Fn* from = static_cast<Fn*>(src);
      if (dst != nullptr) ::new (dst) Fn(std::move(*from));
      from->~Fn();
    };
  }

  InplaceCallback(InplaceCallback&& other) noexcept { steal(other); }
  InplaceCallback& operator=(InplaceCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InplaceCallback(const InplaceCallback&) = delete;
  InplaceCallback& operator=(const InplaceCallback&) = delete;
  ~InplaceCallback() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

 private:
  void steal(InplaceCallback& other) noexcept {
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    if (invoke_ != nullptr) relocate_(storage_, other.storage_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  void reset() noexcept {
    // Relocating to a null destination is "just destroy the source".
    if (invoke_ != nullptr) {
      relocate_(nullptr, storage_);
      invoke_ = nullptr;
      relocate_ = nullptr;
    }
  }

  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  alignas(std::max_align_t) char storage_[kStorage];
};

/// Discrete-event loop.  Not reentrant: callbacks may schedule further
/// events but must not call `run()`.
class Engine {
 public:
  using Callback = InplaceCallback;

  /// Pre-sizes the event heap; with a bounded number of in-flight events
  /// the loop then never reallocates (the zero-alloc contract).
  void reserve(std::size_t events) { events_.reserve(events); }

  /// Schedule `fn` at absolute time `t >= now()`.
  void at(Time t, Callback fn);

  /// Schedule `fn` `delay >= 0` after the current time.
  void after(Time delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  /// Current virtual time (0 before the first event fires).
  [[nodiscard]] Time now() const { return now_; }

  /// Run until the event queue drains; returns the time of the last event.
  Time run();

  /// Number of events processed so far (for engine tests / stats).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
  };
  /// Heap order: the (time, seq) max under `Later` sits at the back after
  /// `pop_heap`, so the front of the heap is always the earliest event.
  /// (time, seq) is a total order — firing order is independent of the
  /// heap's internal layout, which keeps simulations byte-reproducible.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> events_;  // binary heap under `Later`
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace mst::sim
