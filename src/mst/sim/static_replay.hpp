#pragma once

#include <string>
#include <vector>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

/// \file static_replay.hpp
/// Replaying a *static* schedule on the event engine.
///
/// Every emission and execution is fired at exactly the time the schedule
/// prescribes; the replay tracks each resource's busy horizon and records a
/// conflict whenever an event claims a busy resource or an execution starts
/// before its task fully arrived.  This is an independent, operational
/// re-implementation of the Definition 1 checker: the test suite requires
/// both to agree on every schedule, and the realized makespan to equal the
/// analytic one.

namespace mst::sim {

struct ReplayResult {
  bool ok = true;
  Time makespan = 0;                   ///< realized completion of the last task
  std::vector<std::string> conflicts;  ///< empty iff `ok`
};

ReplayResult replay(const ChainSchedule& schedule);
ReplayResult replay(const SpiderSchedule& schedule);

}  // namespace mst::sim
