#include "mst/sim/static_replay.hpp"

#include <algorithm>
#include <sstream>

#include "mst/common/assert.hpp"
#include "mst/sim/engine.hpp"

namespace mst::sim {

namespace {

/// A resource that admits one occupation at a time; claims must be issued
/// in non-decreasing time order (guaranteed by the engine).
class SerialResource {
 public:
  SerialResource(std::string name, ReplayResult* result)
      : name_(std::move(name)), result_(result) {}

  void claim(Time now, Time duration, std::size_t task) {
    if (now < busy_until_) {
      std::ostringstream os;
      os << name_ << ": task " << task << " claims at " << now << " but resource is busy until "
         << busy_until_;
      result_->ok = false;
      result_->conflicts.push_back(os.str());
    }
    busy_until_ = std::max(busy_until_, now + duration);
  }

 private:
  std::string name_;
  ReplayResult* result_;
  Time busy_until_ = 0;
};

/// Negative times are impossible operationally; record them as conflicts so
/// the replay rejects what the analytic checker would also reject.
void flag_negative(Time value, const char* what, std::size_t task, ReplayResult* result) {
  if (value < 0) {
    std::ostringstream os;
    os << what << " of task " << task << " is negative (" << value << ")";
    result->ok = false;
    result->conflicts.push_back(os.str());
  }
}

/// Operational store-and-forward: a node cannot start forwarding a task it
/// has not fully received yet (the replay twin of condition (1)).
void check_store_and_forward(const Chain& chain, const CommVector& emissions, std::size_t task,
                             ReplayResult* result) {
  for (std::size_t k = 1; k < emissions.size(); ++k) {
    if (emissions[k - 1] + chain.comm(k - 1) > emissions[k]) {
      std::ostringstream os;
      os << "task " << task << " forwarded on link " << k << " at " << emissions[k]
         << " before its reception completes at " << emissions[k - 1] + chain.comm(k - 1);
      result->ok = false;
      result->conflicts.push_back(os.str());
    }
  }
}

}  // namespace

ReplayResult replay(const ChainSchedule& schedule) {
  ReplayResult result;
  const Chain& chain = schedule.chain;
  Engine engine;

  std::vector<SerialResource> links;
  std::vector<SerialResource> procs;
  for (std::size_t k = 0; k < chain.size(); ++k) {
    links.emplace_back("link " + std::to_string(k), &result);
    procs.emplace_back("proc " + std::to_string(k), &result);
  }

  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const ChainTask& t = schedule.tasks[i];
    MST_REQUIRE(t.proc < chain.size() && t.emissions.size() == t.proc + 1,
                "malformed task placement");
    flag_negative(t.start, "start", i, &result);
    for (std::size_t k = 0; k <= t.proc; ++k) {
      flag_negative(t.emissions[k], "emission", i, &result);
    }
    check_store_and_forward(chain, t.emissions, i, &result);
    for (std::size_t k = 0; k <= t.proc; ++k) {
      engine.at(std::max<Time>(t.emissions[k], 0),
                [&links, &chain, &engine, k, i] { links[k].claim(engine.now(), chain.comm(k), i); });
    }
    const Time arrival = t.emissions.back() + chain.comm(t.proc);
    // `t` is captured by reference: it lives in `schedule.tasks`, which
    // outlives `engine.run()`, and a by-value ChainTask copy would exceed
    // the engine's inline callback storage.
    engine.at(std::max<Time>(t.start, 0), [&procs, &chain, &engine, &result, &t, arrival, i] {
      if (engine.now() < arrival) {
        std::ostringstream os;
        os << "proc " << t.proc << ": task " << i << " starts at " << engine.now()
           << " before its arrival at " << arrival;
        result.ok = false;
        result.conflicts.push_back(os.str());
      }
      procs[t.proc].claim(engine.now(), chain.work(t.proc), i);
    });
    result.makespan = std::max(result.makespan, t.start + chain.work(t.proc));
  }
  engine.run();
  return result;
}

ReplayResult replay(const SpiderSchedule& schedule) {
  ReplayResult result;
  const Spider& spider = schedule.spider;
  Engine engine;

  SerialResource master_port("master port", &result);
  std::vector<std::vector<SerialResource>> links(spider.num_legs());
  std::vector<std::vector<SerialResource>> procs(spider.num_legs());
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    for (std::size_t k = 0; k < spider.leg(l).size(); ++k) {
      links[l].emplace_back("leg " + std::to_string(l) + " link " + std::to_string(k), &result);
      procs[l].emplace_back("leg " + std::to_string(l) + " proc " + std::to_string(k), &result);
    }
  }

  for (std::size_t i = 0; i < schedule.tasks.size(); ++i) {
    const SpiderTask& t = schedule.tasks[i];
    MST_REQUIRE(t.leg < spider.num_legs(), "task leg outside the spider");
    const Chain& leg = spider.leg(t.leg);
    MST_REQUIRE(t.proc < leg.size() && t.emissions.size() == t.proc + 1,
                "malformed task placement");
    flag_negative(t.start, "start", i, &result);
    for (std::size_t k = 0; k <= t.proc; ++k) {
      flag_negative(t.emissions[k], "emission", i, &result);
    }
    check_store_and_forward(leg, t.emissions, i, &result);
    // The first emission claims both the master port and the leg's link 0.
    engine.at(std::max<Time>(t.emissions[0], 0), [&master_port, &leg, &engine, i] {
      master_port.claim(engine.now(), leg.comm(0), i);
    });
    for (std::size_t k = 0; k <= t.proc; ++k) {
      engine.at(std::max<Time>(t.emissions[k], 0), [&links, &leg, &engine, l = t.leg, k, i] {
        links[l][k].claim(engine.now(), leg.comm(k), i);
      });
    }
    const Time arrival = t.emissions.back() + leg.comm(t.proc);
    // By-reference `t` as in the chain replay above: the task outlives the
    // run and a SpiderTask copy would not fit the inline callback storage.
    engine.at(std::max<Time>(t.start, 0), [&procs, &leg, &engine, &result, &t, arrival, i] {
      if (engine.now() < arrival) {
        std::ostringstream os;
        os << "leg " << t.leg << " proc " << t.proc << ": task " << i << " starts at "
           << engine.now() << " before its arrival at " << arrival;
        result.ok = false;
        result.conflicts.push_back(os.str());
      }
      procs[t.leg][t.proc].claim(engine.now(), leg.work(t.proc), i);
    });
    result.makespan = std::max(result.makespan, t.start + leg.work(t.proc));
  }
  engine.run();
  return result;
}

}  // namespace mst::sim
