#include "mst/common/rational.hpp"

#include <limits>
#include <numeric>
#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

namespace {

std::int64_t checked_mul(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  MST_REQUIRE(!__builtin_mul_overflow(a, b, &out), "rational arithmetic overflow");
  return out;
}

std::int64_t checked_add(std::int64_t a, std::int64_t b) {
  std::int64_t out = 0;
  MST_REQUIRE(!__builtin_add_overflow(a, b, &out), "rational arithmetic overflow");
  return out;
}

}  // namespace

std::int64_t gcd64(std::int64_t a, std::int64_t b) { return std::gcd(a, b); }

std::int64_t lcm64(std::int64_t a, std::int64_t b) {
  MST_REQUIRE(a != 0 && b != 0, "lcm of zero");
  const std::int64_t g = std::gcd(a, b);
  return checked_mul(a / g, b);
}

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  MST_REQUIRE(den_ != 0, "rational with zero denominator");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << num_;
  if (den_ != 1) os << '/' << den_;
  return os.str();
}

Rational Rational::reciprocal() const {
  MST_REQUIRE(num_ != 0, "reciprocal of zero");
  return Rational(den_, num_);
}

Rational operator+(const Rational& a, const Rational& b) {
  // Cross-reduce before multiplying to keep intermediates small.
  const std::int64_t g = std::gcd(a.den_, b.den_);
  const std::int64_t scale_a = b.den_ / g;
  const std::int64_t scale_b = a.den_ / g;
  return Rational(checked_add(checked_mul(a.num_, scale_a), checked_mul(b.num_, scale_b)),
                  checked_mul(a.den_, scale_a));
}

Rational operator-(const Rational& a, const Rational& b) { return a + (-b); }

Rational operator*(const Rational& a, const Rational& b) {
  const std::int64_t g1 = std::gcd(a.num_ < 0 ? -a.num_ : a.num_, b.den_);
  const std::int64_t g2 = std::gcd(b.num_ < 0 ? -b.num_ : b.num_, a.den_);
  return Rational(checked_mul(a.num_ / g1, b.num_ / g2),
                  checked_mul(a.den_ / g2, b.den_ / g1));
}

Rational operator/(const Rational& a, const Rational& b) { return a * b.reciprocal(); }

bool operator<(const Rational& a, const Rational& b) {
  // Compare via cross multiplication with overflow-checked products.
  return checked_mul(a.num_, b.den_) < checked_mul(b.num_, a.den_);
}

}  // namespace mst
