#pragma once

#include <cstdint>

#include "mst/common/assert.hpp"

/// \file rng.hpp
/// Deterministic random number generation for instance generators, property
/// tests and benchmarks.
///
/// We deliberately do not use `std::mt19937` + `std::uniform_int_distribution`
/// because the distribution's output is implementation-defined: results would
/// differ across standard libraries and the recorded experiment tables would
/// not be reproducible bit-for-bit.  SplitMix64 is tiny, fast, passes BigCrush
/// when used as documented, and is fully specified here.

namespace mst {

/// SplitMix64 generator (Steele, Lea, Flood 2014).  Deterministic across
/// platforms; every generator in this library is seeded explicitly.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in `[lo, hi]` (inclusive).  Uses rejection sampling so
  /// the distribution is exactly uniform.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    MST_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
  }

  /// Uniform double in `[0, 1)`.
  double uniform01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw.
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (for splitting streams between
  /// e.g. the platform generator and the workload generator).
  Rng split() { return Rng(next_u64() ^ 0xA5A5A5A55A5A5A5Aull); }

 private:
  std::uint64_t state_;
};

}  // namespace mst
