#include "mst/common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "mst/common/assert.hpp"

namespace mst {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MST_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  MST_REQUIRE(!rows_.empty(), "call row() before cell()");
  MST_REQUIRE(rows_.back().size() < headers_.size(), "row has more cells than headers");
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return cell(os.str());
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < r.size() ? r[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << v;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

}  // namespace mst
