#pragma once

#include <cstddef>
#include <vector>

/// \file stats.hpp
/// Small descriptive-statistics helpers used by the experiment harness
/// (ratio tables, scaling-exponent fits).  Kept minimal on purpose: the
/// benches report means/medians over seeded instance sweeps and fit
/// power-law exponents to confirm the paper's O(n p^2) complexity claim.

namespace mst {

/// Accumulates a sample of doubles and answers summary queries.
class Sample {
 public:
  void add(double v) { values_.push_back(v); }

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// Arithmetic mean; 0 for an empty sample.
  [[nodiscard]] double mean() const;

  /// Population standard deviation; 0 for fewer than two values.
  [[nodiscard]] double stddev() const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolated quantile, q in [0,1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }

 private:
  std::vector<double> values_;
};

/// Least-squares slope of log(y) against log(x): the fitted exponent `b`
/// in `y ≈ a·x^b`.  Used by the scaling experiment to confirm that chain
/// scheduling runtime grows linearly in n and quadratically in p.
/// Requires all x, y strictly positive and at least two points.
double fit_loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace mst
