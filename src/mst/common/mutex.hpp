#pragma once

#include <mutex>

#include "mst/common/thread_annotations.hpp"

/// \file mutex.hpp
/// `std::mutex` wrapped as an annotated capability, plus its RAII guard.
///
/// The standard mutex carries no thread-safety attributes, so Clang's
/// analysis cannot connect a `std::lock_guard` to the members it protects.
/// These wrappers restate the same primitives with the `MST_*` annotations
/// (thread_annotations.hpp); use them for any state shared across the
/// sweep thread pool so the Clang CI job can prove the locking discipline.

namespace mst {

/// A `std::mutex` the thread-safety analysis can see.
class MST_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MST_ACQUIRE() { impl_.lock(); }
  void unlock() MST_RELEASE() { impl_.unlock(); }

 private:
  std::mutex impl_;
};

/// RAII lock for `Mutex`; scoped capability, non-movable.
class MST_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) MST_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~LockGuard() MST_RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace mst
