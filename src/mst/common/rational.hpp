#pragma once

#include <cstdint>
#include <string>

/// \file rational.hpp
/// Exact rational arithmetic for the steady-state LP.
///
/// The bandwidth-centric rates of bounds.hpp are computed in doubles, which
/// is fine for bounds but not for *constructing* periodic schedules: a
/// periodic pattern needs the exact per-processor rates `x_q = a/b` so the
/// hyperperiod and per-period task counts are integers.  Platform values
/// are small integers, so numerators/denominators stay tiny; all operations
/// normalize eagerly and check for overflow.

namespace mst {

/// A normalized rational number (gcd(num, den) == 1, den > 0).
class Rational {
 public:
  constexpr Rational() = default;
  Rational(std::int64_t num, std::int64_t den);  ///< throws on den == 0
  /// Implicit from integers, matching arithmetic promotion.
  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] double to_double() const {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] std::string to_string() const;

  /// 1/x; throws for zero.
  [[nodiscard]] Rational reciprocal() const;

  Rational operator-() const { return Rational(-num_, den_); }
  friend Rational operator+(const Rational& a, const Rational& b);
  friend Rational operator-(const Rational& a, const Rational& b);
  friend Rational operator*(const Rational& a, const Rational& b);
  friend Rational operator/(const Rational& a, const Rational& b);  ///< throws on /0

  friend bool operator==(const Rational& a, const Rational& b) = default;
  friend bool operator<(const Rational& a, const Rational& b);
  friend bool operator<=(const Rational& a, const Rational& b) { return a == b || a < b; }
  friend bool operator>(const Rational& a, const Rational& b) { return b < a; }
  friend bool operator>=(const Rational& a, const Rational& b) { return b <= a; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }

  static Rational min(const Rational& a, const Rational& b) { return a < b ? a : b; }
  static Rational max(const Rational& a, const Rational& b) { return a < b ? b : a; }

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

/// gcd/lcm on int64 with the usual conventions (gcd(0,x) = |x|).
std::int64_t gcd64(std::int64_t a, std::int64_t b);
std::int64_t lcm64(std::int64_t a, std::int64_t b);  ///< throws on overflow

}  // namespace mst
