#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

/// \file arena.hpp
/// Monotonic scratch arena with a typed span allocator.
///
/// The zero-alloc club (counting kernels, simulator loop, materialized
/// solves) mostly runs on *typed* scratch structs whose vectors stay warm
/// between calls.  Some call sites, though, need a bag of short-lived
/// buffers whose count is data-dependent — e.g. the tree cover collecting
/// one node path per leaf.  Materializing each as its own `std::vector`
/// churns the heap every call; the arena replaces that with bump-pointer
/// spans carved out of one reusable block.
///
/// Contract (grow-once, reset-per-use):
///  * `make_span<T>(count)` bump-allocates; when the active block is full a
///    geometrically larger one is appended, so existing spans stay valid
///    until `reset()`.
///  * `reset()` rewinds.  If the previous cycle spilled into extra blocks
///    they are coalesced into a single block sized for the observed peak —
///    after the first post-peak reset, every later cycle of the same (or
///    smaller) footprint performs zero heap allocations.
///  * Spans are never destructed (monotonic), so `T` must be trivially
///    destructible.

namespace mst {

/// A borrowed, arena-owned array.  Valid until the owning arena's `reset()`.
template <typename T>
struct Span {
  T* data = nullptr;
  std::size_t size = 0;

  [[nodiscard]] T* begin() const { return data; }
  [[nodiscard]] T* end() const { return data + size; }
  [[nodiscard]] bool empty() const { return size == 0; }
  T& operator[](std::size_t i) const { return data[i]; }
};

class Arena {
 public:
  Arena() = default;

  /// Value-initialized array of `count` `T`s, aligned for any scalar type.
  template <typename T>
  Span<T> make_span(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena spans are never destructed (monotonic reset)");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    if (count == 0) return {};
    T* data = static_cast<T*>(allocate(count * sizeof(T)));
    for (std::size_t i = 0; i < count; ++i) ::new (static_cast<void*>(data + i)) T();
    return {data, count};
  }

  /// Rewind all spans; coalesce multi-block cycles into one peak-sized block.
  void reset() {
    if (blocks_.size() > 1) {
      // Grow-once: one block sized for everything the last cycles needed, so
      // the next cycle bump-allocates without ever spilling again.
      const std::size_t total = capacity();
      blocks_.clear();
      blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total});
    }
    active_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last `reset()` (alignment padding included).
  [[nodiscard]] std::size_t used() const { return used_; }

  /// Total bytes owned across all blocks.
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t size = 0;
  };

  static constexpr std::size_t kMinBlock = 1024;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  void* allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) / kAlign * kAlign;
    while (active_ < blocks_.size() && offset_ + bytes > blocks_[active_].size) {
      ++active_;
      offset_ = 0;
    }
    if (active_ == blocks_.size()) {
      const std::size_t grown = std::max({kMinBlock, bytes, 2 * capacity()});
      blocks_.push_back(Block{std::make_unique<std::byte[]>(grown), grown});
      offset_ = 0;
    }
    void* out = blocks_[active_].bytes.get() + offset_;
    offset_ += bytes;
    used_ += bytes;
    return out;
  }

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  ///< index of the block being bumped
  std::size_t offset_ = 0;  ///< bump offset within the active block
  std::size_t used_ = 0;
};

}  // namespace mst
