#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// ASCII table rendering for the experiment harness.  Every `exp_*` binary
/// prints the rows the paper (or our added evaluation) reports through this
/// one formatter so the output stays uniform and diffable between runs.

namespace mst {

/// Column-aligned plain-text table.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent `cell` calls fill it left to right.
  Table& row();

  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  /// Fixed-precision floating point cell.
  Table& cell(double v, int precision = 3);

  /// Render with a header rule and column padding.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mst
