#include "mst/common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "mst/common/assert.hpp"

namespace mst {

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double v : values_) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values_.size()));
}

double Sample::min() const {
  MST_REQUIRE(!values_.empty(), "min of empty sample");
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  MST_REQUIRE(!values_.empty(), "max of empty sample");
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::quantile(double q) const {
  MST_REQUIRE(!values_.empty(), "quantile of empty sample");
  MST_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double fit_loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  MST_REQUIRE(x.size() == y.size(), "fit_loglog_slope: size mismatch");
  MST_REQUIRE(x.size() >= 2, "fit_loglog_slope: need at least two points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    MST_REQUIRE(x[i] > 0 && y[i] > 0, "fit_loglog_slope: values must be positive");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  MST_REQUIRE(std::abs(denom) > 1e-12, "fit_loglog_slope: degenerate x values");
  return (n * sxy - sx * sy) / denom;
}

}  // namespace mst
