#pragma once

#include <string>

namespace mst {

/// Round-trip-exact rendering for doubles: `%.17g` (max_digits10) survives
/// a `std::stod` round trip bit-for-bit, so every writer that emits this
/// string produces comparable, re-parseable output.  Infinities render as
/// the `inf`/`-inf` sentinels the report layer documents (the
/// degenerate-platform value of `SolveResult::throughput`).
///
/// This is the only sanctioned way to print a double outside the
/// fixed-precision human-facing renderers (`Table`, SVG) — enforced by
/// mstlint's `lossy-float-format` / `raw-double-stream` rules.
std::string format_double(double value);

}  // namespace mst
