#pragma once

#include <cstdint>
#include <map>
#include <string>

/// \file cli.hpp
/// Minimal `--key=value` / `--flag` argument parsing for the examples and
/// experiment binaries.  Not a general-purpose CLI library — just enough to
/// parameterize instance sizes and seeds reproducibly from the shell.

namespace mst {

/// Parsed command line: `--name=value` pairs plus bare `--flag` switches.
class Args {
 public:
  /// Parse argv; throws `std::invalid_argument` on malformed options
  /// (anything not starting with `--`).
  Args(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Value lookups with defaults.  Numeric conversions throw on garbage.
  [[nodiscard]] std::string get(const std::string& name, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace mst
