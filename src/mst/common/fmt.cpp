#include "mst/common/fmt.hpp"

#include <cmath>
#include <cstdio>

namespace mst {

std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace mst
