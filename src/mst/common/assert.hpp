#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

/// \file assert.hpp
/// Internal invariant checking.
///
/// `MST_REQUIRE` validates *caller-supplied* data (platform descriptions,
/// task counts) and throws `std::invalid_argument` — these are part of the
/// public API contract and are always on.  `MST_ASSERT` guards *internal*
/// invariants (e.g. "the backward construction never produces a negative
/// first emission in makespan mode"); violations indicate a library bug and
/// throw `std::logic_error` so tests can detect them deterministically.

namespace mst::detail {

[[noreturn]] inline void throw_requirement(const char* expr, const std::string& msg) {
  std::ostringstream os;
  os << "mst: requirement failed: (" << expr << ")";
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "mst: internal invariant violated: (" << expr << ") at " << file << ':' << line;
  throw std::logic_error(os.str());
}

}  // namespace mst::detail

#define MST_REQUIRE(expr, msg)                            \
  do {                                                    \
    if (!(expr)) ::mst::detail::throw_requirement(#expr, (msg)); \
  } while (false)

#define MST_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) ::mst::detail::throw_invariant(#expr, __FILE__, __LINE__); \
  } while (false)
