#pragma once

/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis attribute macros, `MST_`-prefixed.
///
/// Under Clang with `-Wthread-safety` these expand to the `capability`
/// attribute family and the compiler proves, at build time, that every
/// access to a `MST_GUARDED_BY(m)` member happens with `m` held.  Under
/// every other compiler they expand to nothing — the annotations are
/// contract documentation locally and a compiler-checked proof in the
/// Clang CI job.
///
/// Usage contract (enforced by the `shared-mutable-state` mstlint rule for
/// static storage, and by the Clang job for everything annotated):
///
///     mst::Mutex mutex_;
///     std::size_t done_ MST_GUARDED_BY(mutex_) = 0;
///
///     void bump() {
///       LockGuard lock(mutex_);   // MST_SCOPED_CAPABILITY
///       ++done_;                  // OK: mutex_ held
///     }

#if defined(__clang__)
#define MST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MST_THREAD_ANNOTATION(x)
#endif

/// A type that is a lockable capability (mutexes).
#define MST_CAPABILITY(x) MST_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires on construction, releases on destruction.
#define MST_SCOPED_CAPABILITY MST_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define MST_GUARDED_BY(x) MST_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define MST_PT_GUARDED_BY(x) MST_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that acquires the capability (and did not hold it on entry).
#define MST_ACQUIRE(...) MST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability (held on entry).
#define MST_RELEASE(...) MST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function callable only with the capability already held.
#define MST_REQUIRES(...) MST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must NOT be called with the capability held (deadlock).
#define MST_EXCLUDES(...) MST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define MST_RETURN_CAPABILITY(x) MST_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: function whose body the analysis skips.  Use only at
/// init/teardown boundaries that are single-threaded by construction, with
/// a comment saying why.
#define MST_NO_THREAD_SAFETY_ANALYSIS MST_THREAD_ANNOTATION(no_thread_safety_analysis)
