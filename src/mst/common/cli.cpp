#include "mst/common/cli.hpp"

#include <stdexcept>

#include "mst/common/assert.hpp"

namespace mst {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    MST_REQUIRE(arg.rfind("--", 0) == 0, "options must start with --, got: " + arg);
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "1";  // bare flag
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

bool Args::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::size_t used = 0;
  const std::int64_t v = std::stoll(it->second, &used);
  MST_REQUIRE(used == it->second.size(), "not an integer: --" + name + "=" + it->second);
  return v;
}

double Args::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::size_t used = 0;
  const double v = std::stod(it->second, &used);
  MST_REQUIRE(used == it->second.size(), "not a number: --" + name + "=" + it->second);
  return v;
}

}  // namespace mst
