#pragma once

#include <cstdint>
#include <limits>

/// \file time.hpp
/// Integral time base used throughout the library.
///
/// The paper (Dutot, IPDPS 2003) maps starting times and emission times into
/// the natural numbers (`T : [1;n] -> N`), and all schedule arithmetic is a
/// composition of additions, subtractions and `min`.  Using a 64-bit signed
/// integer keeps every comparison exact, which matters for the optimality
/// tests against an exhaustive search: a floating-point representation could
/// turn a tie into a strict inequality and report a phantom gap.

namespace mst {

/// Time unit.  One unit is whatever the platform description uses (the paper
/// never fixes a physical unit); latencies `c_i`, processing times `w_i`,
/// starting times `T(i)` and emission times `C_k^i` all live on this axis.
using Time = std::int64_t;

/// Sentinel for "no time" / uninitialised.
inline constexpr Time kNoTime = std::numeric_limits<Time>::min();

/// A safe horizon larger than any schedule this library produces, yet far
/// from overflow when added to platform latencies.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

}  // namespace mst
