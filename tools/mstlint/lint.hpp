#pragma once

#include <string>
#include <vector>

/// \file lint.hpp
/// Repo-specific static analysis for the master-slave tasking library.
///
/// The repo earned three hard invariants the usual compilers cannot check:
/// byte-identical sweep output at any thread count, round-trip-exact
/// `%.17g` numeric rendering, and allocation-free counting hot paths.  Each
/// was guarded only by hand-written tests and review discipline; `mstlint`
/// turns them into machine-checked rules over the source tree.
///
/// The analyzer is deliberately token/regex-level (comment- and
/// string-aware, but no preprocessor and no libclang): every rule below is
/// decidable on the stripped token stream, diagnostics are exact
/// `file:line`, and the binary builds in milliseconds with zero
/// dependencies, so it runs as a ctest on every build.
///
/// Suppressions are per line and must carry a justification:
///
///     seed = mix(time_now);  // mstlint: allow(ambient-rng) -- replays a recorded trace
///
/// A suppression without the ` -- reason` text is itself a diagnostic.

namespace mstlint {

/// One finding.  Rendered GCC-style: `file:line: error: message [rule]`.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Rule metadata for `--list-rules` and the README table.
struct RuleInfo {
  const char* id;
  const char* summary;
  const char* rationale;
};

/// Every rule the analyzer knows, in reporting order.
const std::vector<RuleInfo>& rules();

/// True if `id` names a known rule (valid inside `allow(...)`).
bool known_rule(const std::string& id);

/// Lints one translation unit.  `path` is used for reporting and for the
/// per-rule scoping decisions (allowlists match on normalized forward-slash
/// paths), `content` is the raw file text.
std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content);

/// Walks `src/`, `tools/`, `bench/`, `examples/` and `tests/` under
/// `root`, linting every `.cpp`/`.hpp`, then runs the tree-level passes
/// over the project include graph (module layering, include cycles).
/// Skipped by design: `tools/mstlint/` (the rule table spells the banned
/// tokens out as data), `tests/data/lint/` and `tests/test_lint.cpp` (the
/// intentional-violation corpus and the fixtures embedded in the lint
/// test).  When `scanned` is non-null the visited relative paths are
/// appended to it (for the self-test).
std::vector<Diagnostic> lint_tree(const std::string& root,
                                  std::vector<std::string>* scanned = nullptr);

/// `file:line: error: message [rule]`.
std::string render(const Diagnostic& diagnostic);

}  // namespace mstlint
