// mstlint — repo-specific static analysis driver.
//
//   mstlint --root=DIR          lint the whole tree (src/tools/bench/examples)
//   mstlint FILE...             lint specific files
//   mstlint --list-rules        print the rule table
//
// Exit status is 0 when clean, 1 when any diagnostic fires, 2 on usage or
// I/O errors.  Diagnostics go to stdout in GCC format so editors and CI
// annotate them natively.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int list_rules() {
  for (const mstlint::RuleInfo& rule : mstlint::rules()) {
    std::printf("%-22s %s\n", rule.id, rule.summary);
    std::printf("%-22s   %s\n", "", rule.rationale);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mstlint --root=DIR | mstlint FILE... | mstlint --list-rules\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "mstlint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (root.empty() && files.empty()) {
    std::fprintf(stderr, "usage: mstlint --root=DIR | mstlint FILE... | mstlint --list-rules\n");
    return 2;
  }

  std::vector<mstlint::Diagnostic> diagnostics;
  std::size_t scanned_count = 0;
  if (!root.empty()) {
    std::vector<std::string> scanned;
    diagnostics = mstlint::lint_tree(root, &scanned);
    scanned_count = scanned.size();
  }
  for (const std::string& file : files) {
    std::ifstream is(file, std::ios::binary);
    if (!is) {
      std::fprintf(stderr, "mstlint: cannot read '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    for (mstlint::Diagnostic& d : mstlint::lint_source(file, buffer.str())) {
      diagnostics.push_back(std::move(d));
    }
    ++scanned_count;
  }

  for (const mstlint::Diagnostic& d : diagnostics) {
    std::cout << mstlint::render(d) << '\n';
  }
  if (diagnostics.empty()) {
    std::cout << "mstlint: clean (" << scanned_count << " files)\n";
    return 0;
  }
  std::cout << "mstlint: " << diagnostics.size() << " error(s) in " << scanned_count
            << " files\n";
  return 1;
}
