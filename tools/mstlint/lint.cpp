#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace mstlint {

namespace {

// ---------------------------------------------------------------------------
// Rule table

const std::vector<RuleInfo> kRules = {
    {"lossy-float-format",
     "printf-style float conversion that is not %.17g",
     "Reports are compared byte-for-byte across thread counts and re-parsed "
     "by downstream tooling; only %.17g (max_digits10) round-trips every "
     "double.  Human-facing renderers are allowlisted by file."},
    {"stream-precision",
     "std::setprecision(<17), std::fixed or std::scientific on a stream",
     "Stream manipulators silently truncate doubles below round-trip "
     "precision; machine-readable writers must go through %.17g."},
    {"raw-double-stream",
     "operator<< on a double at default (6-digit) ostream precision",
     "The default ostream precision is display-lossy; CSV/JSON columns "
     "produced this way cannot be compared or re-parsed exactly."},
    {"ambient-rng",
     "rand()/srand()/std::random_device/mt19937/time() seeding",
     "Every random draw must flow from an explicit seed (SolveOptions::seed "
     "or the sweep spec) through mst::Rng, or runs are not reproducible "
     "bit-for-bit across machines and standard libraries."},
    {"unordered-container",
     "std::unordered_{map,set} in deterministic-output code",
     "Hash-table iteration order is implementation-defined; one pass over "
     "an unordered container in a reporter, runner or spec path breaks the "
     "byte-identical-output contract.  Use std::map/std::set or sorted "
     "vectors."},
    {"zero-alloc",
     "allocation inside a `// mstlint: zero-alloc` region",
     "The counting hot paths and the simulator event loop promise zero "
     "steady-state heap traffic (pinned dynamically by the alloc probe); "
     "naked new/malloc or a local allocating container breaks that promise "
     "off the probe's radar.  `thread_local` is banned in the regions too: "
     "the zero-alloc paths take their scratch explicitly (SolveOptions::"
     "scratch / *_into parameters), and a hidden per-thread static both "
     "defeats that discipline and lazily constructs — possibly allocating — "
     "on each new thread's first touch, invisible to the probe."},
    {"registry-supports",
     "Registry entry whose AlgorithmInfo omits the supports field",
     "An AlgorithmInfo literal that stops before `supports` silently "
     "advertises identical-tasks-only; every entry must state its "
     "capability row explicitly so the matrix is reviewable."},
    {"layering",
     "#include that jumps to a higher (or unrelated) module layer",
     "The library is layered common -> platform -> workload -> schedule -> "
     "core -> baselines -> heuristics -> sim -> analysis -> api -> "
     "scenario; an upward include couples an inner algorithm to the "
     "registry/report surface and makes the layers untestable in "
     "isolation.  The allowed edges are data in tools/mstlint/lint.cpp."},
    {"include-cycle",
     "cycle in the project #include graph",
     "A header cycle means neither file can be understood (or compiled "
     "standalone) without the other; the one-TU-per-header gate and the "
     "layer DAG both presuppose an acyclic graph."},
    {"shared-mutable-state",
     "static-storage mutable state with no thread-safety story",
     "The sweep runner fans cells over a thread pool; a naked mutable "
     "global or function-local static is a data race waiting for the "
     "second thread.  Static state must be const/constexpr, thread_local, "
     "a synchronization primitive, or carry MST_GUARDED_BY(mutex)."},
    {"allow-justification",
     "mstlint suppression without a `-- reason` justification",
     "Suppressions are part of the reviewed source contract; an allow() "
     "with no recorded reason is indistinguishable from a silenced bug."},
    {"bad-directive",
     "malformed or unbalanced `// mstlint:` directive",
     "Directives the analyzer cannot parse would otherwise be dead "
     "comments that look like active suppressions."},
};

// Files allowlisted for human-facing float output: fixed-precision table
// alignment and SVG pixel coordinates are display formats, not data.
bool float_rules_allowlisted(const std::string& path) {
  const auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() && path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with("src/mst/common/table.cpp") || ends_with("src/mst/schedule/svg.cpp");
}

// The registry-supports rule only has meaning where AlgorithmInfo literals
// are registered (and in the self-test fixtures, which carry the marker in
// their file name).
bool registry_rule_applies(const std::string& path) {
  return path.find("registry") != std::string::npos;
}

// ---------------------------------------------------------------------------
// Comment/string stripping
//
// One pass over the raw text keeps three synchronized views per line: the
// original text (directive parsing), the code with comments and literal
// bodies blanked out (token rules), and the collected string-literal bodies
// (format-string rules).

struct Stripped {
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::pair<int, std::string>> strings;  // 1-based line, body
};

Stripped strip(const std::string& content) {
  Stripped out;
  {
    std::string line;
    std::istringstream is(content);
    while (std::getline(is, line)) out.raw.push_back(line);
    if (out.raw.empty()) out.raw.emplace_back();
  }

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string literal;
  int literal_line = 0;

  out.code.reserve(out.raw.size());
  for (std::size_t li = 0; li < out.raw.size(); ++li) {
    const std::string& raw = out.raw[li];
    std::string code;
    code.reserve(raw.size());
    if (state == State::kLineComment) state = State::kCode;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            i = raw.size();  // rest of the line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            code += "  ";
            ++i;
          } else if (c == '"') {
            state = State::kString;
            literal.clear();
            literal_line = static_cast<int>(li) + 1;
            code += '"';
          } else if (c == '\'') {
            state = State::kChar;
            code += '\'';
          } else {
            code += c;
          }
          break;
        case State::kLineComment:
          break;  // unreachable: handled by the line reset above
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            code += "  ";
            ++i;
          } else {
            code += ' ';
          }
          break;
        case State::kString:
          if (c == '\\' && i + 1 < raw.size()) {
            literal += c;
            literal += next;
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            out.strings.emplace_back(literal_line, literal);
            code += '"';
          } else {
            literal += c;
          }
          break;
        case State::kChar:
          if (c == '\\' && i + 1 < raw.size()) {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            code += '\'';
          }
          break;
      }
    }
    // An unterminated string at end of line (not legal C++ outside raw
    // literals, which this tree does not use) degrades to "close it here".
    if (state == State::kString) {
      state = State::kCode;
      out.strings.emplace_back(literal_line, literal);
    }
    out.code.push_back(std::move(code));
  }

  // Preprocessor directives are not code to the token rules: `#include
  // <unordered_map>` names a banned token without using it, and the use
  // sites are what the rules exist to flag.  String literals inside
  // directives (e.g. a format string in a #define) were already collected
  // above and stay visible to the format rules.
  bool continuation = false;
  for (std::string& code : out.code) {
    const std::size_t first = code.find_first_not_of(" \t");
    const bool directive =
        continuation || (first != std::string::npos && code[first] == '#');
    if (directive) {
      const std::size_t last = code.find_last_not_of(" \t");
      continuation = last != std::string::npos && code[last] == '\\';
      std::fill(code.begin(), code.end(), ' ');
    } else {
      continuation = false;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Directives

struct Allow {
  std::vector<std::string> rules;
  bool justified = false;
  bool next_line = false;
};

struct Directives {
  std::map<int, Allow> allows;        // by 1-based line
  std::vector<std::pair<int, int>> zero_alloc;  // [begin, end] line ranges
  std::vector<Diagnostic> errors;     // meta-diagnostics (never suppressible)
};

void parse_allow(const std::string& file, int line, const std::string& args,
                 const std::string& tail, bool next_line, Directives& out) {
  Allow allow;
  allow.next_line = next_line;
  std::string id;
  std::istringstream is(args);
  while (std::getline(is, id, ',')) {
    // Trim.
    const auto b = id.find_first_not_of(" \t");
    const auto e = id.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    id = id.substr(b, e - b + 1);
    if (!known_rule(id)) {
      out.errors.push_back({file, line, "bad-directive",
                            "allow() names unknown rule '" + id + "'; see --list-rules"});
      continue;
    }
    allow.rules.push_back(id);
  }
  // The justification is everything after ` -- `, and must be non-empty.
  const auto dashes = tail.find("--");
  if (dashes != std::string::npos) {
    const std::string reason = tail.substr(dashes + 2);
    allow.justified = reason.find_first_not_of(" \t") != std::string::npos;
  }
  if (!allow.justified) {
    out.errors.push_back({file, line, "allow-justification",
                          "suppression needs a justification: `// mstlint: allow(rule) -- why`"});
  }
  out.allows[line] = std::move(allow);
}

Directives parse_directives(const std::string& file, const std::vector<std::string>& raw) {
  static const std::regex kDirective(R"(//\s*mstlint:\s*(.*)$)");
  static const std::regex kAllow(R"(^(allow|allow-next-line)\s*\(([^)]*)\)\s*(.*)$)");
  Directives out;
  int region_begin = 0;  // 0: not in a region
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const int line = static_cast<int>(li) + 1;
    std::smatch m;
    if (!std::regex_search(raw[li], m, kDirective)) continue;
    const std::string body = m[1];
    std::smatch am;
    if (std::regex_match(body, am, kAllow)) {
      parse_allow(file, line, am[2], am[3], am[1] == "allow-next-line", out);
    } else if (body.rfind("zero-alloc", 0) == 0 && body.rfind("zero-alloc-end", 0) != 0) {
      if (region_begin != 0) {
        out.errors.push_back({file, line, "bad-directive",
                              "nested `zero-alloc` region (previous begins at line " +
                                  std::to_string(region_begin) + ")"});
      } else {
        region_begin = line;
      }
    } else if (body.rfind("zero-alloc-end", 0) == 0) {
      if (region_begin == 0) {
        out.errors.push_back(
            {file, line, "bad-directive", "`zero-alloc-end` without a matching `zero-alloc`"});
      } else {
        out.zero_alloc.emplace_back(region_begin, line);
        region_begin = 0;
      }
    } else {
      out.errors.push_back({file, line, "bad-directive",
                            "unrecognized directive `// mstlint: " + body + "`"});
    }
  }
  if (region_begin != 0) {
    out.errors.push_back({file, region_begin, "bad-directive",
                          "`zero-alloc` region is never closed (`// mstlint: zero-alloc-end`)"});
  }
  return out;
}

bool suppressed(const Directives& directives, int line, const std::string& rule) {
  const auto hit = [&](int at, bool want_next) {
    const auto it = directives.allows.find(at);
    if (it == directives.allows.end() || it->second.next_line != want_next) return false;
    const auto& rules = it->second.rules;
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
  };
  return hit(line, /*want_next=*/false) || hit(line - 1, /*want_next=*/true);
}

// ---------------------------------------------------------------------------
// Individual rules

void add(std::vector<Diagnostic>& out, const std::string& file, int line, const char* rule,
         std::string message) {
  out.push_back({file, line, rule, std::move(message)});
}

/// printf float conversions inside string literals.  `%%` is an escaped
/// percent, `%.17g` is the sanctioned exact spelling; everything else in
/// the aAeEfFgG family is display-lossy.
void rule_lossy_format(const std::string& file, const Stripped& stripped,
                       std::vector<Diagnostic>& out) {
  static const std::regex kSpec(R"(%[-+ #0']*(?:[0-9]+|\*)?(?:\.(?:[0-9]+|\*))?[aAeEfFgG])");
  for (const auto& [line, body] : stripped.strings) {
    std::string text = body;
    for (auto pos = text.find("%%"); pos != std::string::npos; pos = text.find("%%")) {
      text.erase(pos, 2);
    }
    for (std::sregex_iterator it(text.begin(), text.end(), kSpec), end; it != end; ++it) {
      const std::string spec = it->str();
      if (spec == "%.17g") continue;
      add(out, file, line, "lossy-float-format",
          "float format '" + spec + "' is not round-trip exact; use %.17g");
    }
  }
}

void rule_stream_precision(const std::string& file, const Stripped& stripped,
                           std::vector<Diagnostic>& out) {
  static const std::regex kSetPrecision(R"(\bsetprecision\s*\(\s*([0-9]*)\s*\))");
  static const std::regex kManipulator(R"(\bstd\s*::\s*(fixed|scientific)\b)");
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    const std::string& code = stripped.code[li];
    const int line = static_cast<int>(li) + 1;
    for (std::sregex_iterator it(code.begin(), code.end(), kSetPrecision), end; it != end;
         ++it) {
      const std::string digits = (*it)[1];
      if (!digits.empty() && std::stoi(digits) >= 17) continue;
      add(out, file, line, "stream-precision",
          digits.empty()
              ? "setprecision with a non-constant argument cannot be verified round-trip exact"
              : "setprecision(" + digits + ") truncates doubles; need >= 17 or %.17g");
    }
    for (std::sregex_iterator it(code.begin(), code.end(), kManipulator), end; it != end;
         ++it) {
      add(out, file, line, "stream-precision",
          "std::" + (*it)[1].str() + " renders doubles display-lossy");
    }
  }
}

/// Heuristic for default-precision streaming: identifiers declared
/// double/float in this file, streamed with `<<`; plus streaming the
/// library's known double-returning `throughput()`.
void rule_raw_double_stream(const std::string& file, const Stripped& stripped,
                            std::vector<Diagnostic>& out) {
  static const std::regex kDecl(R"(\b(?:double|float)\s+([A-Za-z_]\w*))");
  static const std::regex kStreamed(R"(<<\s*([A-Za-z_]\w*)\b\s*([^\s]?))");
  static const std::regex kThroughput(R"(\bthroughput\s*\(\s*\))");
  std::vector<std::string> doubles;
  for (const std::string& code : stripped.code) {
    for (std::sregex_iterator it(code.begin(), code.end(), kDecl), end; it != end; ++it) {
      doubles.push_back((*it)[1]);
    }
  }
  std::sort(doubles.begin(), doubles.end());
  doubles.erase(std::unique(doubles.begin(), doubles.end()), doubles.end());
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    const std::string& code = stripped.code[li];
    const int line = static_cast<int>(li) + 1;
    for (std::sregex_iterator it(code.begin(), code.end(), kStreamed), end; it != end; ++it) {
      const std::string name = (*it)[1];
      const std::string after = (*it)[2];
      if (after == "(") continue;  // function call, not the tracked variable
      if (std::binary_search(doubles.begin(), doubles.end(), name)) {
        add(out, file, line, "raw-double-stream",
            "'" + name + "' is a double streamed at default ostream precision; render via "
            "%.17g (scenario reports) or a fixed-precision table cell");
      }
    }
    std::smatch tp;
    if (std::regex_search(code, tp, kThroughput)) {
      const auto shift = code.find("<<");
      if (shift != std::string::npos &&
          static_cast<std::size_t>(tp.position(0)) > shift) {
        add(out, file, line, "raw-double-stream",
            "throughput() is a double streamed at default ostream precision; render via "
            "%.17g or a table cell");
      }
    }
  }
}

void rule_ambient_rng(const std::string& file, const Stripped& stripped,
                      std::vector<Diagnostic>& out) {
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const std::vector<Pattern> kPatterns = {
      {std::regex(R"(\b(?:std\s*::\s*)?s?rand\s*\()"), "rand()/srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bmt19937(?:_64)?\b)"),
       "std::mt19937 (implementation-pinned mst::Rng only)"},
      {std::regex(R"(\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\))"), "time() seeding"},
      {std::regex(R"(\bsystem_clock\b)"), "wall-clock (system_clock) seeding"},
  };
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    for (const Pattern& p : kPatterns) {
      if (std::regex_search(stripped.code[li], p.re)) {
        add(out, file, static_cast<int>(li) + 1, "ambient-rng",
            std::string(p.what) + " is nondeterministic; seeds must flow from "
            "SolveOptions/the sweep spec through mst::Rng");
      }
    }
  }
}

void rule_unordered(const std::string& file, const Stripped& stripped,
                    std::vector<Diagnostic>& out) {
  static const std::regex kUnordered(R"(\bunordered_(?:map|set|multimap|multiset)\b)");
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    if (std::regex_search(stripped.code[li], kUnordered)) {
      add(out, file, static_cast<int>(li) + 1, "unordered-container",
          "unordered container iteration order is implementation-defined; use "
          "std::map/std::set or a sorted vector");
    }
  }
}

/// Allocation tokens inside `// mstlint: zero-alloc` regions.  Warm-scratch
/// mutation (`scratch.x.push_back` onto reserved capacity) is the sanctioned
/// idiom and stays legal — the dynamic alloc probe owns that half of the
/// contract; this rule catches the statically-visible allocations.
void rule_zero_alloc(const std::string& file, const Stripped& stripped,
                     const Directives& directives, std::vector<Diagnostic>& out) {
  static const std::regex kNew(R"((^|[^.\w])new\b)");
  static const std::regex kCAlloc(R"(\b(?:malloc|calloc|realloc|strdup|aligned_alloc)\s*\()");
  static const std::regex kMakeSmart(R"(\bmake_(?:unique|shared)\b)");
  static const std::regex kToString(R"(\bto_string\s*\()");
  static const std::regex kThreadLocal(R"(\bthread_local\b)");
  static const std::regex kContainer(
      R"(\b(?:std\s*::\s*)?(vector|deque|list|forward_list|map|set|multimap|multiset|string|stringstream|ostringstream|istringstream|function|queue|priority_queue|stack|shared_ptr|unique_ptr)\b)");

  for (const auto& [begin, end_line] : directives.zero_alloc) {
    for (int line = begin; line <= end_line; ++line) {
      const std::string& code = stripped.code[static_cast<std::size_t>(line) - 1];
      if (std::regex_search(code, kNew)) {
        add(out, file, line, "zero-alloc", "naked `new` inside a zero-alloc region");
      }
      if (std::regex_search(code, kCAlloc)) {
        add(out, file, line, "zero-alloc", "C allocation call inside a zero-alloc region");
      }
      if (std::regex_search(code, kMakeSmart)) {
        add(out, file, line, "zero-alloc",
            "make_unique/make_shared allocates inside a zero-alloc region");
      }
      if (std::regex_search(code, kToString)) {
        add(out, file, line, "zero-alloc",
            "to_string builds a heap string inside a zero-alloc region");
      }
      if (std::regex_search(code, kThreadLocal)) {
        add(out, file, line, "zero-alloc",
            "thread_local inside a zero-alloc region: pass scratch explicitly "
            "(SolveOptions::scratch / an _into parameter) — a hidden per-thread "
            "static lazily constructs on each new thread, off the probe's radar");
      }
      // Container mentions are fine as references/pointers/nested types;
      // a value declaration or temporary owns an allocation.
      for (std::sregex_iterator it(code.begin(), code.end(), kContainer), rend; it != rend;
           ++it) {
        std::size_t pos = static_cast<std::size_t>(it->position(0)) + it->str().size();
        // Skip a balanced template argument list on this line.
        while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) ++pos;
        if (pos < code.size() && code[pos] == '<') {
          int depth = 0;
          while (pos < code.size()) {
            if (code[pos] == '<') ++depth;
            if (code[pos] == '>' && --depth == 0) {
              ++pos;
              break;
            }
            ++pos;
          }
          while (pos < code.size() && std::isspace(static_cast<unsigned char>(code[pos]))) {
            ++pos;
          }
        }
        if (pos >= code.size()) continue;  // type continues next line: reference-safe uses only
        const char c = code[pos];
        if (c == '&' || c == '*' || c == ':' || c == ',' || c == '>' || c == ')' || c == ';') {
          continue;  // reference, pointer, nested type or bare template argument
        }
        add(out, file, line, "zero-alloc",
            "allocating container declared or constructed inside a zero-alloc region");
      }
    }
  }
}

/// AlgorithmInfo literals passed to Registry::add must spell all six fields:
/// kind, name, summary, optimal, exponential, supports.
void rule_registry_supports(const std::string& file, const Stripped& stripped,
                            std::vector<Diagnostic>& out) {
  // Flatten with a per-character line map so literals spanning lines work.
  std::string flat;
  std::vector<int> line_of;
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    for (const char c : stripped.code[li]) {
      flat += c;
      line_of.push_back(static_cast<int>(li) + 1);
    }
    flat += '\n';
    line_of.push_back(static_cast<int>(li) + 1);
  }

  static const std::regex kAddBrace(R"(\badd\s*\(\s*\{)");
  for (std::sregex_iterator it(flat.begin(), flat.end(), kAddBrace), end; it != end; ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position(0)) + it->str().size() - 1;
    int depth = 0;
    int commas = 0;
    std::size_t pos = open;
    for (; pos < flat.size(); ++pos) {
      const char c = flat[pos];
      if (c == '{' || c == '(' || c == '[') ++depth;
      if (c == '}' || c == ')' || c == ']') {
        --depth;
        if (depth == 0) break;
      }
      if (c == ',' && depth == 1) ++commas;
    }
    const int fields = commas + 1;
    if (fields != 6) {
      add(out, file, line_of[static_cast<std::size_t>(it->position(0))], "registry-supports",
          "AlgorithmInfo literal has " + std::to_string(fields) +
              " fields; spell all 6 (kind, name, summary, optimal, exponential, supports) — "
              "an implicit supports row silently advertises identical-only workloads");
    }
  }
}

/// The shared-mutable-state rule patrols library code (and the self-test
/// fixtures, which carry the marker in their file name); tests and
/// experiment binaries are single-threaded drivers.
bool shared_state_rule_applies(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("shared_state") != std::string::npos;
}

/// `static`-storage mutable state with no thread-safety story.  A flagged
/// declaration head is one that is not const/constexpr, not thread_local,
/// not itself a synchronization primitive, and not annotated with
/// MST_GUARDED_BY.  Function declarations (a `(` before any `=` in the
/// head) are skipped — they declare code, not state.
void rule_shared_mutable_state(const std::string& file, const Stripped& stripped,
                               std::vector<Diagnostic>& out) {
  // Flatten with a per-character line map so declarations spanning lines
  // are judged whole.
  std::string flat;
  std::vector<int> line_of;
  for (std::size_t li = 0; li < stripped.code.size(); ++li) {
    for (const char c : stripped.code[li]) {
      flat += c;
      line_of.push_back(static_cast<int>(li) + 1);
    }
    flat += '\n';
    line_of.push_back(static_cast<int>(li) + 1);
  }

  static const std::regex kStatic(R"(\bstatic\b)");
  static const std::regex kExempt(
      R"(\b(?:const|constexpr|consteval|thread_local|atomic(?:_[a-z0-9_]+)?|mutex|Mutex|once_flag|condition_variable)\b|MST_GUARDED_BY|MST_PT_GUARDED_BY)");
  for (std::sregex_iterator it(flat.begin(), flat.end(), kStatic), end; it != end; ++it) {
    const std::size_t at = static_cast<std::size_t>(it->position(0));
    // Declaration head: from the start of the statement's line to the first
    // `;` or `{` (brace-init heads keep scanning to the closing `;`).
    std::size_t begin = flat.rfind('\n', at);
    begin = begin == std::string::npos ? 0 : begin + 1;
    std::size_t pos = at;
    bool saw_assign = false;
    bool saw_call = false;
    while (pos < flat.size() && flat[pos] != ';' && flat[pos] != '{') {
      if (flat[pos] == '=') saw_assign = true;
      if (flat[pos] == '(' && !saw_assign) saw_call = true;
      ++pos;
    }
    if (saw_call) continue;  // function/method declaration, not state
    const std::string head = flat.substr(begin, pos - begin);
    if (std::regex_search(head, kExempt)) continue;
    add(out, file, line_of[at], "shared-mutable-state",
        "mutable static-storage state with no thread-safety story; make it "
        "const/constexpr or thread_local, use a sync primitive, or annotate "
        "with MST_GUARDED_BY(mutex)");
  }
}

// ---------------------------------------------------------------------------
// Tree-level passes: the include graph
//
// Layering and cycle detection need every file at once, so they run in
// `lint_tree`, not `lint_source`.  Both parse the raw lines (the code view
// blanks preprocessor directives on purpose).

/// The module layering, as data.  Key: directory under src/mst/.  Value:
/// the modules its headers and sources may include (its own module is
/// always allowed).  This is the single source of truth for the layer DAG;
/// the README diagram is generated from the same order.
const std::vector<std::pair<const char*, std::vector<const char*>>> kLayerDeps = {
    {"common", {}},
    {"obs", {"common"}},
    {"platform", {"common"}},
    {"workload", {"common"}},
    {"schedule", {"common", "platform", "workload"}},
    {"core", {"common", "platform", "workload", "schedule"}},
    {"baselines", {"common", "platform", "workload", "schedule", "core"}},
    {"heuristics", {"common", "platform", "workload", "schedule", "core", "baselines"}},
    {"sim",
     {"common", "obs", "platform", "workload", "schedule", "core", "baselines", "heuristics"}},
    {"analysis",
     {"common", "platform", "workload", "schedule", "core", "baselines", "heuristics", "sim"}},
    {"api",
     {"common", "obs", "platform", "workload", "schedule", "core", "baselines", "heuristics",
      "sim", "analysis"}},
    {"scenario",
     {"common", "obs", "platform", "workload", "schedule", "core", "baselines", "heuristics",
      "sim", "analysis", "api", "scenario/journal"}},
    // The sweep journal is a sub-module with a deliberately narrow surface:
    // persistence code may reach the cell/outcome types it serializes
    // (scenario) and the layers those types are made of (common, obs), but
    // never the solver stack — a journal that can invoke algorithms has
    // stopped being a journal.
    {"scenario/journal", {"common", "obs", "scenario"}},
};

/// Module of a file under the scanned root, or "" when the file is not
/// subject to layering (tools, tests, benches — and the umbrella
/// `src/mst/mst.hpp`, which re-exports every layer by design).
std::string module_of(const std::string& path) {
  static const std::string prefix = "src/mst/";
  if (path.rfind(prefix, 0) != 0) return {};
  const std::size_t slash = path.find('/', prefix.size());
  if (slash == std::string::npos) return {};  // src/mst/mst.hpp umbrella
  std::string module = path.substr(prefix.size(), slash - prefix.size());
  // journal.{hpp,cpp} form their own sub-module of scenario (see
  // kLayerDeps) so the persistence code's include surface is enforced
  // separately from the runner's.
  if (module == "scenario" && path.compare(slash + 1, 8, "journal.") == 0) {
    return "scenario/journal";
  }
  return module;
}

struct IncludeRef {
  int line = 0;
  std::string target;  ///< as written between the quotes
};

/// Quoted project includes, straight off the raw lines.
std::vector<IncludeRef> parse_includes(const std::string& content) {
  static const std::regex kInclude(R"inc(^\s*#\s*include\s*"([^"]+)")inc");
  std::vector<IncludeRef> out;
  std::istringstream is(content);
  std::string line;
  int number = 0;
  while (std::getline(is, line)) {
    ++number;
    std::smatch m;
    if (std::regex_search(line, m, kInclude)) out.push_back({number, m[1]});
  }
  return out;
}

struct FileRecord {
  std::string path;
  std::vector<IncludeRef> includes;
  Directives directives;
};

void check_layering(const std::vector<FileRecord>& records, std::vector<Diagnostic>& out) {
  for (const FileRecord& record : records) {
    const std::string from = module_of(record.path);
    if (from.empty()) continue;
    const auto layer =
        std::find_if(kLayerDeps.begin(), kLayerDeps.end(),
                     [&](const auto& entry) { return from == entry.first; });
    for (const IncludeRef& include : record.includes) {
      const std::string to = module_of("src/" + include.target);
      if (to.empty() || to == from) continue;
      const bool known = layer != kLayerDeps.end();
      const bool allowed =
          known && std::find_if(layer->second.begin(), layer->second.end(),
                                [&](const char* dep) { return to == dep; }) !=
                       layer->second.end();
      if (allowed) continue;
      std::string message = known
          ? "module '" + from + "' may not include '" + to +
                "' (layer order: common -> obs -> platform -> workload -> schedule -> "
                "core -> baselines -> heuristics -> sim -> analysis -> api -> scenario "
                "-> scenario/journal)"
          : "module '" + from + "' is not in the layer table; add it to kLayerDeps in "
            "tools/mstlint/lint.cpp";
      out.push_back({record.path, include.line, "layering", std::move(message)});
    }
  }
}

void check_cycles(const std::vector<FileRecord>& records, std::vector<Diagnostic>& out) {
  // File-level graph over project headers: edges follow `mst/...` includes
  // that resolve to a scanned file.  DFS; every back edge closes a cycle.
  std::map<std::string, const FileRecord*> by_path;
  for (const FileRecord& record : records) by_path[record.path] = &record;

  enum class Color { kWhite, kGray, kBlack };
  std::map<std::string, Color> color;
  std::vector<std::string> stack;

  struct Dfs {
    std::map<std::string, const FileRecord*>& by_path;
    std::map<std::string, Color>& color;
    std::vector<std::string>& stack;
    std::vector<Diagnostic>& out;

    void visit(const std::string& path) {
      color[path] = Color::kGray;
      stack.push_back(path);
      for (const IncludeRef& include : by_path[path]->includes) {
        const std::string target = "src/" + include.target;
        const auto it = by_path.find(target);
        if (it == by_path.end()) continue;
        const Color c = color.count(target) ? color[target] : Color::kWhite;
        if (c == Color::kGray) {
          // Render the cycle from the target's position on the stack.
          std::string chain;
          for (auto at = std::find(stack.begin(), stack.end(), target); at != stack.end();
               ++at) {
            chain += *at + " -> ";
          }
          chain += target;
          out.push_back({path, include.line, "include-cycle",
                         "#include closes a cycle: " + chain});
        } else if (c == Color::kWhite) {
          visit(target);
        }
      }
      stack.pop_back();
      color[path] = Color::kBlack;
    }
  };

  Dfs dfs{by_path, color, stack, out};
  for (const FileRecord& record : records) {
    if (!color.count(record.path)) dfs.visit(record.path);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

const std::vector<RuleInfo>& rules() { return kRules; }

bool known_rule(const std::string& id) {
  for (const RuleInfo& rule : kRules) {
    if (id == rule.id) return true;
  }
  return false;
}

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  const Stripped stripped = strip(content);
  const Directives directives = parse_directives(path, stripped.raw);

  std::vector<Diagnostic> found;
  if (!float_rules_allowlisted(path)) {
    rule_lossy_format(path, stripped, found);
    rule_stream_precision(path, stripped, found);
    rule_raw_double_stream(path, stripped, found);
  }
  rule_ambient_rng(path, stripped, found);
  rule_unordered(path, stripped, found);
  rule_zero_alloc(path, stripped, directives, found);
  if (registry_rule_applies(path)) rule_registry_supports(path, stripped, found);
  if (shared_state_rule_applies(path)) rule_shared_mutable_state(path, stripped, found);

  std::vector<Diagnostic> out;
  for (Diagnostic& d : found) {
    if (!suppressed(directives, d.line, d.rule)) out.push_back(std::move(d));
  }
  // Meta-diagnostics (malformed directives, missing justifications) are
  // never suppressible.
  for (const Diagnostic& d : directives.errors) out.push_back(d);
  std::stable_sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return a.line < b.line;
  });
  return out;
}

std::vector<Diagnostic> lint_tree(const std::string& root, std::vector<std::string>* scanned) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const fs::path rel = fs::relative(entry.path(), root);
      const std::string rel_str = rel.generic_string();
      // The analyzer's own sources spell the banned tokens as rule data;
      // its test and the fixture corpus spell the violations as data.
      if (rel_str.rfind("tools/mstlint/", 0) == 0) continue;
      if (rel_str.rfind("tests/data/lint/", 0) == 0) continue;
      if (rel_str == "tests/test_lint.cpp") continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      files.push_back(rel_str);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> out;
  std::vector<FileRecord> records;
  records.reserve(files.size());
  for (const std::string& file : files) {
    std::ifstream is(fs::path(root) / file, std::ios::binary);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    const std::string content = buffer.str();
    std::vector<Diagnostic> diags = lint_source(file, content);
    out.insert(out.end(), std::make_move_iterator(diags.begin()),
               std::make_move_iterator(diags.end()));
    FileRecord record;
    record.path = file;
    record.includes = parse_includes(content);
    record.directives = parse_directives(file, strip(content).raw);
    records.push_back(std::move(record));
    if (scanned != nullptr) scanned->push_back(file);
  }

  // Tree-level passes over the include graph; suppressions apply at the
  // offending #include's own file:line.
  std::vector<Diagnostic> graph;
  check_layering(records, graph);
  check_cycles(records, graph);
  std::map<std::string, const FileRecord*> by_path;
  for (const FileRecord& record : records) by_path[record.path] = &record;
  for (Diagnostic& d : graph) {
    if (!suppressed(by_path[d.file]->directives, d.line, d.rule)) out.push_back(std::move(d));
  }
  std::stable_sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    return a.file != b.file ? a.file < b.file : a.line < b.line;
  });
  return out;
}

std::string render(const Diagnostic& diagnostic) {
  std::ostringstream os;
  os << diagnostic.file << ':' << diagnostic.line << ": error: " << diagnostic.message << " ["
     << diagnostic.rule << ']';
  return os.str();
}

}  // namespace mstlint
