// mstctl — command-line front end to the library.
//
//   mstctl --mode=list      [--kind=chain|fork|spider|tree]
//   mstctl --mode=solve     --platform=FILE --algo=NAME|all --tasks=N [--seed=S]
//                           [--workload=FILE] [--metrics-out=FILE] [--trace-out=FILE]
//   mstctl --mode=max-tasks --platform=FILE --deadline=T
//                           [--algo=NAME|all] [--cap=K] [--seed=S] [--fast]
//                           [--workload=FILE]
//   mstctl --mode=count     --platform=FILE --tlim=T   # bare number (script-friendly)
//   mstctl --mode=stream    --platform=FILE [--workload=FILE | --tasks=N]
//                           [--algo=NAME|all] [--seed=S]
//                           [--metrics-out=FILE] [--trace-out=FILE]
//   mstctl --mode=schedule  --platform=FILE --tasks=N [--format=summary|gantt|svg|json|schedule]
//   mstctl --mode=sweep     --spec=FILE [--threads=N] [--out=csv|json]
//                           [--out-file=PATH] [--seed=S] [--cap=K]
//                           [--timing] [--check] [--reps=R]
//                           [--shard=i/N] [--journal=DIR]
//                           [--metrics-out=FILE] [--trace-out=FILE]
//   mstctl --mode=merge     --journal=DIR [--out=csv|json] [--out-file=PATH]
//                           [--timing]
//   mstctl --mode=validate  --schedule=FILE
//   mstctl --mode=rate      --platform=FILE
//   mstctl --mode=demo      [--dir=.]        # writes sample platform files
//
// Scheduling algorithms are resolved through the registry
// (mst/api/registry.hpp): `list` enumerates every registered
// (platform kind, algorithm) pair, `solve` dispatches the makespan form and
// `max-tasks` the decision form ("how many tasks fit in the window T?") by
// name.  Platform files use the text format of mst/platform/io.hpp (chain /
// fork / spider / tree) and are parsed into the typed `api::Platform`
// variant, so the header keyword of the file decides which algorithm family
// runs.  `--workload=FILE` loads a workload description
// (mst/workload/workload_io.hpp: task count plus optional per-task sizes
// and release dates); `solve` then schedules that workload (algorithms that
// do not support its features are skipped in `--algo=all` sweeps and
// rejected when named explicitly), and `max-tasks` draws its tasks from it
// as a finite pool.  `--seed` makes the randomized online policies
// reproducible.  Exit status is 0 on success, 1 on validation failure, 2 on
// usage errors.
//
// `sweep` runs a declarative scenario grid (mst/scenario/spec.hpp) through
// the parallel sweep runner and prints long-form CSV (default) or JSON.
// Output is byte-identical for a fixed spec seed at any --threads; --timing
// adds the (non-deterministic) wall_ms column, --check materializes every
// schedule and runs the feasibility checker on it.
//
// Distributed sweeps: `--shard=i/N` makes `sweep` execute only the cells
// whose canonical index is congruent to i mod N (per-cell seeds and
// same-platform batching within the shard are unchanged), and
// `--journal=DIR` gives the shard a crash-safe append-only journal — one
// fsync'd, checksummed record per completed cell — so a SIGKILL'd run
// resumes where it stopped, never recomputing completed cells.  `merge`
// reassembles the N shard journals into canonical grid order and emits
// CSV/JSON byte-identical to the single-process run's (README "Distributed
// sweeps").  Report files (--out-file, --metrics-out, --trace-out) are
// written atomically — temp file, then rename — so a crash mid-write never
// leaves a truncated report behind.
//
// `stream` runs the no-lookahead streaming driver (mst/sim/streaming.hpp):
// the workload's release dates arrive online, the policy never learns the
// task count, and the table reports per-task latency, peak master backlog
// and the regret against the exact offline optimum where one is registered.
// Only algorithms with the `streaming` capability qualify (`--algo=all`
// selects exactly those; see the workloads column of --mode=list).
//
// Observability (mst/obs/): `--metrics-out=FILE` writes the run's metric
// registry as JSON — counters/gauges/histograms whose values are
// deterministic, byte-identical at any --threads; wall-time-class entries
// are included only when --timing also asks for timing, mirroring the
// report column.  `--trace-out=FILE` writes a Chrome trace-event JSON file
// (open in https://ui.perfetto.dev or chrome://tracing): on solve/stream
// the sim-clock Gantt of the first selected algorithm's run — per-slave
// compute spans, per-link communication spans, master emissions — and on
// sweep a one-track-per-cell overview of the grid.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <type_traits>

#include "mst/mst.hpp"
#include "mst/scenario/journal.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

mst::api::Platform load_platform(const std::string& path) {
  try {
    return mst::api::parse_any_platform(slurp(path));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

/// `--workload=FILE`, when present.
std::optional<mst::Workload> load_workload(const mst::Args& args) {
  const std::string path = args.get("workload", "");
  if (path.empty()) return std::nullopt;
  try {
    return mst::parse_workload(slurp(path));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

/// Writes `text` to `path` atomically: the bytes land in `path + ".tmp"`
/// first and are renamed over the target (rename(2) is atomic on POSIX), so
/// a crash mid-write never leaves a truncated report behind — readers see
/// the old file or the new one, nothing in between.  Non-regular targets
/// (`--out-file=/dev/null`, a pipe) are written in place: renaming over a
/// device would replace it with a regular file.
void write_file_atomic(const std::string& path, const std::string& text) {
  std::error_code ec;
  const std::filesystem::file_status status = std::filesystem::status(path, ec);
  if (!ec && std::filesystem::exists(status) && !std::filesystem::is_regular_file(status)) {
    std::ofstream file(path);
    if (!file) throw std::invalid_argument("cannot write file: " + path);
    file << text;
    return;
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp);
    if (!file) throw std::invalid_argument("cannot write file: " + tmp);
    file << text;
    file.flush();
    if (!file) throw std::invalid_argument("cannot write file: " + tmp);
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::invalid_argument("cannot rename " + tmp + " over " + path + ": " +
                                ec.message());
  }
}

/// Observability sinks for `--metrics-out` / `--trace-out`.  Construct one
/// per mode invocation, point the library calls at `observation()`, then
/// `write()` the files; members stay disengaged when the flags are absent,
/// so un-instrumented runs carry no sinks at all.
struct ObsSinks {
  std::string metrics_path;
  std::string trace_path;
  std::optional<mst::obs::MetricsRegistry> metrics;
  std::optional<mst::obs::TraceSink> trace;

  explicit ObsSinks(const mst::Args& args)
      : metrics_path(args.get("metrics-out", "")), trace_path(args.get("trace-out", "")) {
    if (!metrics_path.empty()) metrics.emplace();
    if (!trace_path.empty()) trace.emplace();
  }

  [[nodiscard]] mst::obs::MetricsRegistry* metrics_ptr() {
    return metrics.has_value() ? &*metrics : nullptr;
  }
  [[nodiscard]] mst::obs::TraceSink* trace_ptr() {
    return trace.has_value() ? &*trace : nullptr;
  }
  [[nodiscard]] mst::obs::Observation observation() {
    return {metrics_ptr(), trace_ptr()};
  }

  /// Writes whichever files were requested (atomically — see
  /// write_file_atomic).  `include_wall_time` admits wall-time-class
  /// metrics into the JSON (mirroring --timing); the default output is
  /// deterministic.
  void write(bool include_wall_time = false) const {
    if (metrics.has_value()) {
      write_file_atomic(metrics_path, metrics->to_json(include_wall_time));
      std::cout << "wrote metrics to " << metrics_path << "\n";
    }
    if (trace.has_value()) {
      write_file_atomic(trace_path, trace->to_chrome_json());
      std::cout << "wrote trace to " << trace_path << "\n";
    }
  }
};

/// Per-call options from the shared flags (`--seed`, `--cap`).
mst::api::SolveOptions solve_options(const mst::Args& args, std::int64_t default_cap = 1 << 20) {
  mst::api::SolveOptions options;
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::int64_t cap = args.get_int("cap", default_cap);
  if (cap < 1) throw std::invalid_argument("--cap must be >= 1");
  options.cap = static_cast<std::size_t>(cap);
  return options;
}

int run_list(const mst::Args& args) {
  using namespace mst;
  const std::string filter = args.get("kind", "");
  if (!filter.empty() && !api::platform_kind_from(filter)) {
    std::cerr << "unknown --kind=" << filter << " (expected chain|fork|spider|tree)\n";
    return 2;
  }
  Table table({"kind", "algorithm", "optimal", "workloads", "summary"});
  for (const api::AlgorithmInfo& info : api::registry().list()) {
    if (!filter.empty() && to_string(info.kind) != filter) continue;
    table.row()
        .cell(to_string(info.kind))
        .cell(info.name)
        .cell(info.optimal ? "yes" : "no")
        .cell(to_string(info.supports))
        .cell(info.summary + (info.exponential ? " [exponential]" : ""));
  }
  table.print(std::cout);
  return 0;
}

std::size_t task_count(const mst::Args& args) {
  const std::int64_t n = args.get_int("tasks", 10);
  if (n < 1) throw std::invalid_argument("--tasks must be >= 1");
  return static_cast<std::size_t>(n);
}

/// Resolves `--algo=NAME|all` against the registry, skipping exponential
/// entries in `all` sweeps when `skip_exponential` says the instance is too
/// big for them.
std::vector<mst::api::AlgorithmInfo> select_algorithms(const mst::Args& args,
                                                       mst::api::PlatformKind kind,
                                                       bool skip_exponential,
                                                       const char* skip_reason) {
  using namespace mst;
  const std::string algo = args.get("algo", "all");
  std::vector<api::AlgorithmInfo> selected;
  if (algo == "all") {
    for (const api::AlgorithmInfo& info : api::registry().list(kind)) {
      if (info.exponential && skip_exponential) {
        std::cout << "(skipping " << info.name << ": " << skip_reason << ")\n";
        continue;
      }
      selected.push_back(info);
    }
  } else {
    const api::AlgorithmInfo* info = api::registry().info(kind, algo);
    if (info == nullptr) {
      throw std::invalid_argument("no algorithm '" + algo + "' for " + to_string(kind) +
                                  " platforms; see --mode=list");
    }
    selected.push_back(*info);
  }
  return selected;
}

/// In `--algo=all` sweeps, drops entries that cannot handle the workload's
/// features (a named algorithm is still rejected loudly by the registry).
void skip_unsupported(std::vector<mst::api::AlgorithmInfo>& selected,
                      const mst::Workload& workload) {
  using namespace mst;
  if (!workload.features().any()) return;
  std::erase_if(selected, [&](const api::AlgorithmInfo& info) {
    if (workload.features().subset_of(info.supports)) return false;
    std::cout << "(skipping " << info.name << ": no support for "
              << to_string(workload.features()) << " workloads)\n";
    return true;
  });
}

int run_solve(const mst::Args& args) {
  using namespace mst;
  const api::Platform platform = load_platform(args.get("platform", ""));
  const api::PlatformKind kind = api::kind_of(platform);
  const std::optional<Workload> workload = load_workload(args);
  const std::size_t n = workload ? workload->count() : task_count(args);
  ObsSinks obs(args);
  api::SolveOptions options = solve_options(args);
  options.metrics = obs.metrics_ptr();

  std::cout << "platform : " << api::describe(platform) << "\n";
  if (workload) {
    std::cout << "workload : " << workload->describe() << "\n\n";
  } else {
    std::cout << "tasks    : " << n << "\n\n";
  }

  // Brute force is exponential in n; only sweep it on small instances.
  std::vector<api::AlgorithmInfo> selected =
      select_algorithms(args, kind, n > 10, "exponential, tasks > 10");
  if (workload && args.get("algo", "all") == "all") skip_unsupported(selected, *workload);

  Table table({"algorithm", "optimal", "makespan", "lower bound", "throughput", "feasible"});
  bool all_feasible = true;
  bool traced = false;
  for (const api::AlgorithmInfo& info : selected) {
    const api::SolveResult result =
        workload ? api::registry().solve(platform, info.name, *workload, options)
                 : api::registry().solve(platform, info.name, n, options);
    const FeasibilityReport report = api::check_feasibility(result);
    all_feasible = all_feasible && report.ok();
    // The trace carries one Gantt: the first selected algorithm's schedule,
    // replayed operationally on the tree embedding (metrics keep counting
    // across the whole table).
    if (!traced && obs.trace.has_value() &&
        !std::holds_alternative<std::monostate>(result.schedule)) {
      api::replay_schedule(result, obs.observation());
      traced = true;
    }
    table.row()
        .cell(result.algorithm)
        .cell(result.optimal ? "yes" : "no")
        .cell(result.makespan)
        .cell(result.lower_bound)
        .cell(result.throughput(), 4)
        .cell(report.ok() ? "yes" : report.summary());
  }
  table.print(std::cout);
  obs.write();
  return all_feasible ? 0 : 1;
}

int run_max_tasks(const mst::Args& args) {
  using namespace mst;
  const api::Platform platform = load_platform(args.get("platform", ""));
  const api::PlatformKind kind = api::kind_of(platform);
  const Time deadline = args.get_int("deadline", args.get_int("tlim", 100));
  api::SolveOptions options = solve_options(args);
  // `--fast` takes the count/makespan-only path: no placement vectors are
  // materialized and no feasibility check runs.
  options.materialize = !args.has("fast");
  const std::optional<Workload> workload = load_workload(args);
  if (workload) options.workload = std::make_shared<const Workload>(*workload);

  std::cout << "platform : " << api::describe(platform) << "\n";
  std::cout << "deadline : " << deadline << "\n";
  if (workload) std::cout << "workload : " << workload->describe() << "\n";
  std::cout << "\n";

  std::vector<api::AlgorithmInfo> selected;
  if (args.has("algo")) {
    selected = select_algorithms(args, kind, true, "exponential; pass --algo=brute-force");
    if (workload && args.get("algo", "") == "all") skip_unsupported(selected, *workload);
  } else {
    // Default: the exact algorithm (or the strongest heuristic for trees);
    // when it cannot handle the workload's features, the first
    // non-exponential entry that can.
    std::string name = api::default_algorithm(kind);
    if (workload && !api::registry().supports(kind, name, workload->features())) {
      for (const api::AlgorithmInfo& info : api::registry().list(kind)) {
        if (!info.exponential && workload->features().subset_of(info.supports)) {
          name = info.name;
          break;
        }
      }
    }
    selected.push_back(*api::registry().info(kind, name));
  }

  Table table({"algorithm", "optimal", "tasks", "makespan", "tasks/T", "feasible"});
  bool all_feasible = true;
  for (const api::AlgorithmInfo& info : selected) {
    api::SolveOptions algo_options = options;
    // An exhaustive oracle re-searches every count up to the cap; an
    // uncapped window would hang.  Mirror the solve-mode small-instance
    // rule unless the user sized the cap themselves.
    if (info.exponential && !args.has("cap") && algo_options.cap > 10) {
      std::cout << "(" << info.name << ": exponential, capping the count at 10; "
                   "pass --cap to raise)\n";
      algo_options.cap = 10;
    }
    const api::DecisionResult result =
        api::registry().solve_within(platform, info.name, deadline, algo_options);
    std::string feasible = "unchecked";
    if (options.materialize) {
      const FeasibilityReport report = api::check_feasibility(result);
      all_feasible = all_feasible && report.ok();
      feasible = report.ok() ? "yes" : report.summary();
    }
    table.row()
        .cell(result.algorithm)
        .cell(result.optimal ? "yes" : "no")
        .cell(result.tasks)
        .cell(result.makespan)
        .cell(result.throughput(), 4)
        .cell(feasible);
  }
  table.print(std::cout);
  return all_feasible ? 0 : 1;
}

/// --mode=stream: the no-lookahead driver over the workload's arrival
/// stream.  Defaults: `--tasks=N` identical tasks all released at 0 (the
/// equivalence baseline), every streaming-capable algorithm of the kind.
int run_stream_mode(const mst::Args& args) {
  using namespace mst;
  const api::Platform platform = load_platform(args.get("platform", ""));
  const api::PlatformKind kind = api::kind_of(platform);
  const std::optional<Workload> loaded = load_workload(args);
  const Workload workload = loaded ? *loaded : Workload::identical(task_count(args));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  WorkloadFeatures requested = workload.features();
  requested.streaming = true;
  std::vector<api::AlgorithmInfo> selected;
  const std::string algo = args.get("algo", "all");
  if (algo == "all") {
    for (const api::AlgorithmInfo& info : api::registry().list(kind)) {
      if (requested.subset_of(info.supports)) selected.push_back(info);
    }
    if (selected.empty()) {
      std::cerr << "no streaming-capable algorithm for " << to_string(kind)
                << " platforms supports " << to_string(workload.features())
                << " workloads (see --mode=list)\n";
      return 2;
    }
  } else {
    const api::AlgorithmInfo* info = api::registry().info(kind, algo);
    if (info == nullptr) {
      throw std::invalid_argument("no algorithm '" + algo + "' for " + to_string(kind) +
                                  " platforms; see --mode=list");
    }
    selected.push_back(*info);  // run_stream rejects non-streaming entries loudly
  }

  std::cout << "platform : " << api::describe(platform) << "\n";
  std::cout << "workload : " << workload.describe() << " (arrivals stream online)\n\n";

  ObsSinks obs(args);
  Table table({"algorithm", "tasks", "makespan", "mean latency", "max latency", "backlog",
               "offline", "regret"});
  bool first = true;
  for (const api::AlgorithmInfo& info : selected) {
    // Metrics aggregate over the whole table; the trace carries the first
    // selected algorithm's run only — one Gantt per file.
    const obs::Observation observation{obs.metrics_ptr(),
                                       first ? obs.trace_ptr() : nullptr};
    first = false;
    const api::StreamOutcome result = api::run_stream(platform, info.name, workload, seed,
                                                      api::registry(), /*attach_reference=*/true,
                                                      observation);
    Table& row = table.row();
    row.cell(result.algorithm)
        .cell(result.tasks)
        .cell(result.makespan)
        .cell(result.metrics.mean_latency, 2)
        .cell(result.metrics.max_latency)
        .cell(result.metrics.peak_backlog);
    if (result.offline_makespan > 0) {
      row.cell(result.offline_makespan);
    } else {
      row.cell("-");
    }
    if (result.regret >= 0) {
      row.cell(result.regret, 4);
    } else {
      row.cell("-");
    }
  }
  table.print(std::cout);
  obs.write();
  return 0;
}

// The legacy count mode keeps its bare-number output contract (scripts do
// `count=$(mstctl --mode=count ...)`), including the old --tlim/--cap
// defaults, but now answers for every platform kind through the registry.
int run_count(const mst::Args& args) {
  using namespace mst;
  const api::Platform platform = load_platform(args.get("platform", ""));
  const Time deadline = args.get_int("tlim", args.get_int("deadline", 100));
  const api::SolveOptions options = solve_options(args, /*default_cap=*/100000);
  const std::string algo = args.get("algo", api::default_algorithm(api::kind_of(platform)));
  std::cout << api::registry().max_tasks(platform, algo, deadline, options) << "\n";
  return 0;
}

/// Tree branch of --mode=schedule: trees produce dispatch plans, not
/// link-level schedules, so the rendering is the operational replay
/// timeline of `sim::simulate_dispatch` (dispatch_render.hpp).
int run_schedule_tree(const mst::Args& args, const mst::api::Platform& platform) {
  using namespace mst;
  const std::string format = args.get("format", "summary");
  if (format != "summary" && format != "gantt") {
    std::cerr << "tree dispatch plans render as --format=summary|gantt "
                 "(no link-level timing for svg/json/schedule)\n";
    return 2;
  }
  const std::size_t n = task_count(args);
  const std::string algo = args.get("algo", api::default_algorithm(api::PlatformKind::kTree));
  const api::SolveResult result =
      api::registry().solve(platform, algo, n, solve_options(args));
  const auto& dispatch = std::get<api::TreeDispatch>(result.schedule);
  const sim::SimResult replay = sim::simulate_dispatch(dispatch.tree, dispatch.dests);
  const Time scale = std::max<Time>(1, replay.makespan / 100);
  if (format == "summary") {
    std::cout << "platform : " << api::describe(platform) << "\n";
    std::cout << "tasks    : " << n << "\n";
    std::cout << "algorithm: " << result.algorithm << "\n";
    std::cout << "makespan : " << result.makespan << " (replay " << replay.makespan << ")\n";
    for (NodeId v = 1; v < dispatch.tree.size(); ++v) {
      std::cout << "  node " << v << ": " << replay.tasks_per_node[v] << " tasks\n";
    }
    std::cout << "steady rate    : " << tree_steady_state_rate(dispatch.tree)
              << " tasks/unit\n\n";
  }
  std::cout << sim::render_dispatch(dispatch.tree, replay, scale);
  // Eager forwarding may only move work earlier: the replayed makespan must
  // never exceed what the plan reported.
  if (replay.makespan > result.makespan) {
    std::cerr << "replay invariant violated: plan reports makespan " << result.makespan
              << " but the dispatch replay needs " << replay.makespan << "\n";
    return 1;
  }
  return 0;
}

int run_schedule(const mst::Args& args) {
  using namespace mst;
  api::Platform platform = load_platform(args.get("platform", ""));
  if (api::kind_of(platform) == api::PlatformKind::kTree) {
    return run_schedule_tree(args, platform);
  }
  // Forks render through their spider embedding (identical platform, one
  // single-node leg per slave), so one spider code path serves both.
  if (const auto* fork = std::get_if<Fork>(&platform)) {
    platform = Spider::from_fork(*fork);
  }
  const std::size_t n = task_count(args);
  const api::SolveResult result = api::registry().solve(platform, "optimal", n);
  const std::string format = args.get("format", "summary");

  return std::visit(
      [&](const auto& schedule) -> int {
        using S = std::decay_t<decltype(schedule)>;
        if constexpr (std::is_same_v<S, ChainSchedule> || std::is_same_v<S, SpiderSchedule>) {
          if (format == "summary") {
            std::cout << "platform : " << api::describe(platform) << "\n";
            std::cout << "tasks    : " << n << "\n";
            std::cout << "makespan : " << result.makespan << " (optimal)\n";
            if constexpr (std::is_same_v<S, ChainSchedule>) {
              const auto counts = schedule.tasks_per_proc();
              for (std::size_t i = 0; i < counts.size(); ++i) {
                std::cout << "  proc " << i << ": " << counts[i] << " tasks\n";
              }
              std::cout << "steady rate    : " << chain_steady_state_rate(schedule.chain)
                        << " tasks/unit\n";
            } else {
              const auto counts = schedule.tasks_per_leg();
              for (std::size_t l = 0; l < counts.size(); ++l) {
                std::cout << "  leg " << l << ": " << counts[l] << " tasks\n";
              }
              std::cout << "steady rate    : " << spider_steady_state_rate(schedule.spider)
                        << " tasks/unit\n";
            }
            std::cout << "lower bound    : " << result.lower_bound << "\n";
            std::cout << "forward greedy : "
                      << api::registry().solve(platform, "forward-greedy", n).makespan << "\n";
            std::cout << "round robin    : "
                      << api::registry().solve(platform, "round-robin", n).makespan << "\n";
          } else if (format == "gantt") {
            const Time scale = std::max<Time>(1, schedule.makespan() / 100);
            std::cout << render_gantt(schedule, scale);
          } else if (format == "svg") {
            std::cout << render_svg(schedule);
          } else if (format == "json") {
            std::cout << to_json(schedule) << "\n";
          } else if (format == "schedule") {
            std::cout << write_schedule(schedule);
          } else {
            std::cerr << "unknown --format=" << format << "\n";
            return 2;
          }
          return 0;
        } else {
          std::cerr << "--mode=schedule expects a chain/fork/spider optimal schedule\n";
          return 2;
        }
      },
      result.schedule);
}

/// Shared tail of `sweep` and `merge`: renders the outcome rows with the
/// requested reporter and writes them to stdout or atomically to
/// `--out-file`.  Failed cells become exit status 1, so both entry points
/// gate CI the same way.  Byte-identity of the two paths is the tentpole
/// contract: merged shard journals go through exactly this code.
int emit_report(const std::vector<mst::scenario::CellOutcome>& outcomes, const mst::Args& args,
                const char* label) {
  using namespace mst;
  scenario::ReportOptions report;
  report.timing = args.has("timing");
  const std::string out = args.get("out", "csv");
  std::string text;
  if (out == "csv") {
    text = scenario::to_csv(outcomes, report);
  } else if (out == "json") {
    text = scenario::to_json(outcomes, report);
  } else {
    std::cerr << "unknown --out=" << out << " (expected csv|json)\n";
    return 2;
  }

  const std::string out_file = args.get("out-file", "");
  if (out_file.empty()) {
    std::cout << text;
  } else {
    write_file_atomic(out_file, text);
    std::cout << "wrote " << outcomes.size() << " rows to " << out_file << "\n";
  }

  std::size_t failed = 0;
  for (const scenario::CellOutcome& outcome : outcomes) {
    if (!outcome.ok()) ++failed;
  }
  if (failed > 0) {
    std::cerr << label << ": " << failed << " of " << outcomes.size() << " cells failed\n";
    return 1;
  }
  return 0;
}

/// `--shard=i/N` into RunOptions; anything malformed is a usage error.
void parse_shard(const std::string& shard, mst::scenario::RunOptions& run) {
  const auto fail = [&] {
    throw std::invalid_argument("--shard=" + shard +
                                ": expected i/N with 0 <= i < N (e.g. --shard=0/4)");
  };
  const std::size_t slash = shard.find('/');
  if (slash == 0 || slash == std::string::npos || slash + 1 == shard.size()) fail();
  std::size_t index_end = 0;
  std::size_t count_end = 0;
  unsigned long index = 0;
  unsigned long count = 0;
  try {
    index = std::stoul(shard.substr(0, slash), &index_end);
    count = std::stoul(shard.substr(slash + 1), &count_end);
  } catch (const std::exception&) {
    fail();
  }
  if (index_end != slash || count_end != shard.size() - slash - 1) fail();
  if (count == 0 || index >= count) fail();
  run.shard_index = index;
  run.shard_count = count;
}

int run_sweep(const mst::Args& args) {
  using namespace mst;
  const std::string spec_path = args.get("spec", "");
  if (spec_path.empty()) {
    std::cerr << "--mode=sweep needs --spec=FILE (see tests/data/specs/)\n";
    return 2;
  }
  scenario::SweepSpec spec;
  try {
    spec = scenario::parse_spec(slurp(spec_path));
  } catch (const std::invalid_argument& e) {
    std::cerr << spec_path << ": " << e.what() << "\n";
    return 2;
  }
  if (args.has("seed")) spec.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  scenario::RunOptions run;
  const std::int64_t threads = args.get_int("threads", 1);
  if (threads < 0) throw std::invalid_argument("--threads must be >= 0 (0 = all cores)");
  run.threads = static_cast<unsigned>(threads);
  run.check = args.has("check");
  run.materialize = run.check;
  run.reps = static_cast<int>(args.get_int("reps", 1));
  const std::int64_t cap = args.get_int("cap", 1 << 20);
  if (cap < 1) throw std::invalid_argument("--cap must be >= 1");
  run.cap = static_cast<std::size_t>(cap);
  const std::string shard = args.get("shard", "");
  if (!shard.empty()) parse_shard(shard, run);
  run.journal_dir = args.get("journal", "");

  ObsSinks obs(args);
  run.metrics = obs.metrics_ptr();

  const std::vector<scenario::CellOutcome> outcomes = scenario::run_sweep(spec, run);

  if (obs.trace.has_value()) scenario::trace_outcomes(outcomes, *obs.trace);
  // Wall-time-class metrics follow the --timing convention, exactly like
  // the wall_ms report column: the default metrics file is deterministic.
  obs.write(/*include_wall_time=*/args.has("timing"));

  return emit_report(outcomes, args, "sweep");
}

/// --mode=merge: reassembles the per-shard journals of a distributed sweep
/// (`--journal=DIR`, the directory the shard runs appended into) into
/// canonical grid order and emits the report through exactly the sweep code
/// path — byte-identical CSV/JSON to the single-process run.  Incomplete
/// coverage (a shard missing, a cell never journaled) is a hard error with
/// exit 1: resume the incomplete shards, then merge again.
int run_merge(const mst::Args& args) {
  using namespace mst;
  const std::string dir = args.get("journal", "");
  if (dir.empty()) {
    std::cerr << "--mode=merge needs --journal=DIR (the shard runs' --journal directory)\n";
    return 2;
  }
  std::vector<scenario::CellOutcome> outcomes;
  try {
    outcomes = scenario::merge_journals(dir);
  } catch (const std::exception& e) {
    std::cerr << "merge: " << e.what() << "\n";
    return 1;
  }
  return emit_report(outcomes, args, "merge");
}

int run_validate(const mst::Args& args) {
  using namespace mst;
  const std::string text = slurp(args.get("schedule", ""));
  // Dispatch on the header keyword.
  std::istringstream probe(text);
  std::string kind;
  probe >> kind;
  FeasibilityReport report;
  Time analytic_makespan = 0;
  sim::ReplayResult replayed;
  if (kind == "chain_schedule") {
    const ChainSchedule s = parse_chain_schedule(text);
    report = check_feasibility(s);
    analytic_makespan = s.makespan();
    replayed = sim::replay(s);
  } else if (kind == "spider_schedule") {
    const SpiderSchedule s = parse_spider_schedule(text);
    report = check_feasibility(s);
    analytic_makespan = s.makespan();
    replayed = sim::replay(s);
  } else {
    std::cerr << "unknown schedule kind '" << kind << "'\n";
    return 2;
  }
  std::cout << "analytic : " << report.summary() << "\n";
  std::cout << "replay   : " << (replayed.ok ? "feasible" : "conflicts") << "\n";
  std::cout << "makespan : " << analytic_makespan << "\n";
  return report.ok() && replayed.ok ? 0 : 1;
}

int run_rate(const mst::Args& args) {
  using namespace mst;
  const api::Platform platform = load_platform(args.get("platform", ""));
  if (const auto* chain = std::get_if<Chain>(&platform)) {
    std::cout << "steady-state rate: " << chain_steady_state_rate(*chain) << " tasks/unit\n";
  } else if (const auto* fork = std::get_if<Fork>(&platform)) {
    std::cout << "steady-state rate: " << spider_steady_state_rate(Spider::from_fork(*fork))
              << " tasks/unit\n";
  } else if (const auto* spider = std::get_if<Spider>(&platform)) {
    std::cout << "steady-state rate: " << spider_steady_state_rate(*spider) << " tasks/unit\n";
    for (std::size_t l = 0; l < spider->num_legs(); ++l) {
      std::cout << "  leg " << l << " rate: " << chain_steady_state_rate(spider->leg(l)) << "\n";
    }
  } else {
    std::cout << "steady-state rate: " << tree_steady_state_rate(std::get<Tree>(platform))
              << " tasks/unit\n";
  }
  return 0;
}

int run_demo(const mst::Args& args) {
  using namespace mst;
  const std::string dir = args.get("dir", ".");
  const std::string spider_path = dir + "/demo_platform.txt";
  const Spider demo{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  std::ofstream out(spider_path);
  out << "# demo: the paper's Fig 2 chain plus a leaf pool\n" << write_spider(demo);
  std::cout << "wrote " << spider_path << "\n";

  const std::string tree_path = dir + "/demo_tree.txt";
  Tree tree;
  const NodeId trunk = tree.add_node(0, {2, 3});
  tree.add_node(trunk, {1, 2});
  tree.add_node(trunk, {2, 4});
  tree.add_node(0, {3, 2});
  std::ofstream tree_out(tree_path);
  tree_out << "# demo: a 4-slave tree with a branching trunk\n" << write_tree(tree);
  std::cout << "wrote " << tree_path << "\n";

  const std::string workload_path = dir + "/demo_workload.txt";
  const Workload staggered = Workload::released({0, 0, 4, 8, 12, 16});
  std::ofstream workload_out(workload_path);
  workload_out << "# demo: six tasks arriving in a staggered stream\n"
               << write_workload(staggered);
  std::cout << "wrote " << workload_path << "\n";

  std::cout << "try: mstctl --mode=solve --platform=" << spider_path << " --tasks=8\n";
  std::cout << "try: mstctl --mode=max-tasks --platform=" << tree_path << " --deadline=40\n";
  std::cout << "try: mstctl --mode=solve --platform=" << spider_path
            << " --workload=" << workload_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mst::Args args(argc, argv);
    const std::string mode = args.get("mode", "schedule");
    if (mode == "list") return run_list(args);
    if (mode == "solve") return run_solve(args);
    if (mode == "max-tasks") return run_max_tasks(args);
    if (mode == "count") return run_count(args);
    if (mode == "stream") return run_stream_mode(args);
    if (mode == "schedule") return run_schedule(args);
    if (mode == "sweep") return run_sweep(args);
    if (mode == "merge") return run_merge(args);
    if (mode == "validate") return run_validate(args);
    if (mode == "rate") return run_rate(args);
    if (mode == "demo") return run_demo(args);
    std::cerr << "unknown --mode=" << mode
              << " (expected list|solve|max-tasks|count|stream|schedule|sweep|merge|validate|"
                 "rate|demo)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mstctl: " << e.what() << "\n";
    return 2;
  }
}
