// mstctl — command-line front end to the library.
//
//   mstctl --mode=schedule --platform=FILE --tasks=N [--format=summary|gantt|svg|json|schedule]
//   mstctl --mode=count    --platform=FILE --tlim=T [--cap=K]
//   mstctl --mode=validate --schedule=FILE
//   mstctl --mode=rate     --platform=FILE
//   mstctl --mode=demo     [--dir=.]        # writes a sample platform file
//
// Platforms use the text format of mst/platform/io.hpp (chain / fork /
// spider); schedules use mst/schedule/schedule_io.hpp.  Exit status is 0 on
// success, 1 on validation failure, 2 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>

#include "mst/mst.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int run_schedule(const mst::Args& args) {
  using namespace mst;
  const Spider platform = parse_platform(slurp(args.get("platform", "")));
  const auto n = static_cast<std::size_t>(args.get_int("tasks", 10));
  const SpiderSchedule schedule = SpiderScheduler::schedule(platform, n);
  const std::string format = args.get("format", "summary");

  if (format == "summary") {
    std::cout << "platform : " << platform.describe() << "\n";
    std::cout << "tasks    : " << n << "\n";
    std::cout << "makespan : " << schedule.makespan() << " (optimal)\n";
    const auto counts = schedule.tasks_per_leg();
    for (std::size_t l = 0; l < counts.size(); ++l) {
      std::cout << "  leg " << l << ": " << counts[l] << " tasks\n";
    }
    std::cout << "lower bound    : " << spider_makespan_lower_bound(platform, n) << "\n";
    std::cout << "steady rate    : " << spider_steady_state_rate(platform) << " tasks/unit\n";
    std::cout << "forward greedy : " << forward_greedy_spider_makespan(platform, n) << "\n";
    std::cout << "round robin    : " << round_robin_spider_makespan(platform, n) << "\n";
  } else if (format == "gantt") {
    const Time scale = std::max<Time>(1, schedule.makespan() / 100);
    std::cout << render_gantt(schedule, scale);
  } else if (format == "svg") {
    std::cout << render_svg(schedule);
  } else if (format == "json") {
    std::cout << to_json(schedule) << "\n";
  } else if (format == "schedule") {
    std::cout << write_schedule(schedule);
  } else {
    std::cerr << "unknown --format=" << format << "\n";
    return 2;
  }
  return 0;
}

int run_count(const mst::Args& args) {
  using namespace mst;
  const Spider platform = parse_platform(slurp(args.get("platform", "")));
  const Time t_lim = args.get_int("tlim", 100);
  const auto cap = static_cast<std::size_t>(args.get_int("cap", 100000));
  std::cout << SpiderScheduler::max_tasks(platform, t_lim, cap) << "\n";
  return 0;
}

int run_validate(const mst::Args& args) {
  using namespace mst;
  const std::string text = slurp(args.get("schedule", ""));
  // Dispatch on the header keyword.
  std::istringstream probe(text);
  std::string kind;
  probe >> kind;
  FeasibilityReport report;
  Time analytic_makespan = 0;
  sim::ReplayResult replayed;
  if (kind == "chain_schedule") {
    const ChainSchedule s = parse_chain_schedule(text);
    report = check_feasibility(s);
    analytic_makespan = s.makespan();
    replayed = sim::replay(s);
  } else if (kind == "spider_schedule") {
    const SpiderSchedule s = parse_spider_schedule(text);
    report = check_feasibility(s);
    analytic_makespan = s.makespan();
    replayed = sim::replay(s);
  } else {
    std::cerr << "unknown schedule kind '" << kind << "'\n";
    return 2;
  }
  std::cout << "analytic : " << report.summary() << "\n";
  std::cout << "replay   : " << (replayed.ok ? "feasible" : "conflicts") << "\n";
  std::cout << "makespan : " << analytic_makespan << "\n";
  return report.ok() && replayed.ok ? 0 : 1;
}

int run_rate(const mst::Args& args) {
  using namespace mst;
  const Spider platform = parse_platform(slurp(args.get("platform", "")));
  std::cout << "steady-state rate: " << spider_steady_state_rate(platform)
            << " tasks/unit\n";
  for (std::size_t l = 0; l < platform.num_legs(); ++l) {
    std::cout << "  leg " << l << " rate: " << chain_steady_state_rate(platform.leg(l))
              << "\n";
  }
  return 0;
}

int run_demo(const mst::Args& args) {
  using namespace mst;
  const std::string path = args.get("dir", ".") + "/demo_platform.txt";
  const Spider demo{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  std::ofstream out(path);
  out << "# demo: the paper's Fig 2 chain plus a leaf pool\n" << write_spider(demo);
  std::cout << "wrote " << path << "\n";
  std::cout << "try: mstctl --mode=schedule --platform=" << path << " --tasks=8\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mst::Args args(argc, argv);
    const std::string mode = args.get("mode", "schedule");
    if (mode == "schedule") return run_schedule(args);
    if (mode == "count") return run_count(args);
    if (mode == "validate") return run_validate(args);
    if (mode == "rate") return run_rate(args);
    if (mode == "demo") return run_demo(args);
    std::cerr << "unknown --mode=" << mode
              << " (expected schedule|count|validate|rate|demo)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mstctl: " << e.what() << "\n";
    return 2;
  }
}
