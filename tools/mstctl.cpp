// mstctl — command-line front end to the library.
//
//   mstctl --mode=list     [--kind=chain|fork|spider|tree]
//   mstctl --mode=solve    --platform=FILE --algo=NAME|all --tasks=N
//   mstctl --mode=schedule --platform=FILE --tasks=N [--format=summary|gantt|svg|json|schedule]
//   mstctl --mode=count    --platform=FILE --tlim=T [--cap=K]
//   mstctl --mode=validate --schedule=FILE
//   mstctl --mode=rate     --platform=FILE
//   mstctl --mode=demo     [--dir=.]        # writes a sample platform file
//
// Scheduling algorithms are resolved through the registry
// (mst/api/registry.hpp): `list` enumerates every registered
// (platform kind, algorithm) pair and `solve` dispatches any of them by
// name.  Platforms use the text format of mst/platform/io.hpp (chain /
// fork / spider); schedules use mst/schedule/schedule_io.hpp.  Exit status
// is 0 on success, 1 on validation failure, 2 on usage errors.

#include <fstream>
#include <iostream>
#include <sstream>

#include "mst/mst.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open file: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Parses a platform file into the registry's variant, keyed by the header
/// keyword, so chain files dispatch to chain algorithms (not to the one-leg
/// spider embedding `parse_platform` would produce).
mst::api::Platform load_platform(const std::string& path) {
  const std::string text = slurp(path);
  std::istringstream probe(text);
  std::string kind;
  while (probe >> kind && kind.front() == '#') probe.ignore(1 << 20, '\n');
  if (kind == "chain") return mst::parse_chain(text);
  if (kind == "fork") return mst::parse_fork(text);
  if (kind == "spider") return mst::parse_spider(text);
  throw std::invalid_argument("unknown platform kind '" + kind + "' in " + path);
}

int run_list(const mst::Args& args) {
  using namespace mst;
  const std::string filter = args.get("kind", "");
  if (!filter.empty() && !api::platform_kind_from(filter)) {
    std::cerr << "unknown --kind=" << filter << " (expected chain|fork|spider|tree)\n";
    return 2;
  }
  Table table({"kind", "algorithm", "optimal", "summary"});
  for (const api::AlgorithmInfo& info : api::registry().list()) {
    if (!filter.empty() && to_string(info.kind) != filter) continue;
    table.row()
        .cell(to_string(info.kind))
        .cell(info.name)
        .cell(info.optimal ? "yes" : "no")
        .cell(info.summary + (info.exponential ? " [exponential]" : ""));
  }
  table.print(std::cout);
  return 0;
}

std::size_t task_count(const mst::Args& args) {
  const std::int64_t n = args.get_int("tasks", 10);
  if (n < 1) throw std::invalid_argument("--tasks must be >= 1");
  return static_cast<std::size_t>(n);
}

int run_solve(const mst::Args& args) {
  using namespace mst;
  const api::Platform platform = load_platform(args.get("platform", ""));
  const api::PlatformKind kind = api::kind_of(platform);
  const std::size_t n = task_count(args);
  const std::string algo = args.get("algo", "all");

  std::cout << "platform : " << api::describe(platform) << "\n";
  std::cout << "tasks    : " << n << "\n\n";

  std::vector<api::AlgorithmInfo> selected;
  if (algo == "all") {
    for (const api::AlgorithmInfo& info : api::registry().list(kind)) {
      // Brute force is exponential in n; only sweep it on small instances.
      if (info.exponential && n > 10) {
        std::cout << "(skipping " << info.name << ": exponential, tasks > 10)\n";
        continue;
      }
      selected.push_back(info);
    }
  } else {
    const api::AlgorithmInfo* info = api::registry().info(kind, algo);
    if (info == nullptr) {
      std::cerr << "no algorithm '" << algo << "' for " << to_string(kind)
                << " platforms; see --mode=list\n";
      return 2;
    }
    selected.push_back(*info);
  }

  Table table({"algorithm", "optimal", "makespan", "lower bound", "throughput", "feasible"});
  bool all_feasible = true;
  for (const api::AlgorithmInfo& info : selected) {
    const api::SolveResult result = api::registry().solve(platform, info.name, n);
    const FeasibilityReport report = api::check_feasibility(result);
    all_feasible = all_feasible && report.ok();
    table.row()
        .cell(result.algorithm)
        .cell(result.optimal ? "yes" : "no")
        .cell(result.makespan)
        .cell(result.lower_bound)
        .cell(result.throughput(), 4)
        .cell(report.ok() ? "yes" : report.summary());
  }
  table.print(std::cout);
  return all_feasible ? 0 : 1;
}

int run_schedule(const mst::Args& args) {
  using namespace mst;
  const Spider platform = parse_platform(slurp(args.get("platform", "")));
  const std::size_t n = task_count(args);
  const api::SolveResult result = api::registry().solve(platform, "optimal", n);
  const SpiderSchedule& schedule = std::get<SpiderSchedule>(result.schedule);
  const std::string format = args.get("format", "summary");

  if (format == "summary") {
    std::cout << "platform : " << platform.describe() << "\n";
    std::cout << "tasks    : " << n << "\n";
    std::cout << "makespan : " << result.makespan << " (optimal)\n";
    const auto counts = schedule.tasks_per_leg();
    for (std::size_t l = 0; l < counts.size(); ++l) {
      std::cout << "  leg " << l << ": " << counts[l] << " tasks\n";
    }
    std::cout << "lower bound    : " << result.lower_bound << "\n";
    std::cout << "steady rate    : " << spider_steady_state_rate(platform) << " tasks/unit\n";
    std::cout << "forward greedy : "
              << api::registry().solve(platform, "forward-greedy", n).makespan << "\n";
    std::cout << "round robin    : "
              << api::registry().solve(platform, "round-robin", n).makespan << "\n";
  } else if (format == "gantt") {
    const Time scale = std::max<Time>(1, schedule.makespan() / 100);
    std::cout << render_gantt(schedule, scale);
  } else if (format == "svg") {
    std::cout << render_svg(schedule);
  } else if (format == "json") {
    std::cout << to_json(schedule) << "\n";
  } else if (format == "schedule") {
    std::cout << write_schedule(schedule);
  } else {
    std::cerr << "unknown --format=" << format << "\n";
    return 2;
  }
  return 0;
}

int run_count(const mst::Args& args) {
  using namespace mst;
  const Spider platform = parse_platform(slurp(args.get("platform", "")));
  const Time t_lim = args.get_int("tlim", 100);
  const auto cap = static_cast<std::size_t>(args.get_int("cap", 100000));
  std::cout << SpiderScheduler::max_tasks(platform, t_lim, cap) << "\n";
  return 0;
}

int run_validate(const mst::Args& args) {
  using namespace mst;
  const std::string text = slurp(args.get("schedule", ""));
  // Dispatch on the header keyword.
  std::istringstream probe(text);
  std::string kind;
  probe >> kind;
  FeasibilityReport report;
  Time analytic_makespan = 0;
  sim::ReplayResult replayed;
  if (kind == "chain_schedule") {
    const ChainSchedule s = parse_chain_schedule(text);
    report = check_feasibility(s);
    analytic_makespan = s.makespan();
    replayed = sim::replay(s);
  } else if (kind == "spider_schedule") {
    const SpiderSchedule s = parse_spider_schedule(text);
    report = check_feasibility(s);
    analytic_makespan = s.makespan();
    replayed = sim::replay(s);
  } else {
    std::cerr << "unknown schedule kind '" << kind << "'\n";
    return 2;
  }
  std::cout << "analytic : " << report.summary() << "\n";
  std::cout << "replay   : " << (replayed.ok ? "feasible" : "conflicts") << "\n";
  std::cout << "makespan : " << analytic_makespan << "\n";
  return report.ok() && replayed.ok ? 0 : 1;
}

int run_rate(const mst::Args& args) {
  using namespace mst;
  const Spider platform = parse_platform(slurp(args.get("platform", "")));
  std::cout << "steady-state rate: " << spider_steady_state_rate(platform)
            << " tasks/unit\n";
  for (std::size_t l = 0; l < platform.num_legs(); ++l) {
    std::cout << "  leg " << l << " rate: " << chain_steady_state_rate(platform.leg(l))
              << "\n";
  }
  return 0;
}

int run_demo(const mst::Args& args) {
  using namespace mst;
  const std::string path = args.get("dir", ".") + "/demo_platform.txt";
  const Spider demo{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  std::ofstream out(path);
  out << "# demo: the paper's Fig 2 chain plus a leaf pool\n" << write_spider(demo);
  std::cout << "wrote " << path << "\n";
  std::cout << "try: mstctl --mode=solve --platform=" << path << " --tasks=8\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const mst::Args args(argc, argv);
    const std::string mode = args.get("mode", "schedule");
    if (mode == "list") return run_list(args);
    if (mode == "solve") return run_solve(args);
    if (mode == "schedule") return run_schedule(args);
    if (mode == "count") return run_count(args);
    if (mode == "validate") return run_validate(args);
    if (mode == "rate") return run_rate(args);
    if (mode == "demo") return run_demo(args);
    std::cerr << "unknown --mode=" << mode
              << " (expected list|solve|schedule|count|validate|rate|demo)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "mstctl: " << e.what() << "\n";
    return 2;
  }
}
