// Tests of the §6 fork (star) scheduler: decision form, makespan form, and
// the paper's ascending-c greedy cross-check.

#include <gtest/gtest.h>

#include "mst/baselines/brute_force.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

TEST(ForkScheduler, SingleSlaveMatchesPipelineFormula) {
  const Fork fork({Processor{2, 5}});
  // c + (n-1)*max(c,w) + w
  EXPECT_EQ(ForkScheduler::makespan(fork, 1), 7);
  EXPECT_EQ(ForkScheduler::makespan(fork, 3), 2 + 2 * 5 + 5);
  const Fork link_bound({Processor{5, 2}});
  EXPECT_EQ(ForkScheduler::makespan(link_bound, 3), 5 + 2 * 5 + 2);
}

TEST(ForkScheduler, TwoIdenticalSlavesHalveTheWork) {
  // Two (c=1, w=4) slaves, 4 tasks: interleave emissions, each slave runs 2.
  const Fork fork({Processor{1, 4}, Processor{1, 4}});
  EXPECT_EQ(ForkScheduler::makespan(fork, 4), brute_force_fork_makespan(fork, 4));
}

TEST(ForkScheduler, DecisionFormCountsAndFeasibility) {
  const Fork fork({Processor{2, 5}, Processor{4, 1}});
  for (Time t = 0; t <= 20; ++t) {
    const ForkSchedule s = ForkScheduler::schedule_within(fork, t, 50);
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << "T=" << t << "\n" << report.summary();
    for (const ForkTask& task : s.tasks) EXPECT_LE(task.end(fork), t);
  }
}

TEST(ForkScheduler, DecisionFormIsMonotone) {
  const Fork fork({Processor{2, 5}, Processor{4, 1}, Processor{1, 9}});
  std::size_t prev = 0;
  for (Time t = 0; t <= 40; ++t) {
    const std::size_t k = ForkScheduler::max_tasks(fork, t, 100);
    EXPECT_GE(k, prev) << "T=" << t;
    prev = k;
  }
}

TEST(ForkScheduler, CapLimitsTheSchedule) {
  const Fork fork({Processor{1, 1}, Processor{1, 1}});
  const ForkSchedule s = ForkScheduler::schedule_within(fork, 1000, 5);
  EXPECT_EQ(s.num_tasks(), 5u);
}

TEST(ForkScheduler, MakespanFormHitsExactWindow) {
  const Fork fork({Processor{2, 5}, Processor{4, 1}});
  for (std::size_t n = 1; n <= 8; ++n) {
    const ForkSchedule s = ForkScheduler::schedule(fork, n);
    ASSERT_EQ(s.num_tasks(), n);
    EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
    // One fewer time unit must not fit n tasks (minimality of the window).
    EXPECT_LT(ForkScheduler::max_tasks(fork, s.makespan() - 1, n), n) << "n=" << n;
  }
}

TEST(ForkScheduler, RejectsInvalidArguments) {
  const Fork fork({Processor{1, 1}});
  EXPECT_THROW(ForkScheduler::schedule(fork, 0), std::invalid_argument);
  EXPECT_THROW(ForkScheduler::schedule_within(fork, -3, 5), std::invalid_argument);
}

/// Random sweeps: optimality against brute force and agreement with the
/// paper's greedy.
class ForkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForkProperty, MatchesBruteForceMakespan) {
  Rng rng(GetParam());
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 3));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 6));
    const Fork fork = random_fork(inst, p, params);
    EXPECT_EQ(ForkScheduler::makespan(fork, n), brute_force_fork_makespan(fork, n))
        << fork.describe() << " n=" << n;
  }
}

TEST_P(ForkProperty, GreedyNeverBeatsMooreHodgson) {
  Rng rng(GetParam());
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const Fork fork = random_fork(inst, p, params);
    const Time t_lim = rng.uniform(0, 60);
    const std::size_t optimal = ForkScheduler::max_tasks(fork, t_lim, 100);
    const std::size_t greedy = ForkScheduler::greedy_max_tasks(fork, t_lim, 100);
    EXPECT_LE(greedy, optimal) << fork.describe() << " T=" << t_lim;
  }
}

TEST_P(ForkProperty, GreedyMatchesOptimumOnForkExpansions) {
  // On fork-structured node sets the ascending-c greedy is the paper's
  // optimal algorithm [2]; it must agree with Moore–Hodgson's count.
  Rng rng(GetParam());
  GeneratorParams params{1, 6, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 4));
    const Fork fork = random_fork(inst, p, params);
    const Time t_lim = rng.uniform(0, 40);
    EXPECT_EQ(ForkScheduler::greedy_max_tasks(fork, t_lim, 60),
              ForkScheduler::max_tasks(fork, t_lim, 60))
        << fork.describe() << " T=" << t_lim;
  }
}

TEST_P(ForkProperty, GreedyScheduleIsFeasibleAndMatchesItsCount) {
  Rng rng(GetParam() + 500);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const Fork fork = random_fork(inst, p, params);
    const Time t_lim = rng.uniform(0, 50);
    const ForkSchedule s = ForkScheduler::greedy_schedule_within(fork, t_lim, 60);
    EXPECT_EQ(s.num_tasks(), ForkScheduler::greedy_max_tasks(fork, t_lim, 60))
        << fork.describe() << " T=" << t_lim;
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << fork.describe() << "\n" << report.summary();
    for (const ForkTask& task : s.tasks) EXPECT_LE(task.end(fork), t_lim);
  }
}

TEST_P(ForkProperty, ViaSpiderReductionAgrees) {
  // A fork is a spider with unit legs; both schedulers must coincide.
  Rng rng(GetParam());
  GeneratorParams params{2, 7, PlatformClass::kUniform};
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 3));
    const Fork fork = random_fork(inst, p, params);
    const Time t_lim = rng.uniform(0, 18);
    const std::size_t optimal = ForkScheduler::max_tasks(fork, t_lim, 50);
    if (optimal > 7) continue;  // keep the exhaustive check tractable
    EXPECT_EQ(optimal,
              brute_force_spider_max_tasks(Spider::from_fork(fork), t_lim, optimal + 2))
        << fork.describe() << " T=" << t_lim;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForkProperty, ::testing::Values(7u, 17u, 27u, 37u));

}  // namespace
}  // namespace mst
