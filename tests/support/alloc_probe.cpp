#include "support/alloc_probe.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace alloc_probe {

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void arm() { g_allocations.store(0, std::memory_order_relaxed); }
long allocations() { return g_allocations.load(std::memory_order_relaxed); }

}  // namespace alloc_probe

// Counting replacements for the global allocation functions.  `malloc`
// keeps them sanitizer-friendly (ASan intercepts it).
void* operator new(std::size_t size) {
  alloc_probe::g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
