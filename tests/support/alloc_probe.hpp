#pragma once

/// \file alloc_probe.hpp
/// Shared global-allocation probe for the zero-alloc tests.
///
/// Linking `mst_alloc_probe` replaces the test binary's global allocation
/// functions with counting wrappers (backed by `std::malloc`, so ASan
/// still intercepts the underlying allocation).  The counters only matter
/// between `arm()` and `allocations()`; the test framework's own traffic
/// outside that window is irrelevant.
///
/// This is the dynamic half of the zero-alloc contract: source regions
/// marked with the mstlint zero-alloc directive are checked statically for
/// allocating constructs by `tools/mstlint`, and the claims they make are pinned at
/// runtime here.  Because the probe counts every allocation in the
/// process, keep the probed window free of ancillary work (no logging, no
/// string building) so a regression points at the code under test.
///
/// The replacement affects any binary that links this library and
/// references one of these symbols (referencing `arm()` is what pulls the
/// object out of the archive), so it lives under tests/ and is linked only
/// into test targets — never into the library or the tools.

namespace alloc_probe {

/// Resets the allocation counter to zero.
void arm();

/// Allocations since the last `arm()`.
long allocations();

/// Scoped form: arms on construction, reads on `count()`.
///
///     warm_up();
///     alloc_probe::Scope probe;
///     hot_path();
///     EXPECT_EQ(probe.count(), 0);
class Scope {
 public:
  Scope() { arm(); }
  [[nodiscard]] long count() const { return allocations(); }
};

}  // namespace alloc_probe
