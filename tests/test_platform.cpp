// Unit tests for the platform models: chains, forks, spiders, trees and the
// seeded instance generators.

#include <gtest/gtest.h>

#include <stdexcept>

#include "mst/platform/chain.hpp"
#include "mst/platform/fork.hpp"
#include "mst/platform/generator.hpp"
#include "mst/platform/spider.hpp"
#include "mst/platform/tree.hpp"

namespace mst {
namespace {

TEST(Chain, BuildsFromVectors) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.comm(0), 2);
  EXPECT_EQ(chain.work(0), 3);
  EXPECT_EQ(chain.comm(1), 3);
  EXPECT_EQ(chain.work(1), 5);
}

TEST(Chain, RejectsEmptyAndInvalid) {
  EXPECT_THROW(Chain(std::vector<Processor>{}), std::invalid_argument);
  EXPECT_THROW(Chain({Processor{-1, 2}}), std::invalid_argument);
  EXPECT_THROW(Chain({Processor{1, 0}}), std::invalid_argument);
  EXPECT_THROW(Chain::from_vectors({1, 2}, {1}), std::invalid_argument);
}

TEST(Chain, AllowsZeroLatencyLinks) {
  EXPECT_NO_THROW(Chain({Processor{0, 1}}));
}

TEST(Chain, PathLatencyAccumulates) {
  const Chain chain = Chain::from_vectors({2, 3, 4}, {1, 1, 1});
  EXPECT_EQ(chain.path_latency(0), 2);
  EXPECT_EQ(chain.path_latency(1), 5);
  EXPECT_EQ(chain.path_latency(2), 9);
  EXPECT_THROW((void)chain.path_latency(3), std::invalid_argument);
}

TEST(Chain, SuffixDropsPrefix) {
  const Chain chain = Chain::from_vectors({2, 3, 4}, {5, 6, 7});
  const Chain suffix = chain.suffix(1);
  ASSERT_EQ(suffix.size(), 2u);
  EXPECT_EQ(suffix.comm(0), 3);
  EXPECT_EQ(suffix.work(1), 7);
  EXPECT_EQ(chain.suffix(0), chain);
  EXPECT_THROW(chain.suffix(3), std::invalid_argument);
}

TEST(Chain, TInfinityMatchesPaperFormula) {
  // T∞ = c_1 + (n-1)·max(w_1, c_1) + w_1.
  const Chain compute_bound = Chain::from_vectors({2}, {5});
  EXPECT_EQ(compute_bound.t_infinity(1), 7);
  EXPECT_EQ(compute_bound.t_infinity(4), 2 + 3 * 5 + 5);
  const Chain comm_bound = Chain::from_vectors({5}, {2});
  EXPECT_EQ(comm_bound.t_infinity(4), 5 + 3 * 5 + 2);
  EXPECT_THROW((void)compute_bound.t_infinity(0), std::invalid_argument);
}

TEST(Chain, TInfinityOnlyDependsOnFirstProcessor) {
  const Chain chain = Chain::from_vectors({2, 100}, {5, 100});
  EXPECT_EQ(chain.t_infinity(3), Chain::from_vectors({2}, {5}).t_infinity(3));
}

TEST(Chain, DescribeIsHumanReadable) {
  const Chain chain = Chain::from_vectors({2}, {3});
  EXPECT_EQ(chain.describe(), "chain[(c=2,w=3)]");
}

TEST(Fork, BasicAccessorsAndCadence) {
  const Fork fork({Processor{2, 5}, Processor{7, 3}});
  ASSERT_EQ(fork.size(), 2u);
  EXPECT_EQ(fork.cadence(0), 5);  // max(2,5)
  EXPECT_EQ(fork.cadence(1), 7);  // max(7,3)
  EXPECT_THROW((void)fork.slave(2), std::invalid_argument);
}

TEST(Fork, RejectsEmptyAndInvalid) {
  EXPECT_THROW(Fork(std::vector<Processor>{}), std::invalid_argument);
  EXPECT_THROW(Fork({Processor{1, -1}}), std::invalid_argument);
}

TEST(Spider, BuildsFromLegs) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  EXPECT_EQ(spider.num_legs(), 2u);
  EXPECT_EQ(spider.num_processors(), 3u);
  EXPECT_FALSE(spider.is_fork());
  EXPECT_THROW(spider.to_fork(), std::invalid_argument);
  EXPECT_THROW((void)spider.leg(2), std::invalid_argument);
}

TEST(Spider, ForkRoundTrip) {
  const Fork fork({Processor{1, 2}, Processor{3, 4}});
  const Spider spider = Spider::from_fork(fork);
  EXPECT_TRUE(spider.is_fork());
  EXPECT_EQ(spider.to_fork(), fork);
}

TEST(Spider, RejectsEmpty) {
  EXPECT_THROW(Spider(std::vector<Chain>{}), std::invalid_argument);
}

TEST(Tree, MasterOnlyByDefault) {
  const Tree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.num_slaves(), 0u);
  EXPECT_TRUE(tree.is_root(0));
  EXPECT_THROW((void)tree.proc(0), std::invalid_argument);
  EXPECT_THROW((void)tree.parent(0), std::invalid_argument);
}

TEST(Tree, AddNodesAndNavigate) {
  Tree tree;
  const NodeId a = tree.add_node(0, {2, 3});
  const NodeId b = tree.add_node(a, {4, 5});
  const NodeId c = tree.add_node(0, {1, 1});
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_EQ(tree.parent(b), a);
  EXPECT_EQ(tree.children(0).size(), 2u);
  EXPECT_EQ(tree.depth(b), 2u);
  EXPECT_EQ(tree.depth(c), 1u);
  EXPECT_EQ(tree.path_latency(b), 6);
  const auto path = tree.path_from_root(b);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], a);
  EXPECT_EQ(path[1], b);
}

TEST(Tree, RejectsInvalidInsertions) {
  Tree tree;
  EXPECT_THROW(tree.add_node(5, {1, 1}), std::invalid_argument);
  EXPECT_THROW(tree.add_node(0, {-1, 1}), std::invalid_argument);
  EXPECT_THROW(tree.add_node(0, {1, 0}), std::invalid_argument);
}

TEST(Tree, ShapePredicates) {
  Tree chain_tree;
  NodeId v = chain_tree.add_node(0, {1, 1});
  chain_tree.add_node(v, {2, 2});
  EXPECT_TRUE(chain_tree.is_chain());
  EXPECT_TRUE(chain_tree.is_spider());

  Tree spider_tree;
  spider_tree.add_node(0, {1, 1});
  NodeId head = spider_tree.add_node(0, {2, 2});
  spider_tree.add_node(head, {3, 3});
  EXPECT_FALSE(spider_tree.is_chain());
  EXPECT_TRUE(spider_tree.is_spider());

  Tree generic;
  NodeId mid = generic.add_node(0, {1, 1});
  generic.add_node(mid, {1, 1});
  generic.add_node(mid, {1, 1});  // interior node with two children
  EXPECT_FALSE(generic.is_chain());
  EXPECT_FALSE(generic.is_spider());
}

TEST(Tree, ChainConversionRoundTrip) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Tree tree = tree_from_chain(chain);
  EXPECT_TRUE(tree.is_chain());
  EXPECT_EQ(tree.to_chain(), chain);
}

TEST(Tree, SpiderConversionRoundTrip) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  const Tree tree = tree_from_spider(spider);
  EXPECT_TRUE(tree.is_spider());
  const auto view = tree.to_spider();
  EXPECT_EQ(view.spider, spider);
  ASSERT_EQ(view.node_of.size(), 2u);
  EXPECT_EQ(view.node_of[0].size(), 2u);
  EXPECT_EQ(view.node_of[1].size(), 1u);
  // Node ids are assigned leg by leg.
  EXPECT_EQ(view.node_of[0][0], 1u);
  EXPECT_EQ(view.node_of[0][1], 2u);
  EXPECT_EQ(view.node_of[1][0], 3u);
}

TEST(Tree, ConversionRejectsWrongShape) {
  Tree generic;
  NodeId mid = generic.add_node(0, {1, 1});
  generic.add_node(mid, {1, 1});
  generic.add_node(mid, {1, 1});
  EXPECT_THROW(generic.to_chain(), std::invalid_argument);
  EXPECT_THROW(generic.to_spider(), std::invalid_argument);
}

TEST(Generator, DeterministicForSeed) {
  GeneratorParams params;
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(random_chain(a, 6, params), random_chain(b, 6, params));
}

TEST(Generator, RespectsBoundsForAllClasses) {
  for (PlatformClass cls : all_platform_classes()) {
    GeneratorParams params{1, 20, cls};
    Rng rng(17);
    for (int i = 0; i < 200; ++i) {
      const Processor p = random_processor(rng, params);
      EXPECT_GE(p.comm, 1) << to_string(cls);
      EXPECT_LE(p.comm, 20) << to_string(cls);
      EXPECT_GE(p.work, 1) << to_string(cls);
      EXPECT_LE(p.work, 20) << to_string(cls);
    }
  }
}

TEST(Generator, CommBoundClassSkewsTowardSlowLinks) {
  GeneratorParams params{1, 100, PlatformClass::kCommBound};
  Rng rng(23);
  double comm_sum = 0;
  double work_sum = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const Processor p = random_processor(rng, params);
    comm_sum += static_cast<double>(p.comm);
    work_sum += static_cast<double>(p.work);
  }
  EXPECT_GT(comm_sum / trials, work_sum / trials);
}

TEST(Generator, ComputeBoundClassSkewsTowardSlowProcessors) {
  GeneratorParams params{1, 100, PlatformClass::kComputeBound};
  Rng rng(29);
  double comm_sum = 0;
  double work_sum = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const Processor p = random_processor(rng, params);
    comm_sum += static_cast<double>(p.comm);
    work_sum += static_cast<double>(p.work);
  }
  EXPECT_LT(comm_sum / trials, work_sum / trials);
}

TEST(Generator, ProducesValidPlatforms) {
  GeneratorParams params{1, 10, PlatformClass::kUniform};
  Rng rng(31);
  const Spider spider = random_spider(rng, 4, 3, params);
  EXPECT_EQ(spider.num_legs(), 4u);
  for (const Chain& leg : spider.legs()) {
    EXPECT_GE(leg.size(), 1u);
    EXPECT_LE(leg.size(), 3u);
  }
  const Tree tree = random_tree(rng, 10, params);
  EXPECT_EQ(tree.num_slaves(), 10u);
}

TEST(Generator, RejectsDegenerateRequests) {
  GeneratorParams params;
  Rng rng(1);
  EXPECT_THROW(random_chain(rng, 0, params), std::invalid_argument);
  EXPECT_THROW(random_spider(rng, 0, 2, params), std::invalid_argument);
  EXPECT_THROW(random_tree(rng, 0, params), std::invalid_argument);
  GeneratorParams bad{5, 2, PlatformClass::kUniform};
  EXPECT_THROW(random_processor(rng, bad), std::invalid_argument);
}

TEST(Generator, ClassNamesAreDistinct) {
  std::set<std::string> names;
  for (PlatformClass cls : all_platform_classes()) names.insert(to_string(cls));
  EXPECT_EQ(names.size(), all_platform_classes().size());
}

}  // namespace
}  // namespace mst
