// Tests of the executable Definition 1: every condition must be checked,
// and only actual violations may be reported.

#include <gtest/gtest.h>

#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

/// The paper's Fig 2 schedule, hand-transcribed: four tasks on processor 0,
/// one on processor 1, makespan 14.
ChainSchedule fig2_schedule() {
  ChainSchedule s{fig2_chain(), {}};
  s.tasks.push_back(ChainTask{0, 2, {0}});
  s.tasks.push_back(ChainTask{0, 5, {2}});
  s.tasks.push_back(ChainTask{1, 9, {4, 6}});
  s.tasks.push_back(ChainTask{0, 8, {6}});
  s.tasks.push_back(ChainTask{0, 11, {9}});
  return s;
}

TEST(Feasibility, AcceptsThePaperExample) {
  const FeasibilityReport report = check_feasibility(fig2_schedule());
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.summary(), "feasible");
}

TEST(Feasibility, AcceptsEmptySchedule) {
  EXPECT_TRUE(check_feasibility(ChainSchedule{fig2_chain(), {}}).ok());
}

TEST(Feasibility, DetectsCondition1StoreAndForward) {
  ChainSchedule s{fig2_chain(), {}};
  // Re-emitted on link 1 at time 1 although reception on link 0 ends at 2.
  s.tasks.push_back(ChainTask{1, 9, {0, 1}});
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("condition (1)"), std::string::npos) << report.summary();
}

TEST(Feasibility, DetectsCondition2ReceptionBeforeStart) {
  ChainSchedule s{fig2_chain(), {}};
  // Arrival at 2, execution starts at 1.
  s.tasks.push_back(ChainTask{0, 1, {0}});
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("condition (2)"), std::string::npos) << report.summary();
}

TEST(Feasibility, DetectsCondition3ProcessorOverlap) {
  ChainSchedule s{fig2_chain(), {}};
  s.tasks.push_back(ChainTask{0, 2, {0}});
  s.tasks.push_back(ChainTask{0, 4, {2}});  // starts while the first runs (w=3)
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("condition (3)"), std::string::npos) << report.summary();
}

TEST(Feasibility, DetectsCondition4LinkOverlap) {
  ChainSchedule s{fig2_chain(), {}};
  s.tasks.push_back(ChainTask{0, 2, {0}});
  s.tasks.push_back(ChainTask{0, 5, {1}});  // link 0 busy during [0,2)
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("condition (4)"), std::string::npos) << report.summary();
}

TEST(Feasibility, DetectsStructuralErrors) {
  ChainSchedule wrong_dest{fig2_chain(), {ChainTask{5, 2, {0}}}};
  EXPECT_FALSE(check_feasibility(wrong_dest).ok());
  ChainSchedule wrong_len{fig2_chain(), {ChainTask{1, 9, {0}}}};
  EXPECT_FALSE(check_feasibility(wrong_len).ok());
}

TEST(Feasibility, CollectsAllViolations) {
  ChainSchedule s{fig2_chain(), {}};
  s.tasks.push_back(ChainTask{0, 1, {0}});   // condition (2)
  s.tasks.push_back(ChainTask{0, 2, {1}});   // condition (4) and (3)
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.violations().size(), 2u) << report.summary();
}

TEST(Feasibility, BackToBackIsLegal) {
  // Touching intervals (end == start) must not be flagged.
  ChainSchedule s{fig2_chain(), {}};
  s.tasks.push_back(ChainTask{0, 2, {0}});
  s.tasks.push_back(ChainTask{0, 5, {2}});  // link [2,4) after [0,2); proc [5,8) after [2,5)
  EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
}

TEST(ForkFeasibility, AcceptsSerializedEmissions) {
  const Fork fork({Processor{2, 3}, Processor{1, 10}});
  ForkSchedule s{fork, {ForkTask{0, 0, 2}, ForkTask{1, 2, 3}}};
  EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
}

TEST(ForkFeasibility, DetectsMasterPortOverlap) {
  const Fork fork({Processor{2, 3}, Processor{1, 10}});
  ForkSchedule s{fork, {ForkTask{0, 0, 2}, ForkTask{1, 1, 3}}};  // port busy [0,2)
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("master one-port"), std::string::npos) << report.summary();
}

TEST(ForkFeasibility, DetectsEarlyStartAndSlaveOverlap) {
  const Fork fork({Processor{2, 3}});
  ForkSchedule early{fork, {ForkTask{0, 0, 1}}};
  EXPECT_FALSE(check_feasibility(early).ok());
  ForkSchedule overlap{fork, {ForkTask{0, 0, 2}, ForkTask{0, 2, 4}}};
  EXPECT_FALSE(check_feasibility(overlap).ok());
}

TEST(ForkFeasibility, DetectsBadSlaveIndex) {
  const Fork fork({Processor{2, 3}});
  ForkSchedule s{fork, {ForkTask{3, 0, 2}}};
  EXPECT_FALSE(check_feasibility(s).ok());
}

TEST(SpiderFeasibility, AcceptsIndependentLegs) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  SpiderSchedule s{spider, {}};
  s.tasks.push_back(SpiderTask{0, 0, 2, {0}});
  s.tasks.push_back(SpiderTask{1, 0, 6, {2}});  // master port [2,6) after [0,2)
  EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
}

TEST(SpiderFeasibility, DetectsCrossLegMasterConflict) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  SpiderSchedule s{spider, {}};
  s.tasks.push_back(SpiderTask{0, 0, 2, {0}});   // port busy [0,2)
  s.tasks.push_back(SpiderTask{1, 0, 5, {1}});   // port claimed at 1
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("master one-port"), std::string::npos) << report.summary();
}

TEST(SpiderFeasibility, AppliesChainConditionsInsideLegs) {
  const Spider spider{fig2_chain()};
  SpiderSchedule s{spider, {SpiderTask{0, 1, 3, {0, 2}}}};  // arrival 5 > start 3
  const FeasibilityReport report = check_feasibility(s);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("condition (2)"), std::string::npos) << report.summary();
}

TEST(SpiderFeasibility, DetectsBadLegIndex) {
  const Spider spider{fig2_chain()};
  SpiderSchedule s{spider, {SpiderTask{4, 0, 2, {0}}}};
  EXPECT_FALSE(check_feasibility(s).ok());
}

}  // namespace
}  // namespace mst
