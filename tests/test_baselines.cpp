// Tests of the baseline schedulers: ASAP executor, brute force sanity,
// forward greedy, round robin and single node.

#include <gtest/gtest.h>

#include "mst/baselines/asap.hpp"
#include "mst/baselines/brute_force.hpp"
#include "mst/baselines/forward_greedy.hpp"
#include "mst/baselines/round_robin.hpp"
#include "mst/baselines/single_node.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

TEST(Asap, ChainTimingByHand) {
  // Two tasks to proc 1, one to proc 0 on the Fig 2 chain.
  const ChainSchedule s = asap_chain_schedule(fig2_chain(), {1, 1, 0});
  ASSERT_EQ(s.num_tasks(), 3u);
  // Task 0: emit 0 on link0, 2 on link1, arrive 5, run [5,10).
  EXPECT_EQ(s.tasks[0].emissions, (CommVector{0, 2}));
  EXPECT_EQ(s.tasks[0].start, 5);
  // Task 1: link0 [2,4), link1 [5,8) (after task0's), arrive 8, wait for
  // proc1 until 10.
  EXPECT_EQ(s.tasks[1].emissions, (CommVector{2, 5}));
  EXPECT_EQ(s.tasks[1].start, 10);
  // Task 2: link0 [4,6), arrive 6, run [6,9).
  EXPECT_EQ(s.tasks[2].emissions, (CommVector{4}));
  EXPECT_EQ(s.tasks[2].start, 6);
  EXPECT_EQ(s.makespan(), 15);
  EXPECT_TRUE(check_feasibility(s).ok());
}

TEST(Asap, PeekMatchesCommit) {
  ChainAsapState state(fig2_chain());
  for (std::size_t dest : {1u, 0u, 1u, 0u}) {
    const Time predicted = state.peek_completion(dest);
    const ChainTask t = state.commit(dest);
    EXPECT_EQ(t.start + fig2_chain().work(dest), predicted);
  }
}

TEST(Asap, SpiderSerializesMasterPort) {
  const Spider spider{Chain::from_vectors({3}, {1}), Chain::from_vectors({2}, {1})};
  const SpiderSchedule s = asap_spider_schedule(spider, {{0, 0}, {1, 0}});
  // First emission occupies the port [0,3); the second leg waits.
  EXPECT_EQ(s.tasks[0].emissions[0], 0);
  EXPECT_EQ(s.tasks[1].emissions[0], 3);
  EXPECT_TRUE(check_feasibility(s).ok());
}

TEST(Asap, RejectsBadDestinations) {
  ChainAsapState state(fig2_chain());
  EXPECT_THROW((void)state.peek_completion(5), std::invalid_argument);
  SpiderAsapState sstate(Spider{fig2_chain()});
  EXPECT_THROW(sstate.commit({3, 0}), std::invalid_argument);
}

TEST(BruteForce, TrivialInstances) {
  const Chain one = Chain::from_vectors({2}, {3});
  EXPECT_EQ(brute_force_chain_makespan(one, 1), 5);
  EXPECT_EQ(brute_force_chain_makespan(one, 3), one.t_infinity(3));
  EXPECT_THROW(brute_force_chain_makespan(one, 0), std::invalid_argument);
}

TEST(BruteForce, ScheduleMatchesReportedMakespan) {
  const Chain chain = fig2_chain();
  for (std::size_t n = 1; n <= 5; ++n) {
    const ChainSchedule s = brute_force_chain_schedule(chain, n);
    EXPECT_EQ(s.makespan(), brute_force_chain_makespan(chain, n));
    EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
  }
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  for (std::size_t n = 1; n <= 4; ++n) {
    const SpiderSchedule s = brute_force_spider_schedule(spider, n);
    EXPECT_EQ(s.makespan(), brute_force_spider_makespan(spider, n));
    EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
  }
}

TEST(BruteForce, MaxTasksStaircase) {
  const Chain chain = fig2_chain();
  EXPECT_EQ(brute_force_chain_max_tasks(chain, 14, 10), 5u);
  EXPECT_EQ(brute_force_chain_max_tasks(chain, 13, 10), 4u);
  EXPECT_EQ(brute_force_chain_max_tasks(chain, 4, 10), 0u);
}

class BaselineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineProperty, HeuristicsAreFeasibleAndBoundedByOptimal) {
  Rng rng(GetParam());
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const Chain chain = random_chain(inst, p, params);
    const Time optimal = ChainScheduler::makespan(chain, n);

    const ChainSchedule greedy = forward_greedy_chain(chain, n);
    const ChainSchedule rr = round_robin_chain(chain, n);
    const ChainSchedule single = single_node_chain(chain, n);
    for (const ChainSchedule* s : {&greedy, &rr, &single}) {
      ASSERT_EQ(s->num_tasks(), n);
      const FeasibilityReport report = check_feasibility(*s);
      ASSERT_TRUE(report.ok()) << chain.describe() << "\n" << report.summary();
      EXPECT_GE(s->makespan(), optimal) << chain.describe() << " n=" << n;
    }
    // Single node is itself bounded by the first-processor T∞.
    EXPECT_LE(single.makespan(), chain.t_infinity(n));
  }
}

TEST_P(BaselineProperty, SpiderHeuristicsFeasibleAndBounded) {
  Rng rng(GetParam());
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 9));
    const Spider spider = random_spider(inst, legs, 3, params);
    const Time optimal = SpiderScheduler::makespan(spider, n);

    const SpiderSchedule greedy = forward_greedy_spider(spider, n);
    const SpiderSchedule rr = round_robin_spider(spider, n);
    const SpiderSchedule single = single_node_spider(spider, n);
    for (const SpiderSchedule* s : {&greedy, &rr, &single}) {
      ASSERT_EQ(s->num_tasks(), n);
      const FeasibilityReport report = check_feasibility(*s);
      ASSERT_TRUE(report.ok()) << spider.describe() << "\n" << report.summary();
      EXPECT_GE(s->makespan(), optimal) << spider.describe() << " n=" << n;
    }
  }
}

TEST_P(BaselineProperty, GreedyNeverWorseThanRoundRobinOnChains) {
  // Not a theorem — but with ECT's exact estimates on chains the greedy
  // dominates the blind cycle on every instance this suite generates; a
  // regression here means the estimator broke.
  Rng rng(GetParam());
  GeneratorParams params{1, 9, PlatformClass::kAntiCorrelated};
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(2, 5)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    EXPECT_LE(forward_greedy_chain_makespan(chain, n), round_robin_chain_makespan(chain, n) * 2)
        << chain.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineProperty, ::testing::Values(3u, 13u, 23u));

}  // namespace
}  // namespace mst
