// Unit tests of the schedule data structures (chain / fork / spider).

#include <gtest/gtest.h>

#include <stdexcept>

#include "mst/schedule/chain_schedule.hpp"
#include "mst/schedule/fork_schedule.hpp"
#include "mst/schedule/spider_schedule.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

TEST(ChainScheduleData, TaskArrivalAndEnd) {
  const Chain chain = fig2_chain();
  const ChainTask near{0, 2, {0}};
  EXPECT_EQ(near.arrival(chain), 2);
  EXPECT_EQ(near.end(chain), 5);
  const ChainTask far{1, 9, {4, 6}};
  EXPECT_EQ(far.arrival(chain), 9);
  EXPECT_EQ(far.end(chain), 14);
}

TEST(ChainScheduleData, TaskValidatesShape) {
  const Chain chain = fig2_chain();
  const ChainTask bad{1, 9, {4}};  // vector too short for destination
  EXPECT_THROW((void)bad.arrival(chain), std::invalid_argument);
  const ChainTask empty{0, 0, {}};
  EXPECT_THROW((void)empty.arrival(chain), std::invalid_argument);
}

TEST(ChainScheduleData, MakespanIsLastEnd) {
  const Chain chain = fig2_chain();
  ChainSchedule s{chain, {ChainTask{0, 2, {0}}, ChainTask{1, 9, {4, 6}}}};
  EXPECT_EQ(s.makespan(), 14);
  EXPECT_EQ(s.num_tasks(), 2u);
  EXPECT_EQ((ChainSchedule{chain, {}}.makespan()), 0);
}

TEST(ChainScheduleData, StartTimeIsEarliestEvent) {
  const Chain chain = fig2_chain();
  ChainSchedule s{chain, {ChainTask{0, 5, {3}}, ChainTask{1, 9, {4, 6}}}};
  EXPECT_EQ(s.start_time(), 3);
  EXPECT_EQ((ChainSchedule{chain, {}}.start_time()), 0);
}

TEST(ChainScheduleData, TasksPerProcCounts) {
  const Chain chain = fig2_chain();
  ChainSchedule s{chain,
                  {ChainTask{0, 2, {0}}, ChainTask{0, 5, {2}}, ChainTask{1, 9, {4, 6}}}};
  const auto counts = s.tasks_per_proc();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(ChainScheduleData, ShiftMovesEveryTime) {
  const Chain chain = fig2_chain();
  ChainSchedule s{chain, {ChainTask{1, 9, {4, 6}}}};
  s.shift(-4);
  EXPECT_EQ(s.tasks[0].start, 5);
  EXPECT_EQ(s.tasks[0].emissions[0], 0);
  EXPECT_EQ(s.tasks[0].emissions[1], 2);
}

TEST(ForkScheduleData, ArrivalEndAndMakespan) {
  const Fork fork({Processor{2, 3}, Processor{1, 10}});
  ForkSchedule s{fork, {ForkTask{0, 0, 2}, ForkTask{1, 2, 3}}};
  EXPECT_EQ(s.tasks[0].arrival(fork), 2);
  EXPECT_EQ(s.tasks[0].end(fork), 5);
  EXPECT_EQ(s.tasks[1].arrival(fork), 3);
  EXPECT_EQ(s.tasks[1].end(fork), 13);
  EXPECT_EQ(s.makespan(), 13);
  const auto counts = s.tasks_per_slave();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(SpiderScheduleData, ArrivalEndAndCounts) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  SpiderSchedule s{spider,
                   {SpiderTask{0, 1, 9, {4, 6}}, SpiderTask{1, 0, 10, {6}}}};
  EXPECT_EQ(s.tasks[0].arrival(spider), 9);
  EXPECT_EQ(s.tasks[0].end(spider), 14);
  EXPECT_EQ(s.tasks[1].arrival(spider), 10);
  EXPECT_EQ(s.tasks[1].end(spider), 12);
  EXPECT_EQ(s.makespan(), 14);
  const auto counts = s.tasks_per_leg();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(SpiderScheduleData, NormalizeShiftsEarliestEventToZero) {
  const Spider spider{fig2_chain()};
  SpiderSchedule s{spider, {SpiderTask{0, 0, 7, {5}}}};
  const Time shift = s.normalize();
  EXPECT_EQ(shift, -5);
  EXPECT_EQ(s.tasks[0].emissions[0], 0);
  EXPECT_EQ(s.tasks[0].start, 2);
  EXPECT_EQ(s.normalize(), 0);  // already normalized
}

TEST(SpiderScheduleData, EmptyScheduleBehaves) {
  const Spider spider{fig2_chain()};
  SpiderSchedule s{spider, {}};
  EXPECT_EQ(s.makespan(), 0);
  EXPECT_EQ(s.normalize(), 0);
}

}  // namespace
}  // namespace mst
