// Tests of the plan-robustness analysis (stale plan vs re-planning).

#include <gtest/gtest.h>

#include "mst/analysis/robustness.hpp"
#include "mst/common/rng.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

TEST(Robustness, ZeroEpsilonIsIdentity) {
  Rng rng(1);
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  EXPECT_EQ(perturb(chain, 0.0, rng), chain);
  const Spider spider{chain, Chain::from_vectors({4}, {2})};
  EXPECT_EQ(perturb(spider, 0.0, rng), spider);
}

TEST(Robustness, PerturbationKeepsPlatformsValid) {
  Rng rng(2);
  GeneratorParams params{1, 10, PlatformClass::kUniform};
  for (int trial = 0; trial < 20; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, 4, params);
    const Chain shaken = perturb(chain, 0.9, rng);
    ASSERT_EQ(shaken.size(), chain.size());
    for (std::size_t i = 0; i < shaken.size(); ++i) {
      EXPECT_GE(shaken.comm(i), 0);
      EXPECT_GE(shaken.work(i), 1);
    }
  }
}

TEST(Robustness, PerturbationStaysWithinBand) {
  Rng rng(3);
  const Chain chain = Chain::from_vectors({100}, {100});
  for (int trial = 0; trial < 50; ++trial) {
    const Chain shaken = perturb(chain, 0.25, rng);
    EXPECT_GE(shaken.comm(0), 74);   // 100*(1-0.25), rounded
    EXPECT_LE(shaken.comm(0), 126);
    EXPECT_GE(shaken.work(0), 74);
    EXPECT_LE(shaken.work(0), 126);
  }
}

TEST(Robustness, RejectsBadEpsilon) {
  Rng rng(4);
  const Chain chain = Chain::from_vectors({1}, {1});
  EXPECT_THROW(perturb(chain, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(perturb(chain, 1.5, rng), std::invalid_argument);
}

TEST(Robustness, IdenticalPlatformsHaveNoDegradation) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const RobustnessResult r = evaluate_stale_plan(chain, chain, 6);
  EXPECT_EQ(r.stale_plan, r.replanned);
  EXPECT_DOUBLE_EQ(r.degradation(), 1.0);
}

TEST(Robustness, StalePlanNeverBeatsReplanning) {
  Rng rng(5);
  GeneratorParams params{2, 12, PlatformClass::kUniform};
  for (int trial = 0; trial < 12; ++trial) {
    Rng inst = rng.split();
    const Chain believed = random_chain(inst, 4, params);
    const Chain actual = perturb(believed, 0.4, rng);
    const RobustnessResult r = evaluate_stale_plan(believed, actual, 8);
    EXPECT_GE(r.stale_plan, r.replanned) << believed.describe();
    EXPECT_GE(r.degradation(), 1.0);
  }
}

TEST(Robustness, SpiderStalePlansAreEvaluated) {
  Rng rng(6);
  GeneratorParams params{2, 10, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Spider believed = random_spider(inst, 3, 2, params);
    const Spider actual = perturb(believed, 0.3, rng);
    const RobustnessResult r = evaluate_stale_plan(believed, actual, 8);
    EXPECT_GE(r.stale_plan, r.replanned) << believed.describe();
  }
}

TEST(Robustness, DegradationGrowsWithEpsilonOnAverage) {
  // Average over many seeds: bigger mis-estimation cannot make the stale
  // plan better on average.
  Rng rng(7);
  GeneratorParams params{2, 12, PlatformClass::kAntiCorrelated};
  double total_small = 0;
  double total_large = 0;
  const int trials = 25;
  for (int trial = 0; trial < trials; ++trial) {
    Rng inst = rng.split();
    const Chain believed = random_chain(inst, 4, params);
    Rng pa = rng.split();
    Rng pb = pa;  // same perturbation stream, different magnitude
    const Chain small = perturb(believed, 0.1, pa);
    const Chain large = perturb(believed, 0.6, pb);
    total_small += evaluate_stale_plan(believed, small, 10).degradation();
    total_large += evaluate_stale_plan(believed, large, 10).degradation();
  }
  EXPECT_LE(total_small / trials, total_large / trials + 0.05);
}

TEST(Robustness, RejectsShapeMismatch) {
  const Chain a = Chain::from_vectors({1}, {1});
  const Chain b = Chain::from_vectors({1, 1}, {1, 1});
  EXPECT_THROW(evaluate_stale_plan(a, b, 3), std::invalid_argument);
}

}  // namespace
}  // namespace mst
