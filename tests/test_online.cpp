// Tests of the online dispatch policies on the simulator substrate.

#include <gtest/gtest.h>

#include <set>

#include "mst/baselines/forward_greedy.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/online.hpp"

namespace mst {
namespace {

TEST(Online, AllPoliciesCompleteEveryTask) {
  Rng rng(42);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  const Tree tree = random_tree(rng, 6, params);
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    const sim::SimResult r = sim::simulate_online(tree, 12, policy, 7);
    EXPECT_EQ(r.num_tasks(), 12u) << to_string(policy);
    std::size_t total = 0;
    for (std::size_t c : r.tasks_per_node) total += c;
    EXPECT_EQ(total, 12u) << to_string(policy);
    EXPECT_GT(r.makespan, 0) << to_string(policy);
  }
}

TEST(Online, PoliciesAreDeterministic) {
  Rng rng(43);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  const Tree tree = random_tree(rng, 5, params);
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    const sim::SimResult a = sim::simulate_online(tree, 9, policy, 3);
    const sim::SimResult b = sim::simulate_online(tree, 9, policy, 3);
    EXPECT_EQ(a.makespan, b.makespan) << to_string(policy);
  }
}

TEST(Online, RandomPolicyDependsOnSeed) {
  Rng rng(44);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  const Tree tree = random_tree(rng, 6, params);
  bool any_difference = false;
  for (std::uint64_t seed = 0; seed < 8 && !any_difference; ++seed) {
    const sim::SimResult a = sim::simulate_online(tree, 10, sim::OnlinePolicy::kRandom, seed);
    const sim::SimResult b =
        sim::simulate_online(tree, 10, sim::OnlinePolicy::kRandom, seed + 100);
    if (a.makespan != b.makespan) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Online, OnlinePoliciesNeverBeatTheOptimalPlanner) {
  // On spider-shaped trees the optimal offline makespan is computable; no
  // online policy may beat it.
  Rng rng(45);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const Spider spider = random_spider(inst, legs, 3, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const Time optimal = SpiderScheduler::makespan(spider, n);
    const Tree tree = tree_from_spider(spider);
    for (sim::OnlinePolicy policy : sim::all_online_policies()) {
      const sim::SimResult r = sim::simulate_online(tree, n, policy, 11);
      EXPECT_GE(r.makespan, optimal)
          << to_string(policy) << " on " << spider.describe() << " n=" << n;
    }
  }
}

TEST(Online, EctMatchesForwardGreedyOnSpiders) {
  // The ECT policy with exact ASAP estimates is the online twin of the
  // forward-greedy baseline; on spiders both must coincide.
  Rng rng(46);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const Spider spider = random_spider(inst, legs, 3, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 12));
    const Time greedy = forward_greedy_spider_makespan(spider, n);
    const sim::SimResult r = sim::simulate_online(
        tree_from_spider(spider), n, sim::OnlinePolicy::kEarliestCompletion, 0);
    EXPECT_EQ(r.makespan, greedy) << spider.describe() << " n=" << n;
  }
}

TEST(Online, SeedOnlyMattersForTheRandomPolicy) {
  // The header's determinism contract: JSQ/ECT/round-robin never read the
  // seed — their full timelines (not just makespans) are seed-invariant.
  Rng rng(47);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  const Tree tree = random_tree(rng, 6, params);
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    if (policy == sim::OnlinePolicy::kRandom) continue;
    const sim::SimResult baseline = sim::simulate_online(tree, 11, policy, 0);
    for (std::uint64_t seed : {1ull, 17ull, 0xDEADBEEFull}) {
      EXPECT_EQ(baseline, sim::simulate_online(tree, 11, policy, seed)) << to_string(policy);
    }
  }
}

TEST(Online, ScoreTiesBreakTowardTheSmallestSlaveIndex) {
  // Two identical slaves: every JSQ/ECT score ties at each decision, so
  // the documented contract pins the whole assignment — first task to node
  // 1, then strict alternation (the chosen slave's score rises).
  Tree tree;
  tree.add_node(0, {2, 3});
  tree.add_node(0, {2, 3});
  for (sim::OnlinePolicy policy :
       {sim::OnlinePolicy::kJoinShortestQueue, sim::OnlinePolicy::kEarliestCompletion}) {
    const sim::SimResult r = sim::simulate_online(tree, 5, policy, 0);
    EXPECT_EQ(r.tasks[0].dest, 1u) << to_string(policy);
    EXPECT_EQ(r.tasks_per_node[1], 3u) << to_string(policy);
    EXPECT_EQ(r.tasks_per_node[2], 2u) << to_string(policy);
  }
}

TEST(Online, PolicyChoicesCommuteWithSlaveRelabeling) {
  // Permutation invariance: on a tie-free fork, relabeling the slaves
  // relabels the assignment and nothing else — the policies depend on
  // (score, stable index), not on any hidden evaluation order.  Distinct
  // processors keep every score comparison strict, so the permuted run
  // must mirror the original exactly.
  // Tie-free by construction: the JSQ score progressions 4k+5, 10k+12 and
  // 25k+28 are pairwise disjoint for the outstanding counts a 9-task run
  // can reach, so every comparison is strict.
  Tree fork;
  fork.add_node(0, {1, 4});    // node 1
  fork.add_node(0, {2, 10});   // node 2
  fork.add_node(0, {3, 25});   // node 3
  Tree permuted;               // same slaves, reversed labels
  permuted.add_node(0, {3, 25});
  permuted.add_node(0, {2, 10});
  permuted.add_node(0, {1, 4});
  const NodeId perm[4] = {0, 3, 2, 1};  // fork node v  ->  permuted node
  {
    const sim::SimResult a = sim::simulate_online(fork, 9, sim::OnlinePolicy::kJoinShortestQueue, 0);
    const sim::SimResult b =
        sim::simulate_online(permuted, 9, sim::OnlinePolicy::kJoinShortestQueue, 0);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      EXPECT_EQ(perm[a.tasks[i].dest], b.tasks[i].dest) << "task " << i;
      EXPECT_EQ(a.tasks[i].end, b.tasks[i].end) << "task " << i;
    }
  }
  // ECT completion times can tie even here (port and processor frames
  // interleave), and ties break by label — so relabeling preserves the
  // timeline only up to tie-broken destinations: makespan and the per-task
  // end times must still match exactly.
  {
    const sim::SimResult a =
        sim::simulate_online(fork, 9, sim::OnlinePolicy::kEarliestCompletion, 0);
    const sim::SimResult b =
        sim::simulate_online(permuted, 9, sim::OnlinePolicy::kEarliestCompletion, 0);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      EXPECT_EQ(a.tasks[i].end, b.tasks[i].end) << "task " << i;
    }
  }
}

TEST(Online, JsqPrefersTheFastSlaveOnAsymmetricFork) {
  Tree tree;
  tree.add_node(0, {1, 1});    // fast
  tree.add_node(0, {1, 100});  // slow
  const sim::SimResult r =
      sim::simulate_online(tree, 10, sim::OnlinePolicy::kJoinShortestQueue, 0);
  EXPECT_GT(r.tasks_per_node[1], r.tasks_per_node[2]);
}

TEST(Online, RejectsTreesWithoutSlaves) {
  Tree empty;
  EXPECT_THROW(sim::simulate_online(empty, 3, sim::OnlinePolicy::kRoundRobin, 0),
               std::invalid_argument);
}

TEST(Online, PolicyNamesAreDistinct) {
  std::set<std::string> names;
  for (sim::OnlinePolicy policy : sim::all_online_policies()) names.insert(to_string(policy));
  EXPECT_EQ(names.size(), sim::all_online_policies().size());
}

}  // namespace
}  // namespace mst
