# Byte-identity of the distributed sweep path, driven through the real CLI:
# run the spec single-process, run it again as ${SHARDS} journaled shard
# processes, merge the journals, and demand the merged CSV and JSON are
# byte-identical to the single-process reference (README "Distributed
# sweeps").  Invoked by ctest as
#
#   cmake -DMSTCTL=<mstctl> -DSPEC=<spec> -DSHARDS=<N> -DWORKDIR=<dir>
#         -P tests/shard_merge_smoke.cmake

foreach(var MSTCTL SPEC SHARDS WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_merge_smoke.cmake needs -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

function(run_mstctl)
  execute_process(COMMAND ${MSTCTL} ${ARGN} RESULT_VARIABLE status OUTPUT_QUIET)
  if(NOT status EQUAL 0)
    message(FATAL_ERROR "mstctl ${ARGN} failed with status ${status}")
  endif()
endfunction()

run_mstctl(--mode=sweep --spec=${SPEC} --threads=2 --out=csv
           --out-file=${WORKDIR}/ref.csv)
run_mstctl(--mode=sweep --spec=${SPEC} --threads=2 --out=json
           --out-file=${WORKDIR}/ref.json)

math(EXPR last_shard "${SHARDS} - 1")
foreach(i RANGE 0 ${last_shard})
  run_mstctl(--mode=sweep --spec=${SPEC} --threads=2 --shard=${i}/${SHARDS}
             --journal=${WORKDIR}/journals)
endforeach()

run_mstctl(--mode=merge --journal=${WORKDIR}/journals --out=csv
           --out-file=${WORKDIR}/merged.csv)
run_mstctl(--mode=merge --journal=${WORKDIR}/journals --out=json
           --out-file=${WORKDIR}/merged.json)

foreach(kind csv json)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORKDIR}/ref.${kind} ${WORKDIR}/merged.${kind}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR
            "merged ${kind} differs from the single-process reference "
            "(${WORKDIR}/ref.${kind} vs ${WORKDIR}/merged.${kind})")
  endif()
endforeach()

message(STATUS "shard/merge byte-identity holds for ${SHARDS} shards")
