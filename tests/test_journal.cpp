// Distributed, resumable sweeps: journal record round-trips, torn-tail
// truncation recovery, resume-skips-completed-cells, and the tentpole
// contract — N shard journals merge into CSV/JSON byte-identical to the
// single-process run (both batch modes, 2- and 3-way splits).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "mst/obs/metrics.hpp"
#include "mst/scenario/generators.hpp"
#include "mst/scenario/journal.hpp"
#include "mst/scenario/report.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/scenario/spec.hpp"

namespace mst::scenario {
namespace {

/// A small all-kinds grid exercising both work axes — big enough that a
/// 3-way shard split leaves several same-platform batches per shard.
SweepSpec small_grid() {
  SweepSpec spec;
  spec.name = "journal";
  spec.seed = 42;
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kFork,
                api::PlatformKind::kSpider, api::PlatformKind::kTree};
  spec.classes = {PlatformClass::kUniform};
  spec.sizes = {2, 3};
  spec.instances = 2;
  spec.tasks = {4, 8};
  spec.deadlines = {30};
  return spec;
}

/// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "mst_journal_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

CellOutcome sample_outcome() {
  CellOutcome out;
  out.cell.index = 7;
  out.cell.spec_name = "round\ntrip \\ spec";  // escapes must survive
  out.cell.kind = "spider";
  out.cell.cls = "comm-bound";
  out.cell.size = 3;
  out.cell.instance = 1;
  out.cell.platform_seed = 0xDEADBEEFCAFEBABEull;
  out.cell.algorithm = "optimal";
  out.cell.mode = CellMode::kStream;
  out.cell.n = 12;
  out.cell.deadline = 40;
  out.cell.seed = 0xFEEDFACE12345678ull;
  out.cell.workload_label = "poisson(3)";
  out.cell.workload_seed = 99;
  out.tasks = 12;
  out.makespan = 137;
  out.lower_bound = 120;
  out.optimal = true;
  out.throughput = 12.0 / 137.0;  // must round-trip to the exact bits
  out.wall_ms = 1.25;
  out.error = "boom: line1\nline2";
  out.mean_latency = 3.9999999999999996;
  out.peak_backlog = 5;
  out.regret = 1.0833333333333333;
  obs::MetricSample counter;
  counter.name = "sim.engine.events";
  counter.type = obs::MetricType::kCounter;
  counter.value = 321;
  obs::MetricSample hist;
  hist.name = "stream.latency";
  hist.type = obs::MetricType::kHistogram;
  hist.determinism = obs::DeterminismClass::kWallTime;
  hist.count = 12;
  hist.sum = 48;
  hist.buckets[0] = 2;
  hist.buckets[5] = 10;
  out.metrics = {counter, hist};
  return out;
}

TEST(JournalRecord, RoundTripsEveryField) {
  const CellOutcome out = sample_outcome();
  const CellOutcome back = decode_record(encode_record(out));

  EXPECT_EQ(back.cell.index, out.cell.index);
  EXPECT_EQ(back.cell.spec_name, out.cell.spec_name);
  EXPECT_EQ(back.cell.kind, out.cell.kind);
  EXPECT_EQ(back.cell.cls, out.cell.cls);
  EXPECT_EQ(back.cell.size, out.cell.size);
  EXPECT_EQ(back.cell.instance, out.cell.instance);
  EXPECT_EQ(back.cell.platform_seed, out.cell.platform_seed);
  EXPECT_EQ(back.cell.algorithm, out.cell.algorithm);
  EXPECT_EQ(back.cell.mode, out.cell.mode);
  EXPECT_EQ(back.cell.n, out.cell.n);
  EXPECT_EQ(back.cell.deadline, out.cell.deadline);
  EXPECT_EQ(back.cell.seed, out.cell.seed);
  EXPECT_EQ(back.cell.workload_label, out.cell.workload_label);
  EXPECT_EQ(back.cell.workload_seed, out.cell.workload_seed);
  // Key-only decode: live pointers are the resuming runner's to restore.
  EXPECT_EQ(back.cell.platform, nullptr);
  EXPECT_EQ(back.cell.workload, nullptr);

  EXPECT_EQ(back.tasks, out.tasks);
  EXPECT_EQ(back.makespan, out.makespan);
  EXPECT_EQ(back.lower_bound, out.lower_bound);
  EXPECT_EQ(back.optimal, out.optimal);
  // %.17g + strtod is exact for doubles: the same bits, not "close".
  EXPECT_EQ(back.throughput, out.throughput);
  EXPECT_EQ(back.wall_ms, out.wall_ms);
  EXPECT_EQ(back.error, out.error);
  EXPECT_EQ(back.mean_latency, out.mean_latency);
  EXPECT_EQ(back.peak_backlog, out.peak_backlog);
  EXPECT_EQ(back.regret, out.regret);
  ASSERT_EQ(back.metrics.size(), out.metrics.size());
  EXPECT_EQ(back.metrics[0], out.metrics[0]);
  EXPECT_EQ(back.metrics[1], out.metrics[1]);
}

TEST(JournalRecord, DecodeRejectsGarbage) {
  EXPECT_THROW(decode_record(""), std::invalid_argument);
  EXPECT_THROW(decode_record("out 1 2 3 0 4\n"), std::invalid_argument);  // no cell line
  EXPECT_THROW(decode_record("cell not-a-number\n"), std::invalid_argument);
}

TEST(JournalGrid, FingerprintBindsToTheGrid) {
  std::vector<Cell> cells = expand(small_grid());
  const std::uint64_t fp = grid_fingerprint(cells);
  EXPECT_EQ(grid_fingerprint(cells), fp);  // stable
  cells[3].seed ^= 1;                      // any key change moves it
  EXPECT_NE(grid_fingerprint(cells), fp);
}

TEST(JournalFile, PathFormat) {
  EXPECT_EQ(journal_path("dir", 2, 5), "dir/shard-2-of-5.mstj");
}

TEST(JournalFile, AppendReplayAndHeaderMismatch) {
  const std::string dir = scratch_dir("append_replay");
  const CellOutcome out = sample_outcome();
  {
    Journal journal(dir, 0, 2, 16, /*fingerprint=*/0xABCD);
    EXPECT_TRUE(journal.replayed().outcomes.empty());
    EXPECT_FALSE(journal.replayed().torn);
    journal.append(out);
  }
  {
    Journal journal(dir, 0, 2, 16, 0xABCD);
    ASSERT_EQ(journal.replayed().outcomes.size(), 1u);
    EXPECT_FALSE(journal.replayed().torn);
    EXPECT_EQ(journal.replayed().outcomes[0].cell.index, out.cell.index);
    EXPECT_EQ(journal.replayed().outcomes[0].error, out.error);
  }
  // A different grid fingerprint (an edited spec), shard position or cell
  // count must be rejected loudly, never resumed.
  EXPECT_THROW(Journal(dir, 0, 2, 16, 0xABCE), std::runtime_error);
  EXPECT_THROW(Journal(dir, 0, 2, 17, 0xABCD), std::runtime_error);
}

TEST(JournalFile, TornTailIsTruncatedAndRecovered) {
  const std::string dir = scratch_dir("torn_tail");
  CellOutcome a = sample_outcome();
  CellOutcome b = sample_outcome();
  b.cell.index = 9;
  b.error.clear();
  {
    Journal journal(dir, 1, 3, 30, 0x1234);
    journal.append(a);
    journal.append(b);
  }
  const std::string path = journal_path(dir, 1, 3);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size - 7);  // tear the final record
  {
    Journal journal(dir, 1, 3, 30, 0x1234);
    ASSERT_EQ(journal.replayed().outcomes.size(), 1u);  // only `a` survives
    EXPECT_TRUE(journal.replayed().torn);
    EXPECT_EQ(journal.replayed().outcomes[0].cell.index, a.cell.index);
    journal.append(b);  // the truncated tail is writable again
  }
  {
    Journal journal(dir, 1, 3, 30, 0x1234);
    ASSERT_EQ(journal.replayed().outcomes.size(), 2u);
    EXPECT_FALSE(journal.replayed().torn);
    EXPECT_EQ(journal.replayed().outcomes[1].cell.index, b.cell.index);
  }
}

TEST(ShardedRun, PartitionIsDisjointAndComplete) {
  const std::vector<Cell> cells = expand(small_grid());
  RunOptions options;
  options.threads = 2;
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    options.shard_index = i;
    options.shard_count = 3;
    for (const CellOutcome& outcome : run_cells(cells, options)) {
      EXPECT_EQ(outcome.cell.index % 3, i);
      EXPECT_TRUE(seen.insert(outcome.cell.index).second) << "duplicate cell";
      ++total;
    }
  }
  EXPECT_EQ(total, cells.size());  // disjoint + complete = a partition
}

TEST(ShardedRun, OutOfRangeShardThrows) {
  const std::vector<Cell> cells = expand(small_grid());
  RunOptions options;
  options.shard_count = 0;
  EXPECT_THROW(run_cells(cells, options), std::invalid_argument);
  options.shard_count = 2;
  options.shard_index = 2;
  EXPECT_THROW(run_cells(cells, options), std::invalid_argument);
}

TEST(ShardedRun, ResumeSkipsCompletedCellsAndAnnouncesProgress) {
  const std::string dir = scratch_dir("resume");
  const std::vector<Cell> cells = expand(small_grid());
  RunOptions options;
  options.shard_index = 0;
  options.shard_count = 2;
  options.journal_dir = dir;

  obs::MetricsRegistry first_metrics;
  options.metrics = &first_metrics;
  const std::vector<CellOutcome> first = run_cells(cells, options);

  // Second run over the same journal: every cell replays, none recomputes.
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  std::vector<std::size_t> announced;
  options.on_progress = [&](std::size_t done, std::size_t total, bool failed) {
    announced.push_back(done);
    EXPECT_EQ(total, first.size());
    EXPECT_FALSE(failed);
  };
  const std::vector<CellOutcome> second = run_cells(cells, options);

  // The leading announce carries (replayed, total, false) and nothing runs
  // after it — progress never jumps backwards on a resume.
  ASSERT_EQ(announced.size(), 1u);
  EXPECT_EQ(announced[0], first.size());

  std::int64_t replayed = 0;
  std::int64_t skipped = 0;
  std::int64_t appended = 0;
  for (const obs::MetricSample& sample : metrics.snapshot(true)) {
    if (sample.name == "scenario.journal.replayed") replayed = sample.value;
    if (sample.name == "scenario.journal.skipped") skipped = sample.value;
    if (sample.name == "scenario.journal.appended") appended = sample.value;
  }
  EXPECT_EQ(replayed, static_cast<std::int64_t>(first.size()));
  EXPECT_EQ(skipped, static_cast<std::int64_t>(first.size()));
  EXPECT_EQ(appended, 0);

  // Replayed outcomes reproduce the first run's rows byte-for-byte, and the
  // re-absorbed metric aggregate matches the fresh run's exactly — except
  // the journal bookkeeping counters themselves (a resume replays instead
  // of appending; that difference is the feature).
  EXPECT_EQ(to_csv(second, {}), to_csv(first, {}));
  const auto without_journal = [](const obs::MetricsRegistry& registry) {
    std::vector<obs::MetricSample> samples = registry.snapshot(true);
    std::erase_if(samples, [](const obs::MetricSample& sample) {
      return sample.name.rfind("scenario.journal.", 0) == 0;
    });
    return samples;
  };
  EXPECT_EQ(without_journal(metrics), without_journal(first_metrics));
}

TEST(ShardedRun, ResumeRejectsAForeignGrid) {
  const std::string dir = scratch_dir("foreign");
  SweepSpec spec = small_grid();
  const std::vector<Cell> cells = expand(spec);
  RunOptions options;
  options.journal_dir = dir;
  (void)run_cells(cells, options);
  // The same directory with a reseeded (different-fingerprint) grid: the
  // header check refuses before any cell runs.
  spec.seed = 43;
  const std::vector<Cell> other = expand(spec);
  EXPECT_THROW(run_cells(other, options), std::runtime_error);
}

/// The tentpole: shard the grid N ways through journals, merge, and demand
/// the merged report is byte-identical to the single-process run — for 2-
/// and 3-way splits, in both batch modes, CSV and JSON.
void check_merge_identity(std::size_t shards, bool batch, const std::string& tag) {
  const std::string dir = scratch_dir("merge_" + tag);
  const std::vector<Cell> cells = expand(small_grid());

  RunOptions single;
  single.threads = 2;
  single.batch = batch;
  const std::vector<CellOutcome> reference = run_cells(cells, single);

  for (std::size_t i = 0; i < shards; ++i) {
    RunOptions shard;
    shard.threads = 2;
    shard.batch = batch;
    shard.shard_index = i;
    shard.shard_count = shards;
    shard.journal_dir = dir;
    (void)run_cells(cells, shard);
  }
  const std::vector<CellOutcome> merged = merge_journals(dir);
  ASSERT_EQ(merged.size(), reference.size());

  ReportOptions plain;
  EXPECT_EQ(to_csv(merged, plain), to_csv(reference, plain));
  EXPECT_EQ(to_json(merged, plain), to_json(reference, plain));
  // The timing column is wall-clock and can't be byte-compared, but the
  // merged rows must still render through the --timing reporter.
  ReportOptions timing;
  timing.timing = true;
  EXPECT_FALSE(to_csv(merged, timing).empty());
}

TEST(MergeJournals, TwoShardsBatchedByteIdentical) {
  check_merge_identity(2, /*batch=*/true, "2b");
}

TEST(MergeJournals, ThreeShardsBatchedByteIdentical) {
  check_merge_identity(3, /*batch=*/true, "3b");
}

TEST(MergeJournals, TwoShardsUnbatchedByteIdentical) {
  check_merge_identity(2, /*batch=*/false, "2u");
}

TEST(MergeJournals, ThreeShardsUnbatchedByteIdentical) {
  check_merge_identity(3, /*batch=*/false, "3u");
}

TEST(MergeJournals, MissingShardIsAHardError) {
  const std::string dir = scratch_dir("missing_shard");
  const std::vector<Cell> cells = expand(small_grid());
  for (std::size_t i = 0; i < 2; ++i) {
    RunOptions shard;
    shard.shard_index = i;
    shard.shard_count = 3;  // shard 2 never runs
    shard.journal_dir = dir;
    (void)run_cells(cells, shard);
  }
  try {
    (void)merge_journals(dir);
    FAIL() << "merge of an incomplete shard set must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("resume"), std::string::npos) << e.what();
  }
}

TEST(MergeJournals, EmptyDirectoryIsAnError) {
  const std::string dir = scratch_dir("empty");
  std::filesystem::create_directories(dir);
  EXPECT_THROW((void)merge_journals(dir), std::runtime_error);
}

}  // namespace
}  // namespace mst::scenario
