// Tests of the plain-text schedule serialization.

#include <gtest/gtest.h>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/common/rng.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"
#include "mst/schedule/schedule_io.hpp"

namespace mst {
namespace {

TEST(ScheduleIo, ChainRoundTrip) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ChainSchedule s = ChainScheduler::schedule(chain, 5);
  const ChainSchedule parsed = parse_chain_schedule(write_schedule(s));
  EXPECT_EQ(parsed.chain, s.chain);
  EXPECT_EQ(parsed.tasks, s.tasks);
}

TEST(ScheduleIo, SpiderRoundTrip) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 6);
  const SpiderSchedule parsed = parse_spider_schedule(write_schedule(s));
  EXPECT_EQ(parsed.spider, s.spider);
  EXPECT_EQ(parsed.tasks, s.tasks);
}

TEST(ScheduleIo, RandomRoundTripsStayFeasible) {
  Rng rng(808);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 4)), 3, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const SpiderSchedule s = SpiderScheduler::schedule(spider, n);
    const SpiderSchedule parsed = parse_spider_schedule(write_schedule(s));
    EXPECT_EQ(parsed.tasks, s.tasks);
    EXPECT_TRUE(check_feasibility(parsed).ok());
  }
}

TEST(ScheduleIo, AcceptsCommentsAndEditedFiles) {
  const std::string text = R"(
chain_schedule
chain 1
2 3   # one processor
tasks 2
# proc start emissions...
0 2 0
0 5 2
)";
  const ChainSchedule s = parse_chain_schedule(text);
  ASSERT_EQ(s.tasks.size(), 2u);
  EXPECT_EQ(s.tasks[1].start, 5);
  EXPECT_TRUE(check_feasibility(s).ok());
}

TEST(ScheduleIo, LoadsInfeasibleSchedulesForInspection) {
  // Structural parsing succeeds even when the schedule is semantically
  // broken — validation is a separate concern.
  const std::string text = "chain_schedule\nchain 1\n2 3\ntasks 2\n0 2 0\n0 2 1\n";
  const ChainSchedule s = parse_chain_schedule(text);
  EXPECT_EQ(s.tasks.size(), 2u);
  EXPECT_FALSE(check_feasibility(s).ok());
}

TEST(ScheduleIo, RejectsStructuralErrors) {
  // Wrong header.
  EXPECT_THROW(parse_chain_schedule("spider_schedule\n"), std::invalid_argument);
  // Destination outside the platform.
  EXPECT_THROW(parse_chain_schedule("chain_schedule\nchain 1\n2 3\ntasks 1\n4 2 0\n"),
               std::invalid_argument);
  // Truncated task line.
  EXPECT_THROW(parse_chain_schedule("chain_schedule\nchain 1\n2 3\ntasks 1\n0 2\n"),
               std::invalid_argument);
  // Trailing garbage.
  EXPECT_THROW(parse_chain_schedule("chain_schedule\nchain 1\n2 3\ntasks 1\n0 2 0\nextra"),
               std::invalid_argument);
  // Bad leg index in spider schedules.
  EXPECT_THROW(parse_spider_schedule(
                   "spider_schedule\nspider 1\nleg 1\n2 3\ntasks 1\n3 0 2 0\n"),
               std::invalid_argument);
}

TEST(ScheduleIo, EmptySchedulesRoundTrip) {
  const Chain chain = Chain::from_vectors({1}, {1});
  ChainSchedule empty{chain, {}};
  const ChainSchedule parsed = parse_chain_schedule(write_schedule(empty));
  EXPECT_TRUE(parsed.tasks.empty());
  EXPECT_EQ(parsed.chain, chain);
}

}  // namespace
}  // namespace mst
