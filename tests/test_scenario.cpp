// Scenario engine: spec text round-trips, generator determinism, grid
// expansion, runner thread-count invariance and reporter shape.

#include <gtest/gtest.h>

#include <set>

#include "mst/api/platform_io.hpp"
#include "mst/platform/io.hpp"
#include "mst/scenario/generators.hpp"
#include "mst/scenario/report.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/scenario/spec.hpp"

namespace mst::scenario {
namespace {

SweepSpec full_spec() {
  SweepSpec spec;
  spec.name = "roundtrip";
  spec.seed = 123456789;
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kTree};
  spec.classes = {PlatformClass::kUniform, PlatformClass::kAntiCorrelated};
  spec.sizes = {2, 5};
  spec.instances = 3;
  spec.lo = 2;
  spec.hi = 17;
  spec.min_leg_len = 2;
  spec.max_leg_len = 4;
  spec.depth_bias = 0.375;
  spec.tasks = {4, 16};
  spec.deadlines = {40, 90};
  spec.stream = true;
  WorkloadGen sized;
  sized.sizes = SizeDist{SizeDist::Kind::kUniform, 1, 4};
  WorkloadGen released;
  released.arrival = ArrivalDist{ArrivalDist::Kind::kPeriodic, 3, 0};
  WorkloadGen arrivals;
  arrivals.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, 5, 0};
  spec.workloads = {WorkloadGen{}, sized, released, arrivals};
  spec.algorithms = {"optimal", "forward-greedy"};
  spec.platforms.push_back(Chain::from_vectors({2, 3}, {3, 5}));
  Tree tree;
  const NodeId trunk = tree.add_node(0, {2, 3});
  tree.add_node(trunk, {1, 2});
  spec.platforms.push_back(tree);
  return spec;
}

/// A small all-kinds grid that exercises both work axes.
SweepSpec small_grid() {
  SweepSpec spec;
  spec.name = "grid";
  spec.seed = 42;
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kFork,
                api::PlatformKind::kSpider, api::PlatformKind::kTree};
  spec.classes = {PlatformClass::kUniform};
  spec.sizes = {2, 3};
  spec.instances = 2;
  spec.tasks = {4, 8};
  spec.deadlines = {30};
  return spec;
}

TEST(SweepSpecText, RoundTripsAllFields) {
  const SweepSpec spec = full_spec();
  const std::string text = write_spec(spec);
  const SweepSpec parsed = parse_spec(text);
  EXPECT_EQ(spec, parsed);
  // Idempotent: canonical text re-renders identically.
  EXPECT_EQ(text, write_spec(parsed));
}

TEST(SweepSpecText, RoundTripsDefaults) {
  SweepSpec spec;
  spec.kinds = {api::PlatformKind::kChain};
  spec.sizes = {2};
  spec.tasks = {4};
  EXPECT_EQ(spec, parse_spec(write_spec(spec)));
}

TEST(SweepSpecText, ParsesCommentsAndMissingKeys) {
  const SweepSpec spec = parse_spec(
      "# a comment\n"
      "sweep tiny\n"
      "kinds chain  # trailing comment\n"
      "sizes 3\n"
      "tasks 5\n");
  EXPECT_EQ(spec.name, "tiny");
  ASSERT_EQ(spec.kinds.size(), 1u);
  EXPECT_EQ(spec.kinds[0], api::PlatformKind::kChain);
  // Unset keys keep their defaults.
  EXPECT_EQ(spec.classes, std::vector<PlatformClass>{PlatformClass::kUniform});
  EXPECT_EQ(spec.seed, 1u);
}

TEST(SweepSpecText, WriteRejectsUnserializableNames) {
  SweepSpec spec = full_spec();
  spec.name = "two words";
  EXPECT_THROW(write_spec(spec), std::invalid_argument);
  spec.name = "hash#tag";
  EXPECT_THROW(write_spec(spec), std::invalid_argument);
  spec.name = "";
  EXPECT_THROW(write_spec(spec), std::invalid_argument);
}

TEST(SweepSpecText, RejectsGarbage) {
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_spec("grid x\n"), std::invalid_argument);              // no header
  EXPECT_THROW(parse_spec("sweep s\nbogus 1\n"), std::invalid_argument);    // unknown key
  EXPECT_THROW(parse_spec("sweep s\nkinds blob\n"), std::invalid_argument); // unknown kind
  EXPECT_THROW(parse_spec("sweep s\nseed -3\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("sweep s\nplatform\nchain 1\n1 2\n"),
               std::invalid_argument);  // unterminated block
}

TEST(Generators, SameSeedSamePlatform) {
  for (api::PlatformKind kind : api::all_platform_kinds()) {
    PlatformSpec spec;
    spec.kind = kind;
    spec.cls = PlatformClass::kCorrelated;
    spec.size = 6;
    spec.depth_bias = 0.5;
    const api::Platform a = make_platform(spec, 99);
    const api::Platform b = make_platform(spec, 99);
    EXPECT_EQ(api::write_platform(a), api::write_platform(b)) << to_string(kind);
    const api::Platform c = make_platform(spec, 100);
    EXPECT_NE(api::write_platform(a), api::write_platform(c)) << to_string(kind);
  }
}

TEST(Generators, DepthBiasShapesTrees) {
  PlatformSpec spec;
  spec.kind = api::PlatformKind::kTree;
  spec.size = 12;
  spec.depth_bias = 1.0;
  const auto chain_tree = std::get<Tree>(make_platform(spec, 5));
  EXPECT_TRUE(chain_tree.is_chain());
  // Bias 0 must reproduce the historical random_tree stream.
  spec.depth_bias = 0.0;
  Rng rng(5);
  const Tree expected = random_tree(rng, 12, GeneratorParams{spec.lo, spec.hi, spec.cls});
  EXPECT_EQ(std::get<Tree>(make_platform(spec, 5)), expected);
}

TEST(Expand, DeterministicGridWithStableSeeds) {
  const SweepSpec spec = small_grid();
  const std::vector<Cell> a = expand(spec);
  const std::vector<Cell> b = expand(spec);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].platform_seed, b[i].platform_seed);
    EXPECT_EQ(api::write_platform(*a[i].platform), api::write_platform(*b[i].platform));
    seeds.insert(a[i].seed);
  }
  // Per-cell seeds are (practically) unique — online policies must not share
  // streams across cells.
  EXPECT_EQ(seeds.size(), a.size());
}

TEST(Expand, CoversKindsAlgorithmsAndModes) {
  const std::vector<Cell> cells = expand(small_grid());
  std::set<std::string> kinds;
  std::set<std::string> modes;
  for (const Cell& cell : cells) {
    kinds.insert(cell.kind);
    modes.insert(to_string(cell.mode));
    // Default algorithm resolution never picks exponential oracles.
    EXPECT_NE(cell.algorithm, "brute-force");
  }
  EXPECT_EQ(kinds, (std::set<std::string>{"chain", "fork", "spider", "tree"}));
  EXPECT_EQ(modes, (std::set<std::string>{"solve", "within"}));
}

TEST(Expand, RejectsEmptyAndUnknown) {
  SweepSpec spec;
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no kinds, no platforms
  spec.kinds = {api::PlatformKind::kChain};
  spec.sizes = {2};
  EXPECT_THROW(expand(spec), std::invalid_argument);  // no work axis
  spec.tasks = {4};
  EXPECT_NO_THROW(expand(spec));
  spec.algorithms = {"no-such-algorithm"};
  EXPECT_THROW(expand(spec), std::invalid_argument);
  spec.algorithms.clear();
  spec.lo = 9;
  spec.hi = 1;  // inverted times range fails with spec context, not deep in the generator
  EXPECT_THROW(expand(spec), std::invalid_argument);
}

TEST(Runner, ThreadCountInvariance) {
  const SweepSpec spec = small_grid();
  RunOptions one;
  one.threads = 1;
  RunOptions many;
  many.threads = 5;
  const std::string csv_one = to_csv(run_sweep(spec, one));
  const std::string csv_many = to_csv(run_sweep(spec, many));
  EXPECT_EQ(csv_one, csv_many);
  const std::string json_one = to_json(run_sweep(spec, one));
  const std::string json_many = to_json(run_sweep(spec, many));
  EXPECT_EQ(json_one, json_many);
}

TEST(Runner, ProgressCallbackCountsEveryCellAtAnyThreadCount) {
  const SweepSpec spec = small_grid();
  const std::vector<Cell> cells = expand(spec);
  for (const unsigned threads : {1u, 2u, 5u}) {
    RunOptions options;
    options.threads = threads;
    std::vector<std::size_t> dones;
    std::size_t failures = 0;
    // The callback mutates plain vectors from pool workers on purpose: the
    // ProgressSink serializes invocations under its annotated mutex, so
    // this is race-free (TSan runs this suite in CI).
    options.on_progress = [&](std::size_t done, std::size_t total, bool failed) {
      EXPECT_EQ(total, cells.size());
      dones.push_back(done);
      if (failed) ++failures;
    };
    run_cells(cells, options);
    // One leading (0, total, false) announcement, then exactly one call per
    // cell; `done` is monotone 0, 1 .. total regardless of which thread
    // finished which cell.
    ASSERT_EQ(dones.size(), cells.size() + 1);
    for (std::size_t i = 0; i < dones.size(); ++i) EXPECT_EQ(dones[i], i);
    EXPECT_EQ(failures, 0u);
  }
}

TEST(Runner, FastPathMatchesMaterializedAndChecked) {
  // The allocation-free counting paths and payload stripping must not change
  // any reported number: the CSV (which excludes timing) is identical.
  const SweepSpec spec = small_grid();
  RunOptions fast;
  fast.threads = 2;
  RunOptions checked;
  checked.threads = 2;
  checked.materialize = true;
  checked.check = true;
  const std::vector<CellOutcome> a = run_sweep(spec, fast);
  const std::vector<CellOutcome> b = run_sweep(spec, checked);
  EXPECT_EQ(to_csv(a), to_csv(b));
  for (const CellOutcome& out : b) EXPECT_TRUE(out.ok()) << out.error;
}

TEST(Runner, ErrorsAreReportedPerCell) {
  // A private registry whose only entry throws: the runner must record the
  // message per cell instead of aborting the sweep, and the reporters must
  // quote/escape it.
  api::Registry registry;
  registry.add({api::PlatformKind::kChain, "boom", "always throws"},
               [](const api::Platform&, std::size_t) -> api::SolveResult {
                 throw std::runtime_error("kaboom, \"quoted\" failure");
               });
  SweepSpec spec;
  spec.name = "boom";
  spec.platforms.push_back(Chain::from_vectors({2}, {3}));
  spec.tasks = {4};
  spec.algorithms = {"boom"};
  const std::vector<CellOutcome> outcomes =
      run_cells(expand(spec, registry), RunOptions{}, registry);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok());
  EXPECT_NE(outcomes[0].error.find("kaboom"), std::string::npos);
  const std::string csv = to_csv(outcomes);
  EXPECT_NE(csv.find("\"kaboom, \"\"quoted\"\" failure\""), std::string::npos);
  const std::string json = to_json(outcomes);
  EXPECT_NE(json.find("\"error\":\"kaboom, \\\"quoted\\\" failure\""), std::string::npos);
}

TEST(Runner, AlgorithmsFilterPerKind) {
  SweepSpec spec;
  spec.name = "filter";
  spec.platforms.push_back(Chain::from_vectors({2}, {3}));
  spec.tasks = {4};
  spec.kinds = {api::PlatformKind::kTree};
  spec.sizes = {2};
  // "local-search" exists for trees but not for chains: the chain platform's
  // cells simply skip it, while tree cells run it.
  spec.algorithms = {"optimal", "local-search"};
  const std::vector<CellOutcome> outcomes = run_cells(expand(spec), RunOptions{});
  ASSERT_FALSE(outcomes.empty());
  for (const CellOutcome& out : outcomes) EXPECT_TRUE(out.ok()) << out.error;
  std::set<std::string> algorithms;
  for (const CellOutcome& out : outcomes) algorithms.insert(out.cell.algorithm);
  EXPECT_EQ(algorithms, (std::set<std::string>{"optimal", "local-search"}));
}

TEST(Report, CsvShape) {
  SweepSpec spec;
  spec.name = "csv";
  spec.platforms.push_back(Chain::from_vectors({2, 3}, {3, 5}));
  spec.tasks = {5};
  spec.deadlines = {14};
  spec.algorithms = {"optimal"};
  const std::vector<CellOutcome> outcomes = run_sweep(spec, RunOptions{});
  ASSERT_EQ(outcomes.size(), 2u);
  const std::string csv = to_csv(outcomes);
  EXPECT_NE(csv.find("spec,kind,class,size,instance,platform_seed,algorithm,mode,n,deadline,"
                     "workload,cell_seed,tasks,makespan,lower_bound,optimal,throughput,"
                     "latency,backlog,regret,error"),
            std::string::npos);
  // Fig 2: 5 tasks take 14, and 5 tasks fit in a window of 14.
  EXPECT_NE(csv.find("csv,chain,-,2,0,0,optimal,solve,5,,unit,"), std::string::npos);
  EXPECT_NE(csv.find(",5,14,"), std::string::npos);
  ReportOptions timing;
  timing.timing = true;
  EXPECT_NE(to_csv(outcomes, timing).find(",wall_ms,"), std::string::npos);
}

TEST(SweepSpecText, WorkloadAxisRoundTripsAndRejects) {
  // Every family has a line form and survives the round trip.
  const SweepSpec spec = parse_spec(
      "sweep wl\n"
      "kinds chain\n"
      "sizes 2\n"
      "tasks 6\n"
      "tasks.sizes unit\n"
      "tasks.sizes fixed 3\n"
      "tasks.sizes uniform 1 4\n"
      "tasks.release periodic 2\n"
      "tasks.release jitter 0 9\n"
      "tasks.arrival poisson 4\n"
      "tasks.arrival bursts 3 7\n");
  ASSERT_EQ(spec.workloads.size(), 7u);
  EXPECT_TRUE(spec.workloads[0].identical());
  EXPECT_EQ(spec.workloads[2].sizes.kind, SizeDist::Kind::kUniform);
  EXPECT_EQ(spec.workloads[5].arrival.kind, ArrivalDist::Kind::kPoisson);
  EXPECT_EQ(spec, parse_spec(write_spec(spec)));

  EXPECT_THROW(parse_spec("sweep s\ntasks.sizes blob\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("sweep s\ntasks.sizes uniform 4 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("sweep s\ntasks.release periodic\n"), std::invalid_argument);
  EXPECT_THROW(parse_spec("sweep s\ntasks.arrival bursts 0 4\n"), std::invalid_argument);
  // Combined generators are constructible in code but have no line form.
  SweepSpec combined;
  combined.kinds = {api::PlatformKind::kChain};
  combined.sizes = {2};
  combined.tasks = {4};
  WorkloadGen both;
  both.sizes = SizeDist{SizeDist::Kind::kFixed, 2, 0};
  both.arrival = ArrivalDist{ArrivalDist::Kind::kPeriodic, 2, 0};
  combined.workloads = {both};
  EXPECT_THROW(write_spec(combined), std::invalid_argument);
}

TEST(Expand, WorkloadAxisPairsOnlySupportingAlgorithms) {
  SweepSpec spec;
  spec.name = "caps";
  spec.kinds = {api::PlatformKind::kChain};
  spec.sizes = {2};
  spec.tasks = {4};
  spec.deadlines = {30};
  WorkloadGen released;
  released.arrival = ArrivalDist{ArrivalDist::Kind::kPeriodic, 2, 0};
  WorkloadGen sized;
  sized.sizes = SizeDist{SizeDist::Kind::kUniform, 1, 3};
  spec.workloads = {WorkloadGen{}, released, sized};

  const std::vector<Cell> cells = expand(spec);
  ASSERT_FALSE(cells.empty());
  bool saw_released_optimal = false;
  for (const Cell& cell : cells) {
    if (cell.workload == nullptr) {
      EXPECT_EQ(cell.workload_label, "unit");
      continue;
    }
    // Cells only pair a generator with algorithms that declared support.
    const WorkloadFeatures features = cell.workload->features();
    EXPECT_TRUE(api::registry().supports(api::PlatformKind::kChain, cell.algorithm, features))
        << cell.algorithm << " vs " << cell.workload_label;
    // `periodic` never lands on `periodic`-the-algorithm (identical-only),
    // and sized workloads never land on `optimal`.
    if (cell.workload_label == "periodic(2)" && cell.algorithm == "optimal") {
      saw_released_optimal = true;
    }
    EXPECT_NE(cell.algorithm, "periodic");
    if (!cell.workload->uniform_sizes()) {
      EXPECT_NE(cell.algorithm, "optimal");
    }
    // Decision-form workload cells carry their finite pool size.
    if (cell.mode == CellMode::kWithin) {
      EXPECT_EQ(cell.n, 4u);
      EXPECT_EQ(cell.workload->count(), 4u);
    }
  }
  EXPECT_TRUE(saw_released_optimal);

  // A deadline axis with a non-identical generator needs a pool size.
  SweepSpec no_pool = spec;
  no_pool.tasks.clear();
  EXPECT_THROW(expand(no_pool), std::invalid_argument);
}

TEST(Expand, WorkloadsAreDeterministicAndSharedAcrossAlgorithms) {
  SweepSpec spec;
  spec.name = "share";
  spec.kinds = {api::PlatformKind::kSpider};
  spec.sizes = {3};
  spec.tasks = {6};
  WorkloadGen jitter;
  jitter.arrival = ArrivalDist{ArrivalDist::Kind::kJitter, 0, 20};
  spec.workloads = {jitter};
  spec.algorithms = {"optimal", "forward-greedy", "round-robin"};

  const std::vector<Cell> a = expand(spec);
  const std::vector<Cell> b = expand(spec);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 3u);
  const Workload* shared = nullptr;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NE(a[i].workload, nullptr);
    EXPECT_EQ(*a[i].workload, *b[i].workload);  // same seeds, same draws
    EXPECT_EQ(a[i].workload_seed, b[i].workload_seed);
    if (shared == nullptr) {
      shared = a[i].workload.get();
    } else {
      // One generated instance serves every algorithm of the platform.
      EXPECT_EQ(shared, a[i].workload.get());
    }
  }
}

TEST(Expand, PlatformCacheSharesDuplicateGridPoints) {
  SweepSpec spec;
  spec.name = "dup";
  spec.kinds = {api::PlatformKind::kChain};
  spec.classes = {PlatformClass::kUniform, PlatformClass::kUniform};  // duplicate point
  spec.sizes = {3};
  spec.tasks = {4};
  spec.algorithms = {"optimal"};
  const std::vector<Cell> cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  // Same (family, size, platform seed) → one shared instance, not a copy.
  EXPECT_EQ(cells[0].platform_seed, cells[1].platform_seed);
  EXPECT_EQ(cells[0].platform.get(), cells[1].platform.get());
}

TEST(Runner, ReleaseAxisSweepIsThreadInvariantAndFeasible) {
  SweepSpec spec;
  spec.name = "released";
  spec.seed = 17;
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kSpider};
  spec.sizes = {2, 3};
  spec.instances = 2;
  spec.tasks = {5, 9};
  spec.deadlines = {70};
  WorkloadGen released;
  released.arrival = ArrivalDist{ArrivalDist::Kind::kPeriodic, 2, 0};
  spec.workloads = {WorkloadGen{}, released};
  spec.algorithms = {"optimal"};

  RunOptions one;
  one.threads = 1;
  RunOptions many;
  many.threads = 4;
  const std::vector<CellOutcome> outcomes = run_sweep(spec, one);
  EXPECT_EQ(to_csv(outcomes), to_csv(run_sweep(spec, many)));

  // The materialized twin passes feasibility checking (release gates
  // included) and reports the same numbers.
  RunOptions checked;
  checked.threads = 2;
  checked.materialize = true;
  checked.check = true;
  const std::vector<CellOutcome> verified = run_sweep(spec, checked);
  EXPECT_EQ(to_csv(outcomes), to_csv(verified));
  bool saw_released_cell = false;
  for (const CellOutcome& out : verified) {
    EXPECT_TRUE(out.ok()) << out.error;
    if (out.cell.workload != nullptr) {
      saw_released_cell = true;
      EXPECT_TRUE(out.cell.workload->has_release_dates());
    }
  }
  EXPECT_TRUE(saw_released_cell);
}

TEST(SweepSpecText, StreamKeyRoundTripsAndRejectsValues) {
  const SweepSpec spec = parse_spec(
      "sweep s\n"
      "kinds tree\n"
      "sizes 3\n"
      "tasks 6\n"
      "stream\n");
  EXPECT_TRUE(spec.stream);
  EXPECT_EQ(spec, parse_spec(write_spec(spec)));
  EXPECT_THROW(parse_spec("sweep s\nstream on\n"), std::invalid_argument);
  // Stream cells draw their task count from `tasks`.
  SweepSpec no_tasks;
  no_tasks.kinds = {api::PlatformKind::kTree};
  no_tasks.sizes = {3};
  no_tasks.deadlines = {30};
  no_tasks.stream = true;
  EXPECT_THROW(expand(no_tasks), std::invalid_argument);
}

TEST(Expand, StreamCellsPairOnlyStreamingCapableAlgorithms) {
  SweepSpec spec;
  spec.name = "streamcaps";
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kTree};
  spec.sizes = {3};
  spec.tasks = {6};
  spec.stream = true;
  WorkloadGen poisson;
  poisson.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, 3, 0};
  spec.workloads = {WorkloadGen{}, poisson};

  std::set<std::string> stream_algorithms;
  std::size_t stream_cells = 0;
  for (const Cell& cell : expand(spec)) {
    if (cell.mode != CellMode::kStream) continue;
    ++stream_cells;
    stream_algorithms.insert(cell.kind + "/" + cell.algorithm);
    WorkloadFeatures requested =
        cell.workload != nullptr ? cell.workload->features() : WorkloadFeatures{};
    requested.streaming = true;
    EXPECT_TRUE(api::registry().supports(*api::platform_kind_from(cell.kind), cell.algorithm,
                                         requested))
        << cell.kind << "/" << cell.algorithm;
    EXPECT_EQ(cell.n, 6u);
  }
  // Chains stream only through the re-planner; trees through the four
  // online policies (both workload-axis points each).
  EXPECT_EQ(stream_algorithms,
            (std::set<std::string>{"chain/replan", "tree/online-ect", "tree/online-jsq",
                                   "tree/online-round-robin", "tree/online-random"}));
  EXPECT_EQ(stream_cells, 2u * stream_algorithms.size());
}

TEST(Runner, StreamSweepIsThreadInvariantWithMetricColumns) {
  SweepSpec spec;
  spec.name = "streamrun";
  spec.seed = 23;
  spec.kinds = {api::PlatformKind::kChain, api::PlatformKind::kSpider,
                api::PlatformKind::kTree};
  spec.sizes = {3};
  spec.instances = 2;
  spec.tasks = {8};
  spec.stream = true;
  WorkloadGen poisson;
  poisson.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, 4, 0};
  spec.workloads = {WorkloadGen{}, poisson};

  RunOptions one;
  one.threads = 1;
  RunOptions many;
  many.threads = 4;
  const std::vector<CellOutcome> outcomes = run_sweep(spec, one);
  EXPECT_EQ(to_csv(outcomes), to_csv(run_sweep(spec, many)));
  EXPECT_EQ(to_json(outcomes), to_json(run_sweep(spec, many)));

  bool saw_regret = false;
  for (const CellOutcome& out : outcomes) {
    EXPECT_TRUE(out.ok()) << out.error;
    if (out.cell.mode != CellMode::kStream) continue;
    EXPECT_GE(out.mean_latency, 0.0);
    EXPECT_GE(out.peak_backlog, 1u);
    // Regret exists exactly where an exact offline reference does: chains
    // always, spiders only on release-free (unit) workloads; trees never.
    // Elsewhere the sentinel, not inf/nan.
    const bool exact_offline =
        out.cell.kind == "chain" ||
        (out.cell.kind == "spider" && out.cell.workload_label == "unit");
    if (exact_offline) {
      // The streamed execution is a feasible schedule of the same
      // workload, so it can never beat the exact offline optimum.
      EXPECT_GE(out.regret, 1.0) << out.cell.kind << " " << out.cell.workload_label;
      saw_regret = true;
    } else {
      EXPECT_LT(out.regret, 0.0) << out.cell.kind << " " << out.cell.workload_label;
    }
  }
  EXPECT_TRUE(saw_regret);
  const std::string csv = to_csv(outcomes);
  EXPECT_NE(csv.find(",stream,"), std::string::npos);
  EXPECT_EQ(csv.find("inf"), std::string::npos);
  EXPECT_EQ(csv.find("nan"), std::string::npos);
}

TEST(Report, JsonShape) {
  SweepSpec spec;
  spec.name = "json";
  spec.platforms.push_back(Chain::from_vectors({2, 3}, {3, 5}));
  spec.tasks = {5};
  spec.algorithms = {"optimal"};
  const std::string json = to_json(run_sweep(spec, RunOptions{}));
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"algorithm\":\"optimal\""), std::string::npos);
  EXPECT_NE(json.find("\"makespan\":14"), std::string::npos);
  EXPECT_NE(json.find("\"optimal\":true"), std::string::npos);
}

}  // namespace
}  // namespace mst::scenario
