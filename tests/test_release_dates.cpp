// Release-date scheduling, cross-validated against small exhaustive
// oracles.  The oracle enumerates every destination sequence and times it
// with the release-gated ASAP placement (for identical tasks, Lemma 1's
// uncrossing argument makes destination sequences + ASAP exhaustive; the
// positional release dates ride along because uncrossing preserves the
// emission order).  The native algorithms — the chain backward construction
// anchored at the minimal feasible horizon and the fork/spider
// positional-release selection DP — must match it exactly, makespan form
// and decision form alike.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "mst/api/registry.hpp"
#include "mst/baselines/asap.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

/// Random workload of `n` unit tasks with releases in [0, spread].
Workload random_released(Rng& rng, std::size_t n, Time spread) {
  std::vector<Time> releases(n);
  for (Time& r : releases) r = rng.uniform(0, spread);
  return Workload::released(std::move(releases));
}

// ---------------------------------------------------------------------------
// Chain oracle
// ---------------------------------------------------------------------------

/// Minimal release-gated ASAP makespan over every destination sequence of
/// length `k` (kTimeInfinity if k == 0 is never passed).
Time chain_oracle_makespan(const Chain& chain, const Workload& workload) {
  const std::size_t k = workload.count();
  std::vector<std::size_t> dests(k, 0);
  Time best = kTimeInfinity;
  while (true) {
    best = std::min(best, asap_chain_schedule(chain, dests, workload).makespan());
    // Odometer over the destination alphabet.
    std::size_t pos = 0;
    while (pos < k && ++dests[pos] == chain.size()) dests[pos++] = 0;
    if (pos == k) break;
  }
  return best;
}

/// Oracle decision form: the largest k whose best sequence fits the window.
std::size_t chain_oracle_count(const Chain& chain, const Workload& workload, Time t_lim) {
  for (std::size_t k = workload.count(); k >= 1; --k) {
    if (chain_oracle_makespan(chain, workload.prefix(k)) <= t_lim) return k;
  }
  return 0;
}

TEST(ReleaseDates, ChainOptimalMatchesExhaustiveOracle) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 3));
    const GeneratorParams params{1, 6, all_platform_classes()[trial % 5]};
    const Chain chain = random_chain(inst, p, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 5));
    const Workload workload = random_released(rng, n, rng.uniform(0, 30));

    // Makespan form.
    const ChainSchedule schedule = ChainScheduler::schedule(chain, workload);
    const Time oracle = chain_oracle_makespan(chain, workload);
    EXPECT_EQ(schedule.makespan(), oracle)
        << chain.describe() << " " << workload.describe();
    const FeasibilityReport report = check_feasibility(schedule, workload);
    EXPECT_TRUE(report.ok()) << report.summary();

    // Decision form at assorted windows, including the exact optimum.
    ChainCountScratch scratch;
    for (const Time t_lim : {oracle - 1, oracle, oracle + 3, Time{0}}) {
      if (t_lim < 0) continue;
      const std::size_t counted =
          ChainScheduler::count_within(chain, t_lim, workload, 64, scratch);
      EXPECT_EQ(counted, chain_oracle_count(chain, workload, t_lim))
          << chain.describe() << " " << workload.describe() << " T=" << t_lim;
      const ChainSchedule within =
          ChainScheduler::schedule_within(chain, t_lim, workload, 64);
      EXPECT_EQ(within.num_tasks(), counted);
      if (counted > 0) {
        EXPECT_LE(within.makespan(), t_lim);
      }
      const FeasibilityReport within_report =
          check_feasibility(within, workload.prefix(counted));
      EXPECT_TRUE(within_report.ok()) << within_report.summary();
    }
  }
}

// ---------------------------------------------------------------------------
// Spider / fork oracles (spider destinations cover both)
// ---------------------------------------------------------------------------

std::vector<SpiderDest> spider_alphabet(const Spider& spider) {
  std::vector<SpiderDest> all;
  for (std::size_t l = 0; l < spider.num_legs(); ++l) {
    for (std::size_t q = 0; q < spider.leg(l).size(); ++q) all.push_back({l, q});
  }
  return all;
}

Time spider_oracle_makespan(const Spider& spider, const Workload& workload) {
  const std::vector<SpiderDest> alphabet = spider_alphabet(spider);
  const std::size_t k = workload.count();
  std::vector<std::size_t> pick(k, 0);
  std::vector<SpiderDest> dests(k);
  Time best = kTimeInfinity;
  while (true) {
    for (std::size_t i = 0; i < k; ++i) dests[i] = alphabet[pick[i]];
    best = std::min(best, asap_spider_schedule(spider, dests, workload).makespan());
    std::size_t pos = 0;
    while (pos < k && ++pick[pos] == alphabet.size()) pick[pos++] = 0;
    if (pos == k) break;
  }
  return best;
}

std::size_t spider_oracle_count(const Spider& spider, const Workload& workload, Time t_lim) {
  for (std::size_t k = workload.count(); k >= 1; --k) {
    if (spider_oracle_makespan(spider, workload.prefix(k)) <= t_lim) return k;
  }
  return 0;
}

TEST(ReleaseDates, SpiderOptimalMatchesExhaustiveOracle) {
  Rng rng(505);
  for (int trial = 0; trial < 25; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 2));
    const GeneratorParams params{1, 6, all_platform_classes()[trial % 5]};
    const Spider spider = random_spider(inst, legs, 2, params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 4));
    const Workload workload = random_released(rng, n, rng.uniform(0, 25));

    const SpiderSchedule schedule = SpiderScheduler::schedule(spider, workload);
    const Time oracle = spider_oracle_makespan(spider, workload);
    EXPECT_EQ(schedule.makespan(), oracle)
        << spider.describe() << " " << workload.describe();
    const FeasibilityReport report = check_feasibility(schedule, workload);
    EXPECT_TRUE(report.ok()) << report.summary();

    SpiderCountScratch scratch;
    for (const Time t_lim : {oracle - 1, oracle, oracle + 4}) {
      if (t_lim < 0) continue;
      const std::size_t counted =
          SpiderScheduler::count_within(spider, t_lim, workload, 64, scratch);
      EXPECT_EQ(counted, spider_oracle_count(spider, workload, t_lim))
          << spider.describe() << " " << workload.describe() << " T=" << t_lim;
      const SpiderSchedule within =
          SpiderScheduler::schedule_within(spider, t_lim, workload, 64);
      EXPECT_EQ(within.num_tasks(), counted);
      const FeasibilityReport within_report =
          check_feasibility(within, workload.prefix(counted));
      EXPECT_TRUE(within_report.ok()) << within_report.summary();
    }
  }
}

TEST(ReleaseDates, ForkOptimalMatchesExhaustiveOracle) {
  Rng rng(606);
  for (int trial = 0; trial < 25; ++trial) {
    Rng inst = rng.split();
    const auto slaves = static_cast<std::size_t>(rng.uniform(1, 3));
    const GeneratorParams params{1, 6, all_platform_classes()[trial % 5]};
    const Fork fork = random_fork(inst, slaves, params);
    const Spider embedded = Spider::from_fork(fork);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 4));
    const Workload workload = random_released(rng, n, rng.uniform(0, 25));

    const ForkSchedule schedule = ForkScheduler::schedule(fork, workload);
    const Time oracle = spider_oracle_makespan(embedded, workload);
    EXPECT_EQ(schedule.makespan(), oracle) << fork.describe() << " " << workload.describe();
    const FeasibilityReport report = check_feasibility(schedule, workload);
    EXPECT_TRUE(report.ok()) << report.summary();

    ForkCountScratch scratch;
    for (const Time t_lim : {oracle - 1, oracle, oracle + 4}) {
      if (t_lim < 0) continue;
      const std::size_t counted =
          ForkScheduler::count_within(fork, t_lim, workload, 64, scratch);
      EXPECT_EQ(counted, spider_oracle_count(embedded, workload, t_lim))
          << fork.describe() << " " << workload.describe() << " T=" << t_lim;
      const ForkSchedule within = ForkScheduler::schedule_within(fork, t_lim, workload, 64);
      EXPECT_EQ(within.num_tasks(), counted);
      const FeasibilityReport within_report =
          check_feasibility(within, workload.prefix(counted));
      EXPECT_TRUE(within_report.ok()) << within_report.summary();
    }
  }
}

// ---------------------------------------------------------------------------
// Registry integration
// ---------------------------------------------------------------------------

TEST(ReleaseDates, RegistryGatesUnsupportedWorkloads) {
  const api::Platform chain = Chain::from_vectors({2, 3}, {3, 5});
  const Workload released = Workload::released({0, 4, 8});
  const Workload sized = Workload::of_sizes({1, 2, 3});

  // Chain optimal: release dates yes, sizes no.
  EXPECT_NO_THROW((void)api::registry().solve(chain, "optimal", released));
  EXPECT_THROW((void)api::registry().solve(chain, "optimal", sized), std::invalid_argument);
  // The identical-only periodic baseline rejects both.
  EXPECT_THROW((void)api::registry().solve(chain, "periodic", released),
               std::invalid_argument);
  // List heuristics take both.
  EXPECT_NO_THROW((void)api::registry().solve(chain, "forward-greedy", sized));
  EXPECT_NO_THROW((void)api::registry().solve(chain, "forward-greedy", released));

  // Decision form: the pool rides in SolveOptions and is gated identically.
  api::SolveOptions pooled;
  pooled.workload = std::make_shared<const Workload>(sized);
  EXPECT_THROW((void)api::registry().solve_within(chain, "optimal", 30, pooled),
               std::invalid_argument);
  EXPECT_NO_THROW((void)api::registry().solve_within(chain, "forward-greedy", 30, pooled));
}

TEST(ReleaseDates, RegistryReleasedResultsAreOptimalAndFeasible) {
  Rng rng(707);
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const GeneratorParams params{1, 7, PlatformClass::kUniform};
    const std::vector<api::Platform> platforms{
        random_chain(inst, 3, params),
        random_fork(inst, 3, params),
        random_spider(inst, 2, 2, params),
    };
    const Workload workload = random_released(rng, 6, 20);
    for (const api::Platform& platform : platforms) {
      const api::SolveResult result = api::registry().solve(platform, "optimal", workload);
      EXPECT_TRUE(result.optimal);
      EXPECT_EQ(result.tasks, 6u);
      EXPECT_EQ(result.workload, workload);
      const FeasibilityReport report = api::check_feasibility(result);
      EXPECT_TRUE(report.ok()) << api::describe(platform) << ": " << report.summary();

      // Decision form at the released optimum recovers every task, fast
      // path and materialized path agreeing.
      api::SolveOptions pooled;
      pooled.workload = std::make_shared<const Workload>(workload);
      const api::DecisionResult within =
          api::registry().solve_within(platform, "optimal", result.makespan, pooled);
      EXPECT_EQ(within.tasks, 6u) << api::describe(platform);
      EXPECT_TRUE(within.optimal);
      const FeasibilityReport within_report = api::check_feasibility(within);
      EXPECT_TRUE(within_report.ok()) << within_report.summary();
      EXPECT_EQ(api::registry().max_tasks(platform, "optimal", result.makespan, pooled), 6u);
    }
  }
}

TEST(ReleaseDates, AdapterPoolMatchesDirectPrefixScan) {
  // Heuristic entries reach the pool through the makespan-inversion
  // adapter; its answer must equal the obvious scan over canonical
  // prefixes.
  Rng rng(808);
  const Chain chain = random_chain(rng, 3, GeneratorParams{1, 6, PlatformClass::kUniform});
  const api::Platform platform = chain;
  const Workload workload = random_released(rng, 8, 15);
  api::SolveOptions pooled;
  pooled.workload = std::make_shared<const Workload>(workload);
  for (const Time deadline : {0, 10, 30, 80, 500}) {
    std::size_t expected = 0;
    for (std::size_t k = 1; k <= workload.count(); ++k) {
      const Time makespan =
          api::registry().solve(platform, "forward-greedy", workload.prefix(k)).makespan;
      if (makespan <= deadline) expected = k;
    }
    EXPECT_EQ(api::registry().max_tasks(platform, "forward-greedy", deadline, pooled), expected)
        << "T=" << deadline;
  }
}

}  // namespace
}  // namespace mst
