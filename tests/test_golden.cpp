// Golden regression catalog: a fixed set of instances whose optimal
// makespans were cross-verified against exhaustive search when this file
// was authored.  Any change to these values is a correctness regression in
// the schedulers (or an intentional model change that must update this
// file consciously).

#include <gtest/gtest.h>

#include <array>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

constexpr std::array<std::size_t, 6> kChainCounts = {1, 2, 3, 5, 8, 13};
constexpr std::array<std::size_t, 5> kSpiderCounts = {1, 2, 3, 5, 8};

struct ChainCase {
  const char* name;
  Chain chain;
  std::array<Time, 6> expected;  // optimal makespans at kChainCounts
};

const std::vector<ChainCase>& chain_cases() {
  static const std::vector<ChainCase> kCases = {
      {"paper_fig2", Chain::from_vectors({2, 3}, {3, 5}), {5, 8, 10, 14, 20, 30}},
      {"unit", Chain::from_vectors({1}, {1}), {2, 3, 4, 6, 9, 14}},
      {"link_bound", Chain::from_vectors({5}, {2}), {7, 12, 17, 27, 42, 67}},
      {"compute_bound", Chain::from_vectors({2}, {5}), {7, 12, 17, 27, 42, 67}},
      {"slow_head_fast_tail", Chain::from_vectors({1, 1}, {100, 1}), {3, 4, 5, 7, 10, 15}},
      {"three_stage", Chain::from_vectors({3, 1, 1}, {10, 6, 2}), {7, 10, 13, 19, 28, 43}},
      {"homogeneous4", Chain::from_vectors({2, 2, 2, 2}, {4, 4, 4, 4}),
       {6, 8, 10, 14, 20, 30}},
      {"mixed3", Chain::from_vectors({4, 1, 2}, {3, 7, 2}), {7, 11, 15, 23, 35, 55}},
      {"fast_far", Chain::from_vectors({1, 2, 3, 4}, {4, 3, 2, 1}), {5, 6, 8, 10, 14, 21}},
      {"slow_link_fast_relay", Chain::from_vectors({6, 1}, {2, 9}), {8, 14, 20, 32, 50, 80}},
      {"zero_latency", Chain::from_vectors({0, 0}, {4, 5}), {4, 5, 8, 12, 20, 30}},
      {"integration_case", Chain::from_vectors({2, 1, 3}, {4, 2, 5}), {5, 7, 9, 13, 19, 29}},
  };
  return kCases;
}

struct SpiderCase {
  const char* name;
  Spider spider;
  std::array<Time, 5> expected;
};

const std::vector<SpiderCase>& spider_cases() {
  static const std::vector<SpiderCase> kCases = {
      {"fig2_plus_leaf",
       Spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})},
       {5, 8, 10, 14, 20}},
      {"twin_units", Spider{Chain::from_vectors({1}, {1}), Chain::from_vectors({1}, {1})},
       {2, 3, 4, 6, 9}},
      {"one_useless_leg",
       Spider{Chain::from_vectors({1}, {1}), Chain::from_vectors({1}, {1000})},
       {2, 3, 4, 6, 9}},
      {"three_legs",
       Spider{Chain::from_vectors({1, 2}, {9, 2}), Chain::from_vectors({3}, {4}),
              Chain::from_vectors({2}, {7})},
       {5, 7, 9, 11, 15}},
      {"leaf_vs_chain",
       Spider{Chain::from_vectors({5}, {1}), Chain::from_vectors({1, 1}, {2, 2})},
       {3, 4, 5, 7, 10}},
      {"symmetric_two_by_two",
       Spider{Chain::from_vectors({2, 2}, {3, 3}), Chain::from_vectors({2, 2}, {3, 3})},
       {5, 7, 9, 13, 19}},
      {"single_leg_single_node", Spider{Chain::from_vectors({3}, {3})}, {6, 9, 12, 18, 27}},
      {"mirrored_links",
       Spider{Chain::from_vectors({1, 4}, {2, 2}), Chain::from_vectors({4, 1}, {2, 2})},
       {3, 5, 7, 9, 13}},
  };
  return kCases;
}

class GoldenChain : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenChain, OptimalMakespanMatchesCatalog) {
  const ChainCase& c = chain_cases()[GetParam()];
  for (std::size_t i = 0; i < kChainCounts.size(); ++i) {
    const ChainSchedule s = ChainScheduler::schedule(c.chain, kChainCounts[i]);
    EXPECT_EQ(s.makespan(), c.expected[i]) << c.name << " n=" << kChainCounts[i];
    EXPECT_TRUE(check_feasibility(s).ok()) << c.name << " n=" << kChainCounts[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, GoldenChain, ::testing::Range<std::size_t>(0, 12),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return chain_cases()[info.param].name;
                         });

class GoldenSpider : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenSpider, OptimalMakespanMatchesCatalog) {
  const SpiderCase& c = spider_cases()[GetParam()];
  for (std::size_t i = 0; i < kSpiderCounts.size(); ++i) {
    const SpiderSchedule s = SpiderScheduler::schedule(c.spider, kSpiderCounts[i]);
    EXPECT_EQ(s.makespan(), c.expected[i]) << c.name << " n=" << kSpiderCounts[i];
    EXPECT_TRUE(check_feasibility(s).ok()) << c.name << " n=" << kSpiderCounts[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, GoldenSpider, ::testing::Range<std::size_t>(0, 8),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return spider_cases()[info.param].name;
                         });

TEST(Golden, DecisionFormStaircaseOnCatalog) {
  // For every catalog chain, tasks(makespan(k)) inverts the curve.
  for (const ChainCase& c : chain_cases()) {
    for (std::size_t i = 0; i < kChainCounts.size(); ++i) {
      const std::size_t k = kChainCounts[i];
      EXPECT_GE(ChainScheduler::max_tasks(c.chain, c.expected[i], k + 5), k) << c.name;
      if (c.expected[i] > 0) {
        EXPECT_LT(ChainScheduler::max_tasks(c.chain, c.expected[i] - 1, k + 5), k) << c.name;
      }
    }
  }
}

}  // namespace
}  // namespace mst
