// Tests of the one-machine deadline selector (Moore–Hodgson) underlying the
// fork algorithm, including optimality against subset enumeration.

#include <gtest/gtest.h>

#include <algorithm>

#include "mst/common/rng.hpp"
#include "mst/core/moore_hodgson.hpp"

namespace mst {
namespace {

TEST(MooreHodgson, SelectsEverythingWhenLoose) {
  std::vector<DeadlineJob> jobs = {{2, 100, 0}, {3, 100, 1}, {4, 100, 2}};
  const auto picked = moore_hodgson(jobs);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(MooreHodgson, EvictsLongestOnOverflow) {
  // Classic example: deadlines force dropping the long job.
  std::vector<DeadlineJob> jobs = {{1, 2, 0}, {5, 6, 1}, {1, 7, 2}, {1, 8, 3}};
  const auto picked = moore_hodgson(jobs);
  // All four need 8 by deadline 8 but job 1 (len 5) forces overflow at its
  // own deadline? total after {1,5} = 6 <= 6 OK; +1 -> 7 <= 7 OK; +1 -> 8 <=
  // 8 OK: everything fits.
  EXPECT_EQ(picked.size(), 4u);
}

TEST(MooreHodgson, DropsExactlyTheLongJob) {
  std::vector<DeadlineJob> jobs = {{4, 4, 0}, {2, 5, 1}, {2, 7, 2}};
  // EDD: 0 (t=4<=4), +1: t=6 > 5 -> evict longest (job 0, len 4), t=2.
  // +2: t=4 <= 7.  Selected {1,2}.
  const auto picked = moore_hodgson(jobs);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0], 1u);
  EXPECT_EQ(picked[1], 2u);
}

TEST(MooreHodgson, ImpossibleJobNeverSelected) {
  std::vector<DeadlineJob> jobs = {{5, 3, 0}, {1, 10, 1}};
  const auto picked = moore_hodgson(jobs);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(picked[0], 1u);
}

TEST(MooreHodgson, EmptyAndSingleton) {
  EXPECT_TRUE(moore_hodgson({}).empty());
  const auto one = moore_hodgson({{3, 3, 7}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7u);
  EXPECT_TRUE(moore_hodgson({{3, 2, 7}}).empty());
}

TEST(MooreHodgson, ZeroLengthJobsAlwaysFit) {
  std::vector<DeadlineJob> jobs = {{0, 0, 0}, {0, 0, 1}, {5, 5, 2}};
  EXPECT_EQ(moore_hodgson(jobs).size(), 3u);
}

TEST(EddFeasible, MatchesManualCheck) {
  EXPECT_TRUE(edd_feasible({{2, 2, 0}, {2, 4, 1}}));
  EXPECT_FALSE(edd_feasible({{2, 2, 0}, {2, 3, 1}}));
  EXPECT_TRUE(edd_feasible({}));
}

TEST(SequenceEdd, ProducesBackToBackStarts) {
  const std::vector<DeadlineJob> jobs = {{2, 10, 0}, {3, 4, 1}, {1, 20, 2}};
  const auto starts = sequence_edd(jobs);
  // EDD order: job1 (d=4), job0 (d=10), job2 (d=20).
  EXPECT_EQ(starts[1], 0);
  EXPECT_EQ(starts[0], 3);
  EXPECT_EQ(starts[2], 5);
}

TEST(SequenceEdd, ThrowsOnInfeasibleSet) {
  EXPECT_THROW(sequence_edd({{5, 2, 0}}), std::logic_error);
}

/// Exhaustive optimality check: Moore–Hodgson must match the best subset
/// over all 2^N subsets on random instances.
class MooreHodgsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MooreHodgsonProperty, MatchesExhaustiveOptimum) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform(1, 10));
    std::vector<DeadlineJob> jobs;
    for (int i = 0; i < n; ++i) {
      jobs.push_back({rng.uniform(0, 8), rng.uniform(0, 20), static_cast<std::size_t>(i)});
    }
    std::size_t best = 0;
    for (unsigned mask = 0; mask < (1u << n); ++mask) {
      std::vector<DeadlineJob> subset;
      for (int i = 0; i < n; ++i) {
        if (mask & (1u << i)) subset.push_back(jobs[static_cast<std::size_t>(i)]);
      }
      if (edd_feasible(subset)) best = std::max(best, subset.size());
    }
    const auto picked = moore_hodgson(jobs);
    EXPECT_EQ(picked.size(), best) << "trial " << trial;
    // The returned selection itself must be feasible.
    std::vector<DeadlineJob> chosen;
    for (std::size_t id : picked) chosen.push_back(jobs[id]);
    EXPECT_TRUE(edd_feasible(chosen));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MooreHodgsonProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace mst
