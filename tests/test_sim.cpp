// Tests of the discrete-event engine, the store-and-forward simulator and
// the static replay cross-validator.

#include <gtest/gtest.h>

#include "mst/baselines/asap.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/engine.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/sim/static_replay.hpp"

namespace mst {
namespace {

TEST(Engine, FiresInTimeOrder) {
  sim::Engine engine;
  std::vector<int> order;
  engine.at(5, [&] { order.push_back(2); });
  engine.at(1, [&] { order.push_back(1); });
  engine.at(9, [&] { order.push_back(3); });
  EXPECT_EQ(engine.run(), 9);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, SameTimeFiresInScheduleOrder) {
  sim::Engine engine;
  std::vector<int> order;
  engine.at(4, [&] { order.push_back(1); });
  engine.at(4, [&] { order.push_back(2); });
  engine.at(4, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, CallbacksMaySpawnEvents) {
  sim::Engine engine;
  int fired = 0;
  engine.at(0, [&] {
    ++fired;
    engine.after(3, [&] {
      ++fired;
      engine.after(0, [&] { ++fired; });
    });
  });
  EXPECT_EQ(engine.run(), 3);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RejectsSchedulingInThePast) {
  sim::Engine engine;
  engine.at(5, [&] { EXPECT_THROW(engine.at(2, [] {}), std::invalid_argument); });
  engine.run();
}

TEST(PlatformSim, SingleTaskTransitTime) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Tree tree = tree_from_chain(chain);
  const sim::SimResult r = sim::simulate_dispatch(tree, {2});
  ASSERT_EQ(r.num_tasks(), 1u);
  EXPECT_EQ(r.tasks[0].master_emission, 0);
  EXPECT_EQ(r.tasks[0].arrival, 5);
  EXPECT_EQ(r.tasks[0].start, 5);
  EXPECT_EQ(r.tasks[0].end, 10);
  EXPECT_EQ(r.makespan, 10);
}

TEST(PlatformSim, MatchesAsapOnChainsForRandomSequences) {
  Rng rng(404);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 20; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 5));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 12));
    const Chain chain = random_chain(inst, p, params);
    std::vector<std::size_t> dests(n);
    std::vector<NodeId> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
      dests[i] = static_cast<std::size_t>(rng.uniform(0, static_cast<Time>(p) - 1));
      nodes[i] = dests[i] + 1;  // tree node ids are 1-based along the chain
    }
    const Time asap = asap_chain_schedule(chain, dests).makespan();
    const sim::SimResult sim_result = sim::simulate_dispatch(tree_from_chain(chain), nodes);
    EXPECT_EQ(sim_result.makespan, asap) << chain.describe() << " trial " << trial;
  }
}

TEST(PlatformSim, MatchesAsapOnSpiders) {
  Rng rng(505);
  GeneratorParams params{1, 7, PlatformClass::kUniform};
  for (int trial = 0; trial < 15; ++trial) {
    Rng inst = rng.split();
    const auto legs = static_cast<std::size_t>(rng.uniform(1, 4));
    const Spider spider = random_spider(inst, legs, 3, params);
    const Tree tree = tree_from_spider(spider);
    const auto view = tree.to_spider();
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    std::vector<SpiderDest> dests(n);
    std::vector<NodeId> nodes(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto l = static_cast<std::size_t>(rng.uniform(0, static_cast<Time>(legs) - 1));
      const auto q = static_cast<std::size_t>(
          rng.uniform(0, static_cast<Time>(spider.leg(l).size()) - 1));
      dests[i] = {l, q};
      nodes[i] = view.node_of[l][q];
    }
    const Time asap = asap_spider_schedule(spider, dests).makespan();
    const sim::SimResult sim_result = sim::simulate_dispatch(tree, nodes);
    EXPECT_EQ(sim_result.makespan, asap) << spider.describe() << " trial " << trial;
  }
}

TEST(PlatformSim, CountsTasksPerNode) {
  const Chain chain = Chain::from_vectors({1, 1}, {2, 2});
  const sim::SimResult r = sim::simulate_dispatch(tree_from_chain(chain), {1, 2, 1});
  EXPECT_EQ(r.tasks_per_node[1], 2u);
  EXPECT_EQ(r.tasks_per_node[2], 1u);
}

TEST(PlatformSim, RejectsMasterAsDestination) {
  const Chain chain = Chain::from_vectors({1}, {1});
  EXPECT_THROW(sim::simulate_dispatch(tree_from_chain(chain), {0}),
               std::invalid_argument);
}

TEST(StaticReplay, AcceptsOptimalChainSchedules) {
  Rng rng(606);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 15; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const ChainSchedule s = ChainScheduler::schedule(chain, n);
    const sim::ReplayResult r = sim::replay(s);
    ASSERT_TRUE(r.ok) << chain.describe();
    EXPECT_EQ(r.makespan, s.makespan());
  }
}

TEST(StaticReplay, DetectsLinkConflict) {
  const Chain chain = Chain::from_vectors({2}, {3});
  ChainSchedule bad{chain, {ChainTask{0, 2, {0}}, ChainTask{0, 5, {1}}}};
  const sim::ReplayResult r = sim::replay(bad);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.conflicts.empty());
  EXPECT_NE(r.conflicts[0].find("link 0"), std::string::npos);
}

TEST(StaticReplay, DetectsEarlyStart) {
  const Chain chain = Chain::from_vectors({2}, {3});
  ChainSchedule bad{chain, {ChainTask{0, 1, {0}}}};
  const sim::ReplayResult r = sim::replay(bad);
  EXPECT_FALSE(r.ok);
}

TEST(StaticReplay, DetectsProcessorConflict) {
  const Chain chain = Chain::from_vectors({1, 1}, {5, 5});
  ChainSchedule bad{chain, {ChainTask{0, 2, {0}}, ChainTask{0, 4, {1}}}};
  const sim::ReplayResult r = sim::replay(bad);
  EXPECT_FALSE(r.ok);
}

TEST(StaticReplay, DetectsNegativeTimes) {
  const Chain chain = Chain::from_vectors({2}, {3});
  ChainSchedule bad{chain, {ChainTask{0, 2, {-1}}}};
  const sim::ReplayResult r = sim::replay(bad);
  EXPECT_FALSE(r.ok);
}

TEST(StaticReplay, DetectsSpiderMasterConflict) {
  const Spider spider{Chain::from_vectors({3}, {1}), Chain::from_vectors({3}, {1})};
  SpiderSchedule bad{spider, {SpiderTask{0, 0, 3, {0}}, SpiderTask{1, 0, 4, {1}}}};
  const sim::ReplayResult r = sim::replay(bad);
  EXPECT_FALSE(r.ok);
  bool mentions_master = false;
  for (const std::string& c : r.conflicts) {
    if (c.find("master") != std::string::npos) mentions_master = true;
  }
  EXPECT_TRUE(mentions_master);
}

}  // namespace
}  // namespace mst
