// mstlint's own suite: the fixture corpus in tests/data/lint/ pins what
// each rule catches and what it must leave alone, the suppression grammar
// round-trips, diagnostics render in GCC format, and the real tree is
// clean (the in-process twin of the `mstlint_repo` ctest, which also
// asserts the binary's exit code).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using mstlint::Diagnostic;

std::string fixture_path(const std::string& name) {
  return std::string(MST_LINT_DATA_DIR) + "/" + name;
}

std::vector<Diagnostic> lint_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return mstlint::lint_source(name, buffer.str());
}

/// (rule, line) pairs, sorted — order-insensitive fixture comparison.
std::vector<std::pair<std::string, int>> outline(const std::vector<Diagnostic>& diags) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(diags.size());
  for (const Diagnostic& d : diags) out.emplace_back(d.rule, d.line);
  std::sort(out.begin(), out.end());
  return out;
}

using Outline = std::vector<std::pair<std::string, int>>;

TEST(LintRules, TableIsWellFormed) {
  std::set<std::string> ids;
  for (const mstlint::RuleInfo& rule : mstlint::rules()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
    EXPECT_TRUE(mstlint::known_rule(rule.id));
    EXPECT_STRNE(rule.summary, "");
    EXPECT_STRNE(rule.rationale, "");
  }
  EXPECT_FALSE(mstlint::known_rule("no-such-rule"));
  EXPECT_GE(ids.size(), 11u);
  // The v2 graph and shared-state rules are present and suppressible.
  EXPECT_TRUE(mstlint::known_rule("layering"));
  EXPECT_TRUE(mstlint::known_rule("include-cycle"));
  EXPECT_TRUE(mstlint::known_rule("shared-mutable-state"));
}

TEST(LintRules, LossyFloatFormats) {
  const Outline expected = {
      {"lossy-float-format", 7},  {"lossy-float-format", 8},
      {"lossy-float-format", 9},  {"lossy-float-format", 9},
      {"stream-precision", 12},   {"stream-precision", 13},
  };
  EXPECT_EQ(outline(lint_fixture("lossy_format.cpp")), expected);
}

TEST(LintRules, RawDoubleStreams) {
  const Outline expected = {
      {"raw-double-stream", 6},
      {"raw-double-stream", 7},
  };
  EXPECT_EQ(outline(lint_fixture("raw_double_stream.cpp")), expected);
}

TEST(LintRules, AmbientRngSources) {
  const Outline expected = {
      {"ambient-rng", 7},  // srand
      {"ambient-rng", 7},  // time(nullptr)
      {"ambient-rng", 8},  {"ambient-rng", 9},  {"ambient-rng", 10},
  };
  EXPECT_EQ(outline(lint_fixture("ambient_rng.cpp")), expected);
}

TEST(LintRules, UnorderedContainers) {
  const Outline expected = {
      {"unordered-container", 6},
      {"unordered-container", 7},
  };
  EXPECT_EQ(outline(lint_fixture("unordered.cpp")), expected);
}

TEST(LintRules, ZeroAllocRegions) {
  const Outline expected = {
      {"zero-alloc", 11},  // naked new
      {"zero-alloc", 12},  // vector value declaration
      {"zero-alloc", 13},  // string value declaration
      {"zero-alloc", 13},  // to_string
  };
  EXPECT_EQ(outline(lint_fixture("zero_alloc.cpp")), expected);
}

TEST(LintRules, ZeroAllocRegionsBanThreadLocal) {
  // Hidden per-thread statics inside a region are flagged; the sanctioned
  // fallback helper outside the region stays clean.
  const Outline expected = {
      {"zero-alloc", 19},  // thread_local counter
      {"zero-alloc", 20},  // thread_local scratch object
  };
  EXPECT_EQ(outline(lint_fixture("zero_alloc_thread_local.cpp")), expected);
}

TEST(LintRules, RegistrySupportsFieldCount) {
  const Outline expected = {
      {"registry-supports", 4},
      {"registry-supports", 6},
  };
  EXPECT_EQ(outline(lint_fixture("registry_fixture.cpp")), expected);
}

TEST(LintRules, SharedMutableState) {
  const Outline expected = {
      {"shared-mutable-state", 10},  // bad_counter
      {"shared-mutable-state", 11},  // bad_total
      {"shared-mutable-state", 12},  // bad_table (multi-line declaration)
  };
  EXPECT_EQ(outline(lint_fixture("shared_state.cpp")), expected);
}

TEST(LintRules, SharedMutableStateScopedToLibraryPaths) {
  // The rule patrols src/ (and the fixture marker); tests and drivers are
  // single-threaded and keep their statics.
  const std::string source = "static int counter = 0;\n";
  EXPECT_EQ(mstlint::lint_source("src/mst/core/x.cpp", source).size(), 1u);
  EXPECT_TRUE(mstlint::lint_source("tests/test_x.cpp", source).empty());
  EXPECT_TRUE(mstlint::lint_source("bench/exp_x.cpp", source).empty());
}

TEST(LintRules, CleanFixtureIsClean) {
  EXPECT_EQ(lint_fixture("clean.cpp"), std::vector<Diagnostic>{});
}

TEST(LintTree, LayeringFixtureTree) {
  // One upward edge fires; the second upward edge carries a justified
  // allow-next-line and must stay silent; the downward edges are legal.
  const std::vector<Diagnostic> diags = mstlint::lint_tree(fixture_path("layertree"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_EQ(diags[0].file, "src/mst/core/solver.hpp");
  EXPECT_EQ(diags[0].line, 6);
  EXPECT_NE(diags[0].message.find("'core' may not include 'api'"), std::string::npos);
}

TEST(LintTree, ObsLayerFixtureTree) {
  // The observability layer sits just above common: its downward include is
  // legal, and an include of any consumer layer (api here) fires — the obs
  // core must stay ignorant of who instruments with it.
  const std::vector<Diagnostic> diags = mstlint::lint_tree(fixture_path("obstree"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_EQ(diags[0].file, "src/mst/obs/sink.hpp");
  EXPECT_EQ(diags[0].line, 6);
  EXPECT_NE(diags[0].message.find("'obs' may not include 'api'"), std::string::npos);
}

TEST(LintTree, JournalLayerFixtureTree) {
  // journal.* is its own sub-module ('scenario/journal') with a narrower
  // surface than scenario: the runner may include the journal and the
  // journal may include the scenario types it serializes, but an include
  // into the solver stack (sim) fires — persistence code must not be able
  // to invoke algorithms.
  const std::vector<Diagnostic> diags = mstlint::lint_tree(fixture_path("journaltree"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "layering");
  EXPECT_EQ(diags[0].file, "src/mst/scenario/journal.hpp");
  EXPECT_EQ(diags[0].line, 9);
  EXPECT_NE(diags[0].message.find("'scenario/journal' may not include 'sim'"),
            std::string::npos);
}

TEST(LintTree, IncludeCycleFixtureTree) {
  const std::vector<Diagnostic> diags = mstlint::lint_tree(fixture_path("cycletree"));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "include-cycle");
  EXPECT_EQ(diags[0].file, "src/mst/common/b.hpp");
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("src/mst/common/a.hpp -> src/mst/common/b.hpp -> "
                                  "src/mst/common/a.hpp"),
            std::string::npos);
}

TEST(LintSuppressions, JustifiedAllowSilences) {
  EXPECT_EQ(lint_fixture("suppressed_ok.cpp"), std::vector<Diagnostic>{});
}

TEST(LintSuppressions, UnjustifiedAllowIsTheOnlyDiagnostic) {
  const std::vector<Diagnostic> diags = lint_fixture("suppression_unjustified.cpp");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "allow-justification");
  EXPECT_EQ(diags[0].line, 6);
}

TEST(LintSuppressions, MalformedDirectives) {
  const Outline expected = {
      {"bad-directive", 2},  // unknown rule name
      {"bad-directive", 3},  // unrecognized directive
      {"bad-directive", 4},  // unclosed zero-alloc region
  };
  EXPECT_EQ(outline(lint_fixture("bad_directive.cpp")), expected);
}

TEST(LintSuppressions, RoundTrip) {
  // A diagnostic, its per-line suppression, and the next-line form — built
  // from strings so the test is self-contained.
  const std::string bare = "int f() { return rand(); }\n";
  const std::string same_line =
      "int f() { return rand(); }  // mstlint: allow(ambient-rng) -- test stub\n";
  const std::string next_line =
      "// mstlint: allow-next-line(ambient-rng) -- test stub\n"
      "int f() { return rand(); }\n";
  EXPECT_EQ(mstlint::lint_source("a.cpp", bare).size(), 1u);
  EXPECT_TRUE(mstlint::lint_source("a.cpp", same_line).empty());
  EXPECT_TRUE(mstlint::lint_source("a.cpp", next_line).empty());
  // The suppression only covers the named rule.
  const std::string wrong_rule =
      "int f() { return rand(); }  // mstlint: allow(unordered-container) -- wrong rule\n";
  EXPECT_EQ(mstlint::lint_source("a.cpp", wrong_rule).size(), 1u);
}

TEST(LintSuppressions, SharedMutableStateRoundTrip) {
  const std::string bare = "static int counter = 0;\n";
  const std::string same_line =
      "static int counter = 0;  // mstlint: allow(shared-mutable-state) -- set before spawn\n";
  EXPECT_EQ(mstlint::lint_source("src/mst/core/x.cpp", bare).size(), 1u);
  EXPECT_TRUE(mstlint::lint_source("src/mst/core/x.cpp", same_line).empty());
}

TEST(LintFormat, RenderIsGccStyle) {
  const Diagnostic d{"src/mst/foo.cpp", 42, "ambient-rng", "the message"};
  EXPECT_EQ(mstlint::render(d), "src/mst/foo.cpp:42: error: the message [ambient-rng]");
}

TEST(LintTree, RepositoryIsClean) {
  std::vector<std::string> scanned;
  const std::vector<Diagnostic> diags = mstlint::lint_tree(MST_REPO_ROOT, &scanned);
  for (const Diagnostic& d : diags) ADD_FAILURE() << mstlint::render(d);
  // The walk visits the real tree (library + tools + drivers + tests),
  // skips the analyzer's own sources and the intentional-violation corpus,
  // and is deterministic (sorted paths).
  EXPECT_GE(scanned.size(), 100u);
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
  const auto none_under = [&](const char* prefix) {
    return std::count_if(scanned.begin(), scanned.end(), [&](const std::string& p) {
             return p.rfind(prefix, 0) == 0;
           }) == 0;
  };
  EXPECT_TRUE(none_under("tools/mstlint/"));
  EXPECT_TRUE(none_under("tests/data/lint/"));
  EXPECT_TRUE(std::find(scanned.begin(), scanned.end(), "tests/test_lint.cpp") ==
              scanned.end());
  // tests/ itself IS scanned (the corpus exclusion is surgical).
  EXPECT_TRUE(std::find(scanned.begin(), scanned.end(), "tests/test_registry.cpp") !=
              scanned.end());
}

}  // namespace
