// Streaming driver: no-lookahead dispatch where `n` is unknown.
//
// The contracts under test, in order:
//  * each adapted online policy reproduces `simulate_online` bit for bit
//    (identical workloads and released streams alike);
//  * the horizon re-planner degenerates to the exact offline optimum when
//    every task is available at time 0, and never beats that optimum on a
//    genuine arrival stream (regret >= 1);
//  * the driver itself enforces no-lookahead: a policy only ever sees
//    arrivals whose release dates have passed, so changing the tail of a
//    workload cannot change any decision taken before the tail arrives;
//  * the streaming metrics (latency, backlog, regret) are exact, and the
//    registry bridge rejects non-streaming entries and unsupported
//    workloads up front.

#include <gtest/gtest.h>

#include <initializer_list>

#include "mst/api/registry.hpp"
#include "mst/api/stream.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/fork_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/streaming.hpp"
#include "mst/workload/arrival.hpp"

namespace mst {
namespace {

TEST(Streaming, AdaptedPoliciesMatchSimulateOnlineBitForBit) {
  Rng rng(7);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, 2 + static_cast<std::size_t>(trial), params);
    for (const Workload& workload :
         {Workload::identical(11), Workload::released({0, 0, 3, 7, 7, 12, 30, 31}),
          Workload(6, {1, 1, 2, 2, 3, 4}, {0, 2, 2, 9, 9, 15})}) {
      for (sim::OnlinePolicy policy : sim::all_online_policies()) {
        const sim::SimResult online = sim::simulate_online(tree, workload, policy, 42);
        const std::unique_ptr<sim::StreamPolicy> stream_policy =
            sim::make_stream_policy(tree, policy, 42);
        const sim::StreamResult stream = sim::simulate_stream(tree, workload, *stream_policy);
        // The whole timeline, task for task — not just the makespan.
        EXPECT_EQ(online, stream.sim) << to_string(policy) << " on " << workload.describe();
      }
    }
  }
}

TEST(Streaming, ReplanReproducesTheOfflineOptimumWhenAllTasksAreAvailable) {
  // With everything released at 0 the single plan is the offline optimal
  // schedule, and replaying its destination sequence operationally must
  // reproduce the optimal makespan exactly.  Exhaustive tiny chains first.
  for (Time c1 : {1, 2, 3}) {
    for (Time w1 : {1, 2, 3}) {
      for (Time c2 : {1, 2, 3}) {
        for (Time w2 : {1, 2, 3}) {
          const Chain chain = Chain::from_vectors({c1, c2}, {w1, w2});
          for (std::size_t n = 1; n <= 5; ++n) {
            const api::StreamOutcome run =
                api::run_stream(chain, "replan", Workload::identical(n));
            EXPECT_EQ(run.makespan, ChainScheduler::makespan(chain, n))
                << chain.describe() << " n=" << n;
            EXPECT_EQ(run.offline_makespan, run.makespan);
            EXPECT_DOUBLE_EQ(run.regret, 1.0);
          }
        }
      }
    }
  }
  // Random forks and spiders against their exact solvers.
  Rng rng(11);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto n = static_cast<std::size_t>(rng.uniform(1, 9));
    const Fork fork = random_fork(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    EXPECT_EQ(api::run_stream(fork, "replan", Workload::identical(n)).makespan,
              ForkScheduler::makespan(fork, n))
        << fork.describe() << " n=" << n;
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 3)), 3, params);
    EXPECT_EQ(api::run_stream(spider, "replan", Workload::identical(n)).makespan,
              SpiderScheduler::makespan(spider, n))
        << spider.describe() << " n=" << n;
  }
}

TEST(Streaming, ReplanNeverBeatsTheOfflineOptimumOnArrivalStreams) {
  // The streamed execution is a feasible schedule of the released workload,
  // so every exact offline optimum is a hard floor: regret >= 1 wherever a
  // reference exists.  Chains keep their (exact) released reference; fork
  // and spider streams report the sentinel — their positional-release
  // selection is beatable, so regret against it would be meaningless — but
  // the release-free optimum of the same task count still bounds them from
  // below (releases only constrain).
  Rng rng(13);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  WorkloadGen poisson;
  poisson.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, 4, 0};
  WorkloadGen bursts;
  bursts.arrival = ArrivalDist{ArrivalDist::Kind::kBursts, 3, 9};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const std::size_t n = 4 + static_cast<std::size_t>(rng.uniform(0, 8));
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const Fork fork = random_fork(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 3)), 3, params);
    for (const WorkloadGen& gen : {poisson, bursts}) {
      const Workload workload = gen.make(n, rng.next_u64());
      {
        const api::StreamOutcome run = api::run_stream(chain, "replan", workload);
        ASSERT_GT(run.offline_makespan, 0) << chain.describe();
        EXPECT_EQ(run.offline_makespan, ChainScheduler::schedule(chain, workload).makespan());
        EXPECT_GE(run.makespan, run.offline_makespan)
            << chain.describe() << " on " << workload.describe();
        EXPECT_GE(run.regret, 1.0);
        // tasks/makespan vs tasks/offline: the online/offline throughput
        // ratio is regret inverted, so it sits at or below 1.
        EXPECT_LE(run.throughput() * static_cast<double>(run.offline_makespan) /
                      static_cast<double>(run.tasks),
                  1.0 + 1e-12);
      }
      {
        const api::StreamOutcome run = api::run_stream(fork, "replan", workload);
        EXPECT_EQ(run.offline_makespan, 0) << "beatable reference must not be reported";
        EXPECT_LT(run.regret, 0.0);
        EXPECT_GE(run.makespan, ForkScheduler::makespan(fork, n)) << fork.describe();
      }
      {
        const api::StreamOutcome run = api::run_stream(spider, "replan", workload);
        EXPECT_EQ(run.offline_makespan, 0);
        EXPECT_LT(run.regret, 0.0);
        EXPECT_GE(run.makespan, SpiderScheduler::makespan(spider, n)) << spider.describe();
      }
    }
  }
}

/// A policy that audits every fact the driver shows it.
class ProbePolicy final : public sim::StreamPolicy {
 public:
  void observe(const sim::StreamArrival& arrival) override {
    // Arrival order is canonical order, one at a time, no duplicates.
    EXPECT_EQ(arrival.task, observed.size());
    observed.push_back(arrival);
  }
  NodeId choose(std::size_t task, const sim::DispatchContext& ctx) override {
    // The dispatched task has arrived, and nothing the policy ever saw lies
    // in the future: the driver reveals the arrived prefix, nothing more.
    EXPECT_LT(task, observed.size());
    for (const sim::StreamArrival& arrival : observed) EXPECT_LE(arrival.release, ctx.now);
    return 1;
  }

  std::vector<sim::StreamArrival> observed;
};

TEST(Streaming, DriverRevealsExactlyTheArrivedPrefix) {
  Tree tree;
  tree.add_node(0, {1, 2});
  tree.add_node(0, {2, 3});
  const Workload workload(5, {1, 1, 2, 1, 3}, {0, 2, 2, 11, 25});
  ProbePolicy probe;
  const sim::StreamResult run = sim::simulate_stream(tree, workload, probe);
  ASSERT_EQ(probe.observed.size(), workload.count());
  for (std::size_t i = 0; i < workload.count(); ++i) {
    EXPECT_EQ(probe.observed[i].size, workload.size_of(i));
    EXPECT_EQ(probe.observed[i].release, workload.release_of(i));
  }
  EXPECT_EQ(run.sim.num_tasks(), workload.count());
}

TEST(Streaming, TailChangesCannotAffectEarlierDecisions) {
  // Two workloads identical up to task 3; the tail release differs.  Every
  // decision taken before the tail arrives — and therefore the first three
  // tasks' complete timelines — must be identical.  A clairvoyant policy
  // could not satisfy this; a no-lookahead one cannot violate it.
  Rng rng(17);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  const Tree tree = random_tree(rng, 5, params);
  const Workload near(4, {}, {0, 1, 3, 40});
  const Workload far(4, {}, {0, 1, 3, 900});
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    const std::unique_ptr<sim::StreamPolicy> a = sim::make_stream_policy(tree, policy, 5);
    const std::unique_ptr<sim::StreamPolicy> b = sim::make_stream_policy(tree, policy, 5);
    const sim::StreamResult run_near = sim::simulate_stream(tree, near, *a);
    const sim::StreamResult run_far = sim::simulate_stream(tree, far, *b);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(run_near.sim.tasks[i], run_far.sim.tasks[i]) << to_string(policy) << " task " << i;
    }
  }
  // The re-planner, too, on its chain substrate.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Tree substrate = sim::stream_substrate(chain);
  const std::unique_ptr<sim::StreamPolicy> a = sim::make_replan_policy(chain);
  const std::unique_ptr<sim::StreamPolicy> b = sim::make_replan_policy(chain);
  const sim::StreamResult run_near = sim::simulate_stream(substrate, near, *a);
  const sim::StreamResult run_far = sim::simulate_stream(substrate, far, *b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(run_near.sim.tasks[i], run_far.sim.tasks[i]);
}

TEST(Streaming, MetricsAreExactOnHandComputableInstances) {
  // Single slave, c=1, w=2.  Staggered stream {0, 10}: each task sojourns
  // for exactly 3 (1 hop + 2 execution), the backlog never exceeds 1.
  Tree tree;
  tree.add_node(0, {1, 2});
  {
    const std::unique_ptr<sim::StreamPolicy> policy =
        sim::make_stream_policy(tree, sim::OnlinePolicy::kRoundRobin);
    const sim::StreamResult run =
        sim::simulate_stream(tree, Workload::released({0, 10}), *policy);
    EXPECT_EQ(run.sim.makespan, 13);
    EXPECT_EQ(run.metrics.latency, (std::vector<Time>{3, 3}));
    EXPECT_DOUBLE_EQ(run.metrics.mean_latency, 3.0);
    EXPECT_EQ(run.metrics.max_latency, 3);
    EXPECT_EQ(run.metrics.peak_backlog, 1u);
  }
  // A burst of three at time 0: emissions serialize on the out-port, the
  // processor queues the rest — latencies 3, 5, 7 and a full backlog of 3.
  {
    const std::unique_ptr<sim::StreamPolicy> policy =
        sim::make_stream_policy(tree, sim::OnlinePolicy::kRoundRobin);
    const sim::StreamResult run =
        sim::simulate_stream(tree, Workload::identical(3), *policy);
    EXPECT_EQ(run.sim.makespan, 7);
    EXPECT_EQ(run.metrics.latency, (std::vector<Time>{3, 5, 7}));
    EXPECT_DOUBLE_EQ(run.metrics.mean_latency, 5.0);
    EXPECT_EQ(run.metrics.max_latency, 7);
    EXPECT_EQ(run.metrics.peak_backlog, 3u);
  }
}

TEST(Streaming, RunStreamRejectsUnsupportedRequestsUpFront) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  // Not streaming-capable (the exact planner needs the whole instance).
  EXPECT_THROW((void)api::run_stream(chain, "optimal", Workload::identical(4)),
               std::invalid_argument);
  // Unknown name.
  EXPECT_THROW((void)api::run_stream(chain, "no-such-algorithm", Workload::identical(4)),
               std::invalid_argument);
  // The re-planner's exact solvers do not cover non-uniform sizes.
  EXPECT_THROW((void)api::run_stream(chain, "replan", Workload::of_sizes({1, 2, 3})),
               std::invalid_argument);
  // No exact tree solver to re-plan with.
  Tree tree;
  tree.add_node(0, {1, 1});
  EXPECT_THROW((void)sim::make_replan_policy(api::Platform{tree}), std::invalid_argument);
}

TEST(Streaming, RegistryReplanEntrySolvesAndPassesFeasibility) {
  // "replan" is a full registry citizen: its makespan form is the streaming
  // simulation of the release stream, materialized as a dispatch plan that
  // the feasibility checker replays.
  const Workload workload = Workload::released({0, 0, 4, 9, 9, 20});
  for (const api::Platform& platform :
       {api::Platform{Chain::from_vectors({2, 3}, {3, 5})},
        api::Platform{Fork{{1, 3}, {2, 2}, {4, 5}}},
        api::Platform{Spider{Chain::from_vectors({2, 3}, {3, 5}),
                             Chain::from_vectors({4}, {2})}}}) {
    const api::SolveResult result =
        api::registry().solve(platform, "replan", workload);
    EXPECT_EQ(result.tasks, workload.count());
    const FeasibilityReport report = api::check_feasibility(result);
    EXPECT_TRUE(report.ok()) << api::describe(platform) << ": " << report.summary();
    const api::StreamOutcome direct = api::run_stream(platform, "replan", workload);
    EXPECT_EQ(result.makespan, direct.makespan) << api::describe(platform);
    // The registry gate mirrors run_stream's: capability checked up front.
    const api::AlgorithmInfo* info =
        api::registry().info(api::kind_of(platform), "replan");
    ASSERT_NE(info, nullptr);
    EXPECT_TRUE(info->supports.streaming);
    EXPECT_FALSE(info->supports.sizes);
  }
}

TEST(Streaming, EveryStreamingCapableEntryResolvesToAPolicy) {
  // The capability flag lives in registry.cpp, the name-to-policy mapping
  // in streaming.cpp; this pins the two files together so a future
  // streaming-capable entry cannot pass the up-front gate and then die in
  // the driver's unknown-name fallback.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  Tree tree;
  tree.add_node(0, {1, 2});
  tree.add_node(0, {2, 3});
  std::size_t streaming_entries = 0;
  for (const api::AlgorithmInfo& info : api::registry().list()) {
    if (!info.supports.streaming) continue;
    ++streaming_entries;
    const api::Platform platform =
        info.kind == api::PlatformKind::kChain   ? api::Platform{chain}
        : info.kind == api::PlatformKind::kFork  ? api::Platform{Fork{{1, 3}, {2, 2}}}
        : info.kind == api::PlatformKind::kSpider
            ? api::Platform{Spider{Chain::from_vectors({2}, {3})}}
            : api::Platform{tree};
    EXPECT_NO_THROW((void)api::run_stream(platform, info.name, Workload::identical(2)))
        << to_string(info.kind) << "/" << info.name;
  }
  // 3 replan entries + 4 tree online policies today; growth is fine, the
  // loop covers whatever registers.
  EXPECT_GE(streaming_entries, 7u);
}

TEST(Streaming, SubstrateEmbeddingsPreserveSlaveNumbering) {
  // chain processor i -> node i+1; fork slave s -> node s+1; spider leg l
  // depth d -> 1 + sum(len of legs < l) + d.  The re-planner's node mapping
  // rests on this.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const Tree from_chain = sim::stream_substrate(chain);
  ASSERT_EQ(from_chain.num_slaves(), 2u);
  EXPECT_EQ(from_chain.proc(1).work, chain.proc(0).work);
  EXPECT_EQ(from_chain.proc(2).work, chain.proc(1).work);
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  const Tree from_spider = sim::stream_substrate(spider);
  ASSERT_EQ(from_spider.num_slaves(), 3u);
  EXPECT_EQ(from_spider.proc(1).work, spider.leg(0).proc(0).work);
  EXPECT_EQ(from_spider.proc(2).work, spider.leg(0).proc(1).work);
  EXPECT_EQ(from_spider.proc(3).work, spider.leg(1).proc(0).work);
}

}  // namespace
}  // namespace mst
