// The identical-workload regression suite: for every registered algorithm,
// `solve(platform, Workload::identical(n))` must be bit-identical to the
// historical `solve(platform, n)` on the tests/data/ platforms — schedules
// included, not just makespans.  The refactor routed the `n` forms through
// the workload form, so this pins the whole surface: any accidental fork of
// the two paths shows up here.
//
// The decision form gets the same treatment: a null pool and an
// identical(cap) pool must produce the same counts and schedules.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mst/api/platform_io.hpp"
#include "mst/api/registry.hpp"

namespace mst::api {
namespace {

/// The checked-in tests/data/ platform files, embedded so the suite is
/// independent of the ctest working directory.
const std::vector<std::string>& platform_texts() {
  static const std::vector<std::string> kTexts{
      // tests/data/chain_platform.txt
      "chain 3\n2 5\n3 3\n1 4\n",
      // tests/data/fork_platform.txt
      "fork 3\n2 3\n1 4\n3 2\n",
      // tests/data/spider_platform.txt
      "spider 2\nleg 2\n2 5\n3 5\nleg 1\n4 2\n",
      // tests/data/tree_platform.txt
      "tree 4\n0 2 3\n1 1 2\n1 2 4\n0 3 2\n",
  };
  return kTexts;
}

bool same_solve(const SolveResult& a, const SolveResult& b) {
  return a.algorithm == b.algorithm && a.kind == b.kind && a.tasks == b.tasks &&
         a.makespan == b.makespan && a.lower_bound == b.lower_bound && a.optimal == b.optimal &&
         a.schedule == b.schedule && a.workload == b.workload;
}

/// The identical pool must reproduce the stream's numbers and payloads.
/// The one permitted divergence is the `optimal` flag when the count hits
/// the cap: exhausting a finite pool is proof of maximality, truncating the
/// unbounded stream is not — the pool answer may be strictly more informed,
/// never less.
bool same_decision(const DecisionResult& a, const DecisionResult& b, std::size_t pool_count) {
  if (a.algorithm != b.algorithm || a.kind != b.kind || a.deadline != b.deadline ||
      a.tasks != b.tasks || a.makespan != b.makespan || !(a.schedule == b.schedule) ||
      a.workload != b.workload) {
    return false;
  }
  if (a.optimal == b.optimal) return true;
  return b.optimal && !a.optimal && b.tasks == pool_count;
}

TEST(WorkloadEquivalence, IdenticalWorkloadSolvesBitIdentically) {
  for (const std::string& text : platform_texts()) {
    const Platform platform = parse_any_platform(text);
    for (const AlgorithmInfo& info : registry().list(kind_of(platform))) {
      const std::size_t n = info.exponential ? 4 : 9;
      for (const bool materialize : {true, false}) {
        SolveOptions options;
        options.materialize = materialize;
        options.seed = 21;
        const SolveResult classic = registry().solve(platform, info.name, n, options);
        const SolveResult workload =
            registry().solve(platform, info.name, Workload::identical(n), options);
        EXPECT_TRUE(same_solve(classic, workload))
            << to_string(info.kind) << "/" << info.name << " materialize=" << materialize;
        EXPECT_EQ(classic.tasks, n);
      }
    }
  }
}

TEST(WorkloadEquivalence, IdenticalPoolMatchesUnboundedStream) {
  for (const std::string& text : platform_texts()) {
    const Platform platform = parse_any_platform(text);
    for (const AlgorithmInfo& info : registry().list(kind_of(platform))) {
      for (const Time deadline : {0, 25, 60}) {
        SolveOptions stream;
        stream.seed = 5;
        stream.cap = 64;
        stream.materialize = true;
        if (info.exponential) stream.cap = 6;
        SolveOptions pooled = stream;
        pooled.workload = std::make_shared<const Workload>(Workload::identical(stream.cap));
        const DecisionResult a = registry().solve_within(platform, info.name, deadline, stream);
        const DecisionResult b = registry().solve_within(platform, info.name, deadline, pooled);
        EXPECT_TRUE(same_decision(a, b, stream.cap))
            << to_string(info.kind) << "/" << info.name << " T=" << deadline << " ("
            << a.tasks << " vs " << b.tasks << " tasks, makespan " << a.makespan << " vs "
            << b.makespan << ")";
        const FeasibilityReport report = check_feasibility(b);
        EXPECT_TRUE(report.ok()) << info.name << ": " << report.summary();
      }
    }
  }
}

}  // namespace
}  // namespace mst::api
