// Parser robustness fuzzing: mutated and garbage inputs must either parse
// cleanly or throw `std::invalid_argument` — never crash, never return a
// platform/schedule that violates the structural invariants.

#include <gtest/gtest.h>

#include <string>

#include "mst/api/platform_io.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/platform/io.hpp"
#include "mst/schedule/schedule_io.hpp"

namespace mst {
namespace {

std::string mutate_text(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const int op = static_cast<int>(rng.uniform(0, 3));
  const auto pos =
      static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1));
  switch (op) {
    case 0:  // flip a character to a random printable one
      text[pos] = static_cast<char>(rng.uniform(32, 126));
      break;
    case 1:  // delete a chunk
      text.erase(pos, static_cast<std::size_t>(rng.uniform(1, 5)));
      break;
    case 2:  // duplicate a chunk
      text.insert(pos, text.substr(pos, static_cast<std::size_t>(rng.uniform(1, 8))));
      break;
    default:  // truncate
      text.resize(pos);
      break;
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, MutatedPlatformsParseOrThrow) {
  Rng rng(GetParam());
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 60; ++trial) {
    Rng inst = rng.split();
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 4)), 3, params);
    std::string text = write_spider(spider);
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) text = mutate_text(std::move(text), rng);
    try {
      const Spider parsed = parse_spider(text);
      // If it parsed, it must be a structurally valid platform.
      EXPECT_GE(parsed.num_legs(), 1u);
      for (const Chain& leg : parsed.legs()) {
        for (const Processor& p : leg.procs()) {
          EXPECT_GE(p.comm, 0);
          EXPECT_GE(p.work, 1);
        }
      }
    } catch (const std::invalid_argument&) {
      // Expected for most mutations.
    } catch (const std::out_of_range&) {
      // std::stoll on a huge duplicated digit string; acceptable rejection.
    }
  }
}

TEST_P(ParserFuzz, MutatedTreesParseOrThrow) {
  Rng rng(GetParam() + 31);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 60; ++trial) {
    Rng inst = rng.split();
    const Tree tree = random_tree(inst, static_cast<std::size_t>(rng.uniform(1, 8)), params);
    const std::string clean = write_tree(tree);
    // Clean text round-trips exactly.
    EXPECT_EQ(write_tree(parse_tree(clean)), clean);

    std::string text = clean;
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) text = mutate_text(std::move(text), rng);
    try {
      const Tree parsed = parse_tree(text);
      // If it parsed, it must be a structurally valid platform: acyclic by
      // construction (parents precede children), sane processor values.
      EXPECT_GE(parsed.size(), 1u);
      for (NodeId v = 1; v < parsed.size(); ++v) {
        EXPECT_LT(parsed.parent(v), v);
        EXPECT_GE(parsed.proc(v).comm, 0);
        EXPECT_GE(parsed.proc(v).work, 1);
      }
    } catch (const std::invalid_argument&) {
      // Expected for most mutations.
    } catch (const std::out_of_range&) {
      // std::stoll on a huge duplicated digit string; acceptable rejection.
    }
  }
}

TEST_P(ParserFuzz, MutatedSchedulesParseOrThrow) {
  Rng rng(GetParam() + 77);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 40; ++trial) {
    Rng inst = rng.split();
    const Spider spider =
        random_spider(inst, static_cast<std::size_t>(rng.uniform(1, 3)), 2, params);
    const SpiderSchedule schedule =
        SpiderScheduler::schedule(spider, static_cast<std::size_t>(rng.uniform(1, 6)));
    std::string text = write_schedule(schedule);
    const int mutations = static_cast<int>(rng.uniform(1, 4));
    for (int m = 0; m < mutations; ++m) text = mutate_text(std::move(text), rng);
    try {
      const SpiderSchedule parsed = parse_spider_schedule(text);
      // Structural invariants only; semantic feasibility is separate.
      for (const SpiderTask& t : parsed.tasks) {
        EXPECT_LT(t.leg, parsed.spider.num_legs());
        EXPECT_EQ(t.emissions.size(), t.proc + 1);
      }
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

TEST_P(ParserFuzz, RandomGarbageNeverCrashes) {
  Rng rng(GetParam() + 154);
  for (int trial = 0; trial < 60; ++trial) {
    std::string garbage;
    const auto len = static_cast<std::size_t>(rng.uniform(0, 200));
    for (std::size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.uniform(9, 126)));
    }
    for (int which = 0; which < 4; ++which) {
      try {
        switch (which) {
          case 0: (void)api::parse_any_platform(garbage); break;
          case 1: (void)parse_tree(garbage); break;
          case 2: (void)parse_chain_schedule(garbage); break;
          default: (void)parse_spider_schedule(garbage); break;
        }
      } catch (const std::invalid_argument&) {
      } catch (const std::out_of_range&) {
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace mst
