// Fixture: unordered containers in deterministic-output code.
#include <string>
#include <unordered_map>
#include <unordered_set>

int bad(const std::unordered_map<std::string, int>& index) {  // line 6: unordered-container
  std::unordered_set<int> seen;                               // line 7: unordered-container
  return static_cast<int>(index.size() + seen.size());
}
