// Fixture: doubles streamed at default ostream precision.
#include <iostream>

void bad(double rate) {
  const double scaled = rate * 2;
  std::cout << "rate: " << scaled << "\n";  // line 6: raw-double-stream
  std::cout << result.throughput() << "\n";  // line 7: raw-double-stream
  const int count = 3;
  std::cout << count << "\n";  // int: clean
}
