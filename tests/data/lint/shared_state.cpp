// Fixture: static-storage state with and without a thread-safety story.
// The analyzer flags mutable static storage unless the declaration head
// carries const/constexpr/thread_local, a synchronization primitive, or an
// MST_GUARDED_BY annotation; function declarations are skipped.
#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

static int bad_counter = 0;
static double bad_total;
static std::vector<int>
    bad_table = {1, 2, 3};

static const int fine_const = 1;
static constexpr std::size_t fine_capacity = 64;
static thread_local int fine_scratch = 0;
static std::atomic<std::size_t> fine_atomic{0};
static std::mutex fine_mutex;
static std::once_flag fine_once;
static int fine_function(int x);
static std::size_t fine_guarded MST_GUARDED_BY(fine_mutex);

int consume();
