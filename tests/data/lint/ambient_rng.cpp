// Fixture: every ambient randomness source the analyzer must catch.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_sources() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // line 7: two ambient-rng
  std::random_device entropy;                        // line 8: ambient-rng
  std::mt19937 twister(entropy());                   // line 9: ambient-rng
  return static_cast<unsigned>(rand()) + twister();  // line 10: ambient-rng
}
