// Fixture: every display-lossy float rendering the analyzer must catch.
#include <cstdio>
#include <iomanip>
#include <iostream>

void bad() {
  std::printf("%g\n", 1.0);            // line 7: lossy-float-format
  std::printf("%.9g\n", 1.0);          // line 8: lossy-float-format
  std::printf("%f %e\n", 1.0, 2.0);    // line 9: two lossy-float-format
  std::printf("%.17g\n", 1.0);         // exact: clean
  std::printf("100%% done\n");         // escaped percent: clean
  std::cout << std::setprecision(6);   // line 12: stream-precision
  std::cout << std::fixed;             // line 13: stream-precision
  std::cout << std::setprecision(17);  // >= max_digits10: clean
}
