// Fixture: Registry entries must spell all six AlgorithmInfo fields.  The
// file name carries the "registry" marker that scopes the rule.
void register_all(Registry& r) {
  r.add({kind, "short", "three fields only"},  // line 4: registry-supports
        solve_fn);
  r.add({kind, "five", "stops before supports", /*optimal=*/true,
         /*exponential=*/true},  // literal spans lines; reported at the add
        solve_fn, within_fn);
  r.add({kind, "full", "all six fields", /*optimal=*/true,
         /*exponential=*/false, WorkloadFeatures{}},
        solve_fn, within_fn);  // clean
  r.add(std::move(info), solve_fn);  // not a brace literal: clean
}
