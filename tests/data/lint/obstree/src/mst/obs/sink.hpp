#pragma once

// Fixture: obs sits just above common — one downward include (fine) and
// one upward include into api (flagged: obs must not know its consumers).
#include "mst/common/time.hpp"
#include "mst/api/registry.hpp"
