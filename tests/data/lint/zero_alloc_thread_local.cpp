// Fixture: thread_local declarations relative to zero-alloc regions.  The
// regions must take their scratch explicitly; a hidden per-thread static is
// flagged, while the same fallback pattern outside the region is clean.
#include <vector>

struct Scratch {
  std::vector<int> values;
};

// The sanctioned shape: the fallback lives in a helper *outside* any
// region, and the region receives the scratch as a parameter.
Scratch& fallback_scratch() {
  static thread_local Scratch fallback;  // outside the region: clean
  return fallback;
}

// mstlint: zero-alloc
int hot_path(Scratch& scratch) {
  static thread_local int calls = 0;            // line 19: zero-alloc
  static thread_local Scratch hidden;           // line 20: zero-alloc
  ++calls;
  scratch.values.push_back(calls);              // warm-scratch mutation: clean
  return calls + static_cast<int>(hidden.values.size());
}
// mstlint: zero-alloc-end
