// Fixture: malformed directives.
// mstlint: allow(no-such-rule) -- the rule name is unknown
// mstlint: frobnicate
// mstlint: zero-alloc
int never_closed() { return 0; }
