// Fixture: allocating constructs inside a declared zero-alloc region.
#include <string>
#include <vector>

struct Scratch {
  std::vector<int> values;
};

// mstlint: zero-alloc
int hot_path(Scratch& scratch) {
  int* raw = new int[8];                    // line 11: zero-alloc
  std::vector<int> local;                   // line 12: zero-alloc
  std::string label = std::to_string(7);    // line 13: two zero-alloc
  scratch.values.push_back(raw[0]);         // warm-scratch mutation: clean
  std::vector<int>& alias = scratch.values; // reference: clean
  delete[] raw;
  return static_cast<int>(alias.size()) + static_cast<int>(label.size()) +
         static_cast<int>(local.size());
}
// mstlint: zero-alloc-end

int cold_path() {
  std::vector<int> fine(4);  // outside the region: clean
  return static_cast<int>(fine.size());
}
