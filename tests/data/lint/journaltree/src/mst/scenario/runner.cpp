// Fixture: the runner including its own journal sub-module is legal (the
// scenario entry lists scenario/journal), so the only graph finding in
// this tree is the sim include in journal.hpp.
#include "mst/scenario/journal.hpp"
