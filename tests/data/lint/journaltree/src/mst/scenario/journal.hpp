#pragma once

// Fixture: journal.* resolves to the 'scenario/journal' sub-module.  Its
// includes of common and of the scenario types it serializes are legal;
// reaching into the solver stack (sim here) is flagged — persistence code
// must not be able to invoke algorithms.
#include "mst/common/time.hpp"
#include "mst/scenario/runner.hpp"
#include "mst/sim/engine.hpp"
