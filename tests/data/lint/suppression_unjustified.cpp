// Fixture: a suppression without a `-- reason` is itself an error (and the
// suppression still applies, so the fix-it message is the only diagnostic).
#include <cstdlib>

int unjustified() {
  return rand();  // mstlint: allow(ambient-rng)
}
