#pragma once

// Fixture: a two-header include cycle inside one module (no layering
// violation — the cycle pass alone must catch it).
#include "mst/common/b.hpp"
