#pragma once

#include "mst/common/a.hpp"
