// Fixture: justified suppressions silence the diagnostics — file is clean.
#include <cstdlib>
#include <unordered_set>

int tolerated() {
  std::unordered_set<int> cache;  // mstlint: allow(unordered-container) -- only size() is read, never iterated
  // mstlint: allow-next-line(ambient-rng) -- fixture exercising the suppression path
  return rand() + static_cast<int>(cache.size());
}
