// Fixture: idiomatic repo code — no diagnostics.
#include <cstdio>
#include <map>
#include <vector>

std::string render(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// A zero-alloc region using the sanctioned warm-scratch idiom.
// mstlint: zero-alloc
int count(std::vector<int>& scratch, const std::map<int, int>& jobs) {
  scratch.clear();
  for (const auto& [key, weight] : jobs) scratch.push_back(key + weight);
  return static_cast<int>(scratch.size());
}
// mstlint: zero-alloc-end

// Comments may mention rand(), %g or new freely, and non-format strings may
// carry code-like tokens: the stripper must not let "srand(1)" or
// "std::unordered_map here" fire.
const char* kDocumentation = "calls rand() and uses new tricks";
