#pragma once

// Fixture: an upper-layer header (no includes, so the only graph findings
// in this tree are the layering edges in core/solver.hpp).
