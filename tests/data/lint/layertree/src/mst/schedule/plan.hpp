#pragma once

// Fixture: a plain lower-layer header.
