#pragma once

// Fixture: one downward include (fine), one upward include (flagged), and
// one upward include suppressed with a recorded reason.
#include "mst/schedule/plan.hpp"
#include "mst/api/registry.hpp"
// mstlint: allow-next-line(layering) -- fixture: reviewed upward edge
#include "mst/sim/engine.hpp"
