#pragma once

// Fixture: a mid-layer header.
