// Unit tests for the plain-text platform format.

#include <gtest/gtest.h>

#include <stdexcept>
#include <variant>
#include <vector>

#include "mst/api/platform_io.hpp"
#include "mst/platform/io.hpp"

namespace mst {
namespace {

Tree branching_tree() {
  Tree tree;
  const NodeId trunk = tree.add_node(0, {2, 3});
  tree.add_node(trunk, {1, 2});
  tree.add_node(trunk, {2, 4});
  tree.add_node(0, {3, 2});
  return tree;
}

TEST(Io, ChainRoundTrip) {
  const Chain chain = Chain::from_vectors({2, 3, 4}, {3, 5, 7});
  EXPECT_EQ(parse_chain(write_chain(chain)), chain);
}

TEST(Io, ForkRoundTrip) {
  const Fork fork({Processor{1, 2}, Processor{3, 4}, Processor{5, 6}});
  EXPECT_EQ(parse_fork(write_fork(fork)), fork);
}

TEST(Io, SpiderRoundTrip) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  EXPECT_EQ(parse_spider(write_spider(spider)), spider);
}

TEST(Io, ParsesWithCommentsAndWhitespace) {
  const std::string text = R"(
# a 2-processor chain
chain 2
  2 3   # first processor
  3 5
)";
  const Chain chain = parse_chain(text);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.comm(1), 3);
  EXPECT_EQ(chain.work(1), 5);
}

TEST(Io, TreeRoundTrip) {
  const Tree tree = branching_tree();
  const Tree parsed = parse_tree(write_tree(tree));
  ASSERT_EQ(parsed.size(), tree.size());
  for (NodeId v = 1; v < tree.size(); ++v) {
    EXPECT_EQ(parsed.parent(v), tree.parent(v));
    EXPECT_EQ(parsed.proc(v), tree.proc(v));
  }
  EXPECT_EQ(write_tree(parsed), write_tree(tree));
}

TEST(Io, ParsesTreeWithCommentsAndForwardParents) {
  const std::string text = R"(
# a chain hanging off a star
tree 3
0 2 3   # first slave under the master
1 1 2
0 4 5
)";
  const Tree tree = parse_tree(text);
  ASSERT_EQ(tree.num_slaves(), 3u);
  EXPECT_EQ(tree.parent(2), 1u);
  EXPECT_EQ(tree.parent(3), 0u);
  EXPECT_EQ(tree.proc(3).work, 5);
}

TEST(Io, TreeRejectsInvalidParents) {
  // A slave may only attach to the master or an earlier slave.
  EXPECT_THROW(parse_tree("tree 2\n0 1 2\n3 1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_tree("tree 1\n-1 1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_tree("tree 2\n2 1 2\n0 1 2\n"), std::invalid_argument);
  // Self-parent is caught by the parser itself, with the slave id named.
  try {
    parse_tree("tree 2\n0 1 2\n2 1 2\n");
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("slave 2"), std::string::npos) << e.what();
  }
}

// The typed parser keeps the platform kind: a chain file must dispatch to
// chain algorithms, not to a one-leg spider embedding.
TEST(Io, ParseAnyPlatformPreservesTheKind) {
  const api::Platform chain = api::parse_any_platform("chain 1\n4 5\n");
  EXPECT_TRUE(std::holds_alternative<Chain>(chain));

  const api::Platform fork = api::parse_any_platform("fork 2\n1 2\n3 4\n");
  ASSERT_TRUE(std::holds_alternative<Fork>(fork));
  EXPECT_EQ(std::get<Fork>(fork).size(), 2u);

  const api::Platform spider = api::parse_any_platform("spider 1\nleg 2\n1 2\n3 4\n");
  ASSERT_TRUE(std::holds_alternative<Spider>(spider));
  EXPECT_EQ(std::get<Spider>(spider).leg(0).size(), 2u);

  const api::Platform tree = api::parse_any_platform("tree 2\n0 1 2\n1 3 4\n");
  ASSERT_TRUE(std::holds_alternative<Tree>(tree));
  EXPECT_EQ(std::get<Tree>(tree).num_slaves(), 2u);
}

TEST(Io, WritePlatformRoundTripsEveryAlternative) {
  const std::vector<api::Platform> platforms{
      Chain::from_vectors({2, 3}, {3, 5}),
      Fork({Processor{1, 2}, Processor{3, 4}}),
      Spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})},
      branching_tree(),
  };
  for (const api::Platform& platform : platforms) {
    const std::string text = api::write_platform(platform);
    const api::Platform reparsed = api::parse_any_platform(text);
    EXPECT_EQ(api::kind_of(reparsed), api::kind_of(platform));
    EXPECT_EQ(api::write_platform(reparsed), text);
    EXPECT_EQ(peek_platform_kind(text), to_string(api::kind_of(platform)));
  }
}

TEST(Io, RejectsUnknownKeyword) {
  EXPECT_THROW(api::parse_any_platform("mesh 2\n1 2\n3 4\n"), std::invalid_argument);
  EXPECT_THROW(api::parse_any_platform(""), std::invalid_argument);
  EXPECT_THROW(parse_chain("fork 1\n1 2\n"), std::invalid_argument);
}

TEST(Io, RejectsTruncatedInput) {
  EXPECT_THROW(parse_chain("chain 2\n1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain"), std::invalid_argument);
  EXPECT_THROW(parse_spider("spider 2\nleg 1\n1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_tree("tree 2\n0 1 2\n"), std::invalid_argument);
}

TEST(Io, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_chain("chain 1\n1 2\nextra"), std::invalid_argument);
}

TEST(Io, RejectsNonNumericValues) {
  EXPECT_THROW(parse_chain("chain 1\nx 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain one\n1 2\n"), std::invalid_argument);
}

TEST(Io, RejectsInvalidProcessorValues) {
  // The platform validation layer still applies after parsing.
  EXPECT_THROW(parse_chain("chain 1\n1 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain 1\n-1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain 0\n"), std::invalid_argument);
}

TEST(Io, ErrorsMentionLineNumbers) {
  try {
    parse_chain("chain 1\nbad 2\n");
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace mst
