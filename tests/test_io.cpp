// Unit tests for the plain-text platform format.

#include <gtest/gtest.h>

#include <stdexcept>

#include "mst/platform/io.hpp"

namespace mst {
namespace {

TEST(Io, ChainRoundTrip) {
  const Chain chain = Chain::from_vectors({2, 3, 4}, {3, 5, 7});
  EXPECT_EQ(parse_chain(write_chain(chain)), chain);
}

TEST(Io, ForkRoundTrip) {
  const Fork fork({Processor{1, 2}, Processor{3, 4}, Processor{5, 6}});
  EXPECT_EQ(parse_fork(write_fork(fork)), fork);
}

TEST(Io, SpiderRoundTrip) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  EXPECT_EQ(parse_spider(write_spider(spider)), spider);
}

TEST(Io, ParsesWithCommentsAndWhitespace) {
  const std::string text = R"(
# a 2-processor chain
chain 2
  2 3   # first processor
  3 5
)";
  const Chain chain = parse_chain(text);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.comm(1), 3);
  EXPECT_EQ(chain.work(1), 5);
}

TEST(Io, ParsePlatformDispatchesOnKeyword) {
  const Spider from_chain = parse_platform("chain 1\n4 5\n");
  EXPECT_EQ(from_chain.num_legs(), 1u);
  EXPECT_EQ(from_chain.leg(0).size(), 1u);

  const Spider from_fork = parse_platform("fork 2\n1 2\n3 4\n");
  EXPECT_EQ(from_fork.num_legs(), 2u);
  EXPECT_TRUE(from_fork.is_fork());

  const Spider from_spider = parse_platform("spider 1\nleg 2\n1 2\n3 4\n");
  EXPECT_EQ(from_spider.num_legs(), 1u);
  EXPECT_EQ(from_spider.leg(0).size(), 2u);
}

TEST(Io, RejectsUnknownKeyword) {
  EXPECT_THROW(parse_platform("mesh 2\n1 2\n3 4\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("fork 1\n1 2\n"), std::invalid_argument);
}

TEST(Io, RejectsTruncatedInput) {
  EXPECT_THROW(parse_chain("chain 2\n1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain"), std::invalid_argument);
  EXPECT_THROW(parse_spider("spider 2\nleg 1\n1 2\n"), std::invalid_argument);
}

TEST(Io, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_chain("chain 1\n1 2\nextra"), std::invalid_argument);
}

TEST(Io, RejectsNonNumericValues) {
  EXPECT_THROW(parse_chain("chain 1\nx 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain one\n1 2\n"), std::invalid_argument);
}

TEST(Io, RejectsInvalidProcessorValues) {
  // The platform validation layer still applies after parsing.
  EXPECT_THROW(parse_chain("chain 1\n1 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain 1\n-1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_chain("chain 0\n"), std::invalid_argument);
}

TEST(Io, ErrorsMentionLineNumbers) {
  try {
    parse_chain("chain 1\nbad 2\n");
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace mst
