// Structural invariance properties of the optimal schedulers: behaviors
// that must hold for *any* correct implementation of the paper's model,
// independent of the construction details.

#include <gtest/gtest.h>

#include <algorithm>

#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

Chain scale_chain(const Chain& chain, Time factor) {
  std::vector<Processor> procs;
  for (const Processor& p : chain.procs()) {
    procs.push_back({p.comm * factor, p.work * factor});
  }
  return Chain(std::move(procs));
}

TEST(Invariance, TimeScalingScalesTheMakespan) {
  // The model has no absolute time unit: multiplying every c and w by k
  // multiplies the optimal makespan by exactly k.
  Rng rng(71);
  GeneratorParams params{1, 7, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 9));
    const Time base = ChainScheduler::makespan(chain, n);
    for (Time k : {2, 3, 7}) {
      EXPECT_EQ(ChainScheduler::makespan(scale_chain(chain, k), n), base * k)
          << chain.describe() << " n=" << n << " k=" << k;
    }
  }
}

TEST(Invariance, LegPermutationDoesNotChangeTheSpiderOptimum) {
  // Legs are interchangeable: the master's one-port does not care about
  // their order.
  Rng rng(72);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    std::vector<Chain> legs;
    const auto count = static_cast<std::size_t>(rng.uniform(2, 4));
    for (std::size_t l = 0; l < count; ++l) {
      legs.push_back(random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 3)), params));
    }
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Time base = SpiderScheduler::makespan(Spider(legs), n);
    std::vector<Chain> reversed(legs.rbegin(), legs.rend());
    EXPECT_EQ(SpiderScheduler::makespan(Spider(reversed), n), base) << "n=" << n;
    std::rotate(legs.begin(), legs.begin() + 1, legs.end());
    EXPECT_EQ(SpiderScheduler::makespan(Spider(legs), n), base) << "n=" << n;
  }
}

TEST(Invariance, DuplicatingALegNeverHurts) {
  Rng rng(73);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Chain leg = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 3)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Time single = SpiderScheduler::makespan(Spider{leg}, n);
    const Time doubled = SpiderScheduler::makespan(Spider{leg, leg}, n);
    EXPECT_LE(doubled, single) << leg.describe() << " n=" << n;
  }
}

TEST(Invariance, AddingALegNeverHurts) {
  Rng rng(74);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    std::vector<Chain> legs{random_chain(inst, 2, params)};
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Time before = SpiderScheduler::makespan(Spider(legs), n);
    legs.push_back(random_chain(inst, 1, params));
    EXPECT_LE(SpiderScheduler::makespan(Spider(legs), n), before) << "n=" << n;
  }
}

TEST(Invariance, SpeedingUpAProcessorNeverHurts) {
  Rng rng(75);
  GeneratorParams params{2, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Time before = ChainScheduler::makespan(chain, n);
    for (std::size_t q = 0; q < chain.size(); ++q) {
      std::vector<Processor> procs = chain.procs();
      procs[q].work = std::max<Time>(1, procs[q].work - 1);
      EXPECT_LE(ChainScheduler::makespan(Chain(procs), n), before)
          << chain.describe() << " faster proc " << q;
    }
  }
}

TEST(Invariance, SpeedingUpALinkNeverHurts) {
  Rng rng(76);
  GeneratorParams params{2, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Time before = ChainScheduler::makespan(chain, n);
    for (std::size_t k = 0; k < chain.size(); ++k) {
      std::vector<Processor> procs = chain.procs();
      procs[k].comm = std::max<Time>(0, procs[k].comm - 1);
      EXPECT_LE(ChainScheduler::makespan(Chain(procs), n), before)
          << chain.describe() << " faster link " << k;
    }
  }
}

TEST(Invariance, ExtendingTheChainNeverHurts) {
  // Appending a processor at the far end can only add options.
  Rng rng(77);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const Time before = ChainScheduler::makespan(chain, n);
    std::vector<Processor> procs = chain.procs();
    procs.push_back(random_processor(inst, params));
    EXPECT_LE(ChainScheduler::makespan(Chain(procs), n), before) << chain.describe();
  }
}

TEST(Invariance, OptimumIsInvariantToTaskCountSplitBounds) {
  // makespan(n) <= makespan(a) + makespan(b) when a + b = n (concatenating
  // two schedules back to back is feasible).
  Rng rng(78);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 4)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(2, 10));
    const auto a = static_cast<std::size_t>(rng.uniform(1, static_cast<Time>(n) - 1));
    const Time whole = ChainScheduler::makespan(chain, n);
    const Time split =
        ChainScheduler::makespan(chain, a) + ChainScheduler::makespan(chain, n - a);
    EXPECT_LE(whole, split) << chain.describe() << " n=" << n << " a=" << a;
  }
}

}  // namespace
}  // namespace mst
