// Unit tests of the paper's §3 chain algorithm on known instances,
// including the exact reproduction of Fig 2.

#include <gtest/gtest.h>

#include <stdexcept>

#include "mst/baselines/brute_force.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

TEST(ChainScheduler, ReproducesFig2) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  EXPECT_EQ(s.makespan(), 14);
  ASSERT_EQ(s.num_tasks(), 5u);
  // First-link emissions {0,2,4,6,9}; the third task goes to processor 2
  // (index 1 here) — the "node with processing time 8" of Fig 7.
  const std::vector<Time> expected_emissions = {0, 2, 4, 6, 9};
  const std::vector<std::size_t> expected_procs = {0, 0, 1, 0, 0};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(s.tasks[i].emissions.front(), expected_emissions[i]) << "task " << i;
    EXPECT_EQ(s.tasks[i].proc, expected_procs[i]) << "task " << i;
  }
  // The delayed task of Fig 2: second task arrives at 4 and is buffered
  // until the first finishes at 5.
  EXPECT_EQ(s.tasks[1].arrival(s.chain), 4);
  EXPECT_EQ(s.tasks[1].start, 5);
  EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
}

TEST(ChainScheduler, SingleProcessorMatchesTInfinity) {
  // With one processor the optimum is exactly T∞ (Fig 3 preamble).
  for (Time c : {1, 2, 5}) {
    for (Time w : {1, 3, 7}) {
      const Chain chain = Chain::from_vectors({c}, {w});
      for (std::size_t n : {1u, 2u, 5u, 9u}) {
        EXPECT_EQ(ChainScheduler::makespan(chain, n), chain.t_infinity(n))
            << "c=" << c << " w=" << w << " n=" << n;
      }
    }
  }
}

TEST(ChainScheduler, SingleTaskPicksBestProcessor) {
  // For n=1 the optimum is min over q of (path latency + work).
  const Chain chain = Chain::from_vectors({3, 1, 1}, {10, 6, 2});
  // q0: 3+10=13, q1: 4+6=10, q2: 5+2=7.
  EXPECT_EQ(ChainScheduler::makespan(chain, 1), 7);
  const ChainSchedule s = ChainScheduler::schedule(chain, 1);
  EXPECT_EQ(s.tasks[0].proc, 2u);
  EXPECT_EQ(s.tasks[0].emissions.front(), 0);
}

TEST(ChainScheduler, ScheduleStartsAtZero) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  EXPECT_EQ(s.start_time(), 0);
  EXPECT_EQ(s.tasks.front().emissions.front(), 0);
}

TEST(ChainScheduler, EmissionsAreSortedAndLinkExclusive) {
  const Chain chain = Chain::from_vectors({2, 1, 4}, {3, 8, 2});
  const ChainSchedule s = ChainScheduler::schedule(chain, 7);
  for (std::size_t i = 1; i < s.tasks.size(); ++i) {
    EXPECT_GE(s.tasks[i].emissions.front(),
              s.tasks[i - 1].emissions.front() + chain.comm(0));
  }
}

TEST(ChainScheduler, RejectsZeroTasks) {
  EXPECT_THROW(ChainScheduler::schedule(fig2_chain(), 0), std::invalid_argument);
}

TEST(ChainScheduler, UselessTailProcessorIsIgnored) {
  // A grotesquely slow far processor must never harm the optimum.
  const Chain fast = Chain::from_vectors({2}, {3});
  const Chain with_tail = Chain::from_vectors({2, 1000}, {3, 1000});
  for (std::size_t n : {1u, 3u, 6u}) {
    EXPECT_EQ(ChainScheduler::makespan(with_tail, n), ChainScheduler::makespan(fast, n));
  }
}

TEST(ChainScheduler, FastRelayProcessorHelps) {
  // A slow head in front of a fast tail: the algorithm must route past it.
  const Chain chain = Chain::from_vectors({1, 1}, {100, 1});
  const ChainSchedule s = ChainScheduler::schedule(chain, 5);
  EXPECT_EQ(s.tasks_per_proc()[1], 5u);  // everything lands on the fast node
  EXPECT_EQ(s.makespan(), brute_force_chain_makespan(chain, 5));
}

TEST(ChainScheduler, ZeroLatencyLinksAreHandled) {
  const Chain chain = Chain::from_vectors({0, 0}, {4, 5});
  for (std::size_t n = 1; n <= 6; ++n) {
    const ChainSchedule s = ChainScheduler::schedule(chain, n);
    EXPECT_TRUE(check_feasibility(s).ok()) << check_feasibility(s).summary();
    EXPECT_EQ(s.makespan(), brute_force_chain_makespan(chain, n)) << "n=" << n;
  }
}

TEST(ChainScheduler, DecisionFormStopsAtWindow) {
  const Chain chain = fig2_chain();
  // Fig 2 fits 5 tasks in 14 units but only 4 in 13.
  EXPECT_EQ(ChainScheduler::max_tasks(chain, 14, 100), 5u);
  EXPECT_EQ(ChainScheduler::max_tasks(chain, 13, 100), 4u);
  EXPECT_EQ(ChainScheduler::max_tasks(chain, 0, 100), 0u);
  // A window too small for even one task.
  EXPECT_EQ(ChainScheduler::max_tasks(chain, 4, 100), 0u);
  EXPECT_EQ(ChainScheduler::max_tasks(chain, 5, 100), 1u);
}

TEST(ChainScheduler, DecisionFormHonorsCap) {
  const Chain chain = fig2_chain();
  const ChainSchedule s = ChainScheduler::schedule_within(chain, 1000, 3);
  EXPECT_EQ(s.num_tasks(), 3u);
}

TEST(ChainScheduler, DecisionFormKeepsAbsoluteTimes) {
  // All tasks end by t_lim and no time is shifted.
  const Chain chain = fig2_chain();
  const ChainSchedule s = ChainScheduler::schedule_within(chain, 20, 100);
  for (const ChainTask& t : s.tasks) {
    EXPECT_GE(t.emissions.front(), 0);
    EXPECT_LE(t.end(chain), 20);
  }
  // The last task ends exactly at the horizon (backward construction).
  EXPECT_EQ(s.makespan(), 20);
}

TEST(ChainScheduler, DecisionFormRejectsNegativeWindow) {
  EXPECT_THROW(ChainScheduler::schedule_within(fig2_chain(), -1, 5), std::invalid_argument);
}

TEST(ChainScheduler, BuildBackwardExposesRawHorizon) {
  // Raw construction at horizon H without shift: last task ends at H.
  const Chain chain = fig2_chain();
  const ChainSchedule s = ChainScheduler::build_backward(chain, 100, 4, true);
  EXPECT_EQ(s.makespan(), 100);
  EXPECT_EQ(s.num_tasks(), 4u);
}

TEST(ChainScheduler, MakespanEqualsScheduleMakespan) {
  const Chain chain = Chain::from_vectors({1, 2, 3}, {4, 5, 6});
  for (std::size_t n = 1; n <= 8; ++n) {
    EXPECT_EQ(ChainScheduler::makespan(chain, n), ChainScheduler::schedule(chain, n).makespan());
  }
}

TEST(ChainScheduler, LongHomogeneousChainSaturates) {
  // Homogeneous chain, communication-bound: rate is limited by the first
  // link, so makespan grows by c per task once saturated.
  const Chain chain = Chain::from_vectors({2, 2, 2, 2}, {4, 4, 4, 4});
  const Time m16 = ChainScheduler::makespan(chain, 16);
  const Time m17 = ChainScheduler::makespan(chain, 17);
  EXPECT_EQ(m17 - m16, 2);
}

}  // namespace
}  // namespace mst
