// Tests of the instrumented backward construction, including the direct
// executable form of Lemma 1 ("there is always a better solution than a
// crossing") over the recorded candidate vectors.

#include <gtest/gtest.h>

#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/core/chain_trace.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

TEST(ChainTrace, ReproducesThePlainScheduleExactly) {
  Rng rng(61);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 12; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 6)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 10));
    const ChainTrace trace = trace_schedule(chain, n);
    const ChainSchedule plain = ChainScheduler::schedule(chain, n);
    EXPECT_EQ(trace.schedule.tasks, plain.tasks) << chain.describe() << " n=" << n;
    EXPECT_EQ(trace.steps.size(), n);
  }
}

TEST(ChainTrace, ChosenCandidateIsTheDefinition3Maximum) {
  Rng rng(62);
  GeneratorParams params{1, 8, PlatformClass::kUniform};
  for (int trial = 0; trial < 10; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params);
    const ChainTrace trace = trace_schedule(chain, 6);
    for (const ChainTraceStep& step : trace.steps) {
      const CommVector& winner = step.candidates[step.chosen];
      for (const CommVector& other : step.candidates) {
        if (other == winner) continue;
        EXPECT_TRUE(precedes(other, winner))
            << to_string(other) << " should precede " << to_string(winner);
      }
    }
  }
}

TEST(ChainTrace, Lemma1NoCrossingBetweenCandidates) {
  // Lemma 1: if kC(i) ≺ lC(i) then every suffix (from any common link q)
  // also satisfies {kC_q..} ≺ {lC_q..} — candidate vectors never cross.
  Rng rng(63);
  GeneratorParams params{1, 9, PlatformClass::kUniform};
  for (int trial = 0; trial < 12; ++trial) {
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(2, 6)), params);
    const auto n = static_cast<std::size_t>(rng.uniform(1, 8));
    const ChainTrace trace = trace_schedule(chain, n);
    for (const ChainTraceStep& step : trace.steps) {
      for (std::size_t k = 0; k < step.candidates.size(); ++k) {
        for (std::size_t l = 0; l < step.candidates.size(); ++l) {
          if (k == l) continue;
          const CommVector& a = step.candidates[k];
          const CommVector& b = step.candidates[l];
          if (!precedes(a, b)) continue;
          const std::size_t common = std::min(a.size(), b.size());
          for (std::size_t q = 0; q < common; ++q) {
            const CommVector suffix_a(a.begin() + static_cast<std::ptrdiff_t>(q), a.end());
            const CommVector suffix_b(b.begin() + static_cast<std::ptrdiff_t>(q), b.end());
            EXPECT_TRUE(precedes_or_equal(suffix_a, suffix_b))
                << chain.describe() << ": crossing at q=" << q << " between "
                << to_string(a) << " and " << to_string(b);
          }
        }
      }
    }
  }
}

TEST(ChainTrace, HullAndOccupancyAreMonotone) {
  // Backward construction: hulls and occupancies only move earlier.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ChainTrace trace = trace_schedule(chain, 5);
  for (std::size_t s = 1; s < trace.steps.size(); ++s) {
    for (std::size_t k = 0; k < chain.size(); ++k) {
      EXPECT_LE(trace.steps[s].hull_before[k], trace.steps[s - 1].hull_before[k]);
      EXPECT_LE(trace.steps[s].occupancy_before[k], trace.steps[s - 1].occupancy_before[k]);
    }
  }
}

TEST(ChainTrace, Fig2FirstDecision) {
  // The first backward step of the Fig 2 instance: anchored at T∞ = 14
  // (for n=5: 2 + 4*3 + 3 = 17? no — T∞ uses the first processor:
  // 2 + 4·max(3,2) + 3 = 17).  The last task lands on processor 1 ending
  // at 17.
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ChainTrace trace = trace_schedule(chain, 5);
  EXPECT_EQ(trace.horizon, 17);
  const ChainTraceStep& first = trace.steps.front();
  // Candidates: to proc 1: {17-3-2} = {12}; to proc 2: {17-5-3-2, 17-5-3} = {7, 9}.
  ASSERT_EQ(first.candidates.size(), 2u);
  EXPECT_EQ(first.candidates[0], (CommVector{12}));
  EXPECT_EQ(first.candidates[1], (CommVector{7, 9}));
  EXPECT_EQ(first.chosen, 0u);
  EXPECT_EQ(first.placed.start, 14);  // 17 - w1
}

TEST(ChainTrace, DecisionFormStopsLikeTheScheduler) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ChainTrace trace = trace_backward(chain, 14, 100, /*stop_on_negative=*/true);
  EXPECT_EQ(trace.schedule.num_tasks(), 5u);
  EXPECT_EQ(trace.schedule.num_tasks(), ChainScheduler::max_tasks(chain, 14, 100));
}

TEST(ChainTrace, RejectsZeroTasks) {
  EXPECT_THROW(trace_schedule(Chain::from_vectors({1}, {1}), 0), std::invalid_argument);
}

}  // namespace
}  // namespace mst
