// Property tests of the chain algorithm over seeded random instances:
// feasibility, optimality against exhaustive search (Theorem 1), the
// decision/makespan duality, Lemma 2's sub-chain projection, and the
// suffix-optimality that powers the spider reduction (Lemma 4).

#include <gtest/gtest.h>

#include <tuple>

#include "mst/baselines/brute_force.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"
#include "mst/schedule/feasibility.hpp"

namespace mst {
namespace {

using Param = std::tuple<int /*class index*/, std::uint64_t /*seed*/>;

class ChainProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] GeneratorParams params() const {
    GeneratorParams p;
    p.lo = 1;
    p.hi = 9;
    p.cls = all_platform_classes()[static_cast<std::size_t>(std::get<0>(GetParam()))];
    return p;
  }
  [[nodiscard]] std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(ChainProperty, SchedulesAreAlwaysFeasible) {
  Rng rng(seed());
  for (int trial = 0; trial < 12; ++trial) {
    const auto p = static_cast<std::size_t>(rng.uniform(1, 6));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 14));
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, p, params());
    const ChainSchedule s = ChainScheduler::schedule(chain, n);
    ASSERT_EQ(s.num_tasks(), n);
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << chain.describe() << " n=" << n << "\n" << report.summary();
    EXPECT_EQ(s.start_time(), 0) << chain.describe();
  }
}

TEST_P(ChainProperty, MatchesBruteForceOptimum) {
  Rng rng(seed());
  for (int trial = 0; trial < 10; ++trial) {
    const auto p = static_cast<std::size_t>(rng.uniform(1, 4));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 7));
    Rng inst = rng.split();
    const Chain chain = random_chain(inst, p, params());
    const Time alg = ChainScheduler::makespan(chain, n);
    const Time opt = brute_force_chain_makespan(chain, n);
    ASSERT_EQ(alg, opt) << chain.describe() << " n=" << n;
  }
}

TEST_P(ChainProperty, MakespanIsMonotoneInTaskCount) {
  Rng rng(seed());
  Rng inst = rng.split();
  const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 6)), params());
  Time prev = 0;
  for (std::size_t n = 1; n <= 12; ++n) {
    const Time m = ChainScheduler::makespan(chain, n);
    EXPECT_GE(m, prev) << chain.describe() << " n=" << n;
    prev = m;
  }
}

TEST_P(ChainProperty, DecisionAndMakespanFormsAreDual) {
  // max{k : makespan(k) <= T} == max_tasks(T) for every window T.
  Rng rng(seed());
  Rng inst = rng.split();
  const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params());
  constexpr std::size_t kMax = 9;
  std::vector<Time> makespans(kMax + 1, 0);
  for (std::size_t k = 1; k <= kMax; ++k) makespans[k] = ChainScheduler::makespan(chain, k);

  for (Time t = 0; t <= makespans[kMax]; t += std::max<Time>(1, makespans[kMax] / 37)) {
    std::size_t expected = 0;
    while (expected < kMax && makespans[expected + 1] <= t) ++expected;
    EXPECT_EQ(ChainScheduler::max_tasks(chain, t, kMax), expected)
        << chain.describe() << " T=" << t;
  }
  // At exactly the k-task makespan the window fits k tasks.
  for (std::size_t k = 1; k <= kMax; ++k) {
    EXPECT_GE(ChainScheduler::max_tasks(chain, makespans[k], kMax), k);
  }
}

TEST_P(ChainProperty, DecisionFormTaskCountMonotoneInWindow) {
  Rng rng(seed());
  Rng inst = rng.split();
  const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params());
  std::size_t prev = 0;
  for (Time t = 0; t <= 60; t += 3) {
    const std::size_t k = ChainScheduler::max_tasks(chain, t, 50);
    EXPECT_GE(k, prev) << chain.describe() << " T=" << t;
    prev = k;
  }
}

TEST_P(ChainProperty, DecisionFormSchedulesAreFeasibleWithinWindow) {
  Rng rng(seed());
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const Chain chain =
        random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params());
    const Time t_lim = rng.uniform(0, 50);
    const ChainSchedule s = ChainScheduler::schedule_within(chain, t_lim, 30);
    const FeasibilityReport report = check_feasibility(s);
    ASSERT_TRUE(report.ok()) << chain.describe() << " T=" << t_lim << "\n" << report.summary();
    for (const ChainTask& task : s.tasks) {
      EXPECT_GE(task.emissions.front(), 0);
      EXPECT_LE(task.end(chain), t_lim);
    }
  }
}

TEST_P(ChainProperty, SuffixOfDecisionFormIsOptimalForItsCount) {
  // Backward construction: the last k tasks of schedule_within(T, m) are
  // exactly schedule_within(T, k) — the property Lemma 4 builds on.
  Rng rng(seed());
  Rng inst = rng.split();
  const Chain chain = random_chain(inst, static_cast<std::size_t>(rng.uniform(1, 5)), params());
  const Time t_lim = 40;
  const ChainSchedule full = ChainScheduler::schedule_within(chain, t_lim, 10);
  for (std::size_t k = 1; k <= full.num_tasks(); ++k) {
    const ChainSchedule sub = ChainScheduler::schedule_within(chain, t_lim, k);
    ASSERT_EQ(sub.num_tasks(), k);
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_EQ(sub.tasks[j], full.tasks[full.num_tasks() - k + j])
          << chain.describe() << " k=" << k << " j=" << j;
    }
  }
}

TEST_P(ChainProperty, Lemma2SubChainProjection) {
  // The tasks placed beyond the first processor form, on the sub-chain
  // (c_2..c_p, w_2..w_p), the same schedule the algorithm would build there
  // (up to the time shift T_shift = min C^i_2).
  Rng rng(seed());
  for (int trial = 0; trial < 6; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(2, 5));
    const auto n = static_cast<std::size_t>(rng.uniform(2, 10));
    const Chain chain = random_chain(inst, p, params());
    const Time horizon = chain.t_infinity(n);

    // Unshifted schedules anchored at the same horizon on both chains.
    const ChainSchedule full = ChainScheduler::build_backward(chain, horizon, n, false);
    std::vector<ChainTask> projected;
    for (const ChainTask& t : full.tasks) {
      if (t.proc >= 1) {
        ChainTask shifted;
        shifted.proc = t.proc - 1;
        shifted.start = t.start;
        shifted.emissions.assign(t.emissions.begin() + 1, t.emissions.end());
        projected.push_back(std::move(shifted));
      }
    }
    const ChainSchedule sub =
        ChainScheduler::build_backward(chain.suffix(1), horizon, projected.size(), false);
    ASSERT_EQ(sub.num_tasks(), projected.size()) << chain.describe() << " n=" << n;
    for (std::size_t j = 0; j < projected.size(); ++j) {
      EXPECT_EQ(sub.tasks[j], projected[j]) << chain.describe() << " n=" << n << " j=" << j;
    }
  }
}

TEST_P(ChainProperty, DecisionFormMatchesBruteForceCount) {
  Rng rng(seed() + 900);
  for (int trial = 0; trial < 5; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 3));
    const Chain chain = random_chain(inst, p, params());
    const Time t_lim = rng.uniform(0, 25);
    const std::size_t alg = ChainScheduler::max_tasks(chain, t_lim, 7);
    EXPECT_EQ(alg, brute_force_chain_max_tasks(chain, t_lim, 7))
        << chain.describe() << " T=" << t_lim;
  }
}

TEST_P(ChainProperty, FirstEmissionNeverNegativeAtTInfinity) {
  // The feasibility claim the paper leaves to the reader: anchored at T∞,
  // the construction never pushes an emission below zero.
  Rng rng(seed());
  for (int trial = 0; trial < 8; ++trial) {
    Rng inst = rng.split();
    const auto p = static_cast<std::size_t>(rng.uniform(1, 6));
    const auto n = static_cast<std::size_t>(rng.uniform(1, 12));
    const Chain chain = random_chain(inst, p, params());
    const ChainSchedule raw =
        ChainScheduler::build_backward(chain, chain.t_infinity(n), n, false);
    ASSERT_EQ(raw.num_tasks(), n);
    EXPECT_GE(raw.tasks.front().emissions.front(), 0) << chain.describe() << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClassesAndSeeds, ChainProperty,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Values(11u, 22u, 33u)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name =
          to_string(all_platform_classes()[static_cast<std::size_t>(std::get<0>(info.param))]) +
          "_seed" + std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mst
