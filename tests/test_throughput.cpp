// Tests of the makespan-curve / throughput analysis.

#include <gtest/gtest.h>

#include "mst/analysis/throughput.hpp"
#include "mst/baselines/bounds.hpp"
#include "mst/common/rng.hpp"
#include "mst/core/chain_scheduler.hpp"
#include "mst/platform/generator.hpp"

namespace mst {
namespace {

TEST(Throughput, CurveSamplesOptimalMakespans) {
  const Chain chain = Chain::from_vectors({2, 3}, {3, 5});
  const ThroughputCurve curve = chain_throughput_curve(chain, {1, 2, 5, 10});
  ASSERT_EQ(curve.n.size(), 4u);
  for (std::size_t i = 0; i < curve.n.size(); ++i) {
    EXPECT_EQ(curve.makespan[i], ChainScheduler::makespan(chain, curve.n[i]));
  }
  EXPECT_EQ(curve.marginal[0], 0);
  EXPECT_EQ(curve.marginal[2], curve.makespan[2] - curve.makespan[1]);
}

TEST(Throughput, AffineTailFitRecoversSteadyRate) {
  // A single-processor chain is affine from the start:
  // M(n) = c + (n-1)*max(c,w) + w.
  const Chain chain = Chain::from_vectors({2}, {5});
  const ThroughputCurve curve = chain_throughput_curve(chain, {1, 2, 4, 8, 16, 32});
  EXPECT_NEAR(curve.fitted_rate, 0.2, 1e-9);  // 1/max(c,w)
  EXPECT_EQ(curve.fitted_startup, 2);         // c + w - max(c,w)
  EXPECT_NEAR(curve.steady_rate, 0.2, 1e-12);
}

TEST(Throughput, EfficiencyApproachesOneOnLongRuns) {
  Rng rng(9);
  const Chain chain = random_chain(rng, 4, {1, 8, PlatformClass::kUniform});
  const ThroughputCurve curve = chain_throughput_curve(chain, {4, 16, 64, 256, 1024});
  EXPECT_GT(curve.efficiency_at_tail(), 0.95);
  EXPECT_LE(curve.efficiency_at_tail(), 1.0 + 1e-9);
}

TEST(Throughput, SpiderCurveIsComputed) {
  const Spider spider{Chain::from_vectors({2, 3}, {3, 5}), Chain::from_vectors({4}, {2})};
  const ThroughputCurve curve = spider_throughput_curve(spider, {2, 8, 32, 128});
  EXPECT_GT(curve.steady_rate, 0.0);
  EXPECT_GT(curve.fitted_rate, 0.0);
  EXPECT_GT(curve.efficiency_at_tail(), 0.9);
}

TEST(Throughput, TasksToReachRateFraction) {
  const Chain chain = Chain::from_vectors({2, 1, 3}, {4, 6, 2});
  const std::size_t n90 = tasks_to_reach_rate_fraction(chain, 0.9);
  const std::size_t n99 = tasks_to_reach_rate_fraction(chain, 0.99);
  EXPECT_GE(n99, n90);
  // The returned count actually achieves the fraction.
  const double rate = chain_steady_state_rate(chain);
  const double tp = static_cast<double>(n90) /
                    static_cast<double>(ChainScheduler::makespan(chain, n90));
  EXPECT_GE(tp, 0.9 * rate - 1e-9);
}

TEST(Throughput, ValidatesInputs) {
  const Chain chain = Chain::from_vectors({1}, {1});
  EXPECT_THROW(chain_throughput_curve(chain, {}), std::invalid_argument);
  EXPECT_THROW(chain_throughput_curve(chain, {3, 2}), std::invalid_argument);
  EXPECT_THROW(chain_throughput_curve(chain, {0, 2}), std::invalid_argument);
  EXPECT_THROW(tasks_to_reach_rate_fraction(chain, 0.0), std::invalid_argument);
  EXPECT_THROW(tasks_to_reach_rate_fraction(chain, 1.0), std::invalid_argument);
}

TEST(Throughput, MarginalCostStabilizesAtInverseRate) {
  // Far in the tail, each extra task costs exactly 1/rate time units for an
  // integer-rate platform.
  const Chain chain = Chain::from_vectors({2, 2}, {4, 4});  // rate 1/2
  const Time m1 = ChainScheduler::makespan(chain, 200);
  const Time m2 = ChainScheduler::makespan(chain, 201);
  EXPECT_EQ(m2 - m1, 2);
}

}  // namespace
}  // namespace mst
