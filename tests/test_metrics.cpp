// Tests of derived schedule metrics (utilization, idle gaps, throughput).

#include <gtest/gtest.h>

#include "mst/core/chain_scheduler.hpp"
#include "mst/core/spider_scheduler.hpp"
#include "mst/schedule/metrics.hpp"

namespace mst {
namespace {

Chain fig2_chain() { return Chain::from_vectors({2, 3}, {3, 5}); }

TEST(Metrics, ChainUtilizationOnFig2) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  const ChainUtilization u = compute_utilization(s);
  EXPECT_EQ(u.makespan, 14);
  ASSERT_EQ(u.tasks_per_proc.size(), 2u);
  EXPECT_EQ(u.tasks_per_proc[0], 4u);
  EXPECT_EQ(u.tasks_per_proc[1], 1u);
  // proc 0: 4 tasks x 3 units = 12/14; proc 1: 5/14.
  EXPECT_NEAR(u.proc_busy_fraction[0], 12.0 / 14.0, 1e-12);
  EXPECT_NEAR(u.proc_busy_fraction[1], 5.0 / 14.0, 1e-12);
  // link 0 carries all 5 tasks: 10/14; link 1 carries one: 3/14.
  EXPECT_NEAR(u.link_busy_fraction[0], 10.0 / 14.0, 1e-12);
  EXPECT_NEAR(u.link_busy_fraction[1], 3.0 / 14.0, 1e-12);
}

TEST(Metrics, EmptyScheduleUtilization) {
  const ChainUtilization u = compute_utilization(ChainSchedule{fig2_chain(), {}});
  EXPECT_EQ(u.makespan, 0);
  EXPECT_DOUBLE_EQ(u.proc_busy_fraction[0], 0.0);
}

TEST(Metrics, FirstLinkIdleGapsOnFig2) {
  // Fig 2 emissions are {0,2,4,6,9}: one gap [8,9) before the last one.
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  const auto gaps = first_link_idle_gaps(s);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].first, 8);
  EXPECT_EQ(gaps[0].second, 9);
}

TEST(Metrics, NoGapsWhenSaturated) {
  const Chain chain = Chain::from_vectors({5}, {2});  // link-bound: emissions back to back
  const ChainSchedule s = ChainScheduler::schedule(chain, 4);
  EXPECT_TRUE(first_link_idle_gaps(s).empty());
}

TEST(Metrics, ChainThroughput) {
  const ChainSchedule s = ChainScheduler::schedule(fig2_chain(), 5);
  EXPECT_NEAR(throughput(s), 5.0 / 14.0, 1e-12);
  EXPECT_DOUBLE_EQ(throughput(ChainSchedule{fig2_chain(), {}}), 0.0);
}

TEST(Metrics, SpiderUtilization) {
  const Spider spider{fig2_chain(), Chain::from_vectors({4}, {2})};
  const SpiderSchedule s = SpiderScheduler::schedule(spider, 6);
  const SpiderUtilization u = compute_utilization(s);
  EXPECT_EQ(u.makespan, s.makespan());
  std::size_t total = 0;
  for (std::size_t c : u.tasks_per_leg) total += c;
  EXPECT_EQ(total, 6u);
  EXPECT_GT(u.master_port_busy_fraction, 0.0);
  EXPECT_LE(u.master_port_busy_fraction, 1.0 + 1e-12);
  EXPECT_NEAR(throughput(s), 6.0 / static_cast<double>(s.makespan()), 1e-12);
}

}  // namespace
}  // namespace mst
