// The Workload value type: canonicalization, text round trips with fuzz
// rejection, generator determinism, and the simulator's release/size
// semantics.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "mst/platform/tree.hpp"
#include "mst/sim/online.hpp"
#include "mst/sim/platform_sim.hpp"
#include "mst/workload/arrival.hpp"
#include "mst/workload/workload.hpp"
#include "mst/workload/workload_io.hpp"

namespace mst {
namespace {

TEST(Workload, IdenticalIsTheNeutralElement) {
  const Workload w = Workload::identical(5);
  EXPECT_EQ(w.count(), 5u);
  EXPECT_TRUE(w.uniform_sizes());
  EXPECT_FALSE(w.has_release_dates());
  EXPECT_FALSE(w.features().any());
  EXPECT_EQ(w.size_of(3), 1);
  EXPECT_EQ(w.release_of(3), 0);
  EXPECT_EQ(w.total_size(), 5);
  EXPECT_EQ(w.last_release(), 0);
  // Degenerate vectors normalize away: all-1 sizes / all-0 releases are the
  // identical workload.
  EXPECT_EQ(Workload(5, {1, 1, 1, 1, 1}, {0, 0, 0, 0, 0}), w);
}

TEST(Workload, CanonicalOrderSortsByReleaseThenSize) {
  const Workload w(4, {3, 1, 2, 1}, {9, 0, 9, 4});
  EXPECT_EQ(w.releases(), (std::vector<Time>{0, 4, 9, 9}));
  EXPECT_EQ(w.sizes(), (std::vector<Time>{1, 1, 2, 3}));
  // Equal task multisets compare equal regardless of input order.
  EXPECT_EQ(w, Workload(4, {1, 2, 3, 1}, {4, 9, 9, 0}));
  // prefix(k) is the k earliest-released tasks; its all-1 size vector
  // normalizes back to the uniform representation.
  const Workload p = w.prefix(2);
  EXPECT_EQ(p, Workload::released({0, 4}));
  EXPECT_TRUE(p.uniform_sizes());
  EXPECT_THROW(w.prefix(5), std::invalid_argument);
}

TEST(Workload, RejectsMalformedInputs) {
  EXPECT_THROW(Workload(3, {1, 2}, {}), std::invalid_argument);      // short sizes
  EXPECT_THROW(Workload(3, {}, {0, 1}), std::invalid_argument);      // short releases
  EXPECT_THROW(Workload(2, {0, 1}, {}), std::invalid_argument);      // size < 1
  EXPECT_THROW(Workload(2, {}, {-1, 0}), std::invalid_argument);     // negative release
}

TEST(WorkloadIo, RoundTripsEveryShape) {
  const std::vector<Workload> workloads{
      Workload(),
      Workload::identical(7),
      Workload::of_sizes({2, 1, 5}),
      Workload::released({0, 3, 3, 11}),
      Workload(3, {2, 2, 4}, {5, 0, 5}),
  };
  for (const Workload& w : workloads) {
    const std::string text = write_workload(w);
    EXPECT_EQ(parse_workload(text), w) << text;
    // Canonical text re-renders identically.
    EXPECT_EQ(write_workload(parse_workload(text)), text);
  }
}

TEST(WorkloadIo, ParsesCommentsAndEitherLineOrder) {
  const Workload w = parse_workload(
      "# a comment\n"
      "workload 3\n"
      "release 0 2 4   # staggered\n"
      "sizes 1 2 3\n");
  EXPECT_EQ(w.count(), 3u);
  EXPECT_EQ(w.releases(), (std::vector<Time>{0, 2, 4}));
}

TEST(WorkloadIo, FuzzRejection) {
  EXPECT_THROW(parse_workload(""), std::invalid_argument);
  EXPECT_THROW(parse_workload("platform 3\n"), std::invalid_argument);   // wrong header
  EXPECT_THROW(parse_workload("workload\n"), std::invalid_argument);     // missing count
  EXPECT_THROW(parse_workload("workload x\n"), std::invalid_argument);   // not a number
  EXPECT_THROW(parse_workload("workload -1\n"), std::invalid_argument);
  EXPECT_THROW(parse_workload("workload 3\nsizes 1 2\n"), std::invalid_argument);  // short
  EXPECT_THROW(parse_workload("workload 2\nsizes 1 2 3\n"), std::invalid_argument);  // long
  EXPECT_THROW(parse_workload("workload 2\nsizes 0 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_workload("workload 2\nrelease -3 0\n"), std::invalid_argument);
  EXPECT_THROW(parse_workload("workload 2\nsizes 1 1\nsizes 1 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_workload("workload 2\nbogus 1 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_workload("workload 1\nrelease 0\ntrailing\n"), std::invalid_argument);
}

TEST(WorkloadGenTest, DeterministicPerSeedAndValidated) {
  WorkloadGen gen;
  gen.sizes = SizeDist{SizeDist::Kind::kUniform, 1, 4};
  const Workload a = gen.make(64, 42);
  const Workload b = gen.make(64, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, gen.make(64, 43));
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_GE(a.size_of(i), 1);
    EXPECT_LE(a.size_of(i), 4);
  }

  WorkloadGen poisson;
  poisson.arrival = ArrivalDist{ArrivalDist::Kind::kPoisson, 5, 0};
  const Workload stream = poisson.make(50, 7);
  EXPECT_EQ(stream, poisson.make(50, 7));
  EXPECT_TRUE(stream.has_release_dates());
  // Releases come out sorted (Poisson clock is cumulative).
  for (std::size_t i = 1; i < stream.count(); ++i) {
    EXPECT_LE(stream.release_of(i - 1), stream.release_of(i));
  }
  EXPECT_EQ(poisson.label(), "poisson(5)");

  WorkloadGen bursts;
  bursts.arrival = ArrivalDist{ArrivalDist::Kind::kBursts, 4, 10};
  const Workload grouped = bursts.make(10, 1);
  EXPECT_EQ(grouped.release_of(0), 0);
  EXPECT_EQ(grouped.release_of(3), 0);
  EXPECT_EQ(grouped.release_of(4), 10);
  EXPECT_EQ(grouped.release_of(9), 20);

  WorkloadGen bad;
  bad.sizes = SizeDist{SizeDist::Kind::kUniform, 4, 1};
  EXPECT_THROW(validate(bad), std::invalid_argument);
  EXPECT_THROW(bad.make(4, 1), std::invalid_argument);
}

/// A two-slave star for simulator semantics checks.
Tree two_slave_tree() {
  Tree tree;
  tree.add_node(0, {2, 3});
  tree.add_node(0, {1, 5});
  return tree;
}

TEST(SimWorkload, ReleaseDatesGateTheMasterEmissions) {
  const Tree tree = two_slave_tree();
  const Workload staggered = Workload::released({0, 10, 20});
  const std::vector<NodeId> dests{1, 2, 1};
  const sim::SimResult run = sim::simulate_dispatch(tree, dests, staggered);
  ASSERT_EQ(run.num_tasks(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(run.tasks[i].master_emission, staggered.release_of(i)) << i;
  }
  // The port sat idle waiting for the last arrival: its emission starts
  // exactly at the release date.
  EXPECT_EQ(run.tasks[2].master_emission, 20);
  // An all-zero release workload reproduces the identical run exactly.
  const sim::SimResult plain = sim::simulate_dispatch(tree, dests);
  const sim::SimResult zeroed = sim::simulate_dispatch(tree, dests, Workload::identical(3));
  EXPECT_EQ(plain.makespan, zeroed.makespan);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plain.tasks[i].master_emission, zeroed.tasks[i].master_emission);
    EXPECT_EQ(plain.tasks[i].end, zeroed.tasks[i].end);
  }
}

TEST(SimWorkload, SizesScaleLinksAndProcessors) {
  const Tree tree = two_slave_tree();
  // One task of size 3 to slave 1: emission 3*2, execution 3*3.
  const sim::SimResult run =
      sim::simulate_dispatch(tree, {1}, Workload::of_sizes({3}));
  ASSERT_EQ(run.num_tasks(), 1u);
  EXPECT_EQ(run.tasks[0].arrival, 6);
  EXPECT_EQ(run.tasks[0].end, 6 + 9);
  EXPECT_EQ(run.makespan, 15);
}

TEST(SimWorkload, OnlinePoliciesAcceptWorkloads) {
  const Tree tree = two_slave_tree();
  WorkloadGen gen;
  gen.arrival = ArrivalDist{ArrivalDist::Kind::kPeriodic, 4, 0};
  const Workload stream = gen.make(8, 3);
  for (sim::OnlinePolicy policy : sim::all_online_policies()) {
    const sim::SimResult run = sim::simulate_online(tree, stream, policy, 5);
    ASSERT_EQ(run.num_tasks(), 8u) << to_string(policy);
    for (std::size_t i = 0; i < run.tasks.size(); ++i) {
      EXPECT_GE(run.tasks[i].master_emission, stream.release_of(i)) << to_string(policy);
    }
    // Reproducible per seed.
    EXPECT_EQ(run.makespan, sim::simulate_online(tree, stream, policy, 5).makespan);
  }
}

}  // namespace
}  // namespace mst
